//! Offline shim for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), integer-range
//! and tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Unlike the real crate
//! there is no shrinking: a failing case panics with the generated
//! inputs left to the assertion message. Generation is deterministic
//! (fixed seed per test function), which is what CI reproducibility
//! needs.

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator used for all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fresh generator with the shim's fixed seed.
        pub fn deterministic() -> Self {
            TestRng { state: 0xDD25_7E57_C0FF_EE00 }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn below(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let r = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + r) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Define property tests: each function runs its body for `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 0i64..100, y in 1u64..50) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((1..50).contains(&y));
        }

        #[test]
        fn vec_and_map(
            v in prop::collection::vec((0i64..10, 0i64..10), 1..20),
            mut w in prop::collection::vec(0u64..5, 0..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            w.sort_unstable();
            prop_assert!(w.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(z in 0u32..3) {
            prop_assert!(z < 3);
            prop_assert_eq!(z, z);
        }
    }
}
