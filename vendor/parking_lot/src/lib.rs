//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the tiny subset of the `parking_lot` API it uses —
//! a [`Mutex`] whose `lock` returns the guard directly (no poison
//! `Result`) — implemented over `std::sync::Mutex`. Poisoned locks are
//! recovered rather than propagated, matching `parking_lot` semantics
//! closely enough for the simulator's bookkeeping structures.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never returns a poison error: a
    /// poisoned lock is recovered (the data is still returned).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(7);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn default_is_default() {
        let m: Mutex<Vec<u64>> = Mutex::default();
        assert!(m.lock().is_empty());
    }
}
