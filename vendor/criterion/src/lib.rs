//! Offline shim for the `criterion` crate.
//!
//! Provides the surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples wall-clock report instead of Criterion's full
//! statistical machinery. Sample counts are kept deliberately small so
//! `cargo bench` finishes quickly on simulator-scale workloads.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimiser from discarding a value (identity function at
/// `-O`; good enough for the coarse timings this shim reports).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed_ns: Vec<u128>,
}

impl Bencher {
    /// Run `routine` `samples` times and record per-run wall-clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = routine();
            self.elapsed_ns.push(t0.elapsed().as_nanos());
            drop(black_box(out));
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { samples: self.samples, elapsed_ns: Vec::new() };
        f(&mut b);
        let mut ns = b.elapsed_ns;
        ns.sort_unstable();
        let median = ns.get(ns.len() / 2).copied().unwrap_or(0);
        println!(
            "{}/{}: median {:.3} ms over {} samples",
            self.name,
            label,
            median as f64 / 1e6,
            ns.len()
        );
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Benchmark a routine that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// End the group (report-only in this shim).
    pub fn finish(self) {}
}

/// The top-level benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group. The shim defaults to 3 samples;
    /// groups can raise it with [`BenchmarkGroup::sample_size`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), samples: 3 }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4u64, |b, &x| b.iter(|| black_box(x * 2)));
        g.finish();
        assert_eq!(runs, 2);
    }
}
