//! Offline shim for the `rand` crate (0.9-style API surface).
//!
//! The workspace's workload generators only need a seeded, deterministic
//! uniform generator over integer ranges. This shim provides
//! [`rngs::StdRng`] (a splitmix64 core — excellent equidistribution for
//! workload generation, no cryptographic claims), [`SeedableRng`] and the
//! [`Rng::random_range`] method over half-open and inclusive integer
//! ranges. Streams differ from the real `rand` crate's `StdRng` — callers
//! only rely on determinism per seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of pseudo-random `u64`s with range sampling.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample using the provided raw-`u64` source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                let r = (next() as i128).rem_euclid(span);
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi - lo + 1;
                let r = (next() as i128).rem_euclid(span);
                (lo + r) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Pseudo-random generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut c = StdRng::seed_from_u64(6);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.random_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: u64 = rng.random_range(1..=100);
            assert!((1..=100).contains(&y));
            let z: usize = rng.random_range(0..7);
            assert!(z < 7);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 800 && b < 1200), "{buckets:?}");
    }
}
