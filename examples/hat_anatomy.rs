//! Figure 3 brought to life: print the hat/forest anatomy of a
//! distributed range tree.
//!
//! The paper's Figure 3 shows, for p = 8, the hat of `T` in dimension 1 —
//! the top `log p` levels of the primary segment tree, the `(d-1)`-
//! dimensional descendant range trees of its internal nodes (on n, n/2,
//! n/4, … points), and the forest of `p` subtrees on `n/p` points hanging
//! below. This example builds exactly that structure (p = 8, d = 2) and
//! prints the same anatomy from the live data structure, then checks the
//! Theorem 1 size bounds.
//!
//! ```text
//! cargo run --release --example hat_anatomy
//! ```

use ddrs::prelude::*;

fn main() {
    let p = 8;
    let n = 1024usize;
    let machine = Machine::new(p).expect("machine");

    let pts: Vec<Point<2>> = (0..n as u32)
        .map(|i| Point::new([((i as i64) * 193) % n as i64, ((i as i64) * 71) % n as i64], i))
        .collect();
    let tree = DistRangeTree::<2>::build(&machine, &pts).expect("build");
    let report = tree.structure_report();

    println!("distributed range tree: n = {n}, d = 2, p = {p}");
    println!();
    println!("Figure 3 anatomy (hat in dimension 1 + forest):");
    println!("  primary segment tree: top log p = {} levels replicated", p.ilog2());
    println!(
        "  forest: {} trees of n/p = {} points each, dealt round-robin",
        report.forest_trees.iter().sum::<usize>(),
        n / p
    );
    println!("  per-processor forest shards (trees): {:?}", report.forest_trees);
    println!("  per-processor forest shards (nodes): {:?}", report.forest_nodes);
    println!();
    println!("sizes (Theorem 1):");
    let s = report.total_nodes;
    println!("  total structure s       = {s} nodes");
    println!("  hat (replicated)        = {} nodes", report.hat_nodes);
    println!("  s/p                     = {} nodes", s / p as u64);
    assert!(report.hat_nodes <= 4 * s / p as u64, "Theorem 1(i): |H| = O(s/p) violated");
    let max_shard = *report.forest_nodes.iter().max().unwrap();
    let min_shard = *report.forest_nodes.iter().min().unwrap();
    println!("  largest forest shard    = {max_shard} nodes");
    println!("  smallest forest shard   = {min_shard} nodes");
    assert!(max_shard <= 4 * s / p as u64, "Theorem 1(ii): |F_i| = O(s/p) violated");
    println!();
    println!("Theorem 1 bounds hold ✓  (|H| ≤ O(s/p), every |F_i| ≤ O(s/p))");
}
