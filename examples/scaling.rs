//! Scaling demo: the headline claim of the paper on one screen.
//!
//! Builds the same workload on machines with p = 1, 2, 4, 8 processors
//! and prints, for construction and for a batch of n queries: wall time,
//! superstep count, and max h-relation. The superstep count staying flat
//! while work per processor shrinks is Corollaries 1–3.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use std::time::Instant;

use ddrs::prelude::*;
use ddrs::workloads::{PointDistribution, QueryDistribution};

fn main() {
    let n = 1 << 14;
    let pts: Vec<Point<2>> =
        WorkloadBuilder::new(99, n).points(PointDistribution::UniformCube { side: 1 << 20 });
    let queries = QueryWorkload::from_points(&pts, 5)
        .queries(QueryDistribution::Selectivity { fraction: 0.001 }, n / 4);

    println!("n = {n} points, {} count queries, d = 2", queries.len());
    println!(
        "{:>3} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "p", "build(ms)", "b.steps", "b.max_h", "query(ms)", "q.steps", "q.max_h"
    );

    let mut baseline_q = None;
    for p in [1usize, 2, 4, 8] {
        let machine = Machine::new(p).expect("machine");

        let t0 = Instant::now();
        let tree = DistRangeTree::<2>::build(&machine, &pts).expect("build");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let bs = machine.take_stats();

        let t0 = Instant::now();
        let counts = tree.count_batch(&machine, &queries);
        let query_ms = t0.elapsed().as_secs_f64() * 1e3;
        let qs = machine.take_stats();

        // All machine sizes must agree on the answers.
        let checksum: u64 = counts.iter().sum();
        match &baseline_q {
            None => baseline_q = Some(checksum),
            Some(c) => assert_eq!(*c, checksum, "answers diverge at p={p}"),
        }

        println!(
            "{:>3} {:>12.1} {:>10} {:>10} {:>12.1} {:>10} {:>10}",
            p,
            build_ms,
            bs.supersteps(),
            bs.max_h(),
            query_ms,
            qs.supersteps(),
            qs.max_h()
        );
    }
    println!();
    println!("expected shape: supersteps constant in p; max h shrinking ~1/p;");
    println!("wall times bounded below by thread overhead at small n.");
}
