//! Observability tour: run a mixed workload on a two-shard service,
//! print the per-stage latency table and the unified metrics registry,
//! and export the recorded spans plus a machine timeline as
//! chrome://tracing JSON (`trace.json` — load it at chrome://tracing or
//! <https://ui.perfetto.dev>).
//!
//! Span recording is on in debug builds; in release builds enable it
//! with `--features trace`:
//!
//! ```text
//! cargo run --example tracing
//! cargo run --release --features trace --example tracing
//! ```

use std::time::Duration;

use ddrs::prelude::*;
use ddrs::trace::{enabled, MetricsRegistry, Trace};

fn main() {
    let pts: Vec<Point<2>> = (0..200u32)
        .map(|i| {
            Point::weighted([(i as i64 * 13) % 400, (i as i64 * 7) % 300], i, 1 + i as u64 % 4)
        })
        .collect();
    let machines: Vec<Machine> = (0..2).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        32,
        &pts,
        Sum,
        PartitionPolicy::Range { bounds: vec![200] },
        ShardedConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(300),
            ..Default::default()
        },
    )
    .expect("building the sharded store");

    // A mixed workload: narrow and cross-shard reads, aggregates,
    // reports, writes, and one multi-op request block.
    for i in 0..25i64 {
        let narrow = Rect::new([i * 7, 0], [i * 7 + 40, 300]);
        let wide = Rect::new([0, 0], [400, 300]);
        service.count(narrow).unwrap().wait().unwrap();
        service.aggregate(wide).unwrap().wait().unwrap();
        if i % 5 == 0 {
            service.report(narrow).unwrap().wait().unwrap();
            service
                .insert(vec![Point::weighted([(i * 31) % 400, 150], 1000 + i as u32, 2)])
                .unwrap()
                .wait()
                .unwrap();
        }
    }
    let mut req = Request::new();
    let h_all = req.count(Rect::new([0, 0], [400, 300]));
    let h_left = req.count(Rect::new([0, 0], [199, 300]));
    let h_ids = req.report(Rect::new([0, 0], [60, 300]));
    let resp = service.submit(req).unwrap().wait().unwrap().value;
    println!(
        "multi-op request: {} points total, {} on the left shard, ids {:?}\n",
        resp.count(h_all),
        resp.count(h_left),
        resp.report(h_ids)
    );

    // 1. The always-on per-stage latency attribution.
    let stats = service.stats();
    println!("where requests spent their time (always on, even without spans):\n");
    println!("{}", stats.stages.render_table());

    // 2. The unified metrics registry: one namespace for the router
    //    counters, histograms, stage means and per-shard rollups.
    let registry = MetricsRegistry::new();
    stats.register_into(&registry, "sharded");
    println!("metrics registry:\n");
    println!("{}", registry.render());
    service.shutdown();

    // 3. Spans + a machine timeline on one chrome://tracing canvas. The
    //    standalone run gives the timeline a few supersteps to show.
    let machine = Machine::new(4).unwrap();
    machine.run(|ctx| {
        let mine = vec![ctx.rank() as u64; 8];
        let total: u64 = ctx.all_gather(mine).into_iter().flatten().sum();
        ctx.all_reduce_sum(total)
    });
    let timeline = machine.take_stats().timeline;
    let trace = Trace::capture();
    let json = trace.export_chrome(&timeline);
    match std::fs::write("trace.json", &json) {
        Ok(()) => println!(
            "wrote trace.json: {} span events, {} timeline steps{}",
            trace.events.len(),
            timeline.len(),
            if enabled() {
                ""
            } else {
                " (recording is compiled out — rebuild with --features trace or in debug mode)"
            }
        ),
        Err(e) => eprintln!("could not write trace.json: {e}"),
    }
}
