//! Geospatial report-mode scenario: find all facilities inside map
//! viewports.
//!
//! The range tree's report mode is the classical "window query" of
//! geographic databases: given a set of facility coordinates, return every
//! facility inside a rectangular viewport. This example builds a clustered
//! "city" point set (facilities cluster around town centres), runs a batch
//! of viewport queries of very different sizes through the distributed
//! tree, and shows that the *output* — not just the queries — ends up
//! balanced across processors, which is exactly the `O(k/p)` guarantee of
//! Theorem 4.
//!
//! ```text
//! cargo run --release --example geo_report
//! ```

use ddrs::prelude::*;
use ddrs::workloads::{PointDistribution, QueryDistribution};

fn main() {
    let p = 8;
    let machine = Machine::new(p).expect("machine");

    // 20k facilities clustered around 12 town centres on a 2^20 grid.
    let pts: Vec<Point<2>> = WorkloadBuilder::new(2024, 20_000)
        .points(PointDistribution::Clusters { side: 1 << 20, k: 12, spread: 1 << 14 });
    let tree = DistRangeTree::<2>::build(&machine, &pts).expect("build");
    machine.take_stats();

    // Viewports: a thousand small pans plus a few continent-scale views.
    let workload = QueryWorkload::from_points(&pts, 7);
    let mut viewports = workload.queries(QueryDistribution::Selectivity { fraction: 0.001 }, 1000);
    viewports.extend(workload.queries(QueryDistribution::Selectivity { fraction: 0.25 }, 4));

    let shares = tree.report_batch_raw(&machine, &viewports);
    let stats = machine.take_stats();

    let k: usize = shares.iter().map(Vec::len).sum();
    let max_share = shares.iter().map(Vec::len).max().unwrap_or(0);
    println!("{} facilities, {} viewport queries", pts.len(), viewports.len());
    println!("k = {k} (query, facility) pairs reported");
    println!(
        "per-processor output shares: {:?} (⌈k/p⌉ = {})",
        shares.iter().map(Vec::len).collect::<Vec<_>>(),
        k.div_ceil(p)
    );
    assert!(max_share <= k.div_ceil(p), "report output must be balanced");
    println!(
        "communication: {} supersteps, max h-relation {} words",
        stats.supersteps(),
        stats.max_h()
    );

    // Spot-check a handful of viewports against brute force.
    let oracle = BruteForce::new(pts);
    let mut by_query: Vec<Vec<u32>> = vec![Vec::new(); viewports.len()];
    for (qid, id) in shares.into_iter().flatten() {
        by_query[qid as usize].push(id);
    }
    for (i, q) in viewports.iter().enumerate().step_by(101) {
        by_query[i].sort_unstable();
        assert_eq!(by_query[i], oracle.report(q), "viewport {q:?}");
    }
    println!("spot-checked viewports against brute force ✓");
}
