//! The serving layer end to end: concurrent clients, micro-batch
//! coalescing, epoch-scheduled updates and the telemetry surface.
//!
//! Eight client threads fire mixed read/write traffic at a `Service`
//! fronting a dynamic distributed range tree on an 8-processor machine.
//! None of them ever assembles a batch — the scheduler group-commits
//! their small independent requests into few fused SPMD runs, and the
//! final stats show the coalescing leverage.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use ddrs::prelude::*;
use ddrs::workloads::{request_stream, submit_op, QueryDistribution, RequestMix};

fn main() {
    let p = 8;
    let clients = 8;
    let machine = Machine::new(p).unwrap();

    // Seed the store with 4096 points; keep another 1024 aside as fresh
    // inserts for the write traffic.
    let all: Vec<Point<2>> =
        WorkloadBuilder::new(3, 5120).points(PointDistribution::UniformCube { side: 1 << 16 });
    let (seed_pts, fresh) = all.split_at(4096);
    let mut tree = DynamicDistRangeTree::<2>::new(1 << 8);
    tree.insert_batch(&machine, seed_pts).unwrap();

    let service = Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 96,
            max_delay: Duration::from_micros(250),
            ..ServiceConfig::default()
        },
    );

    // Open-loop mixed traffic: Poisson arrivals at 30k req/s, 1 write
    // per 16 requests.
    let trace = ArrivalTrace::generate(7, ArrivalProcess::Poisson { rate_hz: 30_000.0 }, 1200);
    let qw = QueryWorkload::from_points(seed_pts, 11);
    let stream = request_stream(
        19,
        &trace,
        &qw,
        QueryDistribution::Selectivity { fraction: 0.01 },
        RequestMix { mode_weights: (2, 1, 1), write_every: 16, write_batch: 8 },
        fresh,
    );

    let start = std::time::Instant::now();
    let served = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for k in 0..clients {
            let (service, stream, served) = (&service, &stream, &served);
            s.spawn(move || {
                for timed in stream.iter().skip(k).step_by(clients) {
                    let target = start + timed.at;
                    let now = std::time::Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    // One shared driver for every op shape and every
                    // backend: the stream rides the `RangeStore` trait.
                    submit_op(service, &timed.op).unwrap().wait().expect("request failed");
                    served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let wall = start.elapsed();
    let stats = service.stats();
    let (machine, tree) = service.shutdown();

    let served = served.into_inner();
    println!("served {served} requests from {clients} clients in {wall:.2?}");
    println!("  throughput            {:>10.0} req/s", served as f64 / wall.as_secs_f64());
    println!("  read dispatches       {:>10}", stats.dispatches);
    println!("  write epochs          {:>10}", stats.write_epochs);
    println!("  machine runs          {:>10}", stats.machine.runs);
    println!("  mean batch size       {:>10.1}", stats.mean_batch_size());
    println!("  queries per run       {:>10.1}", stats.coalescing_factor());
    println!(
        "  p50 / p99 latency     {:>6}µs / {}µs",
        stats.p50_latency_us(),
        stats.p99_latency_us()
    );
    println!("  batch-size histogram  {:?}", stats.batch_sizes.nonzero_buckets());
    println!("final store: {} live points on a p={} machine", tree.len(), machine.p());
}
