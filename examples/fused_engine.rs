//! The fused mixed-mode query engine: one machine submission per batch.
//!
//! A simulated dashboard tier fires heterogeneous traffic — "how many?",
//! "what's the total?", "which ones?" — at a dynamic store whose
//! logarithmic-method levels grow as data streams in. The engine plans
//! every mixed batch into a *single* SPMD program: one `Machine::run`,
//! a constant number of communication rounds, regardless of the mode mix
//! and of how many levels are occupied.
//!
//! ```text
//! cargo run --release --example fused_engine
//! ```

use ddrs::prelude::*;
use ddrs::workloads::{QueryDistribution, QueryMode};

fn main() {
    let machine = Machine::new(8).expect("machine");
    let mut store = DynamicDistRangeTree::<2>::new(512);

    // Order events: (price cents, latency µs), weighted by order value.
    let events: Vec<Point<2>> = (0..6000u32)
        .map(|i| {
            Point::weighted(
                [((i * 7919) % 100_000) as i64, ((i * 104_729) % 50_000) as i64],
                i,
                (i % 97 + 1) as u64,
            )
        })
        .collect();

    println!(
        "{:>5} {:>7} {:>7} {:>6} {:>7} {:>7} {:>8} {:>7}",
        "wave", "live", "levels", "runs", "rounds", "counts", "sums", "reports"
    );
    let workload = QueryWorkload::from_points(&events, 7);
    let mut lo = 0usize;
    for (wave, size) in [3000usize, 1500, 750, 375].into_iter().enumerate() {
        store.insert_batch(&machine, &events[lo..lo + size]).expect("insert");
        lo += size;

        // A mixed dashboard batch: half counts, a quarter sums, a
        // quarter drill-down reports, over the same spatial workload.
        let mixed =
            workload.mixed(QueryDistribution::Selectivity { fraction: 0.02 }, (2, 1, 1), 64);
        let mut batch = QueryBatch::new(Sum);
        for q in &mixed {
            match q.mode {
                QueryMode::Count => batch.count(q.rect),
                QueryMode::Aggregate => batch.aggregate(q.rect),
                QueryMode::Report => batch.report(q.rect),
            };
        }

        machine.take_stats();
        let out = batch.execute_dynamic(&machine, &store);
        let stats = machine.take_stats();
        assert_eq!(stats.runs, 1, "a mixed batch is exactly one submission");

        let total_hits: u64 = out.counts.iter().sum();
        let total_sum: u64 = out.aggregates.iter().flatten().sum();
        let reported: usize = out.reports.iter().map(Vec::len).sum();
        println!(
            "{:>5} {:>7} {:>7} {:>6} {:>7} {:>7} {:>8} {:>7}",
            wave,
            store.len(),
            store.occupied_levels(),
            stats.runs,
            stats.supersteps(),
            total_hits,
            total_sum,
            reported
        );
    }
    println!("\none Machine::run per batch, constant rounds — at every level count.");
}
