//! Streaming updates: the paper's future-work extension in action.
//!
//! Section 5 of the paper: "the range tree is inherently static; a
//! dynamic distributed data structure would be more powerful". This
//! example runs a day of simulated sensor ingest — batches of new
//! readings arriving, old readings expiring — against the
//! `DynamicDistRangeTree` (logarithmic method over static distributed
//! range trees), with live window queries in between.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use ddrs::prelude::*;
use ddrs::rangetree::{DynamicDistRangeTree, Rect};

fn main() {
    let machine = Machine::new(8).expect("machine");
    let mut store = DynamicDistRangeTree::<2>::new(1024);

    // Readings: (station position, reading id); 24 hourly batches of
    // 2000 readings; each batch expires after 6 hours.
    let batch_size = 2000u32;
    let window = Rect::new([200_000, 300_000], [600_000, 700_000]);
    let mut ingested = 0u64;

    println!("{:>4} {:>9} {:>8} {:>9} {:>10}", "hour", "live", "levels", "in-window", "checked");
    for hour in 0..24u32 {
        let base = hour * batch_size;
        let batch: Vec<Point<2>> = (base..base + batch_size)
            .map(|i| {
                let x = ((i as i64) * 7919) % 1_000_000;
                let y = ((i as i64) * 104_729) % 1_000_000;
                Point::weighted([x, y], i, (i % 1000) as u64)
            })
            .collect();
        store.insert_batch(&machine, &batch).expect("insert");
        ingested += batch_size as u64;

        // Expire the batch from six hours ago.
        if hour >= 6 {
            let old = (hour - 6) * batch_size;
            let expired: Vec<u32> = (old..old + batch_size).collect();
            store.delete_batch(&machine, &expired).expect("delete");
        }

        // Live window query + sampled oracle check.
        let got = store.count_batch(&machine, &[window])[0];
        let live_lo = hour.saturating_sub(5) * batch_size;
        let oracle = (live_lo..base + batch_size)
            .filter(|&i| {
                let x = ((i as i64) * 7919) % 1_000_000;
                let y = ((i as i64) * 104_729) % 1_000_000;
                window.contains(&Point::new([x, y], i))
            })
            .count() as u64;
        assert_eq!(got, oracle, "hour {hour}");
        println!(
            "{:>4} {:>9} {:>8} {:>9} {:>10}",
            hour,
            store.len(),
            store.occupied_levels(),
            got,
            "ok"
        );
    }
    println!("\ningested {ingested} readings; final store: {store:?}");
    println!("every hourly window count verified against the oracle ✓");
}
