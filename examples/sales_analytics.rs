//! OLAP-style associative-function scenario: aggregate sales records over
//! (time, price, store) cubes.
//!
//! The associative-function mode answers `⊗ f(l)` over every record in a
//! query box — here: revenue sums and single-largest-transaction maxima
//! over (day, price, store-id) ranges, the "database applications" the
//! paper's introduction motivates. Note `max` has no inverse, so the
//! simpler dominance-counting trick does not apply; the full range tree
//! machinery is required.
//!
//! ```text
//! cargo run --release --example sales_analytics
//! ```

use ddrs::prelude::*;
use ddrs::rangetree::{MaxWeight, Rect, Sum};

fn main() {
    let machine = Machine::new(8).expect("machine");

    // 30k sales records: (day 0..365, unit price 0..5000, store 0..200),
    // weight = transaction amount.
    let n = 30_000u32;
    let pts: Vec<Point<3>> = (0..n)
        .map(|i| {
            let day = ((i as i64) * 37 + (i as i64 / 7) * 11) % 365;
            let price = ((i as i64) * 193) % 5000;
            let store = ((i as i64) * 71) % 200;
            let amount = (price as u64 + 1) * (1 + (i as u64) % 5);
            Point::weighted([day, price, store], i, amount)
        })
        .collect();

    let tree = DistRangeTree::<3>::build(&machine, &pts).expect("build");
    println!("built 3-d distributed range tree over {n} sales records");

    // Analyst queries: quarterly revenue in price bands, per store group.
    let queries = vec![
        // Q1, all prices, all stores.
        Rect::new([0, 0, 0], [89, 4999, 199]),
        // Q2, premium price band, first store group.
        Rect::new([90, 4000, 0], [179, 4999, 49]),
        // Whole year, budget band, one store.
        Rect::new([0, 0, 120], [364, 499, 120]),
        // Black-friday week, everything.
        Rect::new([328, 0, 0], [334, 4999, 199]),
    ];
    let names = ["Q1 total", "Q2 premium/stores 0-49", "budget band @store120", "BF week"];

    let revenue = tree.aggregate_batch(&machine, Sum, &queries);
    let biggest = tree.aggregate_batch(&machine, MaxWeight, &queries);
    let volumes = tree.count_batch(&machine, &queries);

    println!("{:<26} {:>12} {:>14} {:>14}", "query", "records", "revenue", "max txn");
    for i in 0..queries.len() {
        println!(
            "{:<26} {:>12} {:>14} {:>14}",
            names[i],
            volumes[i],
            revenue[i].unwrap_or(0),
            biggest[i].unwrap_or(0)
        );
    }

    // Verify against the brute-force oracle.
    let oracle = BruteForce::new(pts);
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(revenue[i], oracle.sum_weights(q), "revenue mismatch on {}", names[i]);
        assert_eq!(volumes[i], oracle.count(q), "volume mismatch on {}", names[i]);
    }
    println!("verified against brute force ✓");
}
