//! The sharded scatter-gather router end to end: range-partitioned
//! shard groups, cross-shard reads merged under one global commit
//! order, routed writes, a live skew-healing split, and the per-shard
//! telemetry surface.
//!
//! Four shard groups (each its own 2-processor machine, store and
//! scheduler) serve eight client threads. Mid-run, every new insert is
//! aimed at one slab until the skew trigger migrates half of the fat
//! shard to its neighbour — while the clients keep reading.
//!
//! ```sh
//! cargo run --release --example sharding
//! ```

use std::time::Duration;

use ddrs::prelude::*;
use ddrs::workloads::QueryDistribution;

fn main() {
    let shards = 4;
    let clients = 8;

    // Seed: 4096 points, uniform on a 2^16 square; slab boundaries at
    // the sample quartiles so the groups start balanced.
    let all: Vec<Point<2>> =
        WorkloadBuilder::new(7, 5120).points(PointDistribution::UniformCube { side: 1 << 16 });
    let (seed_pts, fresh) = all.split_at(4096);
    let policy = PartitionPolicy::range_from_sample(shards, seed_pts);
    println!("partition: {policy:?}");

    let machines: Vec<Machine> = (0..shards).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        1 << 8,
        seed_pts,
        Sum,
        policy,
        ShardedConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(300),
            // Heal any shard that grows past 1.4× the mean.
            rebalance_factor: 1.4,
            rebalance_min: 256,
            ..ShardedConfig::default()
        },
    )
    .expect("seed points are unique");

    // Phase 1: balanced mixed read traffic from all clients.
    let queries = QueryWorkload::from_points(seed_pts, 11)
        .queries(QueryDistribution::Selectivity { fraction: 0.01 }, clients * 40);
    std::thread::scope(|s| {
        for chunk in queries.chunks(40) {
            let service = &service;
            s.spawn(move || {
                for q in chunk {
                    let count = service.count(*q).unwrap().wait().unwrap();
                    let agg = service.aggregate(*q).unwrap().wait().unwrap();
                    assert!(agg.value.unwrap_or(0) >= count.value, "weights are ≥ 1");
                }
            });
        }
    });

    // Phase 2: skewed writes — every fresh point lands in slab 0 — while
    // one reader thread keeps verifying the global view.
    let skewed: Vec<Point<2>> = fresh
        .iter()
        .map(|p| Point::weighted([p.coords[0] % 1000, p.coords[1]], p.id, p.weight))
        .collect();
    let everything = Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]);
    std::thread::scope(|s| {
        let service = &service;
        s.spawn(move || {
            for batch in skewed.chunks(64) {
                service.insert(batch.to_vec()).unwrap().wait().unwrap();
            }
        });
        s.spawn(move || {
            for _ in 0..20 {
                let c = service.count(everything).unwrap().wait().unwrap();
                assert!(c.value >= 4096);
                std::thread::sleep(Duration::from_micros(500));
            }
        });
    });

    let stats = service.stats();
    println!("\nafter the skewed write burst:");
    println!("  total points      {}", stats.total_points());
    println!(
        "  shard sizes       {:?}",
        stats.per_shard.iter().map(|s| s.live_points).collect::<Vec<_>>()
    );
    println!("  skew (max/mean)   {:.2}", stats.skew());
    println!("  rebalances        {} ({} points moved)", stats.rebalances, stats.rebalance_moved);
    println!("  slab boundaries   {:?}", stats.range_bounds);
    println!("  read dispatches   {}", stats.dispatches);
    println!("  write epochs      {}", stats.write_epochs);
    println!("  machine runs      {} across {} shards", stats.machine.runs, shards);
    println!(
        "  runs per shard    {:?}",
        stats.per_shard.iter().map(|s| s.machine.runs).collect::<Vec<_>>()
    );
    println!(
        "  shards touched    {} across {} routed reads ({:.2} mean fanout)",
        stats.read_shards_touched,
        stats.read_ops_routed,
        stats.mean_read_fanout()
    );
    println!("  queries/run       {:.1}", stats.coalescing_factor());
    println!("  p50 / p99 latency {} / {} µs", stats.p50_latency_us(), stats.p99_latency_us());

    // The merged view is exact: every point is in exactly one shard.
    let total = service.count(everything).unwrap().wait().unwrap().value;
    assert_eq!(total as usize, 4096 + fresh.len());
    let parts = service.shutdown();
    let sum: usize = parts.iter().map(|(_, t)| t.len()).sum();
    assert_eq!(sum, 4096 + fresh.len());
    println!("\nshutdown clean: {} points across {} shard stores", sum, parts.len());
}
