//! Quickstart: build a distributed range tree and run all three query
//! modes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ddrs::prelude::*;
use ddrs::rangetree::{Rect, Sum};

fn main() {
    // A coarse grained multicomputer with 8 simulated processors.
    let machine = Machine::new(8).expect("p must be a power of two");

    // 4096 pseudo-random 2-d points with weights.
    let pts: Vec<Point<2>> = (0..4096u32)
        .map(|i| {
            let x = ((i as i64) * 193) % 2048;
            let y = ((i as i64) * 71) % 2048;
            Point::weighted([x, y], i, (i % 97 + 1) as u64)
        })
        .collect();

    // Algorithm Construct: the distributed range tree.
    let tree = DistRangeTree::<2>::build(&machine, &pts).expect("build");
    let build_stats = machine.take_stats();
    println!("built distributed range tree: {tree:?}");
    println!(
        "  construction: {} supersteps, max h-relation {} words",
        build_stats.supersteps(),
        build_stats.max_h()
    );
    let report = tree.structure_report();
    println!(
        "  hat: {} nodes (replicated); forest shards: {:?} nodes",
        report.hat_nodes, report.forest_nodes
    );

    // A batch of queries.
    let queries = vec![
        Rect::new([0, 0], [1023, 1023]),
        Rect::new([500, 500], [600, 700]),
        Rect::new([0, 0], [2047, 2047]),
        Rect::new([3000, 3000], [4000, 4000]), // empty
    ];

    // Counting (associative-function mode with the Count semigroup).
    let counts = tree.count_batch(&machine, &queries);
    println!("counts:  {counts:?}");

    // Weighted sums (associative-function mode).
    let sums = tree.aggregate_batch(&machine, Sum, &queries);
    println!("sums:    {sums:?}");

    // Report mode: the matching point ids themselves.
    let reports = tree.report_batch(&machine, &queries);
    println!("reports: {:?} ids per query", reports.iter().map(Vec::len).collect::<Vec<_>>());
    let q_stats = machine.take_stats();
    println!(
        "  queries: {} supersteps across 3 batches, max h {} words",
        q_stats.supersteps(),
        q_stats.max_h()
    );

    // Cross-check against the brute-force oracle.
    let oracle = BruteForce::new(pts);
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(counts[i], oracle.count(q), "count mismatch on {q:?}");
        assert_eq!(reports[i], oracle.report(q), "report mismatch on {q:?}");
    }
    println!("verified against brute force ✓");
}
