//! Durability end to end: kill one shard group mid-load with a
//! simulated processor panic, watch the blast radius stop at its
//! boundary, then heal it live with `recover_shard()` — a replay of the
//! shard's per-epoch write-ahead log — while the siblings keep serving.
//! The recovery duration is read back from the unified metrics
//! registry.
//!
//! ```sh
//! cargo run --release --example recovery
//! ```

use std::time::Duration;

use ddrs::prelude::*;
use ddrs::trace::{MetricValue, MetricsRegistry};

fn main() {
    let shards = 3;

    // Seed: 6144 points, a third per range slab; 2048 more arrive as a
    // streamed load after startup.
    let all: Vec<Point<2>> =
        WorkloadBuilder::new(19, 8192).points(PointDistribution::UniformCube { side: 1 << 16 });
    let (seed_pts, fresh) = all.split_at(6144);
    let policy = PartitionPolicy::range_from_sample(shards, seed_pts);

    let machines: Vec<Machine> = (0..shards).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        1 << 8,
        seed_pts,
        Sum,
        policy,
        ShardedConfig { max_delay: Duration::from_micros(300), ..ShardedConfig::default() },
    )
    .expect("seed points are unique");
    let everything = Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]);

    // The simulated processor panic below is expected — don't let it
    // spray a backtrace over the demo output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !std::thread::current().name().is_some_and(|n| n.starts_with("cgm-worker")) {
            default_hook(info);
        }
    }));

    // Stream the load; halfway through, a processor in shard 1 dies
    // mid-epoch. Every block resolves definitely: committed, aborted by
    // the panic, or refused by the quarantine.
    println!("streaming {} points in blocks of 128…", fresh.len());
    let (mut committed, mut failed) = (0usize, 0usize);
    for (i, block) in fresh.chunks(128).enumerate() {
        if i == 8 {
            println!("  !! killing shard 1 mid-epoch (injected processor panic)");
            service.fail_next_write_epoch(1);
        }
        match service.insert(block.to_vec()).unwrap().wait() {
            Ok(_) => committed += 1,
            Err(e) => {
                failed += 1;
                if failed == 1 {
                    println!("  first failed block: {e}");
                }
            }
        }
    }
    let stats = service.stats();
    println!("  committed {committed} blocks, {failed} refused while quarantined");
    println!(
        "  quarantine: shard 1 → {:?}",
        stats.per_shard[1].poisoned.as_deref().map(|r| r.split(':').next().unwrap_or(r))
    );
    println!(
        "  shard WAL sizes: {:?} records",
        stats.per_shard.iter().map(|s| s.wal_records).collect::<Vec<_>>()
    );

    // Sibling slabs keep serving while shard 1 is down: a read confined
    // to shard 0's slab routes around the quarantine entirely.
    let b0 = stats.range_bounds.as_ref().map_or(0, |b| b[0]);
    let slab0 = Rect::new([i64::MIN, i64::MIN], [b0 - 1, i64::MAX]);
    let c = service.count(slab0).unwrap().wait().expect("slab 0 serves around the quarantine");
    println!("  siblings still serving: slab 0 (x < {b0}) holds {} points", c.value);

    // Heal it live: replay the write-ahead log into a fresh store.
    let report = service.recover_shard(1).unwrap().wait().expect("recovery succeeds").value;
    println!(
        "\nrecovered shard {}: {} records replayed → {} live points (clean tail: {})",
        report.shard, report.replayed_records, report.live_points, report.clean_tail
    );

    // The duration lands in the metrics registry with the rest of the
    // service telemetry.
    let registry = MetricsRegistry::new();
    service.stats().register_into(&registry, "sharded");
    let snap = registry.snapshot();
    match (snap.get("sharded.recoveries"), snap.get("sharded.recovery_us")) {
        (Some(MetricValue::Counter(n)), Some(MetricValue::Histogram(h))) => {
            println!("registry: sharded.recoveries = {n}, recovery p50 ≈ {} µs", h.quantile(0.5));
        }
        other => panic!("recovery metrics missing from the registry: {other:?}"),
    }
    println!("report duration: {:.1} ms", report.duration.as_secs_f64() * 1e3);

    // Fully healed: writes route through shard 1 again and the global
    // view is exact.
    let total_before = service.count(everything).unwrap().wait().unwrap().value;
    service.insert(vec![Point::weighted([0, 0], 60_000, 1)]).unwrap().wait().unwrap();
    let total_after = service.count(everything).unwrap().wait().unwrap().value;
    assert_eq!(total_after, total_before + 1);
    let parts = service.shutdown();
    let sum: usize = parts.iter().map(|(_, t)| t.len()).sum();
    assert_eq!(sum as u64, total_after);
    println!("\nshutdown clean: {sum} points across {} healthy shard stores", parts.len());
}
