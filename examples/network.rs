//! The network front-end end to end: a served store behind a TCP
//! socket, and remote clients that cannot tell the difference.
//!
//! A `Service` fronting a dynamic distributed range tree is wrapped in
//! a `NetServer` on an ephemeral loopback port. Four client threads
//! each connect a pooled, pipelining `RemoteStore` and fire composed
//! multi-op requests — writes plus fused reads in one unit — over the
//! wire. The example ends with the two stats surfaces side by side:
//! the service's coalescing leverage (unchanged by the network hop)
//! and the server's connection/frame accounting, published through the
//! unified metrics registry.
//!
//! ```sh
//! cargo run --release --example network
//! ```

use std::time::Duration;

use ddrs::prelude::*;
use ddrs::trace::MetricsRegistry;

fn main() {
    let p = 8;
    let machine = Machine::new(p).unwrap();

    // Seed the store, keeping fresh ids aside for remote writes.
    let all: Vec<Point<2>> =
        WorkloadBuilder::new(3, 5120).points(PointDistribution::UniformCube { side: 1 << 16 });
    let (seed_pts, fresh) = all.split_at(4096);
    let mut tree = DynamicDistRangeTree::<2>::new(1 << 8);
    tree.insert_batch(&machine, seed_pts).unwrap();

    // The served store, behind an Arc so we keep a stats handle to the
    // exact instance on the far side of the socket.
    let service = std::sync::Arc::new(Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 96,
            max_delay: Duration::from_micros(250),
            ..ServiceConfig::default()
        },
    ));
    let server = NetServer::serve(
        Box::new(std::sync::Arc::clone(&service)),
        "127.0.0.1:0",
        NetConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    // Four remote clients, each with its own two-connection pool,
    // submitting composed requests: one insert batch plus three reads.
    let qw = QueryWorkload::from_points(seed_pts, 11);
    let queries =
        qw.queries(ddrs::workloads::QueryDistribution::Selectivity { fraction: 0.01 }, 64);
    std::thread::scope(|s| {
        for (client_id, chunk) in fresh.chunks(fresh.len() / 4).take(4).enumerate() {
            let queries = &queries;
            s.spawn(move || {
                let store: RemoteStore<Sum, 2> =
                    RemoteStore::connect(addr, RemoteConfig::default()).unwrap();
                let mut inserted = 0usize;
                let mut answered = 0usize;
                for (i, batch) in chunk.chunks(16).enumerate() {
                    let mut req = Request::new();
                    let w = req.insert(batch.to_vec());
                    let q = queries[(client_id * 16 + i) % queries.len()];
                    let c = req.count(q);
                    let a = req.aggregate(q);
                    let r = req.report(q);
                    let commit = store.submit(req).unwrap().wait().unwrap();
                    assert_eq!(commit.value.write(w), &Ok(()));
                    assert_eq!(commit.value.report(r).len() as u64, commit.value.count(c));
                    let _ = commit.value.aggregate(a);
                    inserted += batch.len();
                    answered += 3;
                }
                println!(
                    "client {client_id}: inserted {inserted} points, \
                     {answered} reads answered over the wire"
                );
            });
        }
    });

    // Both stats surfaces, through the one registry.
    let registry = MetricsRegistry::new();
    service.stats().register_into(&registry, "service");
    server.register_into(&registry, "net");
    println!("\n{}", registry.render());

    server.shutdown();
    std::sync::Arc::try_unwrap(service).unwrap_or_else(|_| panic!("sole owner")).shutdown();
}
