//! A guided tour of the CGM collective operations — the paper's Model
//! section made executable.
//!
//! The paper fixes a vocabulary of global communication operations
//! (*segmented broadcast, segmented gather, all-to-all broadcast,
//! personalized all-to-all broadcast, partial sum, sort*) and counts every
//! algorithm in those units. This example runs each collective once on a
//! small machine and prints what moved — a starting point for building
//! other CGM algorithms on the substrate.
//!
//! ```text
//! cargo run --release --example collectives_tour
//! ```

use ddrs::prelude::*;

fn main() {
    let p = 4;
    let machine = Machine::new(p).expect("machine");

    // Personalized all-to-all: processor i sends i*10+j to processor j.
    let transposed = machine.run(|ctx| {
        let out: Vec<Vec<u64>> = (0..ctx.p()).map(|j| vec![(ctx.rank() * 10 + j) as u64]).collect();
        ctx.all_to_all_flat(out)
    });
    println!("personalized all-to-all (row i = what processor i received):");
    for (i, row) in transposed.iter().enumerate() {
        println!("  P{i}: {row:?}");
    }

    // All-to-all broadcast (allgather).
    let gathered = machine.run(|ctx| ctx.all_gather_one((ctx.rank() * ctx.rank()) as u64));
    println!("all-to-all broadcast: every processor now holds {:?}", gathered[0]);

    // Partial sum (exclusive scan) + reduction.
    let scans = machine.run(|ctx| ctx.exclusive_scan_sum_total(1 << ctx.rank()));
    println!("partial sums of [1,2,4,8]: {scans:?}");

    // Global sort: skewed input, globally sorted balanced output.
    let sorted = machine.run(|ctx| {
        let data: Vec<u64> =
            (0..(ctx.rank() + 1) * 3).map(|i| ((i * 37 + ctx.rank() * 11) % 50) as u64).collect();
        ctx.sort_balanced_by_key(data, |x| *x)
    });
    println!(
        "global sort (balanced): shares {:?}, globally sorted: {}",
        sorted.iter().map(Vec::len).collect::<Vec<_>>(),
        sorted.iter().flatten().collect::<Vec<_>>().windows(2).all(|w| w[0] <= w[1])
    );

    // Segmented broadcast: item 42 to processors 1..3.
    let seg = machine.run(|ctx| {
        let items = if ctx.rank() == 0 { vec![(42u64, 1..3)] } else { Vec::new() };
        ctx.segmented_broadcast(items)
    });
    println!("segmented broadcast of 42 to ranks 1..3: {seg:?}");

    // Load balancing with resource replication: a hot resource gets
    // copied, its demand split.
    let balanced = machine.run(|ctx| {
        let owned: Vec<(u64, String)> =
            if ctx.rank() == 0 { vec![(7, "hot-tree".to_string())] } else { Vec::new() };
        let items: Vec<(u64, u64)> = vec![(7u64, ctx.rank() as u64); 10];
        let out = ctx.load_balance(&owned, items);
        (out.resources.len(), out.items.len())
    });
    println!("multisearch balance of 40 items on 1 hot resource:");
    for (i, (copies, items)) in balanced.iter().enumerate() {
        println!("  P{i}: {copies} shipped copies, {items} items to process");
    }

    // The cost model saw all of it.
    let stats = machine.take_stats();
    println!("\ncost model: {} supersteps total; by collective:", stats.supersteps());
    for (label, count, max_h) in stats.by_label() {
        println!("  {label:<22} × {count:<3} max h = {max_h} words");
    }
}
