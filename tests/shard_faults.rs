//! Fault-injection harness for the sharded service: a simulated
//! processor panics *mid-epoch* in one shard (injected through
//! `Machine::try_run` between the delete and insert cascades), and the
//! blast radius must stop at that shard's boundary:
//!
//! * sibling shards keep serving reads and writes,
//! * the poisoned shard reports `ProcessorPanicked` and rejects traffic,
//! * sub-epochs already applied on healthy shards are rolled back, and
//! * no ticket ever resolves with a value that replaying the committed
//!   requests in commit-seq order through a sequential oracle
//!   contradicts.

use std::collections::HashSet;
use std::time::Duration;

use ddrs::prelude::*;
use ddrs::service::ServiceError;

fn machines(s: usize, p: usize) -> Vec<Machine> {
    (0..s).map(|_| Machine::new(p).unwrap()).collect()
}

/// Initial layout: three range slabs on axis 0 — shard 0 owns x < 100,
/// shard 1 owns 100 ≤ x < 200, shard 2 owns x ≥ 200. 20 points per slab.
fn initial() -> Vec<Point<2>> {
    (0..60u32)
        .map(|i| {
            let slab = (i / 20) as i64;
            Point::weighted(
                [slab * 100 + (i % 20) as i64 * 5, (i % 20) as i64],
                i,
                1 + i as u64 % 3,
            )
        })
        .collect()
}

fn slab_rect(s: i64) -> Rect<2> {
    Rect::new([s * 100, 0], [s * 100 + 99, 100])
}

/// The flat sequential oracle (same validation rules as the store).
struct Oracle {
    pts: Vec<Point<2>>,
}

impl Oracle {
    fn count(&self, q: &Rect<2>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    fn report(&self, q: &Rect<2>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn insert(&mut self, batch: &[Point<2>]) {
        self.pts.extend_from_slice(batch);
    }

    fn delete(&mut self, ids: &[u32]) {
        let dead: HashSet<u32> = ids.iter().copied().collect();
        self.pts.retain(|p| !dead.contains(&p.id));
    }
}

enum Event {
    Count(Rect<2>, u64),
    Report(Rect<2>, Vec<u32>),
    Insert(Vec<Point<2>>),
    Delete(Vec<u32>),
}

/// Replay committed events in commit order; every observed read value
/// must match the oracle at its commit position.
fn replay(initial_pts: &[Point<2>], mut events: Vec<(u64, Event)>) {
    events.sort_by_key(|(seq, _)| *seq);
    for w in events.windows(2) {
        assert_ne!(w[0].0, w[1].0, "duplicate commit seq");
    }
    let mut oracle = Oracle { pts: initial_pts.to_vec() };
    for (seq, ev) in events {
        match ev {
            Event::Count(q, observed) => {
                assert_eq!(oracle.count(&q), observed, "count diverged at seq {seq}")
            }
            Event::Report(q, observed) => {
                assert_eq!(oracle.report(&q), observed, "report diverged at seq {seq}")
            }
            Event::Insert(batch) => oracle.insert(&batch),
            Event::Delete(ids) => oracle.delete(&ids),
        }
    }
}

fn start(cfg: ShardedConfig) -> ShardedService<Sum, 2> {
    ShardedService::start(
        machines(3, 2),
        16,
        &initial(),
        Sum,
        PartitionPolicy::Range { bounds: vec![100, 200] },
        cfg,
    )
    .unwrap()
}

/// The flagship fault test: a mid-epoch processor panic in shard 1
/// poisons exactly shard 1; the epoch aborts atomically (its healthy
/// sub-epoch on shard 0 is rolled back); siblings keep serving; the
/// committed history replays cleanly.
#[test]
fn mid_epoch_panic_poisons_one_shard_and_siblings_keep_serving() {
    let base = initial();
    let mut events: Vec<(u64, Event)> = Vec::new();
    let service = start(ShardedConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(100),
        ..Default::default()
    });

    // Healthy traffic first, across all shards.
    let all = Rect::new([0, 0], [800, 600]);
    let c = service.count(all).unwrap().wait().unwrap();
    assert_eq!(c.value, 60);
    events.push((c.seq, Event::Count(all, c.value)));

    // Arm the fault, then submit one epoch that spans shard 0 (healthy)
    // and shard 1 (faulted): two inserts and a delete coalesced into the
    // same write window thanks to the wide delay.
    service.fail_next_write_epoch(1);
    let ins0 = vec![Point::weighted([10, 50], 1000, 2)]; // → shard 0
    let ins1 = vec![Point::weighted([150, 50], 1001, 2)]; // → shard 1
    let t_del = service.delete(vec![0, 20]).unwrap(); // shard 0 + shard 1
    let t0 = service.insert(ins0).unwrap();
    let t1 = service.insert(ins1).unwrap();
    let e_del = t_del.wait().unwrap_err();
    let e0 = t0.wait().unwrap_err();
    let e1 = t1.wait().unwrap_err();
    for e in [&e_del, &e0, &e1] {
        match e {
            ServiceError::Machine(msg) => {
                assert!(msg.contains("write epoch aborted"), "unexpected message: {msg}");
            }
            other => panic!("expected a machine error, got {other:?}"),
        }
    }
    // The injected failure is a structured processor panic.
    assert!(
        e1.to_string().contains("ProcessorPanicked"),
        "fault must surface as ProcessorPanicked: {e1:?}"
    );

    // Shard 1 is quarantined…
    let stats = service.stats();
    assert!(stats.per_shard[1].poisoned.as_deref().unwrap_or("").contains("ProcessorPanicked"));
    assert!(stats.per_shard[0].poisoned.is_none());
    assert!(stats.per_shard[2].poisoned.is_none());

    // …reads touching it fail…
    match service.count(all).unwrap().wait() {
        Err(ServiceError::Machine(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
        other => panic!("cross-shard read over a poisoned shard must fail, got {other:?}"),
    }
    // …and writes routed to it fail fast without mutating anything.
    match service.insert(vec![Point::weighted([150, 60], 2000, 1)]).unwrap().wait() {
        Err(ServiceError::Machine(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
        other => panic!("write into a poisoned shard must fail, got {other:?}"),
    }

    // Sibling shards keep serving reads — and the aborted epoch's
    // shard-0 sub-epoch must have been rolled back: slab 0 still holds
    // exactly its initial 20 points (id 0 un-deleted, id 1000 absent).
    let s0 = service.count(slab_rect(0)).unwrap().wait().unwrap();
    assert_eq!(s0.value, 20, "healthy shard must be rolled back to its pre-epoch state");
    events.push((s0.seq, Event::Count(slab_rect(0), s0.value)));
    let r0 = service.report(slab_rect(0)).unwrap().wait().unwrap();
    assert_eq!(r0.value, (0..20).collect::<Vec<u32>>());
    events.push((r0.seq, Event::Report(slab_rect(0), r0.value.clone())));

    // Sibling shards keep serving writes.
    let w2 = vec![Point::weighted([250, 50], 3000, 4)];
    let cw = service.insert(w2.clone()).unwrap().wait().unwrap();
    events.push((cw.seq, Event::Insert(w2)));
    let s2 = service.count(slab_rect(2)).unwrap().wait().unwrap();
    assert_eq!(s2.value, 21);
    events.push((s2.seq, Event::Count(slab_rect(2), s2.value)));
    let cd = service.delete(vec![40]).unwrap().wait().unwrap();
    events.push((cd.seq, Event::Delete(vec![40])));
    let s2b = service.count(slab_rect(2)).unwrap().wait().unwrap();
    assert_eq!(s2b.value, 20);
    events.push((s2b.seq, Event::Count(slab_rect(2), s2b.value)));

    // Nothing committed contradicts the seq-ordered oracle replay.
    replay(&base, events);

    // Forensics: dismantle hands back healthy trees and the quarantine
    // reason; shutdown() would have panicked.
    let parts = service.dismantle();
    assert!(parts[0].poisoned.is_none());
    assert!(parts[1].poisoned.as_deref().unwrap().contains("ProcessorPanicked"));
    assert!(parts[2].poisoned.is_none());
    assert_eq!(parts[0].tree.len(), 20);
    assert_eq!(parts[2].tree.len(), 20); // +3000, −40
    assert!(parts[2].tree.contains_id(3000));
}

/// A processor panic during a *read* sub-batch is not poisoning: reads
/// mutate nothing, so only the requests needing the panicked run fail
/// and the shard keeps serving afterwards. (The panic is induced by
/// poisoning a write first, then verifying reads on the *other* shards
/// — plus the converse: a healthy machine read after a failed read.)
#[test]
fn reads_fail_without_poisoning_on_write_fault_elsewhere() {
    let service = start(ShardedConfig {
        max_batch: 8,
        max_delay: Duration::from_micros(200),
        ..Default::default()
    });
    service.fail_next_write_epoch(2);
    let _ = service.insert(vec![Point::weighted([250, 50], 5000, 1)]).unwrap().wait();
    // Slab 0 and slab 1 reads are untouched by shard 2's quarantine.
    assert_eq!(service.count(slab_rect(0)).unwrap().wait().unwrap().value, 20);
    assert_eq!(service.count(slab_rect(1)).unwrap().wait().unwrap().value, 20);
    let r = service.report(Rect::new([0, 0], [199, 100])).unwrap().wait().unwrap();
    assert_eq!(r.value.len(), 40);
    // The un-poisoned shards still accept writes.
    service.insert(vec![Point::weighted([50, 50], 6000, 1)]).unwrap().wait().unwrap();
    assert_eq!(service.count(slab_rect(0)).unwrap().wait().unwrap().value, 21);
    let parts = service.dismantle();
    assert!(parts[2].poisoned.is_some());
    assert_eq!(parts[0].tree.len(), 21);
}

/// The concurrency variant of the flagship test: the failing epoch is
/// submitted while eight reader threads hammer all three slabs with
/// concurrent windows. The write barrier must still abort the epoch
/// atomically — shard 0's sub-epoch rolled back, shard 1 quarantined —
/// and every read that *succeeded* must have observed either the intact
/// pre-epoch state (the epoch never commits, so there is no post-state),
/// no matter how its window interleaved with the epoch.
#[test]
fn mid_epoch_fault_amid_concurrent_reads_rolls_back_atomically() {
    let service = start(ShardedConfig {
        max_batch: 8,
        max_delay: Duration::from_micros(200),
        ..Default::default()
    });
    service.fail_next_write_epoch(1);

    let writer_done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Readers: point the three slab rects plus the full box, from
        // eight threads, while the epoch fails in the middle of it all.
        for t in 0..8u32 {
            let service = &service;
            let writer_done = &writer_done;
            s.spawn(move || {
                let rects =
                    [slab_rect(0), slab_rect(1), slab_rect(2), Rect::new([0, 0], [800, 600])];
                let mut i = t;
                // Keep reading until the writer has settled, then once more.
                loop {
                    let finished = writer_done.load(std::sync::atomic::Ordering::Relaxed);
                    let q = rects[(i % 4) as usize];
                    i += 1;
                    match service.count(q).unwrap().wait() {
                        Ok(c) => {
                            // The epoch aborts, so the store never leaves
                            // its initial state: any successful count sees
                            // exactly the initial occupancy of its rect.
                            let want = if q == rects[3] { 60 } else { 20 };
                            assert_eq!(c.value, want, "read observed a half-applied epoch");
                        }
                        Err(ServiceError::Machine(msg)) => {
                            // Reads planned after the quarantine (or raced
                            // against it) fail loudly; never wrongly.
                            assert!(msg.contains("poisoned"), "unexpected read error: {msg}");
                        }
                        Err(other) => panic!("unexpected read error: {other:?}"),
                    }
                    if finished {
                        break;
                    }
                }
            });
        }
        // The writer: one epoch spanning shard 0 (healthy) and shard 1
        // (armed), submitted mid-storm.
        let service = &service;
        let writer_done = &writer_done;
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            // Both writes touch the armed shard 1, so they abort whether
            // they coalesce into one epoch or land in two: the first
            // epoch trips the fault, a straggler hits the quarantine.
            let t_del = service.delete(vec![0, 20]).unwrap(); // shards 0 + 1
            let t_ins = service.insert(vec![Point::weighted([150, 50], 1001, 2)]).unwrap();
            let e = t_del.wait().unwrap_err();
            assert!(matches!(e, ServiceError::Machine(_)), "epoch must abort: {e:?}");
            assert!(t_ins.wait().is_err(), "no write touching the armed shard may commit");
            writer_done.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });

    // Post-mortem: exactly shard 1 is poisoned, and the healthy shards
    // hold exactly their initial points — the rollback survived the
    // concurrent read storm.
    let stats = service.stats();
    assert!(stats.per_shard[1].poisoned.as_deref().unwrap_or("").contains("ProcessorPanicked"));
    assert!(stats.per_shard[0].poisoned.is_none());
    assert!(stats.per_shard[2].poisoned.is_none());
    assert_eq!(service.count(slab_rect(0)).unwrap().wait().unwrap().value, 20);
    assert_eq!(service.count(slab_rect(2)).unwrap().wait().unwrap().value, 20);
    let parts = service.dismantle();
    assert_eq!(parts[0].tree.len(), 20, "shard 0 sub-epoch must be rolled back");
    assert!(parts[0].tree.contains_id(0), "deleted id 0 must be restored");
    assert_eq!(parts[2].tree.len(), 20);
    // Under `lock-check` (or any debug build) the tracked-lock runtime
    // watched the fault, rollback and read-storm paths above; none of
    // them may have recorded a lock-order inversion.
    let reports = ddrs::check::lock_order_reports();
    assert!(reports.is_empty(), "lock-order inversions under faults:\n{}", reports.join("\n"));
}

/// The fault hook only fires when an epoch actually reaches the armed
/// shard: epochs routed elsewhere are unaffected, and the flag stays
/// armed until consumed.
#[test]
fn armed_fault_waits_for_an_epoch_touching_its_shard() {
    let service = start(ShardedConfig {
        max_batch: 8,
        max_delay: Duration::from_micros(200),
        ..Default::default()
    });
    service.fail_next_write_epoch(2);
    // An epoch touching only shard 0 sails through.
    service.insert(vec![Point::weighted([10, 80], 7000, 1)]).unwrap().wait().unwrap();
    assert!(service.stats().per_shard[2].poisoned.is_none());
    // The next epoch touching shard 2 consumes the flag.
    let err = service.insert(vec![Point::weighted([250, 80], 7001, 1)]).unwrap().wait();
    assert!(err.is_err());
    assert!(service.stats().per_shard[2].poisoned.is_some());
    let parts = service.dismantle();
    assert!(parts[0].tree.contains_id(7000));
}
