//! Exhaustive interleaving exploration of the `Ticket`/`Resolver` waker
//! protocol, driven by `ddrs_check::explore`.
//!
//! The shared ticket state is a single mutex, so every concurrent
//! schedule is equivalent to *some* sequential interleaving of the two
//! sides' steps — which means enumerating all order-preserving merges
//! of the client's steps and the backend's steps covers the protocol
//! exhaustively, with none of the flakiness of real threads.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use ddrs_check::explore::interleavings;
use ddrs_client::{ticket, Commit, Outcome, Resolver, ServiceError, Ticket};

#[derive(Default)]
struct CountingWake(AtomicUsize);

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ClientStep {
    Poll,
    DropTicket,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum BackendStep {
    Resolve(u64),
    DropResolver,
}

/// One sequential execution of an interleaving. Returns
/// `(observed, wake_count, pending_polls_before_backend_step)`.
struct Run {
    ticket: Option<Ticket<u64>>,
    resolver: Option<Resolver<u64>>,
    counter: Arc<CountingWake>,
    waker: Waker,
    observed: Option<Outcome<u64>>,
    pending_polls: usize,
}

impl Run {
    fn new(mapped: bool) -> Run {
        let (t, r) = ticket::<u64>();
        let t = if mapped { t.map(|v| v * 2) } else { t };
        let counter = Arc::new(CountingWake::default());
        let waker = Waker::from(Arc::clone(&counter));
        Run { ticket: Some(t), resolver: Some(r), counter, waker, observed: None, pending_polls: 0 }
    }

    fn client(&mut self, step: ClientStep) {
        match step {
            ClientStep::Poll => {
                // Polling after Ready was taken is a contract violation,
                // so a redeemed (or dropped) ticket skips further polls.
                if self.observed.is_some() {
                    return;
                }
                let Some(t) = self.ticket.as_mut() else { return };
                let mut cx = Context::from_waker(&self.waker);
                match Pin::new(t).poll(&mut cx) {
                    Poll::Ready(out) => self.observed = Some(out),
                    Poll::Pending => self.pending_polls += 1,
                }
            }
            ClientStep::DropTicket => drop(self.ticket.take()),
        }
    }

    fn backend(&mut self, step: BackendStep) {
        match step {
            BackendStep::Resolve(v) => {
                if let Some(r) = self.resolver.take() {
                    r.resolve(Ok(Commit { value: v, seq: 1 }));
                }
            }
            BackendStep::DropResolver => drop(self.resolver.take()),
        }
    }

    fn wakes(&self) -> usize {
        self.counter.0.load(Ordering::SeqCst)
    }
}

fn explore_protocol(
    client: &[ClientStep],
    backend: &[BackendStep],
    mapped: bool,
    check: impl Fn(&Run, /* polled_before_backend: */ bool, &[usize]),
) {
    for order in interleavings(&[client.len(), backend.len()]) {
        let mut run = Run::new(mapped);
        let (mut ci, mut bi) = (0usize, 0usize);
        let mut polled_before_backend = false;
        for &thread in &order {
            if thread == 0 {
                run.client(client[ci]);
                ci += 1;
            } else {
                // Our scenarios use exactly one backend step; remember
                // whether any poll was left pending when it fired.
                polled_before_backend = run.pending_polls > 0 && run.observed.is_none();
                run.backend(backend[bi]);
                bi += 1;
            }
        }
        check(&run, polled_before_backend, &order);
    }
}

#[test]
fn resolve_against_every_poll_schedule() {
    let client = [ClientStep::Poll, ClientStep::Poll, ClientStep::Poll];
    let backend = [BackendStep::Resolve(21)];
    explore_protocol(&client, &backend, false, |run, polled_before, order| {
        // A poll that runs after resolution redeems the outcome; if
        // every poll preceded the resolve, the value is still waiting.
        let expected = Ok(Commit { value: 21, seq: 1 });
        if let Some(out) = &run.observed {
            assert_eq!(*out, expected, "schedule {order:?}");
        }
        // The waker fires exactly once, and only if a poll registered
        // it before the backend resolved.
        assert_eq!(run.wakes(), usize::from(polled_before), "schedule {order:?}");
        // The ticket (if unredeemed) is still redeemable afterwards.
        if run.observed.is_none() {
            let t = run.ticket.as_ref().expect("ticket intact");
            assert!(t.is_done(), "schedule {order:?}");
        }
    });
}

#[test]
fn resolver_drop_against_every_poll_schedule() {
    let client = [ClientStep::Poll, ClientStep::Poll];
    let backend = [BackendStep::DropResolver];
    explore_protocol(&client, &backend, false, |run, polled_before, order| {
        if let Some(out) = &run.observed {
            assert_eq!(*out, Err(ServiceError::ShuttingDown), "schedule {order:?}");
        }
        assert_eq!(run.wakes(), usize::from(polled_before), "schedule {order:?}");
    });
}

#[test]
fn ticket_drop_against_resolve_never_panics() {
    let client = [ClientStep::Poll, ClientStep::DropTicket];
    let backend = [BackendStep::Resolve(7)];
    explore_protocol(&client, &backend, false, |run, _, order| {
        // Nothing to observe once the ticket is gone — the point is
        // that no schedule panics and the waker fires at most once.
        assert!(run.wakes() <= 1, "schedule {order:?}");
    });
}

#[test]
fn mapped_ticket_projects_under_every_schedule() {
    let client = [ClientStep::Poll, ClientStep::Poll];
    let backend = [BackendStep::Resolve(21)];
    explore_protocol(&client, &backend, true, |run, polled_before, order| {
        if let Some(out) = &run.observed {
            assert_eq!(*out, Ok(Commit { value: 42, seq: 1 }), "schedule {order:?}");
        }
        assert_eq!(run.wakes(), usize::from(polled_before), "schedule {order:?}");
    });
}
