//! Property-based tests over the core invariants.

use proptest::prelude::*;

use ddrs::prelude::*;
use ddrs::rangetree::{Rect, Sum};

/// Generate a small 2-d point set with unique ids and bounded coords.
fn arb_points(max_n: usize, side: i64) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec((0..side, 0..side, 1u64..50), 1..max_n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, w))| Point::weighted([x, y], i as u32, w))
            .collect()
    })
}

fn arb_query(side: i64) -> impl Strategy<Value = Rect<2>> {
    (0..side, 0..side, 0..side, 0..side)
        .prop_map(|(a, b, c, d)| Rect::new([a.min(b), c.min(d)], [a.max(b), c.max(d)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sequential range tree equals brute force on arbitrary inputs.
    #[test]
    fn seq_tree_matches_brute(pts in arb_points(120, 64), q in arb_query(64)) {
        let tree = SeqRangeTree::build(&pts).unwrap();
        let oracle = BruteForce::new(pts);
        prop_assert_eq!(tree.count(&q), oracle.count(&q));
        prop_assert_eq!(tree.report(&q), oracle.report(&q));
        prop_assert_eq!(tree.aggregate(&Sum, &q), oracle.sum_weights(&q));
    }

    /// The k-d tree equals brute force on arbitrary inputs.
    #[test]
    fn kd_tree_matches_brute(pts in arb_points(120, 64), q in arb_query(64)) {
        let tree = KdTree::build(pts.clone());
        let oracle = BruteForce::new(pts);
        prop_assert_eq!(tree.count(&q), oracle.count(&q));
        prop_assert_eq!(tree.report(&q), oracle.report(&q));
    }

    /// The layered tree equals brute force on arbitrary inputs.
    #[test]
    fn layered_tree_matches_brute(pts in arb_points(120, 64), q in arb_query(64)) {
        let tree = LayeredRangeTree2d::build(&pts);
        let oracle = BruteForce::new(pts);
        prop_assert_eq!(tree.count(&q), oracle.count(&q));
        prop_assert_eq!(tree.report(&q), oracle.report(&q));
    }

    /// The dominance (inclusion–exclusion) structure equals brute force
    /// for counting and weighted sums on arbitrary inputs.
    #[test]
    fn dominance_matches_brute(pts in arb_points(120, 64), q in arb_query(64)) {
        let dom = WeightedDominance2d::build(&pts);
        let oracle = BruteForce::new(pts);
        prop_assert_eq!(dom.count(&q), oracle.count(&q));
        prop_assert_eq!(dom.sum_weights(&q), oracle.sum_weights(&q));
    }
}

proptest! {
    // Distributed runs spawn threads per case; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed tree equals brute force on arbitrary inputs,
    /// machine sizes and query batches.
    #[test]
    fn dist_tree_matches_brute(
        pts in arb_points(80, 48),
        queries in prop::collection::vec(arb_query(48), 1..12),
        p_log in 0u32..3,
    ) {
        let machine = Machine::new(1 << p_log).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let oracle = BruteForce::new(pts);
        let counts = tree.count_batch(&machine, &queries);
        let reports = tree.report_batch(&machine, &queries);
        for (i, q) in queries.iter().enumerate() {
            prop_assert_eq!(counts[i], oracle.count(q));
            prop_assert_eq!(&reports[i], &oracle.report(q));
        }
    }

    /// Report-mode output is always balanced: no processor holds more
    /// than ⌈k/p⌉ pairs.
    #[test]
    fn report_output_balance(
        pts in arb_points(100, 32),
        queries in prop::collection::vec(arb_query(32), 1..10),
    ) {
        let p = 4;
        let machine = Machine::new(p).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let shares = tree.report_batch_raw(&machine, &queries);
        let k: usize = shares.iter().map(Vec::len).sum();
        let cap = k.div_ceil(p);
        for (rank, s) in shares.iter().enumerate() {
            prop_assert!(s.len() <= cap, "rank {} has {} > ⌈k/p⌉ = {}", rank, s.len(), cap);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structure invariants: hat is O(s/p)-sized and forest shards are
    /// balanced for arbitrary point sets.
    #[test]
    fn theorem1_size_bounds(pts in arb_points(200, 1024)) {
        let p = 4;
        let machine = Machine::new(p).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let rep = tree.structure_report();
        let share = (rep.total_nodes / p as u64).max(1);
        prop_assert!(rep.hat_nodes <= 8 * share,
            "hat {} vs s/p {}", rep.hat_nodes, share);
        for &f in &rep.forest_nodes {
            prop_assert!(f <= 8 * share, "shard {} vs s/p {}", f, share);
        }
    }
}
