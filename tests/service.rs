//! Serving-layer integration tests: batch serializability under
//! concurrent clients and interleaved updates, shutdown under load,
//! deadlines, backpressure and the zero-run short-circuit pins.
//!
//! The central instrument is a *sequential oracle*: a naive, obviously
//! correct model of the store (a flat vector of points). Every committed
//! response the service hands out carries a commit sequence number;
//! replaying all committed requests in seq order through the oracle must
//! reproduce every response exactly. That is the service's
//! serializability contract — whatever coalescing, batching and epoch
//! merging happened inside, the observable history is equivalent to some
//! serial one, and the service tells us which.

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

use ddrs::prelude::*;
use ddrs::rangetree::{BuildError, PAD_ID};
use ddrs::service::ServiceError;

fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
    range
        .map(|i| {
            Point::weighted(
                [((i * 193) % 777) as i64, ((i * 71) % 555) as i64],
                i,
                1 + i as u64 % 5,
            )
        })
        .collect()
}

/// A tiny deterministic generator (splitmix64) so client threads can
/// produce varied-but-reproducible query boxes without sharing state.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn rect(&mut self) -> Rect<2> {
        let x = (self.next() % 700) as i64;
        let y = (self.next() % 500) as i64;
        let w = (self.next() % 400) as i64;
        let h = (self.next() % 300) as i64;
        Rect::new([x, y], [x + w, y + h])
    }
}

/// The sequential oracle: a flat, obviously correct model of the store
/// with the same validation rules as `DynamicDistRangeTree`.
struct Oracle {
    pts: Vec<Point<2>>,
    ids: HashSet<u32>,
}

impl Oracle {
    fn new(initial: &[Point<2>]) -> Self {
        Oracle { pts: initial.to_vec(), ids: initial.iter().map(|p| p.id).collect() }
    }

    fn count(&self, q: &Rect<2>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    fn aggregate(&self, q: &Rect<2>) -> Option<u64> {
        self.pts.iter().filter(|p| q.contains(p)).map(|p| p.weight).reduce(|a, b| a + b)
    }

    fn report(&self, q: &Rect<2>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn insert(&mut self, batch: &[Point<2>]) -> Result<(), BuildError> {
        let mut seen = HashSet::new();
        for p in batch {
            if p.id == PAD_ID {
                return Err(BuildError::ReservedId);
            }
            if self.ids.contains(&p.id) || !seen.insert(p.id) {
                return Err(BuildError::DuplicateId(p.id));
            }
        }
        self.ids.extend(seen);
        self.pts.extend_from_slice(batch);
        Ok(())
    }

    fn delete(&mut self, ids: &[u32]) {
        let dead: HashSet<u32> = ids.iter().copied().collect();
        self.pts.retain(|p| !dead.contains(&p.id));
        self.ids.retain(|id| !dead.contains(id));
    }
}

/// One committed request as observed by a client, for seq-ordered replay.
enum Event {
    Count(Rect<2>, u64),
    Aggregate(Rect<2>, Option<u64>),
    Report(Rect<2>, Vec<u32>),
    Insert(Vec<Point<2>>),
    Delete(Vec<u32>),
}

/// Replay committed events in commit order through the oracle, asserting
/// every observed response.
fn replay(initial: &[Point<2>], mut events: Vec<(u64, Event)>) {
    events.sort_by_key(|(seq, _)| *seq);
    let mut oracle = Oracle::new(initial);
    for (i, w) in events.windows(2).enumerate() {
        assert_ne!(w[0].0, w[1].0, "duplicate commit seq at replay index {i}");
    }
    for (seq, ev) in events {
        match ev {
            Event::Count(q, observed) => {
                assert_eq!(oracle.count(&q), observed, "count diverged at seq {seq}")
            }
            Event::Aggregate(q, observed) => {
                assert_eq!(oracle.aggregate(&q), observed, "aggregate diverged at seq {seq}")
            }
            Event::Report(q, observed) => {
                assert_eq!(oracle.report(&q), observed, "report diverged at seq {seq}")
            }
            Event::Insert(batch) => {
                oracle.insert(&batch).unwrap_or_else(|e| {
                    panic!("committed insert rejected by oracle at seq {seq}: {e}")
                });
            }
            Event::Delete(ids) => oracle.delete(&ids),
        }
    }
}

fn start_service(
    p: usize,
    initial: &[Point<2>],
    cfg: ServiceConfig,
) -> ddrs::service::Service<Sum, 2> {
    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(32);
    if !initial.is_empty() {
        tree.insert_batch(&machine, initial).unwrap();
    }
    ddrs::service::Service::start(machine, tree, Sum, cfg)
}

/// 8 query-only client threads; every response must match the oracle (no
/// writes, so the oracle never changes), and coalescing must be visible
/// in the stats.
#[test]
fn concurrent_readers_match_oracle() {
    let initial = pts(0..300);
    let service = start_service(
        4,
        &initial,
        ServiceConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(300),
            ..Default::default()
        },
    );
    let events: Mutex<Vec<(u64, Event)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let service = &service;
            let events = &events;
            s.spawn(move || {
                let mut rng = TestRng(t * 7919 + 1);
                let mut local = Vec::new();
                for i in 0..40 {
                    let q = rng.rect();
                    match i % 3 {
                        0 => {
                            let c = service.count(q).unwrap().wait().unwrap();
                            local.push((c.seq, Event::Count(q, c.value)));
                        }
                        1 => {
                            let a = service.aggregate(q).unwrap().wait().unwrap();
                            local.push((a.seq, Event::Aggregate(q, a.value)));
                        }
                        _ => {
                            let r = service.report(q).unwrap().wait().unwrap();
                            local.push((r.seq, Event::Report(q, r.value)));
                        }
                    }
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 8 * 40);
    assert_eq!(stats.queries_coalesced, 8 * 40);
    assert!(stats.machine.runs as usize <= 8 * 40, "never more runs than queries");
    replay(&initial, events.into_inner().unwrap());
}

/// The flagship test: 8 threads mixing reads, inserts and deletes.
/// Every committed response must equal the sequential oracle replayed in
/// the service's reported commit order — across write epochs.
#[test]
fn interleaved_updates_are_batch_serializable() {
    let initial = pts(0..200);
    let service = start_service(
        4,
        &initial,
        ServiceConfig {
            max_batch: 24,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    );
    let events: Mutex<Vec<(u64, Event)>> = Mutex::new(Vec::new());
    let rejections: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let service = &service;
            let events = &events;
            let rejections = &rejections;
            s.spawn(move || {
                let mut rng = TestRng(t as u64 * 6151 + 11);
                let mut local = Vec::new();
                // Per-thread private id range keeps inserts conflict-free;
                // conflicts are exercised separately below.
                let base = 10_000 + t * 1_000;
                let mut owned: Vec<u32> = Vec::new();
                let mut next_id = base;
                for i in 0u32..36 {
                    if i % 6 == 5 {
                        // Insert a small batch of fresh points.
                        let batch: Vec<Point<2>> = (0..4)
                            .map(|k| {
                                let id = next_id + k;
                                Point::weighted(
                                    [(rng.next() % 777) as i64, (rng.next() % 555) as i64],
                                    id,
                                    1 + id as u64 % 7,
                                )
                            })
                            .collect();
                        next_id += 4;
                        let c = service.insert(batch.clone()).unwrap().wait().unwrap();
                        owned.extend(batch.iter().map(|p| p.id));
                        local.push((c.seq, Event::Insert(batch)));
                    } else if i % 9 == 8 && owned.len() >= 3 {
                        // Delete some of this thread's own earlier inserts
                        // (their commits happened-before this submission).
                        let victims: Vec<u32> = owned.drain(..3).collect();
                        let c = service.delete(victims.clone()).unwrap().wait().unwrap();
                        local.push((c.seq, Event::Delete(victims)));
                    } else {
                        let q = rng.rect();
                        match i % 3 {
                            0 => {
                                let c = service.count(q).unwrap().wait().unwrap();
                                local.push((c.seq, Event::Count(q, c.value)));
                            }
                            1 => {
                                let a = service.aggregate(q).unwrap().wait().unwrap();
                                local.push((a.seq, Event::Aggregate(q, a.value)));
                            }
                            _ => {
                                let r = service.report(q).unwrap().wait().unwrap();
                                local.push((r.seq, Event::Report(q, r.value)));
                            }
                        }
                    }
                }
                // A deliberate conflict: everyone races to insert id 999.
                match service.insert(vec![Point::weighted([1, 1], 999, 1)]).unwrap().wait() {
                    Ok(c) => {
                        local.push((c.seq, Event::Insert(vec![Point::weighted([1, 1], 999, 1)])))
                    }
                    Err(e) => rejections.lock().unwrap().push(e),
                }
                events.lock().unwrap().extend(local);
            });
        }
    });
    // Exactly one racer wins id 999; the rest are sequential rejections.
    let rejections = rejections.into_inner().unwrap();
    assert_eq!(rejections.len(), 7, "one insert of id 999 must win");
    for e in &rejections {
        assert_eq!(*e, ServiceError::Rejected(BuildError::DuplicateId(999)));
    }
    let stats = service.stats();
    assert!(stats.write_epochs >= 1, "updates must have applied in epochs");
    let (machine, tree) = service.shutdown();
    let events = events.into_inner().unwrap();
    // The final store must agree with the oracle end-state, too.
    let mut oracle = Oracle::new(&initial);
    let mut ordered: Vec<&(u64, Event)> = events.iter().collect();
    ordered.sort_by_key(|(seq, _)| *seq);
    for (_, ev) in ordered {
        match ev {
            Event::Insert(batch) => oracle.insert(batch).unwrap(),
            Event::Delete(ids) => oracle.delete(ids),
            _ => {}
        }
    }
    assert_eq!(tree.len(), oracle.pts.len());
    let everything = Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]);
    assert_eq!(tree.count_batch(&machine, &[everything])[0], oracle.pts.len() as u64);
    replay(&initial, events);
}

/// Shutdown under load: clients keep submitting while another thread
/// begins the shutdown. Every accepted ticket resolves (drain), every
/// post-shutdown submission fails fast, and nothing hangs.
#[test]
fn shutdown_under_load_drains_accepted_work() {
    let initial = pts(0..150);
    let service = start_service(
        2,
        &initial,
        ServiceConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    );
    let accepted: Mutex<Vec<ddrs::service::Ticket<u64>>> = Mutex::new(Vec::new());
    let shut_out = Mutex::new(0u64);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let service = &service;
            let accepted = &accepted;
            let shut_out = &shut_out;
            s.spawn(move || {
                let mut rng = TestRng(t + 100);
                for _ in 0..80 {
                    match service.count(rng.rect()) {
                        Ok(ticket) => accepted.lock().unwrap().push(ticket),
                        Err(SubmitError::ShutDown) => {
                            *shut_out.lock().unwrap() += 1;
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            });
        }
        let service = &service;
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            service.begin_shutdown();
        });
    });
    let accepted = accepted.into_inner().unwrap();
    let shut_out = shut_out.into_inner().unwrap();
    assert_eq!(accepted.len() as u64 + shut_out, 6 * 80, "every submission accounted for");
    let oracle = Oracle::new(&initial);
    let mut served = 0u64;
    for ticket in accepted {
        // Drain mode: accepted work is served, not rejected.
        let ddrs::prelude::WaitFor::Ready(c) = ticket.wait_for(Duration::from_secs(10)) else {
            panic!("drain left a ticket hanging");
        };
        let c = c.expect("drained ticket must resolve successfully");
        served += 1;
        assert!(c.value <= oracle.pts.len() as u64);
    }
    let (_, tree) = service.shutdown();
    assert_eq!(tree.len(), 150, "read-only load leaves the store unchanged");
    assert!(served > 0);
}

/// Abort rejects queued work with ShuttingDown instead of serving it.
#[test]
fn abort_rejects_pending_requests() {
    let initial = pts(0..64);
    // A huge delay window so submissions are still queued when we abort.
    let service = start_service(
        2,
        &initial,
        ServiceConfig { max_batch: 1024, max_delay: Duration::from_secs(5), queue_capacity: 1024 },
    );
    let tickets: Vec<_> =
        (0..20).map(|_| service.count(Rect::new([0, 0], [800, 600])).unwrap()).collect();
    let (_, tree) = service.abort();
    for t in tickets {
        assert_eq!(t.wait(), Err(ServiceError::ShuttingDown));
    }
    assert_eq!(tree.len(), 64);
}

/// A request whose deadline passes while queued is failed at dispatch
/// time and never reaches the machine.
#[test]
fn queued_deadline_expires_without_touching_the_machine() {
    let initial = pts(0..64);
    let service = start_service(
        2,
        &initial,
        ServiceConfig {
            max_batch: 1024,
            max_delay: Duration::from_millis(80),
            ..Default::default()
        },
    );
    // Deadline far shorter than the group-commit window, and no other
    // traffic to fill the batch early.
    let doomed = service
        .count_within(Rect::new([0, 0], [800, 600]), Some(Duration::from_millis(1)))
        .unwrap();
    assert_eq!(doomed.wait(), Err(ServiceError::DeadlineExpired));
    let stats = service.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.machine.runs, 0, "expired request must not reach the machine");
    // The service keeps serving afterwards.
    assert_eq!(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().value, 64);
}

/// Admission control: a full queue rejects with Overloaded and recovers
/// once drained.
#[test]
fn backpressure_rejects_beyond_capacity() {
    let initial = pts(0..64);
    let service = start_service(
        2,
        &initial,
        ServiceConfig { max_batch: 1024, max_delay: Duration::from_millis(300), queue_capacity: 4 },
    );
    let q = Rect::new([0, 0], [800, 600]);
    let mut tickets = Vec::new();
    let mut overloaded = 0;
    // The scheduler holds dispatch for 300ms, so these all hit the queue.
    for _ in 0..6 {
        match service.count(q) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded { depth }) => {
                assert_eq!(depth, 4);
                overloaded += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(tickets.len(), 4, "exactly queue_capacity submissions are admitted");
    assert_eq!(overloaded, 2);
    for t in tickets {
        assert_eq!(t.wait().unwrap().value, 64);
    }
    let stats = service.stats();
    assert_eq!(stats.overloaded, 2);
    // Queue drained: admission recovers.
    assert!(service.count(q).is_ok());
}

/// The zero-run short-circuit pin: queries against an empty store and
/// empty write batches must cost no machine runs and no dispatches —
/// identical to the engine- and store-level short-circuits.
#[test]
fn empty_store_and_empty_writes_cost_zero_runs() {
    let service = start_service(
        2,
        &[],
        ServiceConfig { max_batch: 8, max_delay: Duration::from_micros(100), ..Default::default() },
    );
    let q = Rect::new([0, 0], [800, 600]);
    assert_eq!(service.count(q).unwrap().wait().unwrap().value, 0);
    assert_eq!(service.aggregate(q).unwrap().wait().unwrap().value, None);
    assert!(service.report(q).unwrap().wait().unwrap().value.is_empty());
    // Empty write batches are committed no-ops.
    service.insert(Vec::new()).unwrap().wait().unwrap();
    service.delete(Vec::new()).unwrap().wait().unwrap();
    let stats = service.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.machine.runs, 0, "empty-store traffic must not run the machine");
    assert_eq!(stats.dispatches, 0, "short-circuited batches are not dispatches");
    assert_eq!(stats.write_epochs, 0, "empty writes are not epochs");
    assert_eq!(stats.machine.supersteps, 0);
}

/// Deterministic coalescing: pre-staged traffic exactly filling one
/// batch window is served in a single fused dispatch.
#[test]
fn a_full_window_coalesces_into_one_dispatch() {
    let initial = pts(0..128);
    let service = start_service(
        4,
        &initial,
        ServiceConfig { max_batch: 32, max_delay: Duration::from_secs(2), ..Default::default() },
    );
    let mut rng = TestRng(42);
    let tickets: Vec<_> = (0..32)
        .map(|i| match i % 3 {
            0 => {
                let q = rng.rect();
                let t = service.count(q).unwrap();
                (q, Some(t), None, None)
            }
            1 => {
                let q = rng.rect();
                (q, None, Some(service.aggregate(q).unwrap()), None)
            }
            _ => {
                let q = rng.rect();
                (q, None, None, Some(service.report(q).unwrap()))
            }
        })
        .collect();
    let oracle = Oracle::new(&initial);
    for (q, c, a, r) in tickets {
        if let Some(t) = c {
            assert_eq!(t.wait().unwrap().value, oracle.count(&q));
        }
        if let Some(t) = a {
            assert_eq!(t.wait().unwrap().value, oracle.aggregate(&q));
        }
        if let Some(t) = r {
            assert_eq!(t.wait().unwrap().value, oracle.report(&q));
        }
    }
    let stats = service.stats();
    assert_eq!(stats.dispatches, 1, "32 queries, one batch window, one dispatch");
    assert_eq!(stats.machine.runs, 1, "one dispatch is one fused machine run");
    assert_eq!(stats.mean_batch_size(), 32.0);
    assert_eq!(stats.coalescing_factor(), 32.0);
}
