//! Cross-implementation integration tests: the distributed range tree,
//! the sequential range tree, the baselines and the brute-force oracle
//! must agree on every query, for every machine size and dimension.

use ddrs::prelude::*;
use ddrs::rangetree::{MaxWeight, Rect, Sum};
use ddrs::workloads::{PointDistribution, QueryDistribution};

fn check_all_modes<const D: usize>(p: usize, pts: Vec<Point<D>>, queries: Vec<Rect<D>>) {
    let machine = Machine::new(p).unwrap();
    let dist = DistRangeTree::<D>::build(&machine, &pts).unwrap();
    let seq = SeqRangeTree::build(&pts).unwrap();
    let oracle = BruteForce::new(pts);

    let counts = dist.count_batch(&machine, &queries);
    let sums = dist.aggregate_batch(&machine, Sum, &queries);
    let maxes = dist.aggregate_batch(&machine, MaxWeight, &queries);
    let reports = dist.report_batch(&machine, &queries);

    for (i, q) in queries.iter().enumerate() {
        let want_ids = oracle.report(q);
        assert_eq!(counts[i], want_ids.len() as u64, "count p={p} D={D} q={q:?}");
        assert_eq!(counts[i], seq.count(q), "dist vs seq count p={p} q={q:?}");
        assert_eq!(reports[i], want_ids, "report p={p} D={D} q={q:?}");
        assert_eq!(reports[i], seq.report(q), "dist vs seq report p={p} q={q:?}");
        assert_eq!(sums[i], oracle.sum_weights(q), "sum p={p} D={D} q={q:?}");
        assert_eq!(sums[i], seq.aggregate(&Sum, q), "dist vs seq sum p={p} q={q:?}");
        let want_max = oracle.points().iter().filter(|pt| q.contains(pt)).map(|pt| pt.weight).max();
        assert_eq!(maxes[i], want_max, "max p={p} D={D} q={q:?}");
    }
}

fn workload<const D: usize>(
    seed: u64,
    n: usize,
    dist: PointDistribution,
    mix: QueryDistribution,
    nq: usize,
) -> (Vec<Point<D>>, Vec<Rect<D>>) {
    let pts = WorkloadBuilder::new(seed, n).points::<D>(dist);
    let queries = QueryWorkload::from_points(&pts, seed ^ 0xabcd).queries(mix, nq);
    (pts, queries)
}

#[test]
fn uniform_2d_all_machine_sizes() {
    for p in [1, 2, 4, 8] {
        let (pts, qs) = workload::<2>(
            1,
            500,
            PointDistribution::UniformCube { side: 4096 },
            QueryDistribution::Selectivity { fraction: 0.05 },
            40,
        );
        check_all_modes(p, pts, qs);
    }
}

#[test]
fn clustered_2d() {
    let (pts, qs) = workload::<2>(
        2,
        700,
        PointDistribution::Clusters { side: 1 << 16, k: 6, spread: 512 },
        QueryDistribution::Selectivity { fraction: 0.02 },
        50,
    );
    check_all_modes(4, pts, qs);
}

#[test]
fn grid_2d_duplicate_heavy() {
    let (pts, qs) = workload::<2>(
        3,
        625,
        PointDistribution::Grid { side: 25 },
        QueryDistribution::Selectivity { fraction: 0.1 },
        40,
    );
    check_all_modes(4, pts, qs);
}

#[test]
fn diagonal_correlated_2d() {
    let (pts, qs) = workload::<2>(
        4,
        600,
        PointDistribution::Diagonal { side: 1 << 15, jitter: 64 },
        QueryDistribution::Selectivity { fraction: 0.05 },
        40,
    );
    check_all_modes(8, pts, qs);
}

#[test]
fn one_dimensional() {
    for p in [1, 4] {
        let (pts, qs) = workload::<1>(
            5,
            400,
            PointDistribution::UniformCube { side: 1 << 20 },
            QueryDistribution::Selectivity { fraction: 0.1 },
            50,
        );
        check_all_modes(p, pts, qs);
    }
}

#[test]
fn three_dimensional() {
    for p in [2, 8] {
        let (pts, qs) = workload::<3>(
            6,
            300,
            PointDistribution::UniformCube { side: 1 << 10 },
            QueryDistribution::Selectivity { fraction: 0.05 },
            30,
        );
        check_all_modes(p, pts, qs);
    }
}

#[test]
fn hotspot_queries_still_correct() {
    // All queries funnel into one region: the congestion-copy path.
    let (pts, qs) = workload::<2>(
        7,
        800,
        PointDistribution::UniformCube { side: 1 << 16 },
        QueryDistribution::HotSpot { region: 0.05, fraction: 0.5 },
        60,
    );
    check_all_modes(8, pts, qs);
}

#[test]
fn point_probes() {
    let pts =
        WorkloadBuilder::new(8, 512).points::<2>(PointDistribution::UniformCube { side: 256 });
    // Probe actual points (guaranteed hits) and random spots.
    let mut qs: Vec<Rect<2>> =
        pts.iter().step_by(17).map(|p| Rect::new(p.coords, p.coords)).collect();
    qs.extend(QueryWorkload::from_points(&pts, 9).queries(QueryDistribution::PointProbe, 30));
    check_all_modes(4, pts, qs);
}

#[test]
fn slabs_high_fanout() {
    let (pts, qs) = workload::<2>(
        10,
        600,
        PointDistribution::UniformCube { side: 1 << 14 },
        QueryDistribution::Slab { dim: 0, fraction: 0.02 },
        40,
    );
    check_all_modes(4, pts, qs);
}

#[test]
fn tiny_inputs() {
    // n barely above p; padding dominates.
    for n in [3usize, 5, 9, 17] {
        let pts: Vec<Point<2>> =
            (0..n).map(|i| Point::new([i as i64, (n - i) as i64], i as u32)).collect();
        let qs = vec![
            Rect::new([0, 0], [n as i64, n as i64]),
            Rect::new([1, 1], [2, 2]),
            Rect::new([n as i64 * 2, 0], [n as i64 * 3, 1]),
        ];
        check_all_modes(4, pts, qs);
    }
}

#[test]
fn kd_and_layered_agree_with_range_tree() {
    let (pts, qs) = workload::<2>(
        11,
        900,
        PointDistribution::UniformCube { side: 1 << 12 },
        QueryDistribution::Selectivity { fraction: 0.03 },
        60,
    );
    let seq = SeqRangeTree::build(&pts).unwrap();
    let kd = KdTree::build(pts.clone());
    let layered = LayeredRangeTree2d::build(&pts);
    let rep = ReplicatedRangeTree::build(4, &pts).unwrap();
    let rep_counts = rep.count_batch(&qs);
    for (i, q) in qs.iter().enumerate() {
        let want = seq.report(q);
        assert_eq!(kd.report(q), want, "kd vs seq {q:?}");
        assert_eq!(layered.report(q), want, "layered vs seq {q:?}");
        assert_eq!(rep_counts[i], want.len() as u64, "replicated vs seq {q:?}");
    }
}
