//! Span-lifecycle properties of the request tracer: every ticket's span
//! forms a balanced tree of stage slices (each Begin has its End), the
//! lifecycle stages of a single-op request are contiguous and ordered
//! (queue → window → machine-run → merge → resolve), and the attributed
//! stage time never exceeds the end-to-end wall time — under 8-thread
//! sharded stress and under a mid-epoch injected fault (the quarantined
//! shard's spans close with the error tag; none leak an open slice).
//!
//! All tests no-op when recording is compiled out (release build
//! without `--features trace`): `Trace::capture` is empty there by
//! contract, which `tests/trace_gating.rs` pins separately.

use std::sync::Mutex;
use std::time::Duration;

use ddrs::prelude::*;
use ddrs::trace::{enabled, Event, EventKind, SpanId, Stage, Trace};

fn machines(s: usize, p: usize) -> Vec<Machine> {
    (0..s).map(|_| Machine::new(p).unwrap()).collect()
}

/// 60 points in three x-slabs, matching the range bounds used below.
fn initial() -> Vec<Point<2>> {
    (0..60u32)
        .map(|i| {
            let slab = (i / 20) as i64;
            Point::weighted([slab * 100 + (i % 20) as i64 * 5, (i % 20) as i64], i, 1)
        })
        .collect()
}

fn start(shards: usize) -> ShardedService<Sum, 2> {
    let bounds = match shards {
        2 => vec![100],
        _ => vec![100, 200],
    };
    ShardedService::start(
        machines(shards, 2),
        16,
        &initial(),
        Sum,
        PartitionPolicy::Range { bounds },
        ShardedConfig {
            max_batch: 24,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Every stage slice that opens also closes (order-insensitively, so a
/// Begin/End pair sharing one nanosecond tick cannot false-positive).
fn assert_balanced(span: SpanId, events: &[Event]) {
    assert!(!events.is_empty(), "span {span:?} recorded no events");
    for stage in Stage::ALL {
        let begins =
            events.iter().filter(|e| e.stage == stage && e.kind == EventKind::Begin).count();
        let ends = events.iter().filter(|e| e.stage == stage && e.kind == EventKind::End).count();
        assert_eq!(
            begins, ends,
            "span {span:?}: {begins} Begin vs {ends} End for {stage:?}: {events:#?}"
        );
    }
}

/// For a single-op span: stages appear in lifecycle order and do not
/// overlap — each stage's Begin is at or after the previous stage's
/// End — and the summed stage time fits inside the end-to-end window.
fn assert_contiguous_single_op(span: SpanId, events: &[Event]) {
    let mut prev_end = 0u64;
    let mut attributed = 0u64;
    for stage in Stage::ALL {
        let begin = events.iter().find(|e| e.stage == stage && e.kind == EventKind::Begin);
        let end = events.iter().find(|e| e.stage == stage && e.kind == EventKind::End);
        match (begin, end) {
            (Some(b), Some(e)) => {
                assert!(
                    b.t_ns >= prev_end,
                    "span {span:?}: {stage:?} opens at {} before the previous stage closed \
                     at {prev_end}",
                    b.t_ns
                );
                assert!(b.t_ns <= e.t_ns, "span {span:?}: {stage:?} closes before it opens");
                attributed += e.t_ns - b.t_ns;
                prev_end = e.t_ns;
            }
            (None, None) => {}
            _ => panic!("span {span:?}: half-open {stage:?} slice"),
        }
    }
    let first = events.iter().map(|e| e.t_ns).min().unwrap();
    let last = events.iter().map(|e| e.t_ns).max().unwrap();
    assert!(
        attributed <= last - first,
        "span {span:?}: attributed {attributed}ns exceeds end-to-end {}ns",
        last - first
    );
}

/// 8 closed-loop threads hammer a two-shard service with single-op
/// reads (narrow and cross-shard), writes, and multi-op requests; every
/// resulting span must be balanced, and every single-op span contiguous.
#[test]
fn spans_balance_under_threaded_shard_stress() {
    if !enabled() {
        return;
    }
    let service = start(2);
    // (span, single_op) for every ticket any thread produced.
    let spans: Mutex<Vec<(SpanId, bool)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let service = &service;
            let spans = &spans;
            s.spawn(move || {
                let mut mine = Vec::new();
                for i in 0..12u32 {
                    // Narrow (single-shard) and wide (cross-shard) reads.
                    let narrow = Rect::new([0, 0], [90, 100]);
                    let wide = Rect::new([0, 0], [300, 100]);
                    let c = service.count(if i % 2 == 0 { narrow } else { wide }).unwrap();
                    mine.push((c.span(), true));
                    c.wait().unwrap();
                    let r = service.report(wide).unwrap();
                    mine.push((r.span(), true));
                    r.wait().unwrap();
                    // A write with thread-disjoint fresh ids.
                    let id = 1000 + t * 1000 + i;
                    let w = service
                        .insert(vec![Point::weighted([(id % 290) as i64, 50], id, 1)])
                        .unwrap();
                    mine.push((w.span(), true));
                    w.wait().unwrap();
                }
                // Multi-op requests: sibling ops share the outer span.
                for _ in 0..4 {
                    let mut req = Request::new();
                    let h1 = req.count(Rect::new([0, 0], [300, 100]));
                    let h2 = req.count(Rect::new([120, 0], [180, 100]));
                    let _h3 = req.report(Rect::new([0, 0], [50, 100]));
                    let ticket = service.submit(req).unwrap();
                    mine.push((ticket.span(), false));
                    let resp = ticket.wait().unwrap().value;
                    assert!(resp.count(h1) >= resp.count(h2));
                }
                spans.lock().unwrap().extend(mine);
            });
        }
    });
    service.shutdown();

    let trace = Trace::capture();
    let spans = spans.into_inner().unwrap();
    assert!(!spans.is_empty());
    for (span, single_op) in spans {
        let events = trace.span_events(span);
        assert_balanced(span, &events);
        if single_op {
            assert_contiguous_single_op(span, &events);
        }
    }
}

/// A mid-epoch fault aborts the write epoch: every affected span still
/// closes (balanced — no leaked open slice), and the failing ops' final
/// slices carry the error tag. Traffic routed at the quarantined shard
/// afterwards closes with the error tag too.
#[test]
fn injected_fault_closes_spans_with_error_tag() {
    if !enabled() {
        return;
    }
    let service = start(3);
    // The fault fires inside shard 1's next sub-epoch; the insert
    // below spans shards 0 and 1 so the healthy sub-epoch rolls back.
    service.fail_next_write_epoch(1);
    let w = service
        .insert(vec![Point::weighted([10, 60], 900, 1), Point::weighted([150, 60], 901, 1)])
        .unwrap();
    let w_span = w.span();
    assert!(w.wait().is_err(), "epoch with an injected fault must abort");

    // Shard 1 is now poisoned: a read fanning out to it fails at
    // planning, a write targeting it fails validation.
    let r = service.count(Rect::new([0, 0], [300, 100])).unwrap();
    let r_span = r.span();
    assert!(r.wait().is_err());
    let w2 = service.insert(vec![Point::weighted([150, 61], 902, 1)]).unwrap();
    let w2_span = w2.span();
    assert!(w2.wait().is_err());
    // A sibling shard keeps serving; its span closes cleanly.
    let ok = service.count(Rect::new([0, 0], [90, 100])).unwrap();
    let ok_span = ok.span();
    ok.wait().unwrap();
    // `shutdown` panics on a poisoned shard by contract; `dismantle`
    // recovers the healthy shards around the quarantined one.
    service.dismantle();

    let trace = Trace::capture();
    for (span, want_err) in [(w_span, true), (r_span, true), (w2_span, true), (ok_span, false)] {
        let events = trace.span_events(span);
        assert_balanced(span, &events);
        assert_contiguous_single_op(span, &events);
        let errored = events.iter().any(|e| e.kind == EventKind::End && e.err);
        assert_eq!(
            errored, want_err,
            "span {span:?}: error tag mismatch (want_err = {want_err}): {events:#?}"
        );
    }
}
