//! Acceptance tests for the unified client API (`ddrs-client`):
//!
//! * `Ticket<T>` is a real `Future` — polled with a hand-rolled waker
//!   and a `std::thread::park` mini-executor, no async runtime anywhere
//!   in the dependency tree;
//! * a multi-op `Request` with R reads costs exactly one fused dispatch
//!   on the unsharded service and at most one per shard on the router
//!   (pinned via `RunStats`);
//! * requests' writes commit before their reads (read-your-writes
//!   within a request), write verdicts are per-op data;
//! * `Consistency::AtLeast` gives read-your-writes sessions on every
//!   backend and fails cleanly on bounds from the future.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use std::time::Duration;

use ddrs::client::{ticket, Consistency, Request};
use ddrs::prelude::*;
use ddrs::service::ServiceError;

fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
    range
        .map(|i| Point::weighted([((i * 193) % 777) as i64, ((i * 71) % 555) as i64], i, 2))
        .collect()
}

fn service(p: usize, n: u32) -> Service<Sum, 2> {
    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(16);
    tree.insert_batch(&machine, &pts(0..n)).unwrap();
    Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig { max_delay: Duration::from_micros(100), ..ServiceConfig::default() },
    )
}

fn inline(p: usize, n: u32) -> InlineStore<Sum, 2> {
    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(16);
    tree.insert_batch(&machine, &pts(0..n)).unwrap();
    InlineStore::new(machine, tree, Sum)
}

fn sharded(s: usize, n: u32) -> ShardedService<Sum, 2> {
    let machines: Vec<Machine> = (0..s).map(|_| Machine::new(1).unwrap()).collect();
    ShardedService::start(
        machines,
        16,
        &pts(0..n),
        Sum,
        PartitionPolicy::range_uniform(s, 0, 777),
        ShardedConfig { max_delay: Duration::from_micros(100), ..ShardedConfig::default() },
    )
    .unwrap()
}

// ---------------------------------------------------------------------
// Ticket<T>: Future
// ---------------------------------------------------------------------

/// Hand-rolled waker: flips a flag and unparks the polling thread.
struct ParkWaker {
    woken: AtomicBool,
    thread: Thread,
}

impl Wake for ParkWaker {
    fn wake(self: Arc<Self>) {
        self.woken.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// The smallest possible executor: poll, park until woken, repeat.
fn block_on<F: Future + Unpin>(mut fut: F) -> F::Output {
    let pw = Arc::new(ParkWaker { woken: AtomicBool::new(false), thread: std::thread::current() });
    let waker = Waker::from(Arc::clone(&pw));
    let mut cx = Context::from_waker(&waker);
    loop {
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !pw.woken.swap(false, Ordering::SeqCst) {
                    std::thread::park();
                }
            }
        }
    }
}

#[test]
fn ticket_future_polls_pending_then_wakes() {
    let (t, r) = ticket::<u64>();
    let pw = Arc::new(ParkWaker { woken: AtomicBool::new(false), thread: std::thread::current() });
    let waker = Waker::from(Arc::clone(&pw));
    let mut cx = Context::from_waker(&waker);
    let mut t = t;
    assert_eq!(Pin::new(&mut t).poll(&mut cx), Poll::Pending);
    assert!(!pw.woken.load(Ordering::SeqCst), "no wake before resolution");
    r.resolve(Ok(Commit { value: 11, seq: 4 }));
    assert!(pw.woken.load(Ordering::SeqCst), "resolution must wake the registered waker");
    assert_eq!(Pin::new(&mut t).poll(&mut cx), Poll::Ready(Ok(Commit { value: 11, seq: 4 })));
}

#[test]
fn service_tickets_work_under_a_runtimeless_executor() {
    let service = service(2, 48);
    let all = Rect::new([0, 0], [800, 600]);
    // `count` returns a *mapped* ticket (projected out of the request
    // response), so this also exercises the map node's poll path.
    let c = block_on(service.count(all).unwrap()).unwrap();
    assert_eq!(c.value, 48);
    let a = block_on(service.aggregate(all).unwrap()).unwrap();
    assert_eq!(a.value, Some(96));
    let mut req = Request::new();
    let h = req.count(all);
    let resp = block_on(service.submit(req).unwrap()).unwrap();
    assert_eq!(resp.value.count(h), 48);
}

#[test]
fn wait_for_times_out_and_hands_the_ticket_back() {
    let (t, r) = ticket::<u64>();
    let WaitFor::TimedOut(t) = t.wait_for(Duration::from_millis(2)) else {
        panic!("unresolved ticket must time out");
    };
    assert!(!t.is_done());
    r.resolve(Ok(Commit { value: 9, seq: 0 }));
    let WaitFor::Ready(out) = t.wait_for(Duration::from_secs(5)) else {
        panic!("resolved ticket must be ready");
    };
    assert_eq!(out, Ok(Commit { value: 9, seq: 0 }));
}

// ---------------------------------------------------------------------
// Multi-op requests: fusion pins and semantics
// ---------------------------------------------------------------------

#[test]
fn multi_op_reads_cost_one_fused_dispatch_on_the_service() {
    let service = service(2, 48);
    let mut req = Request::new();
    let all = Rect::new([0, 0], [800, 600]);
    let corner = Rect::new([0, 0], [50, 50]);
    let c0 = req.count(all);
    let c1 = req.count(corner);
    let a0 = req.aggregate(all);
    let a1 = req.aggregate(corner);
    let r0 = req.report(corner);
    let resp = service.submit(req).unwrap().wait().unwrap().value;
    assert_eq!(resp.count(c0), 48);
    assert!(resp.count(c1) <= 48);
    assert_eq!(resp.aggregate(a0), &Some(96));
    assert!((*resp.aggregate(a1)).unwrap_or(0) <= 96);
    assert_eq!(resp.report(r0).len() as u64, resp.count(c1));
    let stats = service.stats();
    // The acceptance pin: 5 reads in one request = ONE machine run and
    // ONE coalesced dispatch.
    assert_eq!(stats.machine.runs, 1, "R reads in one request must fuse into one run");
    assert_eq!(stats.dispatches, 1);
    assert_eq!(stats.queries_coalesced, 5);
}

#[test]
fn multi_op_reads_cost_at_most_one_dispatch_per_shard() {
    let s = 4;
    let service = sharded(s, 64);
    let mut req = Request::new();
    // 12 reads spanning every slab.
    let handles: Vec<_> = (0..12).map(|i| req.count(Rect::new([i * 60, 0], [777, 555]))).collect();
    let resp = service.submit(req).unwrap().wait().unwrap().value;
    assert_eq!(resp.count(handles[0]), 64);
    let stats = service.stats();
    assert!(
        stats.machine.runs <= s as u64,
        "12 reads across {s} shards must cost at most {s} runs, took {}",
        stats.machine.runs
    );
    assert_eq!(stats.dispatches, 1);
    service.shutdown();
}

#[test]
fn requests_apply_writes_before_reads_with_per_op_verdicts() {
    for store in [
        Box::new(inline(2, 8)) as Box<dyn RangeStore<Sum, 2>>,
        Box::new(service(2, 8)),
        Box::new(sharded(2, 8)),
    ] {
        let mut req = Request::new();
        let w_ok = req.insert(vec![Point::weighted([900, 400], 1000, 7)]);
        let w_dup = req.insert(vec![Point::weighted([901, 401], 1000, 1)]); // same id: rejected
        let w_del = req.delete(vec![0, 1]);
        let c = req.count(Rect::new([0, 0], [1000, 600]));
        let a = req.aggregate(Rect::new([900, 400], [900, 400]));
        let resp = store.submit(req).unwrap().wait().unwrap().value;
        assert_eq!(resp.write(w_ok), &Ok(()));
        assert_eq!(
            resp.write(w_dup),
            &Err(ServiceError::Rejected(ddrs::rangetree::BuildError::DuplicateId(1000))),
            "duplicate insert is a per-op verdict, not a request failure"
        );
        assert_eq!(resp.write(w_del), &Ok(()));
        // 8 initial - 2 deleted + 1 inserted, all visible to the
        // request's own reads.
        assert_eq!(resp.count(c), 7);
        assert_eq!(resp.aggregate(a), &Some(7));
    }
}

#[test]
fn single_op_conveniences_match_the_request_path() {
    let store = inline(2, 32);
    let all = Rect::new([0, 0], [800, 600]);
    let via_method = store.count(all).unwrap().wait().unwrap().value;
    let mut req = Request::new();
    let h = req.count(all);
    let via_request = store.submit(req).unwrap().wait().unwrap().value.count(h);
    assert_eq!(via_method, via_request);
    // Deadline plumbing is shared default-method code; a generous
    // deadline must not change the outcome.
    let within = store.count_within(all, Some(Duration::from_secs(60))).unwrap().wait().unwrap();
    assert_eq!(within.value, via_method);
}

#[test]
fn oversized_request_reads_still_fuse_into_one_dispatch() {
    // The max_batch window cap must never split one request's read run:
    // 20 reads through a max_batch = 8 service still cost ONE run.
    let machine = Machine::new(2).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(16);
    tree.insert_batch(&machine, &pts(0..32)).unwrap();
    let service = Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(100),
            ..ServiceConfig::default()
        },
    );
    let mut req = Request::new();
    let handles: Vec<_> =
        (0..20).map(|i| req.count(Rect::new([0, 0], [800 - i * 2, 600]))).collect();
    let resp = service.submit(req).unwrap().wait().unwrap().value;
    assert_eq!(resp.count(handles[0]), 32);
    let stats = service.stats();
    assert_eq!(
        stats.machine.runs, 1,
        "a request larger than max_batch must still fuse into one run"
    );
    assert_eq!(stats.dispatches, 1);
    assert_eq!(stats.queries_coalesced, 20);
}

#[test]
fn request_larger_than_queue_capacity_is_rejected_as_permanent() {
    // Overloaded is transient ("retry later"); a request that can never
    // fit must say so instead of sending the caller into a retry loop.
    let machine = Machine::new(1).unwrap();
    let tree = DynamicDistRangeTree::<2>::new(16);
    let service = Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig { queue_capacity: 4, ..ServiceConfig::default() },
    );
    let mut req = Request::new();
    for _ in 0..5 {
        req.count(Rect::new([0, 0], [1, 1]));
    }
    assert_eq!(
        service.submit(req).err(),
        Some(ddrs::client::SubmitError::RequestTooLarge { ops: 5, capacity: 4 })
    );
    // The sharded router enforces the same bound through its shared
    // admission path.
    let sharded = ShardedService::start(
        vec![Machine::new(1).unwrap()],
        16,
        &pts(0..4),
        Sum,
        PartitionPolicy::Hash,
        ShardedConfig { queue_capacity: 2, ..ShardedConfig::default() },
    )
    .unwrap();
    let mut req = Request::new();
    for _ in 0..3 {
        req.count(Rect::new([0, 0], [1, 1]));
    }
    assert_eq!(
        sharded.submit(req).err(),
        Some(ddrs::client::SubmitError::RequestTooLarge { ops: 3, capacity: 2 })
    );
}

#[test]
#[should_panic(expected = "empty request")]
fn submitting_an_empty_request_panics() {
    let store = inline(1, 4);
    let _ = store.submit(Request::new());
}

// ---------------------------------------------------------------------
// Consistency
// ---------------------------------------------------------------------

#[test]
fn at_least_gives_read_your_writes_on_every_backend() {
    for store in [
        Box::new(inline(2, 8)) as Box<dyn RangeStore<Sum, 2>>,
        Box::new(service(2, 8)),
        Box::new(sharded(2, 8)),
    ] {
        // Session: write, learn the commit seq, demand to observe it.
        let w = store.insert(vec![Point::weighted([900, 400], 77, 3)]).unwrap().wait().unwrap();
        let mut req = Request::new();
        let c = req.count(Rect::new([900, 400], [900, 400]));
        req.consistency(Consistency::AtLeast(w.seq));
        let resp = store.submit(req).unwrap().wait().unwrap();
        assert_eq!(resp.value.count(c), 1, "AtLeast(write seq) must observe the write");
        assert!(resp.seq > w.seq);

        // A bound from the future fails cleanly instead of serving a
        // state it promised not to serve.
        let mut req = Request::new();
        req.count(Rect::new([0, 0], [1, 1]));
        req.consistency(Consistency::AtLeast(1_000_000));
        let err = store.submit(req).unwrap().wait().unwrap_err();
        match err {
            ServiceError::Consistency { required, committed } => {
                assert_eq!(required, 1_000_000);
                assert!(committed <= w.seq + 2);
            }
            other => panic!("expected a consistency error, got {other:?}"),
        }
    }
}

#[test]
fn consistency_bounds_gate_reads_only() {
    // A write observes nothing, so an unmet AtLeast bound must not drop
    // it: the request's write commits on every backend, its reads fail
    // with the consistency error, and the response surfaces both.
    for store in [
        Box::new(inline(1, 4)) as Box<dyn RangeStore<Sum, 2>>,
        Box::new(service(1, 4)),
        Box::new(sharded(2, 4)),
    ] {
        let mut req = Request::new();
        req.insert(vec![Point::weighted([900, 400], 77, 3)]);
        req.count(Rect::new([0, 0], [1000, 600]));
        req.consistency(Consistency::AtLeast(1_000_000));
        // The failed read fails the request as a whole (a response with
        // a hole is worse than an error)…
        let err = store.submit(req).unwrap().wait().unwrap_err();
        assert!(
            matches!(err, ServiceError::Consistency { required: 1_000_000, .. }),
            "reads must fail the bound, got {err:?}"
        );
        // …but the write was NOT silently dropped: it committed, and a
        // later unbounded read observes it — identically on every
        // backend.
        let after = store.count(Rect::new([900, 400], [900, 400])).unwrap().wait().unwrap();
        assert_eq!(after.value, 1, "the write must commit despite the read bound");
    }
}

// ---------------------------------------------------------------------
// InlineStore
// ---------------------------------------------------------------------

#[test]
fn inline_store_resolves_synchronously_and_hands_parts_back() {
    let store = inline(2, 16);
    let t = store.count(Rect::new([0, 0], [800, 600])).unwrap();
    assert!(t.is_done(), "inline tickets are resolved before submit returns");
    assert_eq!(t.wait().unwrap().value, 16);
    assert_eq!(store.committed(), 1);
    store.insert(vec![Point::weighted([5, 5], 500, 1)]).unwrap().wait().unwrap();
    assert_eq!(store.len(), 17);
    let (machine, tree) = store.into_parts();
    assert_eq!(tree.len(), 17);
    assert_eq!(machine.p(), 2);
}

#[test]
fn inline_store_serializes_concurrent_callers() {
    let store = inline(1, 0);
    std::thread::scope(|s| {
        for k in 0..4u32 {
            let store = &store;
            s.spawn(move || {
                for i in 0..4u32 {
                    let id = k * 100 + i;
                    store
                        .insert(vec![Point::weighted([id as i64, 0], id, 1)])
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            });
        }
    });
    assert_eq!(store.len(), 16);
    assert_eq!(store.committed(), 16, "every commit got a distinct serial position");
    let ids = store
        .report(Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(ids.value.len(), 16);
}
