//! Property tests for the fused mixed-mode engine: a heterogeneous
//! `QueryBatch` must agree with the per-mode APIs and with a sequential
//! oracle, across machine sizes `p ∈ {1, 2, 4, 8}`, dimensions
//! `d ∈ {1, 2, 3}`, static trees and dynamic stores mid-cascade — all in
//! exactly one machine submission per executed batch. Plus executor
//! regressions: processor panics are errors, not aborts, and the machine
//! survives them.

use proptest::prelude::*;

use ddrs::cgm::CgmError;
use ddrs::prelude::*;

type RawPoint = (i64, i64, i64, u64);
type RawRect = ((i64, i64, i64), (i64, i64, i64));

fn to_points<const D: usize>(raw: &[RawPoint]) -> Vec<Point<D>> {
    raw.iter()
        .enumerate()
        .map(|(i, &(x, y, z, w))| {
            let all = [x, y, z];
            let mut coords = [0i64; D];
            coords.copy_from_slice(&all[..D]);
            Point::weighted(coords, i as u32, w)
        })
        .collect()
}

fn to_rect<const D: usize>(raw: &RawRect) -> Rect<D> {
    let a = [raw.0 .0, raw.0 .1, raw.0 .2];
    let b = [raw.1 .0, raw.1 .1, raw.1 .2];
    let mut lo = [0i64; D];
    let mut hi = [0i64; D];
    for j in 0..D {
        lo[j] = a[j].min(b[j]);
        hi[j] = a[j].max(b[j]);
    }
    Rect::new(lo, hi)
}

/// Sequential oracle: `(count, weight sum, sorted ids)` by linear scan.
fn oracle<const D: usize>(pts: &[Point<D>], q: &Rect<D>) -> (u64, Option<u64>, Vec<u32>) {
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut ids = Vec::new();
    for p in pts {
        if q.contains(p) {
            count += 1;
            sum += p.weight;
            ids.push(p.id);
        }
    }
    ids.sort_unstable();
    (count, (count > 0).then_some(sum), ids)
}

fn check_outputs<const D: usize>(
    out: &BatchResults<Sum>,
    pts: &[Point<D>],
    queries: &[Rect<D>],
    what: &str,
) {
    for (i, q) in queries.iter().enumerate() {
        let (c, s, ids) = oracle(pts, q);
        assert_eq!(out.counts[i], c, "{what}: count of query {i}");
        assert_eq!(out.aggregates[i], s, "{what}: sum of query {i}");
        assert_eq!(out.reports[i], ids, "{what}: report of query {i}");
    }
}

/// The full agreement check for one generated instance.
fn check_fused<const D: usize>(raw_pts: Vec<RawPoint>, raw_qs: Vec<RawRect>, p: usize) {
    let machine = Machine::new(p).unwrap();
    let pts = to_points::<D>(&raw_pts);
    let queries: Vec<Rect<D>> = raw_qs.iter().map(to_rect::<D>).collect();

    let mut batch = QueryBatch::new(Sum);
    for q in &queries {
        batch.count(*q);
        batch.aggregate(*q);
        batch.report(*q);
    }

    // Static tree: fused vs oracle vs per-mode, in one submission.
    let tree = DistRangeTree::<D>::build(&machine, &pts).unwrap();
    machine.take_stats();
    let out = batch.execute(&machine, &tree);
    assert_eq!(machine.take_stats().runs, 1, "static fused batch is one run");
    check_outputs(&out, &pts, &queries, "static");
    assert_eq!(out.counts, tree.count_batch(&machine, &queries));
    assert_eq!(out.aggregates, tree.aggregate_batch(&machine, Sum, &queries));
    assert_eq!(out.reports, tree.report_batch(&machine, &queries));

    // Dynamic store mid-cascade: three uneven insert waves leave the
    // logarithmic-method counter in a non-trivial state.
    let mut store = DynamicDistRangeTree::<D>::new(4);
    let n = pts.len();
    for chunk in [&pts[..n / 2], &pts[n / 2..n - n / 4], &pts[n - n / 4..]] {
        store.insert_batch(&machine, chunk).unwrap();
    }
    machine.take_stats();
    let dyn_out = batch.execute_dynamic(&machine, &store);
    let stats = machine.take_stats();
    assert!(stats.runs <= 1, "dynamic fused batch is at most one run (zero when empty)");
    check_outputs(&dyn_out, &pts, &queries, "dynamic");
    assert_eq!(dyn_out.counts, store.count_batch(&machine, &queries));
    assert_eq!(dyn_out.aggregates, store.aggregate_batch(&machine, Sum, &queries));
    assert_eq!(dyn_out.reports, store.report_batch(&machine, &queries));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn fused_matches_oracle_1d(
        raw_pts in prop::collection::vec((0i64..40, 0i64..40, 0i64..40, 1u64..50), 2..50),
        raw_qs in prop::collection::vec(
            ((0i64..40, 0i64..40, 0i64..40), (0i64..40, 0i64..40, 0i64..40)), 1..8),
        p_log in 0u32..4,
    ) {
        check_fused::<1>(raw_pts, raw_qs, 1 << p_log);
    }

    #[test]
    fn fused_matches_oracle_2d(
        raw_pts in prop::collection::vec((0i64..40, 0i64..40, 0i64..40, 1u64..50), 2..50),
        raw_qs in prop::collection::vec(
            ((0i64..40, 0i64..40, 0i64..40), (0i64..40, 0i64..40, 0i64..40)), 1..8),
        p_log in 0u32..4,
    ) {
        check_fused::<2>(raw_pts, raw_qs, 1 << p_log);
    }

    #[test]
    fn fused_matches_oracle_3d(
        raw_pts in prop::collection::vec((0i64..24, 0i64..24, 0i64..24, 1u64..50), 2..40),
        raw_qs in prop::collection::vec(
            ((0i64..24, 0i64..24, 0i64..24), (0i64..24, 0i64..24, 0i64..24)), 1..6),
        p_log in 0u32..4,
    ) {
        check_fused::<3>(raw_pts, raw_qs, 1 << p_log);
    }
}

/// A panicking program is an `Err`, not an abort, and the machine —
/// including a tree already built on it — keeps working afterwards.
#[test]
fn processor_panic_is_recoverable_end_to_end() {
    let machine = Machine::new(4).unwrap();
    let pts: Vec<Point<2>> = (0..64).map(|i| Point::new([i, 63 - i], i as u32)).collect();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();

    let err = machine
        .try_run(|ctx| {
            if ctx.rank() == 3 {
                panic!("injected fault");
            }
            // Siblings block in a collective and must be released.
            ctx.all_reduce_sum(1)
        })
        .unwrap_err();
    match err {
        CgmError::ProcessorPanicked { rank, payload } => {
            assert_eq!(rank, 3);
            assert!(payload.contains("injected fault"));
        }
        other => panic!("unexpected error: {other:?}"),
    }

    // The machine is still good for real query work.
    machine.take_stats();
    let counts = tree.count_batch(&machine, &[Rect::new([0, 0], [31, 63])]);
    assert_eq!(counts, vec![32]);
    assert_eq!(machine.take_stats().runs, 1);
}

/// Empty batches cost nothing at every layer of the stack.
#[test]
fn empty_batches_skip_dispatch_everywhere() {
    let machine = Machine::new(4).unwrap();
    let pts: Vec<Point<2>> = (0..32).map(|i| Point::new([i, i], i as u32)).collect();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let mut store = DynamicDistRangeTree::<2>::new(8);
    store.insert_batch(&machine, &pts).unwrap();
    machine.take_stats();

    let no_queries: [Rect<2>; 0] = [];
    assert!(tree.count_batch(&machine, &no_queries).is_empty());
    assert!(tree.aggregate_batch(&machine, Sum, &no_queries).is_empty());
    assert!(tree.report_batch(&machine, &no_queries).is_empty());
    assert!(store.count_batch(&machine, &no_queries).is_empty());
    let batch: QueryBatch<Sum, 2> = QueryBatch::new(Sum);
    batch.execute(&machine, &tree);
    batch.execute_dynamic(&machine, &store);

    let stats = machine.take_stats();
    assert_eq!(stats.runs, 0, "no dispatch for empty batches");
    assert_eq!(stats.supersteps(), 0, "no communication for empty batches");
}
