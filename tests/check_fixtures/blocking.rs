//! Known-bad fixture for the `blocking-while-locked` lint: parks on a
//! channel receive while a tracked guard is live. Not compiled —
//! consumed textually by `tests/check_lints.rs`.

fn recv_under_guard(inner: &Inner, rx: &Receiver<u32>) {
    let st = inner.stats.lock();
    let _reply = rx.recv();
    drop(st);
}

fn recv_after_release_is_fine(inner: &Inner, rx: &Receiver<u32>) {
    let st = inner.stats.lock();
    drop(st);
    let _reply = rx.recv();
}
