//! Known-bad fixture for the `unwrap` lint: a bare `.unwrap()` in
//! scheduler-stack code, plus an annotated one that must stay silent.
//! Not compiled — consumed textually by `tests/check_lints.rs`.

fn bare_unwrap(map: &mut HashMap<u32, u32>) -> u32 {
    map.remove(&1).unwrap()
}

fn annotated_expect(slot: Option<u32>) -> u32 {
    // ddrs-check: allow(unwrap) — the fixture's justified escape hatch.
    slot.expect("filled by the admission path")
}
