//! Known-bad fixture for the `lock-order` lint: acquires `stats`
//! (rank 1) and then nests `sched.queue` (rank 0) inside it, inverting
//! the canonical order. Not compiled — consumed textually by
//! `tests/check_lints.rs`.

fn inverted_nesting(inner: &Inner) {
    let st = inner.stats.lock();
    let q = inner.queue.lock();
    drop(q);
    drop(st);
}

fn consistent_nesting_is_fine(inner: &Inner) {
    let q = inner.queue.lock();
    let st = inner.stats.lock();
    drop(st);
    drop(q);
}
