//! Known-bad fixture for the `relaxed` lint: an `Ordering::Relaxed` on
//! what could be a consistency-gating atomic, plus an annotated
//! telemetry use that must stay silent. Not compiled — consumed
//! textually by `tests/check_lints.rs`.

fn bump_commit_seq(seq: &AtomicU64) -> u64 {
    seq.fetch_add(1, Ordering::Relaxed)
}

fn bump_counter(hits: &AtomicU64) {
    // ddrs-check: allow(relaxed) — telemetry-only counter.
    hits.fetch_add(1, Ordering::Relaxed);
}
