//! The tracer's zero-cost contract, pinned from both sides of the gate:
//!
//! * default release build (`cargo test --release`): span minting is
//!   inert, recording entry points are no-ops, and driving real traffic
//!   through the full sharded stack leaves the capture empty;
//! * debug build or `--features trace`: the same entry points record,
//!   and the same traffic produces capturable span events.
//!
//! CI runs this file in both configurations.

use std::time::Duration;

use ddrs::prelude::*;
use ddrs::trace::{begin, enabled, end, SpanId, Stage, Trace};

#[test]
fn enabled_matches_compile_configuration() {
    assert_eq!(enabled(), cfg!(any(debug_assertions, feature = "trace")));
}

#[test]
fn recording_entry_points_respect_the_gate() {
    let span = SpanId::fresh();
    if enabled() {
        assert!(!span.is_none(), "an active tracer mints real span ids");
        begin(span, Stage::Queue);
        end(span, Stage::Queue);
        assert_eq!(Trace::capture().span_events(span).len(), 2);
    } else {
        assert!(span.is_none(), "the default build must not mint span ids");
        // No-ops by contract: nothing to observe afterwards.
        begin(span, Stage::Queue);
        end(span, Stage::Queue);
        assert!(Trace::capture().events.is_empty(), "default build recorded events");
    }
}

/// Real traffic through the sharded stack: reads, a write, a multi-op
/// request. With recording off the capture stays empty (no hidden
/// recording path anywhere in the dispatch pipeline); with it on, every
/// ticket's span is present.
#[test]
fn full_stack_traffic_records_if_and_only_if_enabled() {
    let pts: Vec<Point<2>> =
        (0..40u32).map(|i| Point::weighted([(i as i64 * 7) % 200, i as i64 % 50], i, 1)).collect();
    let machines: Vec<Machine> = (0..2).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        16,
        &pts,
        Sum,
        PartitionPolicy::Range { bounds: vec![100] },
        ShardedConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    )
    .unwrap();

    let c = service.count(Rect::new([0, 0], [200, 50])).unwrap();
    let c_span = c.span();
    c.wait().unwrap();
    let w = service.insert(vec![Point::weighted([5, 5], 500, 1)]).unwrap();
    let w_span = w.span();
    w.wait().unwrap();
    let mut req = Request::new();
    let _h = req.count(Rect::new([0, 0], [99, 50]));
    let t = service.submit(req).unwrap();
    let r_span = t.span();
    t.wait().unwrap();
    service.shutdown();

    let trace = Trace::capture();
    if enabled() {
        for span in [c_span, w_span, r_span] {
            assert!(!span.is_none());
            assert!(!trace.span_events(span).is_empty(), "active tracer lost span {span:?}");
        }
    } else {
        for span in [c_span, w_span, r_span] {
            assert!(span.is_none(), "default build handed out a live span id");
        }
        assert!(trace.events.is_empty(), "default build recorded {} events", trace.events.len());
    }

    // The machine timeline obeys the same gate.
    let m = Machine::new(2).unwrap();
    m.run(|ctx| ctx.all_reduce_sum(1u64));
    let stats = m.take_stats();
    assert_eq!(
        stats.timeline.is_empty(),
        !enabled(),
        "machine timeline recording must match the trace gate"
    );
}
