//! The generic differential test of the unified client API: ONE driver,
//! written entirely against `Box<dyn RangeStore>`, proves
//!
//! ```text
//!   InlineStore ≡ Service ≡ ShardedService ≡ RemoteStore ≡ sequential oracle
//! ```
//!
//! on the same mixed request stream — same values, same write verdicts,
//! same **absolute** commit sequence numbers — including composed
//! multi-op `Request`s (writes + fused reads in one unit), which the
//! per-backend predecessor (`shard_vs_single`) could not express. The
//! driver never names a concrete backend type: the trait object IS the
//! test surface. The remote backends run the same driver **over a real
//! TCP loopback connection** — encode, frame, decode, submit, resolve,
//! encode, frame, decode — and must be bit-identical to the in-process
//! stores, absolute seqs included.

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;

use ddrs::client::{Request, Ticket};
use ddrs::net::{NetConfig, NetServer, RemoteConfig, RemoteStore};
use ddrs::prelude::*;
use ddrs::rangetree::BuildError;
use ddrs::service::ServiceError;

type RawPoint = (i64, i64, u64);
type RawRect = ((i64, i64), (i64, i64));

fn to_point(raw: RawPoint, id: u32) -> Point<2> {
    let (x, y, w) = raw;
    Point::weighted([x, y], id, 1 + w % 9)
}

fn to_rect(raw: RawRect) -> Rect<2> {
    let ((x0, y0), (x1, y1)) = raw;
    Rect::new([x0.min(x1), y0.min(y1)], [x0.max(x1), y0.max(y1)])
}

/// The flat sequential oracle, tracking the same serial commit counter
/// the backends expose, so seqs are compared absolutely.
struct Oracle {
    pts: Vec<Point<2>>,
    ids: HashSet<u32>,
    next_seq: u64,
}

impl Oracle {
    fn new(initial: &[Point<2>]) -> Self {
        Oracle { pts: initial.to_vec(), ids: initial.iter().map(|p| p.id).collect(), next_seq: 0 }
    }

    fn count(&self, q: &Rect<2>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    fn aggregate(&self, q: &Rect<2>) -> Option<u64> {
        self.pts.iter().filter(|p| q.contains(p)).map(|p| p.weight).reduce(|a, b| a + b)
    }

    fn report(&self, q: &Rect<2>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn insert(&mut self, batch: &[Point<2>]) -> Result<u64, BuildError> {
        let mut seen = HashSet::new();
        for p in batch {
            if self.ids.contains(&p.id) || !seen.insert(p.id) {
                return Err(BuildError::DuplicateId(p.id));
            }
        }
        self.ids.extend(seen);
        self.pts.extend_from_slice(batch);
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    fn delete(&mut self, ids: &[u32]) -> u64 {
        let dead: HashSet<u32> = ids.iter().copied().collect();
        self.pts.retain(|p| !dead.contains(&p.id));
        self.ids.retain(|id| !dead.contains(id));
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn read_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

/// A served store plus the client that reaches it over loopback; keeps
/// the server alive for the store's lifetime. Declared client-first so
/// the pool closes before the server drains.
struct RemoteBackend {
    client: RemoteStore<Sum, 2>,
    _server: NetServer<Sum, 2>,
}

impl RangeStore<Sum, 2> for RemoteBackend {
    fn submit(&self, req: Request<Sum, 2>) -> Result<Ticket<Response<Sum>>, SubmitError> {
        self.client.submit(req)
    }
}

/// Serve `store` on an ephemeral loopback port and connect a client.
fn remote(store: Box<dyn RangeStore<Sum, 2> + Send + Sync>) -> RemoteBackend {
    let server = NetServer::serve(store, "127.0.0.1:0", NetConfig::default()).unwrap();
    let client = RemoteStore::connect(server.local_addr(), RemoteConfig::default()).unwrap();
    RemoteBackend { client, _server: server }
}

/// Every backend, behind the one trait the test drives.
fn backends(
    p: usize,
    s: usize,
    initial: &[Point<2>],
) -> Vec<(&'static str, Box<dyn RangeStore<Sum, 2>>)> {
    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(8);
    if !initial.is_empty() {
        tree.insert_batch(&machine, initial).unwrap();
    }
    let inline = InlineStore::new(machine, tree, Sum);

    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(8);
    if !initial.is_empty() {
        tree.insert_batch(&machine, initial).unwrap();
    }
    let service = Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    );

    let machines: Vec<Machine> = (0..s).map(|_| Machine::new(p).unwrap()).collect();
    let sharded_range = ShardedService::start(
        machines,
        8,
        initial,
        Sum,
        PartitionPolicy::range_from_sample(s, initial),
        ShardedConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    )
    .unwrap();

    let machines: Vec<Machine> = (0..s).map(|_| Machine::new(p).unwrap()).collect();
    let sharded_hash = ShardedService::start(
        machines,
        8,
        initial,
        Sum,
        PartitionPolicy::Hash,
        ShardedConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    )
    .unwrap();

    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(8);
    if !initial.is_empty() {
        tree.insert_batch(&machine, initial).unwrap();
    }
    let remote_service = remote(Box::new(Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    )));

    let machines: Vec<Machine> = (0..s).map(|_| Machine::new(p).unwrap()).collect();
    let remote_sharded = remote(Box::new(
        ShardedService::start(
            machines,
            8,
            initial,
            Sum,
            PartitionPolicy::Hash,
            ShardedConfig {
                max_batch: 16,
                max_delay: Duration::from_micros(100),
                ..Default::default()
            },
        )
        .unwrap(),
    ));

    vec![
        ("inline", Box::new(inline)),
        ("service", Box::new(service)),
        ("sharded-range", Box::new(sharded_range)),
        ("sharded-hash", Box::new(sharded_hash)),
        ("remote-service", Box::new(remote_service)),
        ("remote-sharded", Box::new(remote_sharded)),
    ]
}

/// One differential case: single ops and composed multi-op requests,
/// interleaved, every outcome compared across all backends and the
/// oracle — values, verdicts and absolute commit seqs.
fn run_case(p: usize, s: usize, raw_pts: Vec<RawPoint>, ops: Vec<(u8, RawRect, usize)>) {
    let all_pts: Vec<Point<2>> =
        raw_pts.iter().enumerate().map(|(i, &r)| to_point(r, i as u32)).collect();
    let half = all_pts.len() / 2;
    let initial = &all_pts[..half];
    let mut fresh = all_pts[half..].iter();

    let mut oracle = Oracle::new(initial);
    let stores = backends(p, s, initial);

    for (kind, raw_rect, pick) in ops {
        let q = to_rect(raw_rect);
        match kind % 6 {
            0 => {
                let want = (oracle.count(&q), oracle.read_seq());
                for (name, store) in &stores {
                    let got = store.count(q).unwrap().wait().unwrap();
                    assert_eq!((got.value, got.seq), want, "{name}: count diverged");
                }
            }
            1 => {
                let want = (oracle.aggregate(&q), oracle.read_seq());
                for (name, store) in &stores {
                    let got = store.aggregate(q).unwrap().wait().unwrap();
                    assert_eq!((got.value, got.seq), want, "{name}: aggregate diverged");
                }
            }
            2 => {
                let want = (oracle.report(&q), oracle.read_seq());
                for (name, store) in &stores {
                    let got = store.report(q).unwrap().wait().unwrap();
                    assert_eq!(
                        (got.value, got.seq),
                        (want.0.clone(), want.1),
                        "{name}: report diverged"
                    );
                }
            }
            3 => {
                // Single-op write through the convenience path.
                let batch: Vec<Point<2>> = fresh.by_ref().take(1 + pick % 3).copied().collect();
                let batch = if batch.is_empty() && !oracle.pts.is_empty() {
                    // Starved: re-insert a live id, a guaranteed rejection.
                    vec![oracle.pts[pick % oracle.pts.len()]]
                } else {
                    batch
                };
                if batch.is_empty() {
                    continue;
                }
                let want = oracle.insert(&batch);
                for (name, store) in &stores {
                    let got = store.insert(batch.clone()).unwrap().wait();
                    match &want {
                        Ok(seq) => {
                            assert_eq!(
                                got.as_ref().map(|c| c.seq),
                                Ok(*seq),
                                "{name}: insert commit diverged"
                            );
                        }
                        Err(e) => assert_eq!(
                            got,
                            Err(ServiceError::Rejected(e.clone())),
                            "{name}: insert verdict diverged"
                        ),
                    }
                }
            }
            4 => {
                if oracle.pts.is_empty() {
                    continue;
                }
                let n = oracle.pts.len();
                let mut ids: Vec<u32> =
                    [pick % n, (pick + 5) % n].iter().map(|&i| oracle.pts[i].id).collect();
                ids.push(u32::MAX - 1); // missing id: a no-op everywhere
                let want = oracle.delete(&ids);
                for (name, store) in &stores {
                    let got = store.delete(ids.clone()).unwrap().wait().unwrap();
                    assert_eq!(got.seq, want, "{name}: delete commit diverged");
                }
            }
            5 => {
                // A composed multi-op request: a write, then three reads
                // of different modes, submitted as one unit.
                let batch: Vec<Point<2>> = fresh.by_ref().take(1 + pick % 2).copied().collect();
                let grow = to_rect(((raw_rect.0 .0 - 8, raw_rect.0 .1 - 8), raw_rect.1));
                // Oracle, in request order: the write first, then the
                // reads against the post-write state.
                let w_want = if batch.is_empty() {
                    None
                } else {
                    Some(match oracle.insert(&batch) {
                        Ok(_) => Ok(()),
                        Err(e) => Err(ServiceError::Rejected(e)),
                    })
                };
                let want_count = oracle.count(&q);
                let want_agg = oracle.aggregate(&grow);
                let want_report = oracle.report(&q);
                let mut last_seq = 0;
                for _ in 0..3 {
                    last_seq = oracle.read_seq();
                }
                for (name, store) in &stores {
                    let mut req = Request::new();
                    let w = w_want.as_ref().map(|_| req.insert(batch.clone()));
                    let c = req.count(q);
                    let a = req.aggregate(grow);
                    let r = req.report(q);
                    let got = store.submit(req).unwrap().wait().unwrap();
                    if let (Some(w), Some(want)) = (w, &w_want) {
                        assert_eq!(got.value.write(w), want, "{name}: request write verdict");
                    }
                    assert_eq!(got.value.count(c), want_count, "{name}: request count");
                    assert_eq!(got.value.aggregate(a), &want_agg, "{name}: request aggregate");
                    assert_eq!(got.value.report(r), want_report, "{name}: request report");
                    assert_eq!(got.seq, last_seq, "{name}: request commit position");
                }
            }
            _ => unreachable!(),
        }
    }

    // Final state: every backend's full id set equals the oracle's, read
    // through the trait itself.
    let everything = Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]);
    let want = oracle.report(&everything);
    for (name, store) in &stores {
        let got = store.report(everything).unwrap().wait().unwrap();
        assert_eq!(got.value, want, "{name}: final store diverged");
    }
}

fn arb_raw_points() -> impl Strategy<Value = Vec<RawPoint>> {
    prop::collection::vec((0i64..64, 0i64..64, 0u64..50), 8..32)
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, RawRect, usize)>> {
    prop::collection::vec(
        (0u8..255, ((0i64..64, 0i64..64), (0i64..64, 0i64..64)), 0usize..1000),
        10..22,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn all_backends_equal_the_oracle(
        shape in (0usize..2, 0usize..2),
        pts in arb_raw_points(),
        ops in arb_ops(),
    ) {
        let (pi, si) = shape;
        run_case([1usize, 2][pi], [2usize, 3][si], pts, ops);
    }
}
