//! Cost-model validation: the analytic predictions of
//! `ddrs_cgm::model` must match the measured executions — exact for
//! superstep counts, within a small constant factor for volumes.

use ddrs::cgm::model::{predict_construct, predict_report, predict_search, CostParams};
use ddrs::prelude::*;
use ddrs::workloads::{PointDistribution, QueryDistribution};

fn setup(p: usize, n: usize) -> (Machine, Vec<Point<2>>, Vec<ddrs::rangetree::Rect<2>>) {
    let machine = Machine::new(p).unwrap();
    let pts: Vec<Point<2>> =
        WorkloadBuilder::new(1, n).points(PointDistribution::UniformCube { side: 1 << 20 });
    let queries = QueryWorkload::from_points(&pts, 2)
        .queries(QueryDistribution::Selectivity { fraction: 0.005 }, n / 4);
    (machine, pts, queries)
}

#[test]
fn construct_supersteps_match_prediction_exactly() {
    for (p, n) in [(2usize, 1024usize), (8, 4096), (16, 4096)] {
        let (machine, pts, _) = setup(p, n);
        DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let measured = machine.take_stats();
        let predicted = predict_construct(&CostParams { p, n, d: 2 });
        assert_eq!(measured.supersteps(), predicted.supersteps, "construct rounds p={p} n={n}");
    }
}

#[test]
fn search_supersteps_match_prediction_exactly() {
    for p in [2usize, 8] {
        let (machine, pts, queries) = setup(p, 2048);
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        machine.take_stats();
        tree.count_batch(&machine, &queries);
        let measured = machine.take_stats();
        let predicted = predict_search(&CostParams { p, n: 2048, d: 2 }, queries.len());
        assert_eq!(measured.supersteps(), predicted.supersteps, "search rounds p={p}");
    }
}

#[test]
fn report_supersteps_match_prediction_exactly() {
    let p = 8;
    let (machine, pts, queries) = setup(p, 2048);
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    machine.take_stats();
    let shares = tree.report_batch_raw(&machine, &queries);
    let measured = machine.take_stats();
    let k: u64 = shares.iter().map(|s| s.len() as u64).sum();
    let predicted = predict_report(&CostParams { p, n: 2048, d: 2 }, queries.len(), k);
    assert_eq!(measured.supersteps(), predicted.supersteps, "report rounds");
}

/// Volumes: measured h (converted from words to ~records) stays within a
/// small constant of the predicted per-round volume.
#[test]
fn construct_volume_within_constant_of_prediction() {
    let (p, n) = (8usize, 1usize << 13);
    let (machine, pts, _) = setup(p, n);
    DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let measured = machine.take_stats();
    let predicted = predict_construct(&CostParams { p, n, d: 2 });
    // A construct record is ~7 words on the wire (decorated sort tuples).
    let measured_records = measured.max_h() as f64 / 7.0;
    assert!(
        measured_records <= 4.0 * predicted.max_volume,
        "measured ~{measured_records:.0} records vs predicted {:.0}",
        predicted.max_volume
    );
    assert!(
        measured_records >= predicted.max_volume / 16.0,
        "prediction wildly overestimates: measured ~{measured_records:.0} vs {:.0}",
        predicted.max_volume
    );
}
