//! Server lifecycle edge cases: disconnects with tickets in flight,
//! drain-before-close shutdown, typed over-limit refusals, read
//! deadlines — and the acceptance pin that the one-fused-dispatch
//! guarantee survives the network hop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ddrs::cgm::Machine;
use ddrs::client::{ticket, InlineStore, RangeStore, Request, Response, Ticket};
use ddrs::net::{NetConfig, NetError, NetServer, RemoteConfig, RemoteStore};
use ddrs::rangetree::{DynamicDistRangeTree, Point, Rect, Sum};
use ddrs::service::{Service, ServiceConfig, SubmitError};

fn inline_store(n: u32) -> InlineStore<Sum, 2> {
    let machine = Machine::new(1).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(8);
    let pts: Vec<Point<2>> = (0..n).map(|i| Point::weighted([i as i64, i as i64], i, 2)).collect();
    if !pts.is_empty() {
        tree.insert_batch(&machine, &pts).unwrap();
    }
    InlineStore::new(machine, tree, Sum)
}

/// A store that answers correctly but slowly — each submission resolves
/// from a helper thread after `delay`, guaranteeing a window in which
/// responses are genuinely in flight.
struct SlowStore {
    inner: Arc<InlineStore<Sum, 2>>,
    delay: Duration,
}

impl SlowStore {
    fn new(n: u32, delay: Duration) -> Self {
        SlowStore { inner: Arc::new(inline_store(n)), delay }
    }
}

impl RangeStore<Sum, 2> for SlowStore {
    fn submit(&self, req: Request<Sum, 2>) -> Result<Ticket<Response<Sum>>, SubmitError> {
        let (outer, resolver) = ticket::<Response<Sum>>();
        let inner = Arc::clone(&self.inner);
        let delay = self.delay;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            resolver.resolve(inner.submit(req).expect("inline store accepts").wait());
        });
        Ok(outer)
    }
}

fn count_all() -> (Request<Sum, 2>, ddrs::client::CountHandle) {
    let mut req = Request::new();
    let c = req.count(Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]));
    (req, c)
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(10), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn client_disconnect_with_tickets_in_flight_is_accounted_and_survivable() {
    let store = SlowStore::new(3, Duration::from_millis(150));
    let server = NetServer::serve(Box::new(store), "127.0.0.1:0", NetConfig::default()).unwrap();

    let client: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            let (req, _) = count_all();
            client.submit(req).unwrap()
        })
        .collect();
    wait_until("requests admitted", || server.stats().requests == 3);

    // The client walks away with all three responses still in flight.
    drop(client);
    for t in tickets {
        // The pool's drop resolves every orphaned ticket the way an
        // in-process store's shutdown would.
        assert_eq!(t.wait(), Err(ddrs::service::ServiceError::ShuttingDown));
    }

    // Every admitted response is accounted — flushed into a doomed
    // socket or dropped — and the connection winds down fully.
    wait_until("responses accounted", || {
        let s = server.stats();
        s.responses + s.responses_dropped == 3
    });
    wait_until("connection reaped", || server.stats().active == 0);

    // The store is not poisoned: a fresh client gets correct answers.
    let client: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();
    let (req, c) = count_all();
    let commit = client.submit(req).unwrap().wait().unwrap();
    assert_eq!(commit.value.count(c), 3);
    drop(client);
    server.shutdown();
}

#[test]
fn begin_shutdown_drains_inflight_responses_before_closing() {
    let store = SlowStore::new(5, Duration::from_millis(200));
    let server = NetServer::serve(Box::new(store), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let client: RemoteStore<Sum, 2> =
        RemoteStore::connect(addr, RemoteConfig { connections: 1 }).unwrap();
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            let (req, c) = count_all();
            (c, client.submit(req).unwrap())
        })
        .collect();
    wait_until("requests admitted", || server.stats().requests == 3);

    // Drain: begin_shutdown must block until every admitted response
    // has been flushed to its socket, not cut them off.
    server.begin_shutdown();
    let stats = server.stats();
    assert_eq!(stats.responses, 3, "drain must flush all in-flight responses");
    assert_eq!(stats.responses_dropped, 0);
    assert_eq!(stats.active, 0);

    // The flushed responses reach the still-listening client: committed
    // values, not shutdown errors.
    for (c, t) in tickets {
        let commit = t.wait().expect("drained response must commit");
        assert_eq!(commit.value.count(c), 5);
    }

    // After the drain the pool is dead and new connections fail.
    let (req, _) = count_all();
    assert!(matches!(client.submit(req), Err(SubmitError::ShutDown)));
    assert!(RemoteStore::<Sum, 2>::connect(addr, RemoteConfig { connections: 1 }).is_err());
    drop(client);
    server.shutdown();
}

#[test]
fn over_limit_connections_get_a_typed_refusal() {
    let server = NetServer::serve(
        Box::new(inline_store(1)),
        "127.0.0.1:0",
        NetConfig { max_connections: 1, ..Default::default() },
    )
    .unwrap();

    let first: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();
    let err = RemoteStore::<Sum, 2>::connect(server.local_addr(), RemoteConfig { connections: 1 })
        .unwrap_err();
    assert!(
        matches!(err, NetError::Refused { reason: ddrs::net::RefusedReason::AtCapacity, .. }),
        "got {err}"
    );
    assert_eq!(server.stats().refused, 1);

    // The slot frees once the first client leaves.
    drop(first);
    wait_until("slot freed", || server.stats().active == 0);
    let again: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();
    let (req, c) = count_all();
    assert_eq!(again.submit(req).unwrap().wait().unwrap().value.count(c), 1);
    drop(again);
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_by_the_read_deadline() {
    let server = NetServer::serve(
        Box::new(inline_store(1)),
        "127.0.0.1:0",
        NetConfig { read_timeout: Some(Duration::from_millis(60)), ..Default::default() },
    )
    .unwrap();
    // A raw TCP connection that handshakes and then says nothing.
    let raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    wait_until("idle connection reaped", || {
        let s = server.stats();
        s.read_timeouts == 1 && s.active == 0
    });
    drop(raw);
    server.shutdown();
}

#[test]
fn fused_dispatch_pin_holds_through_the_wire() {
    let machine = Machine::new(2).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(8);
    let pts: Vec<Point<2>> =
        (0..48).map(|i| Point::weighted([i as i64 * 16, (i as i64 * 37) % 600], i, 2)).collect();
    tree.insert_batch(&machine, &pts).unwrap();
    // Served behind an `Arc` so the test keeps a stats handle to the
    // very service instance on the far side of the socket.
    let service = Arc::new(Service::start(machine, tree, Sum, ServiceConfig::default()));
    let server =
        NetServer::serve(Box::new(Arc::clone(&service)), "127.0.0.1:0", NetConfig::default())
            .unwrap();
    let client: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();

    let mut req = Request::new();
    let all = Rect::new([0, 0], [800, 600]);
    let corner = Rect::new([0, 0], [50, 50]);
    let c0 = req.count(all);
    let c1 = req.count(corner);
    let a0 = req.aggregate(all);
    let _a1 = req.aggregate(corner);
    let r0 = req.report(corner);
    let resp = client.submit(req).unwrap().wait().unwrap().value;
    assert_eq!(resp.count(c0), 48);
    assert_eq!(resp.aggregate(a0), &Some(96));
    assert_eq!(resp.report(r0).len() as u64, resp.count(c1));

    // The acceptance pin, unchanged by the network hop: five reads in
    // one request are still ONE machine run and ONE coalesced dispatch
    // on the serving side.
    let stats = service.stats();
    assert_eq!(stats.machine.runs, 1, "5 remote reads must fuse into one run");
    assert_eq!(stats.dispatches, 1);
    assert_eq!(stats.queries_coalesced, 5);

    drop(client);
    server.shutdown();
}

#[test]
fn the_net_stack_leaves_no_lock_order_reports() {
    if !ddrs::check::tracking_active() {
        return;
    }
    // A full life cycle: connect, pipeline, disconnect mid-flight,
    // reconnect, drain — every net.conn/ticket lock pairing exercised.
    let store = SlowStore::new(2, Duration::from_millis(30));
    let server = NetServer::serve(Box::new(store), "127.0.0.1:0", NetConfig::default()).unwrap();
    let client: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 2 }).unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            let (req, _) = count_all();
            client.submit(req).unwrap()
        })
        .collect();
    drop(client);
    for t in tickets {
        let _ = t.wait();
    }
    server.shutdown();
    let reports = ddrs::check::lock_order_reports();
    assert!(reports.is_empty(), "lock-order violations over the wire: {reports:?}");
}
