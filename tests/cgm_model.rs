//! Model-level integration tests: the claims of Corollaries 1–3 about
//! communication rounds must hold on real executions.

use ddrs::prelude::*;
use ddrs::workloads::{PointDistribution, QueryDistribution};

fn build_and_query(p: usize, n: usize) -> (RunStats, RunStats, RunStats) {
    let machine = Machine::new(p).unwrap();
    let pts: Vec<Point<2>> =
        WorkloadBuilder::new(1, n).points(PointDistribution::UniformCube { side: 1 << 20 });
    let queries = QueryWorkload::from_points(&pts, 2)
        .queries(QueryDistribution::Selectivity { fraction: 0.01 }, n / 4);
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let build = machine.take_stats();
    tree.count_batch(&machine, &queries);
    let count = machine.take_stats();
    tree.report_batch(&machine, &queries);
    let report = machine.take_stats();
    (build, count, report)
}

/// Corollary 1: construction uses a constant number of h-relations —
/// the superstep count must not depend on n.
#[test]
fn construction_rounds_constant_in_n() {
    let (b1, ..) = build_and_query(4, 256);
    let (b2, ..) = build_and_query(4, 4096);
    assert_eq!(b1.supersteps(), b2.supersteps());
    assert!(b1.supersteps() <= 16, "too many rounds: {}", b1.supersteps());
}

/// Corollaries 2–3: search/report rounds constant in n.
#[test]
fn query_rounds_constant_in_n() {
    let (_, c1, r1) = build_and_query(4, 256);
    let (_, c2, r2) = build_and_query(4, 4096);
    assert_eq!(c1.supersteps(), c2.supersteps());
    assert_eq!(r1.supersteps(), r2.supersteps());
    assert!(c1.supersteps() <= 16 && r1.supersteps() <= 16);
}

/// Rounds are also constant in p (for p > 1; p = 1 skips communication
/// payloads but the superstep *structure* is identical by SPMD).
#[test]
fn rounds_constant_in_p() {
    let (b2, c2, r2) = build_and_query(2, 1024);
    let (b8, c8, r8) = build_and_query(8, 1024);
    assert_eq!(b2.supersteps(), b8.supersteps());
    assert_eq!(c2.supersteps(), c8.supersteps());
    assert_eq!(r2.supersteps(), r8.supersteps());
}

/// h-relations stay within a constant factor of s/p: no superstep moves
/// a constant fraction of the whole structure through one processor.
#[test]
fn h_relations_bounded_by_s_over_p() {
    let p = 8;
    let n = 4096;
    let machine = Machine::new(p).unwrap();
    let pts: Vec<Point<2>> =
        WorkloadBuilder::new(3, n).points(PointDistribution::UniformCube { side: 1 << 20 });
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let build = machine.take_stats();
    let rep = tree.structure_report();
    // s in words ≈ total nodes × a small constant; h must be O(s/p).
    let s_words = rep.total_nodes * 4;
    assert!(
        build.max_h() <= s_words / p as u64 * 8,
        "build h = {} exceeds O(s/p) = {}",
        build.max_h(),
        s_words / p as u64
    );
}

/// The per-label superstep breakdown exposes the algorithm structure:
/// construction must contain exactly d sort rounds (plus their sample
/// exchanges), d deals and d root broadcasts.
#[test]
fn construction_superstep_structure() {
    let machine = Machine::new(4).unwrap();
    let pts: Vec<Point<2>> =
        WorkloadBuilder::new(4, 512).points(PointDistribution::UniformCube { side: 4096 });
    DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let stats = machine.take_stats();
    let by: Vec<(&str, usize, u64)> = stats.by_label();
    let count_of = |label: &str| by.iter().find(|(l, ..)| *l == label).map_or(0, |(_, n, _)| *n);
    assert_eq!(count_of("sort"), 2, "one sort exchange per dimension: {by:?}");
    assert_eq!(count_of("all_to_all"), 2, "one deal per dimension: {by:?}");
    // all_gather: d sample rounds + d scans + d summary broadcasts.
    assert!(count_of("all_gather") >= 4, "{by:?}");
}

/// Identical machines and inputs give identical statistics
/// (determinism of the whole pipeline).
#[test]
fn stats_are_deterministic() {
    let (b1, c1, r1) = build_and_query(4, 512);
    let (b2, c2, r2) = build_and_query(4, 512);
    assert_eq!(b1.rounds, b2.rounds);
    assert_eq!(c1.rounds, c2.rounds);
    assert_eq!(r1.rounds, r2.rounds);
}
