//! Seeded-deterministic concurrency stress: the 8-thread interleaving
//! scenario of `tests/service.rs` run against the *sharded* service with
//! a fixed RNG seed per thread, pinning the exact commit-seq replay
//! transcript:
//!
//! * commit sequences are duplicate-free and **dense** — every seq in
//!   `0..N` appears exactly once across all committed responses (no
//!   request slips through uncommitted, none commits twice),
//! * replaying the transcript in seq order through the sequential
//!   oracle reproduces every committed response exactly, and
//! * the final store (which depends only on the set of committed writes,
//!   not on the OS interleaving) is identical across two runs with the
//!   same seed.

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

use ddrs::prelude::*;
use ddrs::rangetree::BuildError;
use ddrs::service::ServiceError;

/// splitmix64, as in tests/service.rs — fixed seeds, reproducible boxes.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn rect(&mut self) -> Rect<2> {
        let x = (self.next() % 700) as i64;
        let y = (self.next() % 500) as i64;
        let w = (self.next() % 400) as i64;
        let h = (self.next() % 300) as i64;
        Rect::new([x, y], [x + w, y + h])
    }
}

fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
    range
        .map(|i| {
            Point::weighted(
                [((i * 193) % 777) as i64, ((i * 71) % 555) as i64],
                i,
                1 + i as u64 % 5,
            )
        })
        .collect()
}

struct Oracle {
    pts: Vec<Point<2>>,
    ids: HashSet<u32>,
}

impl Oracle {
    fn new(initial: &[Point<2>]) -> Self {
        Oracle { pts: initial.to_vec(), ids: initial.iter().map(|p| p.id).collect() }
    }

    fn count(&self, q: &Rect<2>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    fn aggregate(&self, q: &Rect<2>) -> Option<u64> {
        self.pts.iter().filter(|p| q.contains(p)).map(|p| p.weight).reduce(|a, b| a + b)
    }

    fn report(&self, q: &Rect<2>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn insert(&mut self, batch: &[Point<2>]) {
        for p in batch {
            assert!(self.ids.insert(p.id), "committed insert of live id {}", p.id);
        }
        self.pts.extend_from_slice(batch);
    }

    fn delete(&mut self, ids: &[u32]) {
        let dead: HashSet<u32> = ids.iter().copied().collect();
        self.pts.retain(|p| !dead.contains(&p.id));
        self.ids.retain(|id| !dead.contains(id));
    }
}

enum Event {
    Count(Rect<2>, u64),
    Aggregate(Rect<2>, Option<u64>),
    Report(Rect<2>, Vec<u32>),
    Insert(Vec<Point<2>>),
    Delete(Vec<u32>),
}

/// One full 8-thread run with the given seed base; returns the sorted
/// final id set of the sharded store.
fn stress_run(seed_base: u64) -> Vec<u32> {
    let initial = pts(0..200);
    let machines: Vec<Machine> = (0..4).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        32,
        &initial,
        Sum,
        PartitionPolicy::range_from_sample(4, &initial),
        ShardedConfig {
            max_batch: 24,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    )
    .unwrap();

    let events: Mutex<Vec<(u64, Event)>> = Mutex::new(Vec::new());
    let rejections: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let service = &service;
            let events = &events;
            let rejections = &rejections;
            s.spawn(move || {
                let mut rng = TestRng(t as u64 * 6151 + seed_base);
                let mut local = Vec::new();
                // Per-thread private id range keeps inserts conflict-free;
                // the deliberate conflict races id 999 below.
                let base = 10_000 + t * 1_000;
                let mut owned: Vec<u32> = Vec::new();
                let mut next_id = base;
                for i in 0u32..36 {
                    if i % 6 == 5 {
                        let batch: Vec<Point<2>> = (0..4)
                            .map(|k| {
                                let id = next_id + k;
                                Point::weighted(
                                    [(rng.next() % 777) as i64, (rng.next() % 555) as i64],
                                    id,
                                    1 + id as u64 % 7,
                                )
                            })
                            .collect();
                        next_id += 4;
                        let c = service.insert(batch.clone()).unwrap().wait().unwrap();
                        owned.extend(batch.iter().map(|p| p.id));
                        local.push((c.seq, Event::Insert(batch)));
                    } else if i % 9 == 8 && owned.len() >= 3 {
                        let victims: Vec<u32> = owned.drain(..3).collect();
                        let c = service.delete(victims.clone()).unwrap().wait().unwrap();
                        local.push((c.seq, Event::Delete(victims)));
                    } else {
                        let q = rng.rect();
                        match i % 3 {
                            0 => {
                                let c = service.count(q).unwrap().wait().unwrap();
                                local.push((c.seq, Event::Count(q, c.value)));
                            }
                            1 => {
                                let a = service.aggregate(q).unwrap().wait().unwrap();
                                local.push((a.seq, Event::Aggregate(q, a.value)));
                            }
                            _ => {
                                let r = service.report(q).unwrap().wait().unwrap();
                                local.push((r.seq, Event::Report(q, r.value)));
                            }
                        }
                    }
                }
                // The deliberate conflict: everyone races to insert id 999.
                match service.insert(vec![Point::weighted([1, 1], 999, 1)]).unwrap().wait() {
                    Ok(c) => {
                        local.push((c.seq, Event::Insert(vec![Point::weighted([1, 1], 999, 1)])))
                    }
                    Err(e) => rejections.lock().unwrap().push(e),
                }
                events.lock().unwrap().extend(local);
            });
        }
    });

    // Exactly one racer wins id 999.
    let rejections = rejections.into_inner().unwrap();
    assert_eq!(rejections.len(), 7, "one insert of id 999 must win");
    for e in &rejections {
        assert_eq!(*e, ServiceError::Rejected(BuildError::DuplicateId(999)));
    }

    let stats = service.stats();
    assert!(stats.write_epochs >= 1, "updates must have applied in epochs");
    assert!(stats.machine.runs >= 1);
    for snap in &stats.per_shard {
        assert!(snap.poisoned.is_none(), "no faults were injected");
    }

    let parts = service.shutdown();
    let mut events = events.into_inner().unwrap();

    // ── The pinned transcript ────────────────────────────────────────
    // Dense, duplicate-free seqs: every committed response occupies
    // exactly one slot of 0..N. (Requests were 8 × 37, minus the 7
    // losing racers which commit nothing.)
    events.sort_by_key(|(seq, _)| *seq);
    assert_eq!(events.len(), 8 * 37 - 7);
    for (expect, (seq, _)) in events.iter().enumerate() {
        assert_eq!(*seq, expect as u64, "commit seqs must be dense from 0");
    }

    // Seq-ordered oracle replay reproduces every committed response.
    let mut oracle = Oracle::new(&initial);
    for (seq, ev) in &events {
        match ev {
            Event::Count(q, observed) => {
                assert_eq!(oracle.count(q), *observed, "count diverged at seq {seq}")
            }
            Event::Aggregate(q, observed) => {
                assert_eq!(oracle.aggregate(q), *observed, "aggregate diverged at seq {seq}")
            }
            Event::Report(q, observed) => {
                assert_eq!(oracle.report(q), *observed, "report diverged at seq {seq}")
            }
            Event::Insert(batch) => oracle.insert(batch),
            Event::Delete(ids) => oracle.delete(ids),
        }
    }

    // The sharded union equals the oracle end state.
    let mut ids: Vec<u32> = parts.iter().flat_map(|(_, t)| t.points().map(|p| p.id)).collect();
    ids.sort_unstable();
    let mut oracle_ids: Vec<u32> = oracle.ids.into_iter().collect();
    oracle_ids.sort_unstable();
    assert_eq!(ids, oracle_ids);
    ids
}

/// The interleaving scenario, seeded. The OS may schedule differently
/// across runs, but the committed-write set is seed-deterministic, so
/// the final store must be bit-for-bit reproducible.
#[test]
fn seeded_stress_pins_the_replay_transcript() {
    let first = stress_run(11);
    let second = stress_run(11);
    assert_eq!(first, second, "same seed ⇒ same final store, whatever the interleaving");
    // Under `lock-check` (or any debug build) the tracked-lock runtime
    // watched every acquisition above; the stress run must not have
    // recorded a single lock-order inversion.
    let reports = ddrs::check::lock_order_reports();
    assert!(reports.is_empty(), "lock-order inversions under stress:\n{}", reports.join("\n"));
}

/// The hash-policy variant: every read is a *point lookup* (degenerate
/// interval), which the router must route to exactly one shard — so the
/// whole 8-client run finishes with a mean read fan-out of exactly 1.0
/// while the same seq-order oracle replay holds. This is the concurrent
/// serializability pin for single-shard routing: lookups race against
/// key-routed inserts and deletes on every shard at once, and each
/// committed response must still match the oracle at its commit seq.
#[test]
fn hash_point_lookup_stress_routes_singly_and_replays() {
    let initial = pts(0..200);
    let machines: Vec<Machine> = (0..4).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        32,
        &initial,
        Sum,
        PartitionPolicy::Hash,
        ShardedConfig {
            max_batch: 24,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
    )
    .unwrap();

    let events: Mutex<Vec<(u64, Event)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let service = &service;
            let events = &events;
            s.spawn(move || {
                let mut rng = TestRng(t as u64 * 9173 + 29);
                let mut local = Vec::new();
                let base = 20_000 + t * 1_000;
                let mut owned: Vec<Point<2>> = Vec::new();
                let mut next_id = base;
                for i in 0u32..32 {
                    if i % 8 == 3 {
                        // Insert two points at fresh private coordinates.
                        let batch: Vec<Point<2>> = (0..2)
                            .map(|k| {
                                let id = next_id + k;
                                Point::weighted(
                                    [1_000 + id as i64, (rng.next() % 555) as i64],
                                    id,
                                    1 + id as u64 % 7,
                                )
                            })
                            .collect();
                        next_id += 2;
                        let c = service.insert(batch.clone()).unwrap().wait().unwrap();
                        owned.extend(batch.iter().copied());
                        local.push((c.seq, Event::Insert(batch)));
                    } else if i % 8 == 7 && owned.len() >= 2 {
                        let victims: Vec<u32> = owned.drain(..2).map(|p| p.id).collect();
                        let c = service.delete(victims.clone()).unwrap().wait().unwrap();
                        local.push((c.seq, Event::Delete(victims)));
                    } else {
                        // A point lookup: at a base coordinate, at one of
                        // our own (possibly already deleted) points, or
                        // at a vacant spot — all degenerate intervals.
                        let at = match rng.next() % 3 {
                            0 => {
                                let j = (rng.next() % 200) as u32;
                                [((j * 193) % 777) as i64, ((j * 71) % 555) as i64]
                            }
                            1 if !owned.is_empty() => {
                                owned[rng.next() as usize % owned.len()].coords
                            }
                            _ => [(rng.next() % 5_000) as i64, (rng.next() % 5_000) as i64],
                        };
                        let q = Rect::new(at, at);
                        if i % 2 == 0 {
                            let c = service.count(q).unwrap().wait().unwrap();
                            local.push((c.seq, Event::Count(q, c.value)));
                        } else {
                            let r = service.report(q).unwrap().wait().unwrap();
                            local.push((r.seq, Event::Report(q, r.value)));
                        }
                    }
                }
                events.lock().unwrap().extend(local);
            });
        }
    });

    // Every routed read was a point lookup, so routing must be minimal.
    let stats = service.stats();
    assert!(stats.read_ops_routed >= 8 * 20, "expected a lookup-heavy run: {stats:?}");
    assert_eq!(
        stats.mean_read_fanout(),
        1.0,
        "hash point lookups must touch exactly one shard each"
    );

    let parts = service.shutdown();
    let mut events = events.into_inner().unwrap();

    // Dense, duplicate-free seqs and an exact oracle replay, as in the
    // range-policy scenario.
    events.sort_by_key(|(seq, _)| *seq);
    assert_eq!(events.len(), 8 * 32);
    for (expect, (seq, _)) in events.iter().enumerate() {
        assert_eq!(*seq, expect as u64, "commit seqs must be dense from 0");
    }
    let mut oracle = Oracle::new(&initial);
    for (seq, ev) in &events {
        match ev {
            Event::Count(q, observed) => {
                assert_eq!(oracle.count(q), *observed, "count diverged at seq {seq}")
            }
            Event::Aggregate(q, observed) => {
                assert_eq!(oracle.aggregate(q), *observed, "aggregate diverged at seq {seq}")
            }
            Event::Report(q, observed) => {
                assert_eq!(oracle.report(q), *observed, "report diverged at seq {seq}")
            }
            Event::Insert(batch) => oracle.insert(batch),
            Event::Delete(ids) => oracle.delete(ids),
        }
    }
    let mut ids: Vec<u32> = parts.iter().flat_map(|(_, t)| t.points().map(|p| p.id)).collect();
    ids.sort_unstable();
    let mut oracle_ids: Vec<u32> = oracle.ids.into_iter().collect();
    oracle_ids.sort_unstable();
    assert_eq!(ids, oracle_ids);
}
