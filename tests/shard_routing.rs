//! Routing-minimality regression pins for the shard-aware dispatch
//! pipeline: the router must enqueue work on exactly the shards that can
//! hold matching points, and nothing else.
//!
//! * a hash-policy *point* lookup (degenerate interval) recomputes the
//!   placement mix and touches exactly ONE shard,
//! * key-routed writes touch exactly the owning shards,
//! * a range-policy query spanning two of four slabs touches exactly
//!   those two, and
//! * a mixed cross-shard read window costs at most one fused run per
//!   *touched* shard — untouched shards run nothing.
//!
//! The only surviving full fan-outs are a genuinely unbounded
//! hash-policy range scan (coordinate hashing destroys locality) and
//! hash-policy point lookups *after* a rebalance migration (the
//! placement mix no longer predicts residency) — both pinned so a
//! future change that silently re-widens or re-narrows routing fails
//! here.

use std::time::Duration;

use ddrs::prelude::*;

fn machines(s: usize, p: usize) -> Vec<Machine> {
    (0..s).map(|_| Machine::new(p).unwrap()).collect()
}

fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
    range
        .map(|i| {
            Point::weighted(
                [((i * 193) % 777) as i64, ((i * 71) % 555) as i64],
                i,
                1 + i as u64 % 5,
            )
        })
        .collect()
}

fn quick(policy: PartitionPolicy) -> ShardedService<Sum, 2> {
    ShardedService::start(
        machines(4, 1),
        16,
        &pts(0..64),
        Sum,
        policy,
        ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
    )
    .unwrap()
}

/// Shards-touched deltas around one operation, via the routing counters.
fn fanout_of(service: &ShardedService<Sum, 2>, op: impl FnOnce()) -> (u64, u64) {
    let before = service.stats();
    op();
    let after = service.stats();
    (
        after.read_ops_routed - before.read_ops_routed,
        after.read_shards_touched - before.read_shards_touched,
    )
}

#[test]
fn hash_point_ops_touch_exactly_one_shard() {
    let service = quick(PartitionPolicy::Hash);
    // Point lookups at live coordinates, across all three read modes.
    for i in [0u32, 17, 40] {
        let at = [((i * 193) % 777) as i64, ((i * 71) % 555) as i64];
        let q = Rect::new(at, at);
        let (routed, touched) = fanout_of(&service, || {
            assert_eq!(service.count(q).unwrap().wait().unwrap().value, 1);
        });
        assert_eq!((routed, touched), (1, 1), "hash point count must route to one shard");
        let (routed, touched) = fanout_of(&service, || {
            assert_eq!(service.report(q).unwrap().wait().unwrap().value, vec![i]);
        });
        assert_eq!((routed, touched), (1, 1), "hash point report must route to one shard");
    }
    // A lookup at a vacant coordinate still routes to exactly the one
    // shard that *would* own it.
    let vacant = Rect::new([5000, 5000], [5000, 5000]);
    let (routed, touched) = fanout_of(&service, || {
        assert_eq!(service.count(vacant).unwrap().wait().unwrap().value, 0);
    });
    assert_eq!((routed, touched), (1, 1));
    assert_eq!(service.stats().mean_read_fanout(), 1.0, "a point-only workload is fanout-1");
    service.shutdown();
}

#[test]
fn hash_writes_route_to_owning_shards_only() {
    let service = quick(PartitionPolicy::Hash);
    let before = service.stats();
    // One point = one owning shard = a single-shard epoch.
    service.insert(vec![Point::weighted([900, 900], 5000, 1)]).unwrap().wait().unwrap();
    let mid = service.stats();
    assert_eq!(mid.write_epochs - before.write_epochs, 1);
    assert_eq!(
        mid.write_shards_touched - before.write_shards_touched,
        1,
        "a one-point insert must touch exactly its owning shard"
    );
    // Deleting that key routes through the ownership index to the same
    // single shard.
    service.delete(vec![5000]).unwrap().wait().unwrap();
    let after = service.stats();
    assert_eq!(after.write_shards_touched - mid.write_shards_touched, 1);
    service.shutdown();
}

#[test]
fn range_query_spanning_two_of_four_slabs_touches_two() {
    // Four explicit slabs on axis 0: [−∞,100) [100,200) [200,300) [300,∞).
    let service = ShardedService::start(
        machines(4, 1),
        16,
        &(0..80u32)
            .map(|i| Point::weighted([(i as i64 % 8) * 50, (i / 8) as i64], i, 1))
            .collect::<Vec<_>>(),
        Sum,
        PartitionPolicy::Range { bounds: vec![100, 200, 300] },
        ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
    )
    .unwrap();
    let spans = [
        (Rect::new([0, 0], [99, 99]), 1u64), // slab 0 only
        (Rect::new([120, 0], [250, 99]), 2), // slabs 1–2
        (Rect::new([0, 0], [399, 99]), 4),   // all four
        (Rect::new([310, 0], [900, 99]), 1), // slab 3 only
    ];
    for (q, want) in spans {
        let (routed, touched) = fanout_of(&service, || {
            service.count(q).unwrap().wait().unwrap();
        });
        assert_eq!(routed, 1);
        assert_eq!(touched, want, "range query {q:?} must touch exactly {want} slab(s)");
    }
    service.shutdown();
}

/// One mixed window of counts, aggregates and reports spanning several
/// slabs plans into AT MOST one fused sub-batch — hence at most one
/// machine run — per touched shard, and zero on untouched shards,
/// verified through the per-shard RunStats rollups.
#[test]
fn mixed_cross_shard_window_runs_once_per_touched_shard() {
    let service = ShardedService::start(
        machines(4, 1),
        16,
        &(0..80u32)
            .map(|i| Point::weighted([(i as i64 % 8) * 50, (i / 8) as i64], i, 1))
            .collect::<Vec<_>>(),
        Sum,
        PartitionPolicy::Range { bounds: vec![100, 200, 300] },
        // A wide delay coalesces the whole request list into one window.
        ShardedConfig { max_batch: 9, max_delay: Duration::from_secs(2), ..Default::default() },
    )
    .unwrap();
    let before = service.stats();
    // 9 reads, all confined to slabs 0–1: shard 2 and 3 must stay idle.
    let low = Rect::new([0, 0], [199, 99]);
    let lower = Rect::new([0, 0], [99, 99]);
    let mut req = Request::new();
    let mut counts = Vec::new();
    let mut aggs = Vec::new();
    let mut reps = Vec::new();
    for _ in 0..3 {
        counts.push(req.count(low));
        aggs.push(req.aggregate(lower));
        reps.push(req.report(lower));
    }
    let resp = service.submit(req).unwrap().wait().unwrap().value;
    assert_eq!(resp.count(counts[0]), 40);
    let after = service.stats();
    for shard in 0..2 {
        let runs = after.per_shard[shard].machine.runs - before.per_shard[shard].machine.runs;
        assert_eq!(runs, 1, "touched shard {shard} must execute exactly one fused run");
    }
    for shard in 2..4 {
        let runs = after.per_shard[shard].machine.runs - before.per_shard[shard].machine.runs;
        assert_eq!(runs, 0, "untouched shard {shard} must not run at all");
    }
    assert_eq!(after.dispatches - before.dispatches, 1, "one window, one dispatch");
    assert_eq!(after.read_shards_touched - before.read_shards_touched, 3 * 2 + 6);
    service.shutdown();
}

/// A hash-policy rebalance migration moves points away from the shard
/// the placement mix predicts, so the single-shard point-lookup fast
/// path is permanently given up from the first split onward: degenerate
/// reads fan out to every shard and keep returning exact answers for
/// migrated points (a silent wrong-shard miss is not an acceptable
/// routing optimisation).
#[test]
fn hash_point_routing_widens_after_a_split_migration() {
    let service = quick(PartitionPolicy::Hash);
    let at = [((17u32 * 193) % 777) as i64, ((17u32 * 71) % 555) as i64];
    let q = Rect::new(at, at);
    let (routed, touched) = fanout_of(&service, || {
        assert_eq!(service.count(q).unwrap().wait().unwrap().value, 1);
    });
    assert_eq!((routed, touched), (1, 1), "pre-split point lookup routes to one shard");
    let report = service.split_shard(0).unwrap().wait().unwrap().value;
    assert!(report.moved > 0, "split must migrate points: {report:?}");
    let (routed, touched) = fanout_of(&service, || {
        assert_eq!(service.count(q).unwrap().wait().unwrap().value, 1);
    });
    assert_eq!(
        (routed, touched),
        (1, 4),
        "post-split point lookup must fan out everywhere (exactness over minimality)"
    );
    service.shutdown();
}

/// The documented surviving fan-out: a hash-policy range scan wider than
/// a point cannot be narrowed (hashing destroys locality) and must visit
/// every shard — pinned so the boundary of the optimisation is explicit.
#[test]
fn unbounded_hash_scan_still_fans_out_everywhere() {
    let service = quick(PartitionPolicy::Hash);
    let wide = Rect::new([0, 0], [800, 600]);
    let (routed, touched) = fanout_of(&service, || {
        assert_eq!(service.count(wide).unwrap().wait().unwrap().value, 64);
    });
    assert_eq!(routed, 1);
    assert_eq!(touched, 4, "a non-degenerate hash-policy scan must visit all shards");
    service.shutdown();
}
