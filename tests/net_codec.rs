//! Codec robustness battery: the wire decoder must survive **every**
//! truncation offset and **every** single-bit corruption of a valid
//! frame with a clean, typed protocol error — never a panic, never a
//! hang, never a silently different decode.
//!
//! The frames under attack are a maximal request (all five op kinds, a
//! deadline, a consistency bound) and a maximal response (both outcome
//! arms' worth of result shapes), plus a live server fed raw garbage.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ddrs::cgm::Machine;
use ddrs::client::{Commit, InlineStore, Request, Response};
use ddrs::net::codec::{
    decode_request, decode_server_msg, encode_request, encode_response, read_frame, FrameError,
    ServerMsg, FRAME_HEADER,
};
use ddrs::net::{NetConfig, NetServer, RemoteConfig, RemoteStore};
use ddrs::rangetree::{BuildError, DynamicDistRangeTree, Point, Rect, Sum};
use ddrs::service::ServiceError;

fn sample_request() -> Request<Sum, 2> {
    let mut req = Request::new();
    req.insert(vec![Point::weighted([3, 4], 7, 2), Point::weighted([-5, 6], 8, 1)]);
    req.delete(vec![1, 2, 9]);
    req.count(Rect::new([0, 0], [10, 10]));
    req.count(Rect::new([-4, -4], [4, 4]));
    req.aggregate(Rect::new([1, 1], [9, 9]));
    req.report(Rect::new([2, 2], [8, 8]));
    req.deadline(Some(Duration::from_millis(250)));
    req.consistency(ddrs::client::Consistency::AtLeast(41));
    req
}

fn sample_response_frame() -> Vec<u8> {
    let resp: Response<Sum> = Response {
        counts: vec![4, 0],
        aggregates: vec![Some(17), None],
        reports: vec![vec![1, 2, 3], vec![]],
        writes: vec![Ok(()), Err(ServiceError::Rejected(BuildError::DuplicateId(7)))],
    };
    encode_response::<Sum>(5, &Ok(Commit { value: resp, seq: 12 }))
}

/// Requests compare field-by-field through the public read accessors.
fn same_request(a: &Request<Sum, 2>, b: &Request<Sum, 2>) -> bool {
    a.count_queries() == b.count_queries()
        && a.aggregate_queries() == b.aggregate_queries()
        && a.report_queries() == b.report_queries()
        && a.queue_deadline() == b.queue_deadline()
        && a.read_consistency() == b.read_consistency()
        && a.write_ops().eq(b.write_ops())
}

#[test]
fn every_truncation_of_a_request_frame_fails_clean() {
    let frame = encode_request(99, &sample_request());
    // Frame level: a stream cut anywhere inside the frame is a protocol
    // error; a cut before the first byte is a clean EOF.
    for cut in 0..frame.len() {
        let mut cursor = Cursor::new(&frame[..cut]);
        match read_frame(&mut cursor) {
            Ok(None) => assert_eq!(cut, 0, "EOF mid-frame at {cut} must not read as clean"),
            Ok(Some(_)) => panic!("truncation at {cut} produced a full frame"),
            Err(FrameError::Protocol(_)) => assert!(cut > 0),
            Err(FrameError::Io(e)) => panic!("truncation at {cut} surfaced io: {e}"),
        }
    }
    // Payload level: every prefix of the payload is a decode error.
    let payload = &frame[FRAME_HEADER..];
    assert!(decode_request::<Sum, 2>(payload).is_ok(), "the intact payload must decode");
    for cut in 0..payload.len() {
        assert!(
            decode_request::<Sum, 2>(&payload[..cut]).is_err(),
            "payload truncated at {cut} decoded"
        );
    }
}

#[test]
fn every_truncation_of_a_response_frame_fails_clean() {
    let frame = sample_response_frame();
    for cut in 0..frame.len() {
        let mut cursor = Cursor::new(&frame[..cut]);
        match read_frame(&mut cursor) {
            Ok(None) => assert_eq!(cut, 0),
            Ok(Some(_)) => panic!("truncation at {cut} produced a full frame"),
            Err(FrameError::Protocol(_)) => assert!(cut > 0),
            Err(FrameError::Io(e)) => panic!("truncation at {cut} surfaced io: {e}"),
        }
    }
    let payload = &frame[FRAME_HEADER..];
    assert!(decode_server_msg::<Sum>(payload).is_ok());
    for cut in 0..payload.len() {
        assert!(
            decode_server_msg::<Sum>(&payload[..cut]).is_err(),
            "payload truncated at {cut} decoded"
        );
    }
}

#[test]
fn every_bitflip_of_a_request_frame_is_detected() {
    let frame = encode_request(99, &sample_request());
    let original = decode_request::<Sum, 2>(&frame[FRAME_HEADER..]).unwrap();
    for i in 0..frame.len() {
        for bit in 0..8u8 {
            let mut bad = frame.clone();
            bad[i] ^= 1 << bit;
            let mut cursor = Cursor::new(bad);
            match read_frame(&mut cursor) {
                // Framing caught it (checksum mismatch, bad length) —
                // the common case for any flip.
                Err(FrameError::Protocol(_)) => {}
                Err(FrameError::Io(e)) => panic!("flip {i}.{bit} surfaced io: {e}"),
                Ok(None) => panic!("flip {i}.{bit} read as clean EOF"),
                Ok(Some(payload)) => {
                    // If some flip slips the frame through, the decode
                    // must either reject it or reproduce the original
                    // exactly — never a silently different request.
                    match decode_request::<Sum, 2>(&payload) {
                        Err(_) => {}
                        Ok((id, req)) => {
                            assert_eq!(id, original.0, "flip {i}.{bit} silently changed the id");
                            assert!(
                                same_request(&req, &original.1),
                                "flip {i}.{bit} silently changed the request"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn every_bitflip_of_a_response_frame_is_detected() {
    let frame = sample_response_frame();
    for i in 0..frame.len() {
        for bit in 0..8u8 {
            let mut bad = frame.clone();
            bad[i] ^= 1 << bit;
            let mut cursor = Cursor::new(bad);
            match read_frame(&mut cursor) {
                Err(FrameError::Protocol(_)) => {}
                Err(FrameError::Io(e)) => panic!("flip {i}.{bit} surfaced io: {e}"),
                Ok(None) => panic!("flip {i}.{bit} read as clean EOF"),
                Ok(Some(payload)) => {
                    if let Ok(ServerMsg::Response { req_id, outcome }) =
                        decode_server_msg::<Sum>(&payload)
                    {
                        let want = decode_server_msg::<Sum>(&frame[FRAME_HEADER..]).unwrap();
                        let ServerMsg::Response { req_id: wid, outcome: wout } = want else {
                            unreachable!()
                        };
                        assert_eq!(req_id, wid, "flip {i}.{bit} silently changed the id");
                        assert_eq!(outcome, wout, "flip {i}.{bit} silently changed the outcome");
                    }
                }
            }
        }
    }
}

fn inline_store() -> InlineStore<Sum, 2> {
    let machine = Machine::new(1).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(8);
    tree.insert_batch(&machine, &[Point::weighted([1, 1], 1, 10)]).unwrap();
    InlineStore::new(machine, tree, Sum)
}

#[test]
fn a_garbage_stream_is_refused_and_the_server_keeps_serving() {
    let server =
        NetServer::serve(Box::new(inline_store()), "127.0.0.1:0", NetConfig::default()).unwrap();

    // A raw connection speaking nonsense: read the Hello, then send a
    // frame whose checksum cannot match.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let hello = read_frame(&mut raw).unwrap().expect("hello frame");
    assert!(matches!(decode_server_msg::<Sum>(&hello), Ok(ServerMsg::Hello { dim: 2, .. })));
    let mut garbage = encode_request(7, &sample_request());
    let last = garbage.len() - 1;
    garbage[last] ^= 0xFF;
    raw.write_all(&garbage).unwrap();

    // The server answers with a typed protocol refusal and closes.
    let refusal = read_frame(&mut raw).unwrap().expect("refusal frame");
    assert!(matches!(
        decode_server_msg::<Sum>(&refusal),
        Ok(ServerMsg::Refused { reason: ddrs::net::RefusedReason::Protocol, .. })
    ));
    let mut rest = Vec::new();
    assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "connection must be closed");
    assert!(server.stats().decode_errors >= 1);

    // The poisoned byte stream cost only its own connection: a fresh
    // client still gets correct answers.
    let store: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();
    let mut req = Request::new();
    let c = req.count(Rect::new([0, 0], [10, 10]));
    let commit = ddrs::client::RangeStore::submit(&store, req).unwrap().wait().unwrap();
    assert_eq!(commit.value.count(c), 1);
    drop(store);
    server.shutdown();
}
