//! Differential tests: the sharded service must be observationally
//! identical to the unsharded service and to a flat sequential oracle —
//! same values, same rejection verdicts, same dense global commit
//! sequences — across shard counts S ∈ {1, 2, 4}, machine sizes
//! p ∈ {1, 2, 4}, dimensions d ∈ {1, 2, 3}, both partition policies, and
//! mixed read/write streams with racing duplicate inserts.
//!
//! Plus the router cost pin: a mixed cross-shard read window coalesces
//! into at most one fused sub-batch per shard, so it costs ≤ S machine
//! runs however many queries it carried (asserted via `RunStats`).

use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;

use ddrs::prelude::*;
use ddrs::rangetree::BuildError;
use ddrs::service::ServiceError;

type RawPoint = (i64, i64, i64, u64);
type RawRect = ((i64, i64, i64), (i64, i64, i64));

fn to_point<const D: usize>(raw: RawPoint, id: u32) -> Point<D> {
    let (x, y, z, w) = raw;
    let all = [x, y, z];
    let mut coords = [0i64; D];
    coords.copy_from_slice(&all[..D]);
    Point::weighted(coords, id, 1 + w % 9)
}

fn to_rect<const D: usize>(raw: RawRect) -> Rect<D> {
    let (lo, hi) = raw;
    let lo_all = [lo.0, lo.1, lo.2];
    let hi_all = [hi.0, hi.1, hi.2];
    let mut a = [0i64; D];
    let mut b = [0i64; D];
    for j in 0..D {
        a[j] = lo_all[j].min(hi_all[j]);
        b[j] = lo_all[j].max(hi_all[j]);
    }
    Rect::new(a, b)
}

/// The flat oracle: a vector of points with the store's validation rules.
struct Oracle<const D: usize> {
    pts: Vec<Point<D>>,
    ids: HashSet<u32>,
}

impl<const D: usize> Oracle<D> {
    fn new(initial: &[Point<D>]) -> Self {
        Oracle { pts: initial.to_vec(), ids: initial.iter().map(|p| p.id).collect() }
    }

    fn count(&self, q: &Rect<D>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    fn aggregate(&self, q: &Rect<D>) -> Option<u64> {
        self.pts.iter().filter(|p| q.contains(p)).map(|p| p.weight).reduce(|a, b| a + b)
    }

    fn report(&self, q: &Rect<D>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn insert(&mut self, batch: &[Point<D>]) -> Result<(), BuildError> {
        let mut seen = HashSet::new();
        for p in batch {
            if self.ids.contains(&p.id) || !seen.insert(p.id) {
                return Err(BuildError::DuplicateId(p.id));
            }
        }
        self.ids.extend(seen);
        self.pts.extend_from_slice(batch);
        Ok(())
    }

    fn delete(&mut self, ids: &[u32]) {
        let dead: HashSet<u32> = ids.iter().copied().collect();
        self.pts.retain(|p| !dead.contains(&p.id));
        self.ids.retain(|id| !dead.contains(id));
    }
}

fn sharded_start<const D: usize>(
    s: usize,
    p: usize,
    range_policy: bool,
    initial: &[Point<D>],
) -> ShardedService<Sum, D> {
    let machines: Vec<Machine> = (0..s).map(|_| Machine::new(p).unwrap()).collect();
    let policy = if range_policy {
        PartitionPolicy::range_from_sample(s, initial)
    } else {
        PartitionPolicy::Hash
    };
    ShardedService::start(
        machines,
        8,
        initial,
        Sum,
        policy,
        ShardedConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    )
    .unwrap()
}

fn single_start<const D: usize>(p: usize, initial: &[Point<D>]) -> Service<Sum, D> {
    let machine = Machine::new(p).unwrap();
    let mut tree = DynamicDistRangeTree::<D>::new(8);
    if !initial.is_empty() {
        tree.insert_batch(&machine, initial).unwrap();
    }
    Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    )
}

/// One differential case: a sequential mixed stream (exact three-way
/// equality, committed responses *and* commit seqs), then a racing
/// duplicate-insert phase, then final-state equality.
fn run_case<const D: usize>(
    s: usize,
    p: usize,
    range_policy: bool,
    raw_pts: Vec<RawPoint>,
    ops: Vec<(u8, RawRect, usize)>,
) {
    let all_pts: Vec<Point<D>> =
        raw_pts.iter().enumerate().map(|(i, &r)| to_point(r, i as u32)).collect();
    let half = all_pts.len() / 2;
    let initial = &all_pts[..half];
    let mut fresh = all_pts[half..].iter();

    let mut oracle = Oracle::new(initial);
    let sharded = sharded_start(s, p, range_policy, initial);
    let single = single_start(p, initial);

    for (kind, raw_rect, pick) in ops {
        match kind % 5 {
            0 | 1 => {
                let q = to_rect::<D>(raw_rect);
                let a = sharded.count(q).unwrap().wait().unwrap();
                let b = single.count(q).unwrap().wait().unwrap();
                assert_eq!(a.value, oracle.count(&q), "sharded count diverged");
                assert_eq!(b.value, a.value, "single count diverged");
                assert_eq!(a.seq, b.seq, "global seqs diverged");
            }
            2 => {
                let q = to_rect::<D>(raw_rect);
                let a = sharded.aggregate(q).unwrap().wait().unwrap();
                let b = single.aggregate(q).unwrap().wait().unwrap();
                assert_eq!(a.value, oracle.aggregate(&q), "sharded aggregate diverged");
                assert_eq!(b.value, a.value, "single aggregate diverged");
                assert_eq!(a.seq, b.seq);
            }
            3 => {
                let q = to_rect::<D>(raw_rect);
                let a = sharded.report(q).unwrap().wait().unwrap();
                let b = single.report(q).unwrap().wait().unwrap();
                assert_eq!(a.value, oracle.report(&q), "sharded report diverged");
                assert_eq!(b.value, a.value, "single report diverged");
                assert_eq!(a.seq, b.seq);
            }
            4 => {
                if pick % 3 == 2 && !oracle.pts.is_empty() {
                    // Delete a few live ids plus one certainly-dead one.
                    let n = oracle.pts.len();
                    let mut ids: Vec<u32> =
                        [pick % n, (pick + 7) % n].iter().map(|&i| oracle.pts[i].id).collect();
                    ids.push(u32::MAX - 1); // missing id: a no-op everywhere
                    let a = sharded.delete(ids.clone()).unwrap().wait().unwrap();
                    let b = single.delete(ids.clone()).unwrap().wait().unwrap();
                    assert_eq!(a.seq, b.seq);
                    oracle.delete(&ids);
                } else {
                    // Insert 1–3 fresh points, or re-insert a live id
                    // (a guaranteed sequential rejection) when starved.
                    let batch: Vec<Point<D>> = fresh.by_ref().take(1 + pick % 3).copied().collect();
                    let batch = if batch.is_empty() && !oracle.pts.is_empty() {
                        vec![oracle.pts[pick % oracle.pts.len()]]
                    } else {
                        batch
                    };
                    if batch.is_empty() {
                        continue;
                    }
                    let a = sharded.insert(batch.clone()).unwrap().wait();
                    let b = single.insert(batch.clone()).unwrap().wait();
                    match oracle.insert(&batch) {
                        Ok(()) => {
                            let (a, b) = (a.unwrap(), b.unwrap());
                            assert_eq!(a.seq, b.seq);
                        }
                        Err(e) => {
                            assert_eq!(a, Err(ServiceError::Rejected(e.clone())));
                            assert_eq!(b, Err(ServiceError::Rejected(e)));
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    // Racing duplicate inserts: three threads per service race the same
    // point; exactly one wins in each system, the rest are sequential
    // duplicate rejections, and the end state is identical either way.
    let race_pt: Point<D> = to_point((13, 21, 34, 5), 50_000);
    let ok_sharded = Mutex::new(0usize);
    let ok_single = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (sharded, single) = (&sharded, &single);
            let (ok_sharded, ok_single) = (&ok_sharded, &ok_single);
            scope.spawn(move || {
                match sharded.insert(vec![race_pt]).unwrap().wait() {
                    Ok(_) => *ok_sharded.lock().unwrap() += 1,
                    Err(e) => {
                        assert_eq!(e, ServiceError::Rejected(BuildError::DuplicateId(50_000)))
                    }
                }
                match single.insert(vec![race_pt]).unwrap().wait() {
                    Ok(_) => *ok_single.lock().unwrap() += 1,
                    Err(e) => {
                        assert_eq!(e, ServiceError::Rejected(BuildError::DuplicateId(50_000)))
                    }
                }
            });
        }
    });
    assert_eq!(*ok_sharded.lock().unwrap(), 1, "exactly one racer wins in the sharded service");
    assert_eq!(*ok_single.lock().unwrap(), 1, "exactly one racer wins in the single service");
    oracle.insert(&[race_pt]).unwrap();

    // Final state: all three agree, in aggregate and point-by-point.
    let everything = Rect::new([i64::MIN; D], [i64::MAX; D]);
    assert_eq!(sharded.count(everything).unwrap().wait().unwrap().value, oracle.pts.len() as u64);
    assert_eq!(single.count(everything).unwrap().wait().unwrap().value, oracle.pts.len() as u64);
    let parts = sharded.shutdown();
    assert_eq!(parts.len(), s);
    let mut sharded_ids: Vec<u32> =
        parts.iter().flat_map(|(_, t)| t.points().map(|p| p.id)).collect();
    sharded_ids.sort_unstable();
    let mut oracle_ids: Vec<u32> = oracle.ids.iter().copied().collect();
    oracle_ids.sort_unstable();
    assert_eq!(sharded_ids, oracle_ids, "sharded union must equal the oracle id set");
    let (_, tree) = single.shutdown();
    assert_eq!(tree.len(), oracle.pts.len());
}

fn arb_raw_points() -> impl Strategy<Value = Vec<RawPoint>> {
    prop::collection::vec((0i64..64, 0i64..64, 0i64..64, 0u64..50), 8..40)
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, RawRect, usize)>> {
    prop::collection::vec(
        (0u8..255, ((0i64..64, 0i64..64, 0i64..64), (0i64..64, 0i64..64, 0i64..64)), 0usize..1000),
        12..28,
    )
}

fn arb_shape() -> impl Strategy<Value = (usize, usize, bool)> {
    (0usize..3, 0usize..3, 0u8..2)
        .prop_map(|(si, pi, pol)| ([1usize, 2, 4][si], [1usize, 2, 4][pi], pol == 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_equals_single_equals_oracle_d1(
        shape in arb_shape(),
        pts in arb_raw_points(),
        ops in arb_ops(),
    ) {
        let (s, p, pol) = shape;
        run_case::<1>(s, p, pol, pts, ops);
    }

    #[test]
    fn sharded_equals_single_equals_oracle_d2(
        shape in arb_shape(),
        pts in arb_raw_points(),
        ops in arb_ops(),
    ) {
        let (s, p, pol) = shape;
        run_case::<2>(s, p, pol, pts, ops);
    }

    #[test]
    fn sharded_equals_single_equals_oracle_d3(
        shape in arb_shape(),
        pts in arb_raw_points(),
        ops in arb_ops(),
    ) {
        let (s, p, pol) = shape;
        run_case::<3>(s, p, pol, pts, ops);
    }
}

/// The acceptance pin for router cost: one coalesced window of mixed
/// count/aggregate/report queries spanning all four range slabs is
/// planned into exactly one fused sub-batch per shard — at most S = 4
/// machine runs for 12 queries, asserted via the RunStats rollup.
#[test]
fn mixed_cross_shard_window_costs_at_most_s_runs() {
    let s = 4;
    let initial: Vec<Point<2>> = (0..128u32)
        .map(|i| Point::weighted([(i % 64) as i64, (i / 2) as i64], i, 1 + i as u64 % 4))
        .collect();
    let machines: Vec<Machine> = (0..s).map(|_| Machine::new(2).unwrap()).collect();
    let service = ShardedService::start(
        machines,
        16,
        &initial,
        Sum,
        PartitionPolicy::range_uniform(s, 0, 64),
        ShardedConfig { max_batch: 12, max_delay: Duration::from_secs(2), ..Default::default() },
    )
    .unwrap();
    let spans = [
        Rect::new([0, 0], [63, 63]),  // all four slabs
        Rect::new([0, 0], [31, 63]),  // two slabs
        Rect::new([20, 0], [60, 63]), // three slabs
        Rect::new([50, 0], [63, 63]), // one slab
    ];
    let mut tickets_c = Vec::new();
    let mut tickets_a = Vec::new();
    let mut tickets_r = Vec::new();
    for i in 0..12usize {
        let q = spans[i % 4];
        match i % 3 {
            0 => tickets_c.push((q, service.count(q).unwrap())),
            1 => tickets_a.push((q, service.aggregate(q).unwrap())),
            _ => tickets_r.push((q, service.report(q).unwrap())),
        }
    }
    let oracle = Oracle::new(&initial);
    for (q, t) in tickets_c {
        assert_eq!(t.wait().unwrap().value, oracle.count(&q));
    }
    for (q, t) in tickets_a {
        assert_eq!(t.wait().unwrap().value, oracle.aggregate(&q));
    }
    for (q, t) in tickets_r {
        assert_eq!(t.wait().unwrap().value, oracle.report(&q));
    }
    let stats = service.stats();
    assert_eq!(stats.dispatches, 1, "12 queries, one window, one scatter-gather dispatch");
    assert!(
        stats.machine.runs as usize <= s,
        "a cross-shard read window must cost at most S = {s} machine runs, measured {}",
        stats.machine.runs
    );
    assert_eq!(stats.machine.runs, 4, "every slab was hit, so exactly one fused run per shard");
    assert_eq!(stats.queries_coalesced, 12);
    assert_eq!(stats.mean_batch_size(), 12.0);
    service.shutdown();
}
