//! Kill-it-mid-load battery for the per-shard epoch write-ahead log:
//!
//! * a mid-epoch processor panic quarantines one shard while a burst of
//!   tickets is in flight — every ticket resolves with a definite
//!   outcome, then `recover_shard()` rebuilds the shard from its log
//!   and the service is observationally identical to a sequential
//!   oracle replay of all committed seqs;
//! * the same discipline holds under a randomized mixed workload with
//!   the fault armed at a proptest-chosen point (crash-recovery
//!   differential);
//! * migration records (`MigrateOut`/`MigrateIn`) replay correctly for
//!   both the donor and the recipient of a split;
//! * torn log tails — truncation at every byte offset of the final
//!   record, and single-bit damage to checksummed payloads — recover
//!   exactly the committed prefix, never panic, never partially apply,
//!   for both the in-memory and the file-backed sink;
//! * under `--features lock-check` (or any debug build) the tracked-lock
//!   runtime watches the whole battery with `wal.append` registered in
//!   the canonical order, and must report no inversions.

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;

use ddrs::prelude::*;
use ddrs::service::ServiceError;
use ddrs::trace::{MetricValue, MetricsRegistry};
use ddrs::wal::{decode_log, replay_into_store, EpochRecord, FileSink, LogSink, LogTail, MemSink};

fn machines(s: usize, p: usize) -> Vec<Machine> {
    (0..s).map(|_| Machine::new(p).unwrap()).collect()
}

/// Initial layout for the deterministic tests: three range slabs on
/// axis 0 — shard 0 owns x < 100, shard 1 owns 100 ≤ x < 200, shard 2
/// owns x ≥ 200. 20 points per slab.
fn initial() -> Vec<Point<2>> {
    (0..60u32)
        .map(|i| {
            let slab = (i / 20) as i64;
            Point::weighted(
                [slab * 100 + (i % 20) as i64 * 5, (i % 20) as i64],
                i,
                1 + i as u64 % 3,
            )
        })
        .collect()
}

fn slab_rect(s: i64) -> Rect<2> {
    Rect::new([s * 100, 0], [s * 100 + 99, 100])
}

const ALL: Rect<2> = Rect { lo: [i64::MIN, i64::MIN], hi: [i64::MAX, i64::MAX] };

/// The flat sequential oracle (same semantics as the store: deletes of
/// missing ids are no-ops; callers only insert fresh ids).
struct Oracle {
    pts: Vec<Point<2>>,
}

impl Oracle {
    fn count(&self, q: &Rect<2>) -> u64 {
        self.pts.iter().filter(|p| q.contains(p)).count() as u64
    }

    fn report(&self, q: &Rect<2>) -> Vec<u32> {
        let mut ids: Vec<u32> = self.pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn insert(&mut self, batch: &[Point<2>]) {
        self.pts.extend_from_slice(batch);
    }

    fn delete(&mut self, ids: &[u32]) {
        let dead: HashSet<u32> = ids.iter().copied().collect();
        self.pts.retain(|p| !dead.contains(&p.id));
    }
}

enum Event {
    Count(Rect<2>, u64),
    Report(Rect<2>, Vec<u32>),
    Insert(Vec<Point<2>>),
    Delete(Vec<u32>),
}

/// Replay committed events in commit-seq order through the oracle;
/// every observed read value must match the oracle at its commit
/// position. Returns the oracle's final state.
fn replay(initial_pts: &[Point<2>], mut events: Vec<(u64, Event)>) -> Oracle {
    events.sort_by_key(|(seq, _)| *seq);
    for w in events.windows(2) {
        assert_ne!(w[0].0, w[1].0, "duplicate commit seq");
    }
    let mut oracle = Oracle { pts: initial_pts.to_vec() };
    for (seq, ev) in events {
        match ev {
            Event::Count(q, observed) => {
                assert_eq!(oracle.count(&q), observed, "count diverged at seq {seq}")
            }
            Event::Report(q, observed) => {
                assert_eq!(oracle.report(&q), observed, "report diverged at seq {seq}")
            }
            Event::Insert(batch) => oracle.insert(&batch),
            Event::Delete(ids) => oracle.delete(&ids),
        }
    }
    oracle
}

/// A failed write against a faulted or quarantined shard must say so —
/// any other failure is a test bug.
fn assert_definite_failure(e: &ServiceError) {
    match e {
        ServiceError::Machine(msg) => {
            assert!(
                msg.contains("write epoch aborted") || msg.contains("poisoned"),
                "unexpected failure: {msg}"
            );
        }
        other => panic!("expected a machine error, got {other:?}"),
    }
}

/// The flagship kill-and-recover scenario: commit traffic, arm a
/// mid-epoch fault on shard 1, let a burst of in-flight tickets resolve
/// through the abort, then `recover_shard(1)` and verify the rebuilt
/// service against the seq-ordered oracle replay.
#[test]
fn kill_mid_epoch_recover_and_heal() {
    let base = initial();
    let mut events: Vec<(u64, Event)> = Vec::new();
    let service = ShardedService::start(
        machines(3, 2),
        16,
        &base,
        Sum,
        PartitionPolicy::Range { bounds: vec![100, 200] },
        ShardedConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .unwrap();

    // Committed pre-crash traffic: the log must carry these epochs.
    let c0 = service.count(ALL).unwrap().wait().unwrap();
    assert_eq!(c0.value, 60);
    events.push((c0.seq, Event::Count(ALL, c0.value)));
    let ins = vec![Point::weighted([150, 50], 1000, 2)]; // → shard 1
    let ci = service.insert(ins.clone()).unwrap().wait().unwrap();
    events.push((ci.seq, Event::Insert(ins)));
    let cd = service.delete(vec![21]).unwrap().wait().unwrap(); // x = 105 → shard 1
    events.push((cd.seq, Event::Delete(vec![21])));

    // Kill shard 1 mid-epoch with a burst of tickets in flight. Every
    // ticket must resolve with a definite outcome: commit (recorded),
    // epoch abort, or quarantine error — nothing hangs, nothing is
    // silently half-applied.
    service.fail_next_write_epoch(1);
    let t1 = service.insert(vec![Point::weighted([151, 51], 1001, 2)]).unwrap(); // → shard 1
    let t2 = service.delete(vec![1, 22]).unwrap(); // spans shards 0 + 1
    let t3 = service.insert(vec![Point::weighted([10, 90], 1002, 1)]).unwrap(); // → shard 0
    let t4 = service.count(ALL).unwrap();
    assert_definite_failure(&t1.wait().unwrap_err());
    assert_definite_failure(&t2.wait().unwrap_err());
    match t3.wait() {
        // Shard 0 commits iff its sub-epoch avoided the aborting epoch.
        Ok(c) => events.push((c.seq, Event::Insert(vec![Point::weighted([10, 90], 1002, 1)]))),
        Err(e) => assert_definite_failure(&e),
    }
    match t4.wait() {
        Ok(c) => events.push((c.seq, Event::Count(ALL, c.value))),
        Err(ServiceError::Machine(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
        Err(other) => panic!("unexpected read failure: {other:?}"),
    }

    // Exactly shard 1 is quarantined, and the quarantine is visible in
    // the WAL-side telemetry: every shard logged its bulk load, shard 1
    // also logged the two committed epochs (never the aborted one).
    let stats = service.stats();
    assert!(stats.per_shard[1].poisoned.as_deref().unwrap_or("").contains("ProcessorPanicked"));
    assert!(stats.per_shard[0].poisoned.is_none());
    assert!(stats.per_shard[2].poisoned.is_none());
    assert_eq!(stats.per_shard[1].wal_records, 3, "load + 2 committed epochs, aborts unlogged");
    assert!(stats.per_shard[1].wal_bytes > 0);

    // Recovering a healthy shard is a clean error, not a panic.
    match service.recover_shard(0).unwrap().wait() {
        Err(ServiceError::Machine(msg)) => assert!(msg.contains("not poisoned"), "{msg}"),
        other => panic!("recovering a healthy shard must fail, got {other:?}"),
    }

    // Recover shard 1 from its log, live.
    let rec = service.recover_shard(1).unwrap().wait().unwrap();
    assert_eq!(rec.value.shard, 1);
    assert!(rec.value.clean_tail, "in-memory log must decode cleanly");
    assert_eq!(rec.value.replayed_records, 3);
    assert_eq!(rec.value.live_points, 20, "20 initial + id 1000 − id 21");

    // The healed service serves all shards again; committed history and
    // post-recovery reads replay cleanly through the oracle.
    let c1 = service.count(ALL).unwrap().wait().unwrap();
    events.push((c1.seq, Event::Count(ALL, c1.value)));
    let r1 = service.report(slab_rect(1)).unwrap().wait().unwrap();
    events.push((r1.seq, Event::Report(slab_rect(1), r1.value.clone())));
    // Writes route through the recovered shard again.
    let heal = vec![Point::weighted([160, 10], 2000, 3)];
    let ch = service.insert(heal.clone()).unwrap().wait().unwrap();
    events.push((ch.seq, Event::Insert(heal)));
    let c2 = service.count(slab_rect(1)).unwrap().wait().unwrap();
    assert_eq!(c2.value, 21);
    events.push((c2.seq, Event::Count(slab_rect(1), c2.value)));

    // Recovery is accounted: counters, duration histogram, and the
    // metrics-registry export under the standard vocabulary.
    let stats = service.stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.recovered_points, 20);
    assert_eq!(stats.recovery_us.count(), 1);
    let reg = MetricsRegistry::new();
    stats.register_into(&reg, "sharded");
    let snap = reg.snapshot();
    assert_eq!(snap.get("sharded.recoveries"), Some(&MetricValue::Counter(1)));
    assert_eq!(snap.get("sharded.recovered_points"), Some(&MetricValue::Counter(20)));
    assert!(
        matches!(snap.get("sharded.shard.1.wal_records"), Some(MetricValue::Counter(n)) if *n >= 3)
    );
    assert!(
        matches!(snap.get("sharded.recovery_us"), Some(MetricValue::Histogram(h)) if h.count() == 1)
    );

    // Nothing committed contradicts the seq-ordered oracle replay, and
    // the final store union equals the oracle's id set exactly.
    let oracle = replay(&base, events);
    let parts = service.shutdown();
    let mut live: Vec<u32> = parts.iter().flat_map(|(_, t)| t.points().map(|p| p.id)).collect();
    live.sort_unstable();
    let mut want: Vec<u32> = oracle.pts.iter().map(|p| p.id).collect();
    want.sort_unstable();
    assert_eq!(live, want, "recovered store diverged from the oracle replay");

    // The whole kill/recover/heal path ran under the tracked-lock
    // runtime with `wal.append` in the canonical order.
    let reports = ddrs::check::lock_order_reports();
    assert!(reports.is_empty(), "lock-order inversions during recovery:\n{}", reports.join("\n"));
}

/// Split migrations write `MigrateOut`/`MigrateIn` records; killing and
/// recovering the *recipient* and then the *donor* of a split must both
/// replay to exactly the post-migration state.
#[test]
fn recovery_replays_migration_records_for_donor_and_recipient() {
    let base: Vec<Point<2>> = (0..40u32)
        .map(|i| Point::weighted([(i as i64 % 20) * 9, i as i64 / 2], i, 1 + i as u64 % 4))
        .collect();
    let service = ShardedService::start(
        machines(2, 2),
        8,
        &base,
        Sum,
        PartitionPolicy::Range { bounds: vec![10_000] }, // everything starts on shard 0
        ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
    )
    .unwrap();
    let split = service.split_shard(0).unwrap().wait().unwrap().value;
    assert!(split.moved > 0);

    // Kill and recover the recipient: its log is Load-free (it started
    // empty) — just the MigrateIn record plus any later epochs.
    service.fail_next_write_epoch(1);
    let probe = Point::weighted([split.boundary, 999], 5000, 1); // routes right → shard 1
    assert_definite_failure(&service.insert(vec![probe]).unwrap().wait().unwrap_err());
    let rec = service.recover_shard(1).unwrap().wait().unwrap().value;
    assert_eq!(rec.live_points, split.moved, "recipient must replay its MigrateIn exactly");
    assert_eq!(service.count(ALL).unwrap().wait().unwrap().value, 40);

    // Kill and recover the donor: its log carries Load + MigrateOut, so
    // the replay must *delete* the migrated half.
    service.fail_next_write_epoch(0);
    let probe = Point::weighted([0, 999], 5001, 1); // routes left → shard 0
    assert_definite_failure(&service.insert(vec![probe]).unwrap().wait().unwrap_err());
    let rec = service.recover_shard(0).unwrap().wait().unwrap().value;
    assert_eq!(rec.live_points, 40 - split.moved, "donor must replay its MigrateOut exactly");
    assert_eq!(service.count(ALL).unwrap().wait().unwrap().value, 40);
    let all_ids = service.report(ALL).unwrap().wait().unwrap().value;
    assert_eq!(all_ids, (0..40).collect::<Vec<u32>>());

    // Both recoveries happened and the service is fully healthy.
    let stats = service.stats();
    assert_eq!(stats.recoveries, 2);
    assert!(stats.per_shard.iter().all(|s| s.poisoned.is_none()));
    service.shutdown();
    let reports = ddrs::check::lock_order_reports();
    assert!(reports.is_empty(), "lock-order inversions during recovery:\n{}", reports.join("\n"));
}

/// A service running on file-backed sinks recovers a killed shard from
/// the *file*, and the file's bytes survive torn-tail damage: truncation
/// at every offset of the final record and single-bit flips recover
/// exactly the committed prefix — through both sink flavours.
#[test]
fn file_backed_recovery_and_torn_tail_fuzz() {
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let paths: Vec<std::path::PathBuf> =
        (0..2).map(|s| dir.join(format!("ddrs-wal-recovery-{tag}-{s}.log"))).collect();
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    let base: Vec<Point<2>> = (0..48u32)
        .map(|i| Point::weighted([(i as i64 % 2) * 150, i as i64], i, 1 + i as u64 % 3))
        .collect();
    let sinks: Vec<Box<dyn LogSink>> =
        paths.iter().map(|p| Box::new(FileSink::create(p).unwrap()) as Box<dyn LogSink>).collect();
    let service = ShardedService::start_with_sinks(
        machines(2, 2),
        8,
        &base,
        Sum,
        PartitionPolicy::Range { bounds: vec![100] },
        ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
        sinks,
    )
    .unwrap();

    // Committed epochs on shard 1 (x ≥ 100), then a kill.
    service.insert(vec![Point::weighted([150, 200], 9000, 5)]).unwrap().wait().unwrap();
    service.delete(vec![1, 3]).unwrap().wait().unwrap(); // odd ids live at x = 150
    service.fail_next_write_epoch(1);
    let boom = service.insert(vec![Point::weighted([160, 0], 9001, 1)]).unwrap().wait();
    assert_definite_failure(&boom.unwrap_err());

    // Recovery replays the *file*: 24 initial + 9000 − {1, 3}.
    let rec = service.recover_shard(1).unwrap().wait().unwrap().value;
    assert!(rec.clean_tail);
    assert_eq!(rec.live_points, 23);
    assert_eq!(service.count(ALL).unwrap().wait().unwrap().value, 47);
    service.shutdown();

    // The persisted log now ends in the post-recovery state. Fuzz its
    // tail: cut at every byte offset inside the final record…
    let bytes = std::fs::read(&paths[1]).unwrap();
    let (full, tail) = decode_log::<2>(&bytes);
    assert_eq!(tail, LogTail::Clean);
    assert!(full.len() >= 3, "load + committed epochs must be on disk: {}", full.len());
    let last_start = bytes.len() - frame_len(full.last().unwrap());
    let machine = Machine::new(2).unwrap();
    let prefix_store = replay_into_store(&machine, 8, &full[..full.len() - 1]).unwrap();
    for cut in 0..(bytes.len() - last_start) {
        let torn = &bytes[..last_start + cut];
        // …through the in-memory sink…
        let mem = ddrs::wal::EpochWal::<2>::with_sink(Box::new(MemSink::from_bytes(torn.to_vec())));
        let (recs, mtail) = mem.replay().unwrap();
        assert_eq!(recs, full[..full.len() - 1], "mem cut at +{cut}");
        assert_eq!(mtail == LogTail::Clean, cut == 0, "mem cut at +{cut}: {mtail:?}");
        // …and through a freshly re-opened file, as after a real crash.
        let torn_path = dir.join(format!("ddrs-wal-recovery-{tag}-torn.log"));
        std::fs::write(&torn_path, torn).unwrap();
        let file =
            ddrs::wal::EpochWal::<2>::with_sink(Box::new(FileSink::open(&torn_path).unwrap()));
        let (recs, ftail) = file.replay().unwrap();
        assert_eq!(recs, full[..full.len() - 1], "file cut at +{cut}");
        assert_eq!(ftail == LogTail::Clean, cut == 0, "file cut at +{cut}: {ftail:?}");
        let _ = std::fs::remove_file(&torn_path);
    }
    // A torn prefix replays to exactly the pre-final-record store: no
    // partial application of the damaged record.
    let torn_store = replay_into_store(&machine, 8, &full[..full.len() - 1]).unwrap();
    assert_eq!(torn_store.len(), prefix_store.len());

    // …and flip one bit in every byte of the final record: decode must
    // never panic, and a record that fails its checksum must vanish
    // whole (prefix intact, tail not clean).
    for i in last_start..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 1 << (i % 8);
        let (recs, dtail) = decode_log::<2>(&damaged);
        assert!(recs.len() >= full.len() - 1, "flip at {i} lost committed records");
        assert_eq!(recs[..full.len() - 1], full[..full.len() - 1], "flip at {i}");
        if recs.len() < full.len() {
            assert_ne!(dtail, LogTail::Clean, "flip at {i} silently dropped the final record");
        }
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

/// Frame size of one record (header + payload), for locating the final
/// record's start without re-encoding assumptions leaking into tests.
fn frame_len(rec: &EpochRecord<2>) -> usize {
    ddrs::wal::encode_record(rec).len()
}

// ---------------------------------------------------------------------
// Crash-recovery differential proptest: randomized workload, fault at a
// random position, recovery, then oracle replay of committed seqs.
// ---------------------------------------------------------------------

type RawRect = ((i64, i64), (i64, i64));

fn to_rect(raw: RawRect) -> Rect<2> {
    let ((a, b), (c, d)) = raw;
    Rect::new([a.min(c), b.min(d)], [a.max(c), b.max(d)])
}

fn run_recovery_case(
    s: usize,
    p: usize,
    range_policy: bool,
    n_initial: usize,
    ops: Vec<(u8, RawRect, usize)>,
    fault_at: usize,
    fault_shard: usize,
) {
    let base: Vec<Point<2>> = (0..n_initial as u32)
        .map(|i| {
            Point::weighted([(i as i64 * 37) % 256, (i as i64 * 53) % 256], i, 1 + i as u64 % 7)
        })
        .collect();
    let policy = if range_policy {
        PartitionPolicy::range_from_sample(s, &base)
    } else {
        PartitionPolicy::Hash
    };
    let service = ShardedService::start(
        machines(s, p),
        8,
        &base,
        Sum,
        policy,
        ShardedConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            ..Default::default()
        },
    )
    .unwrap();
    let target = fault_shard % s;
    let mut events: Vec<(u64, Event)> = Vec::new();
    let mut next_id = 10_000u32;

    for (i, (kind, raw_rect, pick)) in ops.iter().enumerate() {
        if i == fault_at {
            // Arm the fault, then race a burst of in-flight tickets
            // against the kill: every one must resolve definitely.
            service.fail_next_write_epoch(target);
            let burst_pt = Point::weighted([(*pick as i64) % 256, 7], next_id, 2);
            next_id += 1;
            let tw = service.insert(vec![burst_pt]).unwrap();
            let td = service.delete(vec![*pick as u32 % n_initial.max(1) as u32]).unwrap();
            let tr = service.count(ALL).unwrap();
            match tw.wait() {
                Ok(c) => events.push((c.seq, Event::Insert(vec![burst_pt]))),
                Err(e) => assert_definite_failure(&e),
            }
            match td.wait() {
                Ok(c) => events
                    .push((c.seq, Event::Delete(vec![*pick as u32 % n_initial.max(1) as u32]))),
                Err(e) => assert_definite_failure(&e),
            }
            match tr.wait() {
                Ok(c) => events.push((c.seq, Event::Count(ALL, c.value))),
                Err(ServiceError::Machine(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
                Err(other) => panic!("unexpected read failure: {other:?}"),
            }
        }
        match kind % 4 {
            0 | 1 => {
                let q = to_rect(*raw_rect);
                match service.count(q).unwrap().wait() {
                    Ok(c) => events.push((c.seq, Event::Count(q, c.value))),
                    Err(ServiceError::Machine(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
                    Err(other) => panic!("unexpected read failure: {other:?}"),
                }
            }
            2 => {
                let q = to_rect(*raw_rect);
                match service.report(q).unwrap().wait() {
                    Ok(c) => events.push((c.seq, Event::Report(q, c.value))),
                    Err(ServiceError::Machine(msg)) => assert!(msg.contains("poisoned"), "{msg}"),
                    Err(other) => panic!("unexpected read failure: {other:?}"),
                }
            }
            3 => {
                if pick % 3 == 0 {
                    let ids = vec![*pick as u32 % n_initial.max(1) as u32, u32::MAX - 1];
                    match service.delete(ids.clone()).unwrap().wait() {
                        Ok(c) => events.push((c.seq, Event::Delete(ids))),
                        Err(e) => assert_definite_failure(&e),
                    }
                } else {
                    let batch: Vec<Point<2>> = (0..1 + pick % 3)
                        .map(|j| {
                            let id = next_id + j as u32;
                            Point::weighted(
                                [(id as i64 * 31) % 256, (id as i64 * 17) % 256],
                                id,
                                1 + id as u64 % 5,
                            )
                        })
                        .collect();
                    next_id += batch.len() as u32;
                    match service.insert(batch.clone()).unwrap().wait() {
                        Ok(c) => events.push((c.seq, Event::Insert(batch))),
                        Err(e) => assert_definite_failure(&e),
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    // Heal whatever died (the armed fault may never have been tripped —
    // then recovery must refuse cleanly instead).
    let poisoned: Vec<usize> = service
        .stats()
        .per_shard
        .iter()
        .enumerate()
        .filter_map(|(i, sh)| sh.poisoned.as_ref().map(|_| i))
        .collect();
    for sh in 0..s {
        let verdict = service.recover_shard(sh).unwrap().wait();
        if poisoned.contains(&sh) {
            let rec = verdict.unwrap().value;
            assert_eq!(rec.shard, sh);
            assert!(rec.clean_tail, "in-memory log must decode cleanly");
        } else {
            match verdict {
                Err(ServiceError::Machine(msg)) => assert!(msg.contains("not poisoned"), "{msg}"),
                other => panic!("recovering a healthy shard must fail, got {other:?}"),
            }
        }
    }

    // Post-recovery the whole keyspace serves again; record the final
    // observations and check the entire committed history against the
    // oracle replay.
    let c = service.count(ALL).unwrap().wait().unwrap();
    events.push((c.seq, Event::Count(ALL, c.value)));
    let r = service.report(ALL).unwrap().wait().unwrap();
    events.push((r.seq, Event::Report(ALL, r.value.clone())));
    let oracle = replay(&base, events);

    let parts = service.shutdown();
    let mut live: Vec<u32> = parts.iter().flat_map(|(_, t)| t.points().map(|p| p.id)).collect();
    live.sort_unstable();
    let mut want: Vec<u32> = oracle.pts.iter().map(|p| p.id).collect();
    want.sort_unstable();
    assert_eq!(live, want, "recovered store diverged from the oracle replay");
    let reports = ddrs::check::lock_order_reports();
    assert!(reports.is_empty(), "lock-order inversions under recovery:\n{}", reports.join("\n"));
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, RawRect, usize)>> {
    prop::collection::vec(
        (0u8..255, ((0i64..256, 0i64..256), (0i64..256, 0i64..256)), 0usize..1000),
        10..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn crash_recovery_matches_committed_oracle_replay(
        shape in (0usize..2, 0usize..2, 0u8..2),
        n_initial in 8usize..48,
        ops in arb_ops(),
        fault_at in 0usize..10,
        fault_shard in 0usize..4,
    ) {
        let (si, pi, pol) = shape;
        run_recovery_case([2usize, 3][si], [1usize, 2][pi], pol == 1, n_initial, ops, fault_at, fault_shard);
    }
}
