//! The `ddrs-check` lint gate, run as part of the ordinary test suite:
//! every known-bad fixture under `tests/check_fixtures/` trips exactly
//! the lint it exists for, and the real workspace comes back clean.

use std::fs;
use std::path::Path;

use ddrs_check::{lint_source, lint_workspace, Lint, LintSet};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/check_fixtures").join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

fn diags_for(name: &str) -> Vec<ddrs_check::Diagnostic> {
    lint_source(name, &fixture(name), LintSet::all())
}

#[test]
fn lock_order_fixture_trips_only_the_inversion() {
    let diags = diags_for("lock_order.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].lint, Lint::LockOrder);
    // The inversion is the nested `queue` acquisition, not the clean
    // nesting further down.
    assert_eq!(diags[0].line, 8, "{diags:#?}");
}

#[test]
fn blocking_fixture_trips_only_the_recv_under_guard() {
    let diags = diags_for("blocking.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].lint, Lint::BlockingWhileLocked);
    assert_eq!(diags[0].line, 7, "{diags:#?}");
}

#[test]
fn unwrap_fixture_trips_the_bare_unwrap_and_honors_the_allow() {
    let diags = diags_for("unwrap.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].lint, Lint::Unwrap);
    assert_eq!(diags[0].line, 6, "{diags:#?}");
}

#[test]
fn relaxed_fixture_trips_the_bare_relaxed_and_honors_the_allow() {
    let diags = diags_for("relaxed.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].lint, Lint::Relaxed);
    assert_eq!(diags[0].line, 7, "{diags:#?}");
}

#[test]
fn every_fixture_fails_under_the_full_lint_set() {
    for name in ["lock_order.rs", "blocking.rs", "unwrap.rs", "relaxed.rs"] {
        assert!(!diags_for(name).is_empty(), "fixture {name} produced no findings");
    }
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = lint_workspace(root).expect("walking the workspace sources");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(diags.is_empty(), "workspace lint findings:\n{}", rendered.join("\n"));
}
