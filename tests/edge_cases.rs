//! Edge-case integration tests: extreme coordinates, degenerate inputs,
//! higher dimensions, and weight handling.

use ddrs::prelude::*;
use ddrs::rangetree::{Rect, Sum};

fn check<const D: usize>(p: usize, pts: &[Point<D>], queries: &[Rect<D>]) {
    let machine = Machine::new(p).unwrap();
    let tree = DistRangeTree::<D>::build(&machine, pts).unwrap();
    let seq = SeqRangeTree::build(pts).unwrap();
    let counts = tree.count_batch(&machine, queries);
    let reports = tree.report_batch(&machine, queries);
    for (i, q) in queries.iter().enumerate() {
        let mut want: Vec<u32> = pts.iter().filter(|pt| q.contains(pt)).map(|pt| pt.id).collect();
        want.sort_unstable();
        assert_eq!(counts[i], want.len() as u64, "count {q:?}");
        assert_eq!(reports[i], want, "report {q:?}");
        assert_eq!(seq.count(q), want.len() as u64, "seq count {q:?}");
    }
}

#[test]
fn empty_point_set_is_a_build_error() {
    use ddrs::rangetree::BuildError;
    let machine = Machine::new(4).unwrap();
    assert!(matches!(DistRangeTree::<2>::build(&machine, &[]), Err(BuildError::Empty)));
    // Duplicate ids are rejected before any communication happens.
    let dup = vec![Point::<2>::new([0, 0], 7), Point::new([1, 1], 7)];
    assert!(matches!(DistRangeTree::<2>::build(&machine, &dup), Err(BuildError::DuplicateId(7))));
}

#[test]
fn single_processor_machine() {
    // p = 1: the hat degenerates to a single group leaf and the whole
    // structure is one forest tree; every mode must still agree.
    let pts: Vec<Point<2>> =
        (0..100).map(|i| Point::new([(i * 13 % 47) as i64, (i * 29 % 53) as i64], i)).collect();
    check(
        1,
        &pts,
        &[Rect::new([0, 0], [46, 52]), Rect::new([10, 10], [20, 20]), Rect::new([5, 5], [5, 5])],
    );
}

#[test]
fn negative_coordinates() {
    let pts: Vec<Point<2>> =
        (0..200).map(|i| Point::new([-1000 + i as i64 * 7, 500 - i as i64 * 5], i)).collect();
    check(
        4,
        &pts,
        &[
            Rect::new([-1000, -500], [0, 500]),
            Rect::new([-500, -100], [-100, 100]),
            Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]),
        ],
    );
}

#[test]
fn extreme_coordinate_magnitudes() {
    let pts: Vec<Point<2>> = vec![
        Point::new([i64::MIN, 0], 0),
        Point::new([i64::MAX, 0], 1),
        Point::new([0, i64::MIN], 2),
        Point::new([0, i64::MAX], 3),
        Point::new([1, 1], 4),
    ];
    check(
        2,
        &pts,
        &[
            Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]),
            Rect::new([0, 0], [i64::MAX, i64::MAX]),
            Rect::new([i64::MIN, 0], [0, 0]),
        ],
    );
}

#[test]
fn single_point_many_processors() {
    let pts = vec![Point::new([42, 42], 0)];
    check(8, &pts, &[Rect::new([42, 42], [42, 42]), Rect::new([0, 0], [41, 41])]);
}

#[test]
fn all_points_identical() {
    let pts: Vec<Point<2>> = (0..64).map(|i| Point::new([7, 7], i)).collect();
    check(
        4,
        &pts,
        &[Rect::new([7, 7], [7, 7]), Rect::new([6, 6], [8, 8]), Rect::new([8, 8], [9, 9])],
    );
}

#[test]
fn four_dimensions() {
    let pts: Vec<Point<4>> = (0..128u32)
        .map(|i| {
            Point::new(
                [(i % 4) as i64, ((i / 4) % 4) as i64, ((i / 16) % 4) as i64, (i / 64) as i64],
                i,
            )
        })
        .collect();
    check(
        4,
        &pts,
        &[
            Rect::new([1, 1, 1, 0], [2, 2, 2, 1]),
            Rect::new([0, 0, 0, 0], [3, 3, 3, 1]),
            Rect::new([2, 0, 3, 1], [2, 0, 3, 1]),
        ],
    );
}

#[test]
fn zero_weights_and_large_weights() {
    let machine = Machine::new(4).unwrap();
    let pts: Vec<Point<2>> = (0..32)
        .map(|i| {
            Point::weighted([i as i64, i as i64], i, if i % 2 == 0 { 0 } else { u32::MAX as u64 })
        })
        .collect();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let q = Rect::new([0, 0], [31, 31]);
    let got = tree.aggregate_batch(&machine, Sum, &[q]);
    let want: u64 = pts.iter().map(|p| p.weight).sum();
    assert_eq!(got[0], Some(want));
}

#[test]
fn empty_query_batch() {
    let machine = Machine::new(2).unwrap();
    let pts: Vec<Point<2>> = (0..16).map(|i| Point::new([i as i64, 0], i)).collect();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    assert!(tree.count_batch(&machine, &[]).is_empty());
    assert!(tree.report_batch(&machine, &[]).is_empty());
}

#[test]
fn many_duplicate_queries() {
    // The same query many times: stresses per-tree congestion (every copy
    // of the same work funnels to the same forest trees).
    let machine = Machine::new(8).unwrap();
    let pts: Vec<Point<2>> =
        (0..256u32).map(|i| Point::new([(i % 16) as i64, (i / 16) as i64], i)).collect();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let q = Rect::new([3, 3], [7, 9]);
    let queries = vec![q; 333];
    let counts = tree.count_batch(&machine, &queries);
    let want = pts.iter().filter(|p| q.contains(p)).count() as u64;
    assert!(counts.iter().all(|&c| c == want));
}

#[test]
fn dynamic_tree_integration() {
    use ddrs::rangetree::DynamicDistRangeTree;
    let machine = Machine::new(4).unwrap();
    let mut t = DynamicDistRangeTree::<2>::new(64);
    let mut live: Vec<Point<2>> = Vec::new();
    for wave in 0..4u32 {
        let pts: Vec<Point<2>> = (wave * 100..wave * 100 + 100)
            .map(|i| Point::new([((i * 193) % 777) as i64, ((i * 71) % 555) as i64], i))
            .collect();
        live.extend(&pts);
        t.insert_batch(&machine, &pts).unwrap();
    }
    let dead: Vec<u32> = (0..400).step_by(7).collect();
    live.retain(|p| !dead.contains(&p.id));
    t.delete_batch(&machine, &dead).unwrap();

    let q = Rect::new([100, 100], [600, 400]);
    let want: u64 = live.iter().filter(|p| q.contains(p)).count() as u64;
    assert_eq!(t.count_batch(&machine, &[q])[0], want);
    let mut want_ids: Vec<u32> = live.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
    want_ids.sort_unstable();
    assert_eq!(t.report_batch(&machine, &[q])[0], want_ids);
}
