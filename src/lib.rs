//! # ddrs — d-Dimensional Range Search on Multicomputers
//!
//! Umbrella crate re-exporting the full reproduction of
//! *Ferreira, Kenyon, Rau-Chaplin, Ubéda — "d-Dimensional Range Search on
//! Multicomputers"* (IPPS 1997 / LIP RR-1996-23):
//!
//! * [`cgm`] — the Coarse Grained Multicomputer `CGM(s, p)` simulator
//!   (SPMD supersteps, collective communication, h-relation accounting),
//! * [`rangetree`] — sequential and distributed d-dimensional range trees
//!   (hat/forest decomposition, batched multisearch, associative-function
//!   and report query modes),
//! * [`baselines`] — k-d tree, brute-force scan, layered range tree and the
//!   fully-replicated parallel scheme the paper argues against,
//! * [`workloads`] — deterministic point/query generators used by the
//!   experiment harness,
//! * [`client`] — the unified client contract: the
//!   [`RangeStore`](client::RangeStore) trait every serving backend
//!   implements, composable multi-op [`Request`](client::Request)s,
//!   `Future`-based [`Ticket`](client::Ticket)s, per-request
//!   [`Consistency`](client::Consistency) bounds, and the zero-thread
//!   [`InlineStore`](client::InlineStore) backend,
//! * [`engine`] — the mixed-mode query engine: heterogeneous
//!   count/aggregate/report batches planned into one SPMD submission
//!   (one [`Machine::run`](cgm::Machine::run) per client batch, however
//!   many dynamization levels are occupied),
//! * [`trace`] — the observability layer: per-thread ring-buffer span
//!   recording of the request lifecycle (queue → window → machine-run →
//!   merge → resolve), per-superstep machine timelines, the unified
//!   [`MetricsRegistry`](trace::MetricsRegistry), and the
//!   chrome://tracing exporter — all compiled out of release builds
//!   unless the `trace` feature is on,
//! * [`service`] — the concurrent serving front-end: multi-producer
//!   submission with future-like tickets, adaptive micro-batch
//!   coalescing into fused runs, bounded-queue admission control,
//!   per-request deadlines and epoch-scheduled updates with a
//!   batch-serializability guarantee,
//! * [`shard`] — the multi-group scatter-gather router: the id/key
//!   domain partitioned (hash or range policy) across `S` shard groups,
//!   each with its own machine, store and scheduler, behind one
//!   [`ShardedService`](shard::ShardedService) façade that plans
//!   cross-shard read batches into per-shard fused sub-batches (≤ `S`
//!   machine runs per window), routes writes by key, assigns one global
//!   commit order, and rebalances skewed shards by subtree migration,
//! * [`net`] — the TCP network front-end: a dependency-free
//!   CRC-framed binary protocol over `std::net`, the
//!   [`NetServer`](net::NetServer) connection fan-in (per-connection
//!   reader/writer threads, out-of-order response correlation,
//!   connection limits, graceful drain) and the pooled, pipelining
//!   [`RemoteStore`](net::RemoteStore) client that implements
//!   [`RangeStore`](client::RangeStore) itself — a served store is a
//!   drop-in backend, pinned by the differential proptest running
//!   over loopback unchanged,
//! * [`wal`] — durability: the per-shard epoch write-ahead log
//!   ([`EpochWal`](wal::EpochWal)) with length-prefixed checksummed
//!   binary framing, pluggable in-memory / file-backed
//!   [`LogSink`](wal::LogSink)s, torn-tail-tolerant replay and the
//!   [`replay_into_store`](wal::replay_into_store) crash-recovery path
//!   that [`ShardedService::recover_shard`](shard::ShardedService::recover_shard)
//!   uses to rebuild a quarantined shard.
//!
//! ## Quickstart
//!
//! ```
//! use ddrs::prelude::*;
//!
//! // Eight simulated processors (p must be a power of two).
//! let machine = Machine::new(8).unwrap();
//!
//! // A small 2-d point set.
//! let pts: Vec<Point<2>> = (0..256)
//!     .map(|i| Point::new([i as i64, (i as i64 * 37) % 256], i))
//!     .collect();
//!
//! // Build the distributed range tree (Algorithm Construct).
//! let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
//!
//! // Batched queries: count, aggregate and report modes.
//! let queries = vec![Rect::new([0, 0], [127, 255]), Rect::new([10, 20], [30, 40])];
//! let counts = tree.count_batch(&machine, &queries);
//! assert_eq!(counts[0], 128);
//! ```
pub use ddrs_baselines as baselines;
pub use ddrs_cgm as cgm;
pub use ddrs_check as check;
pub use ddrs_client as client;
pub use ddrs_engine as engine;
pub use ddrs_net as net;
pub use ddrs_rangetree as rangetree;
pub use ddrs_sched as sched;
pub use ddrs_service as service;
pub use ddrs_shard as shard;
pub use ddrs_trace as trace;
pub use ddrs_wal as wal;
pub use ddrs_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use ddrs_baselines::{
        BruteForce, KdTree, LayeredRangeTree2d, ReplicatedRangeTree, WeightedDominance2d,
    };
    pub use ddrs_cgm::{Machine, RunStats, RunStatsRollup};
    pub use ddrs_client::{Consistency, InlineStore, RangeStore, Request, Response, WaitFor};
    pub use ddrs_engine::{BatchResults, QueryBatch};
    pub use ddrs_net::{NetConfig, NetServer, NetStats, RemoteConfig, RemoteStore};
    pub use ddrs_rangetree::{
        Count, DistRangeTree, DynamicDistRangeTree, Point, Rect, SeqRangeTree, Sum,
    };
    pub use ddrs_service::{
        Commit, Service, ServiceConfig, ServiceError, ServiceStats, SubmitError, Ticket,
    };
    pub use ddrs_shard::{
        PartitionPolicy, RecoveryReport, ShardedConfig, ShardedService, ShardedStats, SplitReport,
    };
    pub use ddrs_wal::{EpochWal, FileSink, LogSink, LogTail, MemSink};
    pub use ddrs_workloads::{
        ArrivalProcess, ArrivalTrace, PointDistribution, QueryWorkload, WorkloadBuilder,
    };
}
