//! The sequential d-dimensional range tree (Preparata–Shamos / Bentley).
//!
//! This is both the building block of the distributed structure (every
//! forest element *is* a sequential range tree on `n/p` points, built
//! locally by Algorithm Construct step 4) and the sequential baseline whose
//! running time the speedup experiments divide by.

mod eval;
mod tree;

pub use eval::{sel_count, sel_fold, sel_points, sel_report, AggCache};
pub use tree::{DimTree, Sel};

use crate::point::{Point, Rect};
use crate::rank::{RankError, RankSpace};
use crate::semigroup::Semigroup;

/// A self-contained sequential range tree over a point set, with
/// rank-space translation at the API boundary.
///
/// Space `O(n log^(d-1) n)`; query `O(log^d n)` selected canonical nodes
/// plus `O(k)` reporting.
#[derive(Debug)]
pub struct SeqRangeTree<const D: usize> {
    ranks: RankSpace<D>,
    root: DimTree<D>,
}

impl<const D: usize> SeqRangeTree<D> {
    /// Build from a point set (ids must be unique).
    pub fn build(pts: &[Point<D>]) -> Result<Self, RankError> {
        let ranks = RankSpace::build(pts, 1)?;
        let mut rpts = ranks.to_rpoints(pts);
        rpts.sort_unstable_by_key(|p| p.ranks[0]);
        let root = DimTree::build(0, rpts);
        Ok(SeqRangeTree { ranks, root })
    }

    /// Number of points matching `q`.
    pub fn count(&self, q: &Rect<D>) -> u64 {
        let rq = self.ranks.translate(q);
        let mut sels = Vec::new();
        self.root.search(&rq, &mut sels);
        sels.iter().map(sel_count).sum()
    }

    /// Ids of the points matching `q`, in ascending id order.
    pub fn report(&self, q: &Rect<D>) -> Vec<u32> {
        let rq = self.ranks.translate(q);
        let mut sels = Vec::new();
        self.root.search(&rq, &mut sels);
        let mut out = Vec::new();
        for s in &sels {
            sel_report(s, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Associative-function mode: `⊗` of `f(l)` over matching points, or
    /// `None` when nothing matches. Uses a per-call bottom-up value cache
    /// over the touched dimension-`d` trees, mirroring the paper's
    /// Algorithm AssociativeFunction step 1.
    pub fn aggregate<S: Semigroup>(&self, sg: &S, q: &Rect<D>) -> Option<S::Val> {
        let rq = self.ranks.translate(q);
        let mut sels = Vec::new();
        self.root.search(&rq, &mut sels);
        let mut cache = AggCache::new();
        let mut acc: Option<S::Val> = None;
        for s in &sels {
            let v = sel_fold(sg, s, &mut cache);
            acc = crate::semigroup::comb_opt(sg, acc, v);
        }
        acc
    }

    /// Total number of tree nodes (all dimensions), the `s`-measure the
    /// paper sizes memory by.
    pub fn size_nodes(&self) -> u64 {
        self.root.size_nodes()
    }

    /// The root dimension tree (structural access for experiments and
    /// extensions).
    pub fn root(&self) -> &DimTree<D> {
        &self.root
    }

    /// The rank space used for query translation.
    pub fn ranks(&self) -> &RankSpace<D> {
        &self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute<const D: usize>(pts: &[Point<D>], q: &Rect<D>) -> Vec<u32> {
        let mut ids: Vec<u32> = pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn grid2(n_side: i64) -> Vec<Point<2>> {
        let mut id = 0;
        let mut out = Vec::new();
        for x in 0..n_side {
            for y in 0..n_side {
                out.push(Point::weighted([x, y], id, (x * 10 + y) as u64));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn count_matches_brute_force_on_grid() {
        let pts = grid2(8);
        let t = SeqRangeTree::build(&pts).unwrap();
        for (lo, hi) in [([0, 0], [7, 7]), ([2, 3], [5, 6]), ([4, 4], [4, 4]), ([6, 0], [7, 2])] {
            let q = Rect::new(lo, hi);
            assert_eq!(t.count(&q), brute(&pts, &q).len() as u64, "query {q:?}");
        }
    }

    #[test]
    fn report_matches_brute_force_pseudorandom() {
        let pts: Vec<Point<3>> = (0..200u32)
            .map(|i| {
                let x = (i as i64 * 7919) % 101;
                let y = (i as i64 * 104729) % 89;
                let z = (i as i64 * 1299709) % 97;
                Point::new([x, y, z], i)
            })
            .collect();
        let t = SeqRangeTree::build(&pts).unwrap();
        for s in 0..20i64 {
            let q = Rect::new([s * 3, s * 2, s], [s * 3 + 40, s * 2 + 50, s + 60]);
            assert_eq!(t.report(&q), brute(&pts, &q), "query {q:?}");
        }
    }

    #[test]
    fn empty_and_all_queries() {
        let pts = grid2(4);
        let t = SeqRangeTree::build(&pts).unwrap();
        assert_eq!(t.count(&Rect::new([10, 10], [20, 20])), 0);
        assert_eq!(t.count(&Rect::new([3, 3], [0, 0])), 0); // inverted
        assert_eq!(t.count(&Rect::new([0, 0], [3, 3])), 16);
        assert_eq!(t.report(&Rect::new([0, 0], [3, 3])).len(), 16);
    }

    #[test]
    fn aggregate_sum_and_max() {
        use crate::semigroup::{MaxWeight, Sum};
        let pts = grid2(4); // weight = 10x + y
        let t = SeqRangeTree::build(&pts).unwrap();
        let q = Rect::new([1, 1], [2, 2]);
        // points (1,1),(1,2),(2,1),(2,2): weights 11,12,21,22
        assert_eq!(t.aggregate(&Sum, &q), Some(66));
        assert_eq!(t.aggregate(&MaxWeight, &q), Some(22));
        assert_eq!(t.aggregate(&Sum, &Rect::new([9, 9], [9, 9])), None);
    }

    #[test]
    fn one_dimensional_tree_is_a_segment_tree() {
        let pts: Vec<Point<1>> = (0..37).map(|i| Point::new([i * 2], i as u32)).collect();
        let t = SeqRangeTree::build(&pts).unwrap();
        assert_eq!(t.count(&Rect::new([10], [20])), 6); // 10,12,...,20
        assert_eq!(t.report(&Rect::new([0], [5])), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_coordinates_are_all_found() {
        let pts: Vec<Point<2>> = (0..16).map(|i| Point::new([(i / 4) as i64, 0], i)).collect();
        let t = SeqRangeTree::build(&pts).unwrap();
        assert_eq!(t.count(&Rect::new([1, 0], [2, 0])), 8);
        assert_eq!(t.report(&Rect::new([1, 0], [1, 0])).len(), 4);
    }

    #[test]
    fn size_grows_with_log_factor() {
        let small = SeqRangeTree::build(&grid2(4)).unwrap().size_nodes();
        let large = SeqRangeTree::build(&grid2(8)).unwrap().size_nodes();
        // 16 → 64 points: size should grow superlinearly (log factor).
        assert!(large > 4 * small / 2, "small={small}, large={large}");
    }
}
