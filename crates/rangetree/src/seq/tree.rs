//! The recursive dimension tree and the 4-case search of the paper.

use ddrs_cgm::Payload;

use crate::heap;
use crate::point::{RPoint, RRect};

/// One segment tree of the range tree, in dimension `dim`, together with
/// the descendant structures of its internal nodes (Definition 1).
///
/// Leaves are the points of the spanned subset sorted by their rank in
/// `dim` (sentinel pads, which rank above every real point in every
/// dimension, always form a suffix). Every *internal* node `v` of a
/// non-final dimension points to `descendant(v)`: a `DimTree` in `dim + 1`
/// over the points below `v`. Containment at a leaf is resolved by a
/// direct point test instead of a chain of single-point descendant trees —
/// the standard implementation shortcut; the visited-node structure is
/// otherwise exactly the paper's.
#[derive(Debug, Clone)]
pub struct DimTree<const D: usize> {
    /// Dimension index `j` (0-based; the paper's `j+1`).
    pub dim: u8,
    /// Leaf count, a power of two.
    pub m: u32,
    /// Number of real (non-pad) leaves; reals occupy leaf positions `0..r`.
    pub r: u32,
    /// The spanned points sorted by `ranks[dim]`, length `m`.
    pub leaves: Vec<RPoint<D>>,
    /// `descendant(v)` per heap slot (len `2m` when `dim + 1 < D`, else
    /// empty). `None` for leaves, for the unused slot 0, and for nodes
    /// spanning no real points.
    pub desc: Vec<Option<Box<DimTree<D>>>>,
}

impl<const D: usize> DimTree<D> {
    /// Build the dimension tree for `pts` (already sorted by
    /// `ranks[dim]`; length must be a power of two — pad first).
    ///
    /// Bottom-up, one dimension after another, as in the optimal
    /// sequential algorithm: each internal node's descendant is built from
    /// the merge of its children's next-dimension orderings, so total work
    /// is linear in the output size `O(m log^(d-1) m)`.
    pub fn build(dim: usize, pts: Vec<RPoint<D>>) -> DimTree<D> {
        let m = pts.len();
        assert!(m.is_power_of_two(), "DimTree::build requires a power-of-two leaf count");
        debug_assert!(
            pts.windows(2).all(|w| w[0].ranks[dim] < w[1].ranks[dim]),
            "leaves must be strictly sorted by ranks[{dim}]"
        );
        let r = pts.iter().take_while(|p| !p.is_pad()).count();
        debug_assert!(pts[r..].iter().all(RPoint::is_pad), "pads must form a suffix");

        let mut desc: Vec<Option<Box<DimTree<D>>>> = Vec::new();
        if dim + 1 < D && m >= 2 {
            // Merge next-dimension orderings bottom-up.
            let mut lists: Vec<Vec<RPoint<D>>> = vec![Vec::new(); 2 * m];
            for (i, p) in pts.iter().enumerate() {
                lists[heap::leaf(m, i)] = vec![*p];
            }
            for v in (1..m).rev() {
                lists[v] = merge_by_rank(&lists[2 * v], &lists[2 * v + 1], dim + 1);
            }
            desc = vec![None; 2 * m];
            for v in 1..m {
                let lv = std::mem::take(&mut lists[v]);
                if lv.iter().any(|p| !p.is_pad()) {
                    desc[v] = Some(Box::new(DimTree::build(dim + 1, lv)));
                }
            }
        }
        DimTree { dim: dim as u8, m: m as u32, r: r as u32, leaves: pts, desc }
    }

    /// Leaf-position range of node `v` clipped to real points: `[a, b)`.
    #[inline]
    pub fn real_span(&self, v: usize) -> (usize, usize) {
        let (a, b) = heap::span(self.m as usize, v);
        (a, b.min(self.r as usize))
    }

    /// Number of real points below `v`.
    #[inline]
    pub fn real_count(&self, v: usize) -> u64 {
        let (a, b) = self.real_span(v);
        b.saturating_sub(a) as u64
    }

    /// The rank interval (in `dim`) covered by the real points below `v`,
    /// or `None` if `v` spans no real point.
    #[inline]
    pub fn node_interval(&self, v: usize) -> Option<(u32, u32)> {
        let (a, b) = self.real_span(v);
        if a >= b {
            return None;
        }
        let d = self.dim as usize;
        Some((self.leaves[a].ranks[d], self.leaves[b - 1].ranks[d]))
    }

    /// The paper's search (Section 4, four cases), collecting selected
    /// canonical structures into `out`:
    ///
    /// 1. node interval ⊆ query, `j < d` → proceed to `descendant(v)`;
    /// 2. node interval ⊆ query, `j = d` → select the segment tree at `v`;
    /// 3. intervals overlap → split the query to both children;
    /// 4. intervals disjoint → delete the query.
    pub fn search<'t>(&'t self, q: &RRect<D>, out: &mut Vec<Sel<'t, D>>) {
        if q.is_empty() || self.r == 0 {
            return;
        }
        self.search_node(1, q, out);
    }

    fn search_node<'t>(&'t self, v: usize, q: &RRect<D>, out: &mut Vec<Sel<'t, D>>) {
        let Some((lo, hi)) = self.node_interval(v) else { return };
        let j = self.dim as usize;
        if q.disjoint_interval(j, lo, hi) {
            return; // case 4
        }
        if q.contains_interval(j, lo, hi) {
            if j == D - 1 {
                out.push(Sel::Node { tree: self, v }); // case 2
            } else if heap::is_leaf(self.m as usize, v) {
                // Single point: verify the remaining dimensions directly.
                let (a, _) = self.real_span(v);
                let pt = &self.leaves[a];
                if q.contains_ranks_from(pt, j + 1) {
                    out.push(Sel::Point { pt });
                }
            } else if let Some(dt) = self.desc[v].as_deref() {
                dt.search_node(1, q, out); // case 1
            }
            return;
        }
        // case 3: overlap — split to the children. A leaf's one-point
        // interval is either contained or disjoint, so `v` is internal.
        debug_assert!(!heap::is_leaf(self.m as usize, v));
        self.search_node(2 * v, q, out);
        self.search_node(2 * v + 1, q, out);
    }

    /// Total node count over all dimensions (the memory measure `s`).
    pub fn size_nodes(&self) -> u64 {
        let own = (2 * self.m - 1) as u64;
        own + self.desc.iter().filter_map(|d| d.as_deref()).map(DimTree::size_nodes).sum::<u64>()
    }

    /// Approximate transfer size in words: leaves plus descendant trees.
    pub fn payload_words(&self) -> u64 {
        let own = 2 + self.leaves.len() as u64 * ddrs_cgm::shallow_words::<RPoint<D>>();
        own + self.desc.iter().filter_map(|d| d.as_deref()).map(DimTree::payload_words).sum::<u64>()
    }
}

impl<const D: usize> Payload for DimTree<D> {
    fn words(&self) -> u64 {
        self.payload_words()
    }
}

/// A structure selected by the search: either a canonical node of a
/// dimension-`d` segment tree (all real leaves below it match the query)
/// or a single fully-verified point (the leaf shortcut).
#[derive(Debug, Clone, Copy)]
pub enum Sel<'t, const D: usize> {
    /// Canonical node `v` of a final-dimension tree.
    Node {
        /// The dimension-`d` tree containing the selection.
        tree: &'t DimTree<D>,
        /// Heap index of the selected node.
        v: usize,
    },
    /// A single matching point.
    Point {
        /// The matching point.
        pt: &'t RPoint<D>,
    },
}

/// Merge two runs sorted by `ranks[dim]` into one.
pub(crate) fn merge_by_rank<const D: usize>(
    a: &[RPoint<D>],
    b: &[RPoint<D>],
    dim: usize,
) -> Vec<RPoint<D>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].ranks[dim] <= b[j].ranks[dim] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::PAD_ID;

    fn rp2(xr: u32, yr: u32, id: u32) -> RPoint<2> {
        RPoint { ranks: [xr, yr], id, weight: 1 }
    }

    fn diag(n: u32, m: u32) -> Vec<RPoint<2>> {
        // n real points on a diagonal, padded to m.
        let mut pts: Vec<RPoint<2>> = (0..n).map(|i| rp2(i, i, i)).collect();
        for t in 0..(m - n) {
            pts.push(RPoint { ranks: [n + t, n + t], id: PAD_ID, weight: 0 });
        }
        pts
    }

    #[test]
    fn build_shapes() {
        let t = DimTree::<2>::build(0, diag(6, 8));
        assert_eq!(t.m, 8);
        assert_eq!(t.r, 6);
        assert_eq!(t.desc.len(), 16);
        assert!(t.desc[0].is_none());
        // Node 7 spans leaves 6..8 — all pads, so no descendant.
        assert!(t.desc[7].is_none());
        assert!(t.desc[1].is_some());
        // Final dimension has no descendants.
        assert!(t.desc[1].as_ref().unwrap().desc.is_empty());
    }

    #[test]
    fn node_intervals_clip_pads() {
        let t = DimTree::<2>::build(0, diag(6, 8));
        assert_eq!(t.node_interval(1), Some((0, 5))); // root: real ranks 0..=5
        assert_eq!(t.node_interval(3), Some((4, 5))); // leaves 4..8, reals 4,5
        assert_eq!(t.node_interval(7), None); // all pads
        assert_eq!(t.real_count(1), 6);
        assert_eq!(t.real_count(3), 2);
    }

    /// Figure 1 of the paper: the segment tree for n = 8 leaves. The
    /// paper's segments in 1-based coordinates are
    /// [1,2),…,[7,8),[8,8] at the leaves, then [1,3),[3,5),[5,7),[7,8],
    /// [1,5),[5,8], [1,8]. In 0-based half-open leaf positions those are
    /// exactly the spans {[i,i+1)}, {[0,2),[2,4),[4,6),[6,8)},
    /// {[0,4),[4,8)}, {[0,8)}.
    #[test]
    fn fig1_segment_tree_structure() {
        let m = 8usize;
        let mut spans: Vec<(usize, usize)> = (1..2 * m).map(|v| heap::span(m, v)).collect();
        spans.sort_unstable();
        let mut expected = vec![(0, 8), (0, 4), (4, 8), (0, 2), (2, 4), (4, 6), (6, 8)];
        expected.extend((0..8).map(|i| (i, i + 1)));
        expected.sort_unstable();
        assert_eq!(spans, expected);
    }

    #[test]
    fn search_selects_canonical_cover() {
        // 1-d: selected nodes must disjointly cover exactly the range.
        let pts: Vec<RPoint<1>> =
            (0..16).map(|i| RPoint { ranks: [i], id: i, weight: 1 }).collect();
        let t = DimTree::<1>::build(0, pts);
        let q = RRect { lo: [3], hi: [12] };
        let mut sels = Vec::new();
        t.search(&q, &mut sels);
        let mut covered: Vec<u32> = Vec::new();
        for s in &sels {
            match s {
                Sel::Node { tree, v } => {
                    let (a, b) = tree.real_span(*v);
                    covered.extend((a as u32)..(b as u32));
                }
                Sel::Point { pt } => covered.push(pt.ranks[0]),
            }
        }
        covered.sort_unstable();
        assert_eq!(covered, (3..=12).collect::<Vec<u32>>());
        // O(2 log n) canonical pieces.
        assert!(sels.len() <= 8, "too many canonical pieces: {}", sels.len());
    }

    #[test]
    fn merge_by_rank_interleaves() {
        let a = vec![rp2(0, 1, 0), rp2(2, 5, 1)];
        let b = vec![rp2(3, 0, 3), rp2(1, 3, 2)];
        let m = merge_by_rank(&a, &b, 1);
        let ys: Vec<u32> = m.iter().map(|p| p.ranks[1]).collect();
        assert_eq!(ys, vec![0, 1, 3, 5]);
    }
}
