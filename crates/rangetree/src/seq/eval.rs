//! Evaluating selections: count, report, and semigroup folds.

use std::collections::HashMap;

use crate::heap;
use crate::point::RPoint;
use crate::semigroup::{comb_opt, Semigroup};
use crate::seq::tree::{DimTree, Sel};

/// Number of real points under a selection.
pub fn sel_count<const D: usize>(sel: &Sel<'_, D>) -> u64 {
    match sel {
        Sel::Node { tree, v } => tree.real_count(*v),
        Sel::Point { .. } => 1,
    }
}

/// Append the point ids under a selection to `out`.
pub fn sel_report<const D: usize>(sel: &Sel<'_, D>, out: &mut Vec<u32>) {
    match sel {
        Sel::Node { tree, v } => {
            let (a, b) = tree.real_span(*v);
            out.extend(tree.leaves[a..b].iter().map(|p| p.id));
        }
        Sel::Point { pt } => out.push(pt.id),
    }
}

/// Iterate the real points `(id, weight)` under a selection.
pub fn sel_points<'t, const D: usize>(
    sel: &Sel<'t, D>,
) -> impl Iterator<Item = &'t RPoint<D>> + 't {
    let slice: &'t [RPoint<D>] = match sel {
        Sel::Node { tree, v } => {
            let (a, b) = tree.real_span(*v);
            &tree.leaves[a..b]
        }
        Sel::Point { pt } => std::slice::from_ref(*pt),
    };
    slice.iter()
}

/// Per-batch bottom-up value arrays for the final-dimension trees, the
/// sequential analog of Algorithm AssociativeFunction step 1 ("compute
/// f(v) bottom-up for each node v in dimension d of T"). Trees are keyed
/// by address; the cache must not outlive the tree borrow it serves.
pub struct AggCache<S: Semigroup> {
    map: HashMap<usize, Vec<Option<S::Val>>>,
}

impl<S: Semigroup> AggCache<S> {
    /// Empty cache.
    pub fn new() -> Self {
        AggCache { map: HashMap::new() }
    }

    /// Bottom-up `f` values for every node of `tree` (computed once per
    /// tree per batch).
    pub fn values_for<const D: usize>(&mut self, sg: &S, tree: &DimTree<D>) -> &[Option<S::Val>] {
        let key = tree as *const DimTree<D> as usize;
        self.map.entry(key).or_insert_with(|| {
            let m = tree.m as usize;
            let mut vals: Vec<Option<S::Val>> = vec![None; 2 * m];
            for i in 0..(tree.r as usize) {
                let p = &tree.leaves[i];
                vals[heap::leaf(m, i)] = Some(sg.lift(p.id, p.weight));
            }
            for v in (1..m).rev() {
                vals[v] = comb_opt(sg, vals[2 * v].clone(), vals[2 * v + 1].clone());
            }
            vals
        })
    }
}

impl<S: Semigroup> Default for AggCache<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// `⊗` of `f` over the points under a selection, using the cache for
/// canonical-node selections.
pub fn sel_fold<S: Semigroup, const D: usize>(
    sg: &S,
    sel: &Sel<'_, D>,
    cache: &mut AggCache<S>,
) -> Option<S::Val> {
    match sel {
        Sel::Node { tree, v } => cache.values_for(sg, tree)[*v].clone(),
        Sel::Point { pt } => Some(sg.lift(pt.id, pt.weight)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{RPoint, RRect, PAD_ID};
    use crate::semigroup::{Count, Sum};

    fn tree1d(n: u32, m: u32) -> DimTree<1> {
        let mut pts: Vec<RPoint<1>> =
            (0..n).map(|i| RPoint { ranks: [i], id: i, weight: (i + 1) as u64 }).collect();
        for t in 0..(m - n) {
            pts.push(RPoint { ranks: [n + t], id: PAD_ID, weight: 0 });
        }
        DimTree::build(0, pts)
    }

    #[test]
    fn counts_and_reports_clip_pads() {
        let t = tree1d(5, 8);
        let q = RRect { lo: [0], hi: [7] };
        let mut sels = Vec::new();
        t.search(&q, &mut sels);
        let total: u64 = sels.iter().map(sel_count).sum();
        assert_eq!(total, 5);
        let mut ids = Vec::new();
        for s in &sels {
            sel_report(s, &mut ids);
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cached_fold_equals_direct_fold() {
        let t = tree1d(7, 8);
        let q = RRect { lo: [2], hi: [6] };
        let mut sels = Vec::new();
        t.search(&q, &mut sels);
        let mut cache = AggCache::new();
        let mut total: Option<u64> = None;
        for s in &sels {
            total = comb_opt(&Sum, total, sel_fold(&Sum, s, &mut cache));
        }
        // weights are i+1 → ranks 2..=6 have weights 3+4+5+6+7 = 25.
        assert_eq!(total, Some(25));
        // Count via the same machinery.
        let mut cache = AggCache::new();
        let mut cnt: Option<u64> = None;
        for s in &sels {
            cnt = comb_opt(&Count, cnt, sel_fold(&Count, s, &mut cache));
        }
        assert_eq!(cnt, Some(5));
    }

    #[test]
    fn cache_reuses_computed_arrays() {
        let t = tree1d(8, 8);
        let mut cache: AggCache<Count> = AggCache::new();
        let v1 = cache.values_for(&Count, &t)[1];
        let v2 = cache.values_for(&Count, &t)[1];
        assert_eq!(v1, Some(8));
        assert_eq!(v2, Some(8));
        assert_eq!(cache.map.len(), 1);
    }
}
