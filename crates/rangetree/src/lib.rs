//! # ddrs-rangetree — distributed d-dimensional range trees
//!
//! Reproduction of the data structures and algorithms of *Ferreira,
//! Kenyon, Rau-Chaplin, Ubéda — "d-Dimensional Range Search on
//! Multicomputers"* (IPPS 1997):
//!
//! * [`SeqRangeTree`] — the classical sequential range tree
//!   (`O(n log^(d-1) n)` space, `O(log^d n)` search) the paper builds on;
//! * [`DistRangeTree`] — the paper's contribution: a distributed range
//!   tree on a `CGM(s, p)` machine, split into a replicated **hat** (the
//!   top `log p` levels, a range tree on `p` leaves) and a distributed
//!   **forest** of `n/p`-point subtrees, supporting batched multisearch
//!   with per-tree congestion balancing;
//! * query modes: counting, generic commutative-[`Semigroup`]
//!   aggregation (*associative-function mode*) and enumeration
//!   (*report mode*).
//!
//! ```
//! use ddrs_cgm::Machine;
//! use ddrs_rangetree::{DistRangeTree, Point, Rect};
//!
//! let machine = Machine::new(4).unwrap();
//! let pts: Vec<Point<2>> =
//!     (0..64).map(|i| Point::new([i, 63 - i], i as u32)).collect();
//! let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
//! let counts = tree.count_batch(&machine, &[Rect::new([0, 0], [15, 63])]);
//! assert_eq!(counts, vec![16]);
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod heap;
pub mod label;
pub mod point;
pub mod rank;
pub mod semigroup;
pub mod seq;

pub use dist::{
    fused_query_batch, try_fused_query_batch, BuildError, DistRangeTree, DynamicDistRangeTree,
    FusedOutputs, StructureReport,
};
pub use point::{Point, RPoint, RRect, Rect, PAD_ID};
pub use rank::{RankError, RankSpace};
pub use semigroup::{Count, MaxWeight, MinId, Semigroup, Sum};
pub use seq::{DimTree, Sel, SeqRangeTree};
