//! Heap-array arithmetic for complete binary trees (segment trees).
//!
//! A segment tree over `m = 2^h` leaves is stored as a heap of `2m` slots:
//! the root at index 1, node `v`'s children at `2v` and `2v + 1`, and the
//! leaf for position `i` at index `m + i`. These helpers are shared by the
//! sequential [`DimTree`](crate::seq::DimTree) and the replicated hat
//! trees.

/// Number of heap slots for a tree with `m` leaves (slot 0 unused).
#[inline]
pub fn slots(m: usize) -> usize {
    2 * m
}

/// Heap index of the leaf at position `i` in a tree with `m` leaves.
#[inline]
pub fn leaf(m: usize, i: usize) -> usize {
    m + i
}

/// Is `v` a leaf in a tree with `m` leaves?
#[inline]
pub fn is_leaf(m: usize, v: usize) -> bool {
    v >= m
}

/// The leaf-position range `[a, b)` spanned by node `v` in a tree with `m`
/// leaves.
#[inline]
pub fn span(m: usize, v: usize) -> (usize, usize) {
    debug_assert!(v >= 1 && v < 2 * m);
    let depth = v.ilog2();
    let width = m >> depth;
    let offset = (v - (1 << depth)) * width;
    (offset, offset + width)
}

/// `level(v)`: the height of `v` above the leaves (Definition 2(i)); the
/// root of a tree with `m = 2^h` leaves has level `h`, leaves have level 0.
#[inline]
pub fn level(m: usize, v: usize) -> u32 {
    m.ilog2() - v.ilog2()
}

/// Parent heap index (the root has no parent).
#[inline]
pub fn parent(v: usize) -> usize {
    v / 2
}

/// Walk from the leaf at position `i` up to (and including) the root,
/// yielding the *internal* ancestors (parent of the leaf first).
pub fn internal_ancestors(m: usize, i: usize) -> impl Iterator<Item = usize> {
    let mut v = leaf(m, i) / 2;
    std::iter::from_fn(move || {
        if v >= 1 {
            let out = v;
            v /= 2;
            Some(out)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_partition_each_level() {
        let m = 8;
        assert_eq!(span(m, 1), (0, 8));
        assert_eq!(span(m, 2), (0, 4));
        assert_eq!(span(m, 3), (4, 8));
        assert_eq!(span(m, 7), (6, 8));
        for i in 0..m {
            assert_eq!(span(m, leaf(m, i)), (i, i + 1));
        }
    }

    #[test]
    fn levels_match_heights() {
        let m = 8;
        assert_eq!(level(m, 1), 3);
        assert_eq!(level(m, 2), 2);
        assert_eq!(level(m, 15), 0);
    }

    #[test]
    fn ancestor_walk() {
        let m = 8;
        let anc: Vec<usize> = internal_ancestors(m, 5).collect();
        // leaf(8,5) = 13 → 6 → 3 → 1
        assert_eq!(anc, vec![6, 3, 1]);
    }

    #[test]
    fn single_leaf_tree() {
        // m = 1: node 1 is both root and leaf.
        assert!(is_leaf(1, 1));
        assert_eq!(span(1, 1), (0, 1));
        assert_eq!(level(1, 1), 0);
        assert_eq!(internal_ancestors(1, 0).count(), 0);
    }
}
