//! Node labels (Definition 2 of the paper).
//!
//! Every node `v` of the range tree `T` gets a unique label `path(v)` built
//! from two indices:
//!
//! * `level(v)` — the height of `v` above the leaves of its own segment
//!   tree (0 for leaves);
//! * `index(v)` — 1 for the root of `T`; `index(ancestor(v))` for the root
//!   of any other segment tree (the root of a descendant structure
//!   *inherits* the index of the node pointing at it); `2·index(parent)`
//!   for a left child and `2·index(parent) + 1` for a right child.
//!
//! `path_index(v) = ⟨index(v), level(v)⟩` and `path(v)` chains the
//! `path_index` values through the ancestor chain across dimensions.
//! Lemma 1: for every segment tree `t` and node `v ∈ t`,
//! `path(ancestor(v))` uniquely identifies `t` — this is what lets the
//! distributed structure name trees, route records to them during
//! construction, and address them during the search.

/// A node position inside the conceptual range tree: the chain, from the
/// primary tree down to the node's own tree, of (heap index within that
/// segment tree, leaf count of that segment tree) pairs. The last entry is
/// the node itself; earlier entries are its `ancestor` chain.
pub type Chain<'a> = &'a [(usize, usize)];

/// `index(v)` for a node at heap position `v` of a segment tree whose root
/// inherited index `base` (Definition 2(ii)): grafting the heap under
/// `base` gives `base · 2^depth + offset`.
#[inline]
pub fn index_in_tree(base: u64, v: usize) -> u64 {
    debug_assert!(v >= 1);
    let depth = v.ilog2();
    base * (1u64 << depth) + (v as u64 - (1u64 << depth))
}

/// One `⟨index, level⟩` pair (Definition 2(iii)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathIndex {
    /// `index(v)`.
    pub index: u64,
    /// `level(v)`.
    pub level: u32,
}

/// `path(v)` — the full label (Definition 2(iv)), outermost dimension
/// first. Lexicographic order on labels groups nodes of the same tree
/// together, which is what the construction algorithm's sorts rely on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathLabel {
    /// `path_index` entries from the primary tree down to the node itself.
    pub pairs: Vec<PathIndex>,
}

impl PathLabel {
    /// Compute the label of the node described by `chain`.
    ///
    /// Each chain entry is `(heap index, leaf count)` for one segment tree
    /// along the descendant chain; the node addressed is the heap position
    /// in the *last* entry.
    pub fn of(chain: Chain<'_>) -> PathLabel {
        let mut pairs = Vec::with_capacity(chain.len());
        let mut base = 1u64; // index of the root of T
        for &(v, m) in chain {
            let index = index_in_tree(base, v);
            let level = crate::heap::level(m, v);
            pairs.push(PathIndex { index, level });
            base = index; // descendant root inherits index(ancestor)
        }
        PathLabel { pairs }
    }

    /// The label of `ancestor(v)`: the chain up to the previous dimension.
    /// Per Lemma 1 this identifies the segment tree containing `v`.
    pub fn ancestor(&self) -> PathLabel {
        PathLabel { pairs: self.pairs[..self.pairs.len().saturating_sub(1)].to_vec() }
    }

    /// Dimension of the node (0-based): number of chain links minus one.
    pub fn dim(&self) -> usize {
        self.pairs.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Figure 2 of the paper: a node `U` with `Index = x`, `Level = 1` in
    /// dimension `i` has children of index `2x`/`2x+1` at level 0; the root
    /// `V` of its descendant tree in dimension `i+1` satisfies
    /// `Index(V) = Index(U) = x` with `Level(V) = 2` (a 4-leaf tree), and
    /// the leaves of that tree get indices `4x .. 4x+3`.
    #[test]
    fn fig2_label_algebra() {
        // Model: dimension-i tree with 8 leaves; U is the internal node at
        // heap position 5 (level 1), so x = index(U) = 5.
        let m_i = 8;
        let u = 5usize;
        let x = index_in_tree(1, u);
        assert_eq!(crate::heap::level(m_i, u), 1);

        // Children of U: indices 2x and 2x+1 at level 0.
        let left = PathLabel::of(&[(2 * u, m_i)]);
        let right = PathLabel::of(&[(2 * u + 1, m_i)]);
        assert_eq!(left.pairs[0], PathIndex { index: 2 * x, level: 0 });
        assert_eq!(right.pairs[0], PathIndex { index: 2 * x + 1, level: 0 });

        // V = root of descendant(U), a tree with 4 leaves in dim i+1.
        let m_v = 4;
        let v_label = PathLabel::of(&[(u, m_i), (1, m_v)]);
        assert_eq!(v_label.pairs[1], PathIndex { index: x, level: 2 });

        // Leaves of descendant(U): indices 4x + 0..4 at level 0.
        for leaf_pos in 0..4 {
            let l = PathLabel::of(&[(u, m_i), (crate::heap::leaf(m_v, leaf_pos), m_v)]);
            assert_eq!(l.pairs[1], PathIndex { index: 4 * x + leaf_pos as u64, level: 0 });
        }
    }

    #[test]
    fn root_of_primary_has_index_one() {
        let l = PathLabel::of(&[(1, 16)]);
        assert_eq!(l.pairs, vec![PathIndex { index: 1, level: 4 }]);
    }

    #[test]
    fn labels_unique_within_a_two_dim_tree() {
        // All nodes of a 2-dimensional range tree over 8 points: primary
        // tree 8 leaves; every primary node has a descendant tree with
        // 2^level(v) leaves. Labels must be pairwise distinct.
        let m = 8usize;
        let mut seen: HashSet<PathLabel> = HashSet::new();
        for v in 1..2 * m {
            assert!(seen.insert(PathLabel::of(&[(v, m)])), "dup at primary {v}");
            let mv = 1usize << crate::heap::level(m, v);
            for w in 1..2 * mv {
                let l = PathLabel::of(&[(v, m), (w, mv)]);
                assert!(seen.insert(l), "dup at ({v},{w})");
            }
        }
    }

    /// Lemma 1: `path(ancestor(v))` is the same for all nodes of one
    /// segment tree and differs between trees.
    #[test]
    fn lemma1_ancestor_identifies_tree() {
        let m = 8usize;
        let mut tree_ids: HashSet<PathLabel> = HashSet::new();
        for v in 1..2 * m {
            let mv = 1usize << crate::heap::level(m, v);
            let members: Vec<PathLabel> =
                (1..2 * mv).map(|w| PathLabel::of(&[(v, m), (w, mv)]).ancestor()).collect();
            // All members agree...
            assert!(members.windows(2).all(|p| p[0] == p[1]));
            // ...and the id is new for this tree.
            assert!(tree_ids.insert(members[0].clone()), "trees collide at v={v}");
        }
    }

    #[test]
    fn label_ordering_groups_trees() {
        // Lexicographic order: all nodes sharing an ancestor prefix sort
        // contiguously when compared by (ancestor, own pair).
        let a = PathLabel::of(&[(2, 8), (1, 4)]);
        let b = PathLabel::of(&[(2, 8), (2, 4)]);
        let c = PathLabel::of(&[(3, 8), (1, 4)]);
        assert!(a < b && b < c);
    }
}
