//! Commutative semigroups for the associative-function query mode.
//!
//! The paper's associative-function mode computes `⊗_{l ∈ R(q)} f(l)` where
//! `f(l)` lies in a commutative semigroup with operation `⊗`. A semigroup
//! has no identity element, so the result of a query matching no points is
//! `None` at the API level.

use ddrs_cgm::Payload;

/// A commutative semigroup over values lifted from points.
///
/// `lift` maps a point (its id and weight) to a semigroup value; `comb` is
/// the associative, commutative operation `⊗`.
pub trait Semigroup: Copy + Send + Sync + 'static {
    /// Semigroup element type.
    type Val: Payload + Clone + Send + Sync + std::fmt::Debug + PartialEq;

    /// `f(l)` — the value contributed by one point.
    fn lift(&self, id: u32, weight: u64) -> Self::Val;

    /// The semigroup operation `⊗`.
    fn comb(&self, a: Self::Val, b: Self::Val) -> Self::Val;
}

/// Counting: `f(l) = 1`, `⊗ = +`. Range counting is the canonical
/// associative-function instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Count;

impl Semigroup for Count {
    type Val = u64;
    fn lift(&self, _id: u32, _weight: u64) -> u64 {
        1
    }
    fn comb(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Weighted sum: `f(l) = weight(l)`, `⊗ = +`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl Semigroup for Sum {
    type Val = u64;
    fn lift(&self, _id: u32, weight: u64) -> u64 {
        weight
    }
    fn comb(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Maximum weight: `⊗ = max`. An example of a semigroup *without* inverses
/// (the paper notes that functions with inverses admit the simpler
/// weighted-dominance-counting solution; `max` does not).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxWeight;

impl Semigroup for MaxWeight {
    type Val = u64;
    fn lift(&self, _id: u32, weight: u64) -> u64 {
        weight
    }
    fn comb(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// Minimum id: yields an arbitrary-but-deterministic witness point for
/// non-empty results.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinId;

impl Semigroup for MinId {
    type Val = u32;
    fn lift(&self, id: u32, _weight: u64) -> u32 {
        id
    }
    fn comb(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
}

/// Fold a semigroup over an iterator of `(id, weight)` pairs.
pub fn fold_points<S: Semigroup>(
    sg: &S,
    it: impl IntoIterator<Item = (u32, u64)>,
) -> Option<S::Val> {
    let mut acc: Option<S::Val> = None;
    for (id, w) in it {
        let v = sg.lift(id, w);
        acc = Some(match acc {
            Some(a) => sg.comb(a, v),
            None => v,
        });
    }
    acc
}

/// Combine two optional semigroup values.
pub fn comb_opt<S: Semigroup>(sg: &S, a: Option<S::Val>, b: Option<S::Val>) -> Option<S::Val> {
    match (a, b) {
        (Some(a), Some(b)) => Some(sg.comb(a, b)),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_sum() {
        let pts = [(1u32, 10u64), (2, 20), (3, 30)];
        assert_eq!(fold_points(&Count, pts), Some(3));
        assert_eq!(fold_points(&Sum, pts), Some(60));
        assert_eq!(fold_points(&MaxWeight, pts), Some(30));
        assert_eq!(fold_points(&MinId, pts), Some(1));
    }

    #[test]
    fn empty_fold_is_none() {
        assert_eq!(fold_points(&Count, std::iter::empty()), None);
    }

    #[test]
    fn comb_opt_handles_missing_sides() {
        assert_eq!(comb_opt(&Sum, Some(3), Some(4)), Some(7));
        assert_eq!(comb_opt(&Sum, Some(3), None), Some(3));
        assert_eq!(comb_opt(&Sum, None, Some(4)), Some(4));
        assert_eq!(comb_opt::<Sum>(&Sum, None, None), None);
    }
}
