//! Rank normalization and power-of-two padding.
//!
//! Maps user coordinates to the paper's normalized setting: every
//! coordinate replaced by its rank (duplicates broken by record id, so
//! ranks are unique per dimension), the point count padded to the next
//! power of two with sentinel points whose ranks exceed every real rank in
//! every dimension. Queries are translated to inclusive rank intervals by
//! binary search, so sentinel pads are unreachable by any query.

use crate::point::{Point, RPoint, RRect, Rect, PAD_ID};

/// The rank mapping for one input point set.
///
/// Holds the per-dimension sorted `(coordinate, id)` arrays needed to
/// translate query boxes into rank space. In a production multicomputer
/// this translation would be a distributed binary search; keeping the
/// arrays on the host is an API convenience that does not participate in
/// the measured CGM algorithms.
#[derive(Debug, Clone)]
pub struct RankSpace<const D: usize> {
    /// Per dimension: `(coordinate, id)` sorted ascending.
    sorted: Vec<Vec<(i64, u32)>>,
    /// Number of real points.
    n: usize,
    /// Padded size: the smallest power of two `>= max(n, min_size)`.
    m: usize,
}

/// Errors from rank-space construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankError {
    /// Two input points share an id (ranks would be ambiguous).
    DuplicateId(u32),
    /// A point uses the reserved pad id.
    ReservedId,
    /// The input point set is empty.
    Empty,
}

impl std::fmt::Display for RankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankError::DuplicateId(id) => write!(f, "duplicate point id {id}"),
            RankError::ReservedId => write!(f, "point id {PAD_ID} is reserved for pads"),
            RankError::Empty => write!(f, "empty point set"),
        }
    }
}

impl std::error::Error for RankError {}

impl<const D: usize> RankSpace<D> {
    /// Build the rank space for `pts`, padding the size up to a power of
    /// two that is at least `min_size` (pass the processor count so the
    /// padded size is divisible by `p`).
    pub fn build(pts: &[Point<D>], min_size: usize) -> Result<Self, RankError> {
        if pts.is_empty() {
            return Err(RankError::Empty);
        }
        let mut seen = std::collections::HashSet::with_capacity(pts.len());
        for p in pts {
            if p.id == PAD_ID {
                return Err(RankError::ReservedId);
            }
            if !seen.insert(p.id) {
                return Err(RankError::DuplicateId(p.id));
            }
        }
        let n = pts.len();
        let m = n.max(min_size).max(1).next_power_of_two();
        let mut sorted = Vec::with_capacity(D);
        for j in 0..D {
            let mut col: Vec<(i64, u32)> = pts.iter().map(|p| (p.coords[j], p.id)).collect();
            col.sort_unstable();
            sorted.push(col);
        }
        Ok(RankSpace { sorted, n, m })
    }

    /// Number of real points.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Padded size (a power of two).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Convert the input points to rank space and append the sentinel pads
    /// (pad `t` has rank `n + t` in every dimension), yielding exactly
    /// [`m`](RankSpace::m) points.
    pub fn to_rpoints(&self, pts: &[Point<D>]) -> Vec<RPoint<D>> {
        let mut out = Vec::with_capacity(self.m);
        for p in pts {
            let mut ranks = [0u32; D];
            for (j, r) in ranks.iter_mut().enumerate() {
                let idx = self.sorted[j]
                    .binary_search(&(p.coords[j], p.id))
                    .expect("point must come from the set the rank space was built on");
                *r = idx as u32;
            }
            out.push(RPoint { ranks, id: p.id, weight: p.weight });
        }
        for t in 0..(self.m - self.n) {
            out.push(RPoint { ranks: [(self.n + t) as u32; D], id: PAD_ID, weight: 0 });
        }
        out
    }

    /// Translate a query box to inclusive rank intervals. The interval in
    /// dimension `j` covers exactly the real points whose coordinate lies
    /// in `[lo[j], hi[j]]`.
    pub fn translate(&self, q: &Rect<D>) -> RRect<D> {
        let mut lo = [0u32; D];
        let mut hi = [0u32; D];
        for j in 0..D {
            // First rank with coord >= q.lo[j] (any id).
            let l = self.sorted[j].partition_point(|&(c, _)| c < q.lo[j]);
            // First rank with coord > q.hi[j].
            let h = self.sorted[j].partition_point(|&(c, _)| c <= q.hi[j]);
            lo[j] = l as u32;
            // h == l encodes an empty interval as lo > hi (u32 wrap avoided).
            if h == 0 || h <= l {
                lo[j] = 1;
                hi[j] = 0;
            } else {
                hi[j] = (h - 1) as u32;
            }
        }
        RRect { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts2(coords: &[[i64; 2]]) -> Vec<Point<2>> {
        coords.iter().enumerate().map(|(i, &c)| Point::new(c, i as u32)).collect()
    }

    #[test]
    fn ranks_are_unique_and_order_preserving() {
        let pts = pts2(&[[5, 50], [3, 30], [9, 10], [3, 70]]);
        let rs = RankSpace::build(&pts, 1).unwrap();
        let rp = rs.to_rpoints(&pts);
        // Dimension 0 values: 5,3,9,3 → ranks 2,{0,1},3 (duplicates by id).
        assert_eq!(rp[0].ranks[0], 2);
        assert_eq!(rp[2].ranks[0], 3);
        let dup_ranks: Vec<u32> = vec![rp[1].ranks[0], rp[3].ranks[0]];
        // id 1 before id 3
        assert_eq!(dup_ranks, vec![0, 1]);
        // Dimension 1 values 50,30,10,70 → ranks 2,1,0,3.
        assert_eq!(rp.iter().take(4).map(|p| p.ranks[1]).collect::<Vec<_>>(), vec![2, 1, 0, 3]);
    }

    #[test]
    fn padding_to_power_of_two_with_min_size() {
        let pts = pts2(&[[1, 1], [2, 2], [3, 3]]);
        let rs = RankSpace::build(&pts, 8).unwrap();
        assert_eq!(rs.m(), 8);
        let rp = rs.to_rpoints(&pts);
        assert_eq!(rp.len(), 8);
        assert!(rp[3..].iter().all(|p| p.is_pad()));
        // Pads rank beyond all real ranks, increasing.
        assert_eq!(rp[3].ranks, [3, 3]);
        assert_eq!(rp[7].ranks, [7, 7]);
    }

    #[test]
    fn translate_inclusive_bounds() {
        let pts = pts2(&[[10, 0], [20, 0], [30, 0], [40, 0]]);
        let rs = RankSpace::build(&pts, 1).unwrap();
        let q = rs.translate(&Rect::new([20, 0], [30, 0]));
        assert_eq!((q.lo[0], q.hi[0]), (1, 2));
        // Query between values: [21, 29] matches nothing in dim 0.
        let q = rs.translate(&Rect::new([21, 0], [29, 0]));
        assert!(q.lo[0] > q.hi[0]);
        // Query covering everything.
        let q = rs.translate(&Rect::new([i64::MIN, 0], [i64::MAX, 0]));
        assert_eq!((q.lo[0], q.hi[0]), (0, 3));
    }

    #[test]
    fn translate_duplicates_cover_all_copies() {
        let pts = pts2(&[[7, 0], [7, 0], [7, 0], [9, 0]]);
        let rs = RankSpace::build(&pts, 1).unwrap();
        let q = rs.translate(&Rect::new([7, 0], [7, 0]));
        assert_eq!((q.lo[0], q.hi[0]), (0, 2));
    }

    #[test]
    fn build_rejects_bad_ids() {
        let mut pts = pts2(&[[1, 1], [2, 2]]);
        pts[1].id = 0;
        assert!(matches!(RankSpace::build(&pts, 1), Err(RankError::DuplicateId(0))));
        let mut pts = pts2(&[[1, 1]]);
        pts[0].id = PAD_ID;
        assert!(matches!(RankSpace::build(&pts, 1), Err(RankError::ReservedId)));
        assert!(matches!(RankSpace::<2>::build(&[], 1), Err(RankError::Empty)));
    }
}
