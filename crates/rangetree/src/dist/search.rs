//! Algorithm Search: batched multisearch through the hat, congestion
//! balancing, and the forest finishes.
//!
//! Queries are dealt round-robin (`owner(q) = qid mod p`). Each
//! processor advances its queries through the (local) hat replica with
//! the paper's 4-case search:
//!
//! 1. node interval ⊆ query, `j < d` → proceed to the descendant hat
//!    tree;
//! 2. node interval ⊆ query, `j = d` → select the node (its answer is a
//!    replicated aggregate — no forest visit needed);
//! 3. intervals overlap → split the query to both hat children;
//! 4. intervals disjoint → delete the query.
//!
//! Whenever the walk reaches a *group leaf* (cases 1–3 at the bottom of
//! a hat tree) the query must continue inside that group's forest
//! subtree: the walk emits a **visit** `(fid, subquery)`. Visits are
//! then evened out by [`balance_visits`] — the multisearch balancing of
//! Atallah et al. that the paper cites: congested forest trees are
//! *copied* `c_j = ⌈|QF_j| / (|Q|/p)⌉` times and each visit is routed to
//! a processor holding a copy, so every processor finishes an `O(|Q|/p)`
//! share of forest searches regardless of skew.

use std::collections::{BTreeMap, HashMap};

use ddrs_cgm::Ctx;

use crate::dist::construct::{ForestEntry, ProcState};
use crate::dist::hat::{child_key, ROOT_KEY};
use crate::heap;
use crate::point::RRect;
use crate::semigroup::{comb_opt, Semigroup};

/// One in-flight query: `(query id, rank-space box)`.
pub type QueryRec<const D: usize> = (u32, RRect<D>);

/// Output of the hat stage for one processor's query share.
#[derive(Debug, Clone, Default)]
pub struct HatStage<const D: usize> {
    /// Forest visits `(forest id, subquery)` still to be finished.
    pub visits: Vec<(u64, QueryRec<D>)>,
    /// Final-dimension hat selections `(qid, (tree key, heap node))`:
    /// canonical nodes whose whole point set matches the query, resolved
    /// from replicated hat aggregates without touching the forest.
    pub sels: Vec<(u32, (u64, u32))>,
}

enum Mode {
    /// Contained final-dimension internal nodes become [`HatStage::sels`].
    Aggregate,
    /// Contained final-dimension internal nodes expand to visits of every
    /// non-empty group below (report mode must enumerate the points).
    Report,
}

fn walk<const D: usize>(
    state: &ProcState<D>,
    key: u64,
    v: usize,
    qid: u32,
    q: &RRect<D>,
    mode: &Mode,
    out: &mut HatStage<D>,
) {
    let t = &state.hat.trees[&key];
    if t.cnt[v] == 0 {
        return; // no real points below (case 4, vacuously)
    }
    let j = t.dim as usize;
    let (lo, hi) = (t.lo[v], t.hi[v]);
    if q.disjoint_interval(j, lo, hi) {
        return; // case 4
    }
    let nleaves = t.nleaves as usize;
    if q.contains_interval(j, lo, hi) {
        if t.is_leaf(v) {
            // Continue inside the group's forest subtree (which re-checks
            // dimension j trivially and handles dimensions j+1..d).
            out.visits.push((t.leaf_forest[v - nleaves] as u64, (qid, *q)));
        } else if j + 1 < D {
            // Case 1: proceed to the descendant hat tree.
            walk(state, child_key(key, v, state.hat.key_shift), 1, qid, q, mode, out);
        } else {
            // Case 2: final dimension — the node's whole point set matches.
            match mode {
                Mode::Aggregate => out.sels.push((qid, (key, v as u32))),
                Mode::Report => {
                    let (a, b) = heap::span(nleaves, v);
                    for leaf in a..b {
                        if t.cnt[nleaves + leaf] > 0 {
                            out.visits.push((t.leaf_forest[leaf] as u64, (qid, *q)));
                        }
                    }
                }
            }
        }
        return;
    }
    // Case 3: overlap.
    if t.is_leaf(v) {
        // The query boundary cuts through this group: finish inside its
        // forest subtree.
        out.visits.push((t.leaf_forest[v - nleaves] as u64, (qid, *q)));
    } else {
        walk(state, key, 2 * v, qid, q, mode, out);
        walk(state, key, 2 * v + 1, qid, q, mode, out);
    }
}

fn stage<const D: usize>(state: &ProcState<D>, queries: &[QueryRec<D>], mode: Mode) -> HatStage<D> {
    let mut out = HatStage::default();
    for (qid, q) in queries {
        if q.is_empty() {
            continue;
        }
        walk(state, ROOT_KEY, 1, *qid, q, &mode, &mut out);
    }
    out
}

/// Advance a processor's query share through the hat (local computation,
/// no communication). Counting/aggregation resolves
/// [`sels`](HatStage::sels) from replicated hat values and routes only
/// [`visits`](HatStage::visits) to the forest.
pub fn hat_stage<const D: usize>(state: &ProcState<D>, queries: &[QueryRec<D>]) -> HatStage<D> {
    stage(state, queries, Mode::Aggregate)
}

/// Report-mode hat stage: like [`hat_stage`] but final-dimension hat
/// selections are expanded into visits of every non-empty group below,
/// since their points must be enumerated, not just aggregated.
pub(crate) fn report_visits<const D: usize>(
    state: &ProcState<D>,
    queries: &[QueryRec<D>],
) -> Vec<(u64, QueryRec<D>)> {
    stage(state, queries, Mode::Report).visits
}

/// Result of [`balance_visits`]: the forest-tree copies shipped to this
/// processor and the `(forest id, subquery)` visits routed to it.
pub type BalancedVisits<const D: usize> = (Vec<(u64, ForestEntry<D>)>, Vec<(u64, QueryRec<D>)>);

/// The multisearch balancing step (Search steps 2–4): replicate
/// congested forest trees and route every visit to a processor holding a
/// copy of its target. Three supersteps. Returns the copies shipped to
/// this processor and its share of the visits; resolve targets with
/// [`tree_for`].
pub fn balance_visits<const D: usize>(
    ctx: &mut Ctx<'_>,
    state: &ProcState<D>,
    visits: Vec<(u64, QueryRec<D>)>,
) -> BalancedVisits<D> {
    balance_weighted(ctx, state, visits, |_| 1)
}

/// Per-group output-volume weights, read from the hat replica's leaf
/// summaries: forest id → real-point count, floored at 1. This is the
/// balancing measure of Algorithm Report (a selected tree is weighed by
/// its expected output), shared by the per-mode driver and the fused
/// engine so the two can never diverge.
pub(crate) fn group_weights<const D: usize>(state: &ProcState<D>) -> HashMap<u64, u64> {
    let mut out = HashMap::new();
    for t in state.hat.trees.values() {
        let nleaves = t.nleaves as usize;
        for i in 0..nleaves {
            out.insert(t.leaf_forest[i] as u64, (t.cnt[nleaves + i] as u64).max(1));
        }
    }
    out
}

/// Report-mode balancing: Algorithm Report weighs each selected tree by
/// its expected output volume ([`group_weights`]) rather than a unit
/// weight. Same three supersteps as [`balance_visits`].
pub(crate) fn balance_visits_report<const D: usize>(
    ctx: &mut Ctx<'_>,
    state: &ProcState<D>,
    visits: Vec<(u64, QueryRec<D>)>,
) -> BalancedVisits<D> {
    let group_count = group_weights(state);
    balance_weighted(ctx, state, visits, move |fid| group_count[&fid])
}

fn balance_weighted<const D: usize>(
    ctx: &mut Ctx<'_>,
    state: &ProcState<D>,
    visits: Vec<(u64, QueryRec<D>)>,
    weight: impl Fn(u64) -> u64,
) -> BalancedVisits<D> {
    let owned_ids: Vec<u64> = state.forest.keys().map(|&fid| fid as u64).collect();
    let items: Vec<(u64, QueryRec<D>, u64)> =
        visits.into_iter().map(|(fid, rec)| (fid, rec, weight(fid))).collect();
    let outcome = ctx.load_balance_weighted_with(
        &owned_ids,
        |fid| state.forest[&(fid as u32)].clone(),
        items,
    );
    (outcome.resources, outcome.items)
}

/// Resolve a balanced visit's target tree: a copy shipped by
/// [`balance_visits`], or this processor's own original.
pub fn tree_for<'a, const D: usize>(
    trees: &'a [(u64, ForestEntry<D>)],
    state: &'a ProcState<D>,
    fid: u64,
) -> &'a ForestEntry<D> {
    trees
        .iter()
        .find(|(f, _)| *f == fid)
        .map(|(_, entry)| entry)
        .unwrap_or_else(|| &state.forest[&(fid as u32)])
}

/// Algorithm AssociativeFunction step 1 for the hat: given the
/// all-gathered forest-root values (`⊗` of `f` over each group's real
/// points), compute the bottom-up `f(v)` arrays of every final-dimension
/// hat tree. Selections from [`hat_stage`] read their answers here.
pub(crate) fn fill_hat_values<S: Semigroup, const D: usize>(
    state: &ProcState<D>,
    sg: &S,
    roots: &HashMap<u64, Option<S::Val>>,
) -> BTreeMap<u64, Vec<Option<S::Val>>> {
    let mut out = BTreeMap::new();
    for (&key, t) in &state.hat.trees {
        if t.dim as usize != D - 1 {
            continue;
        }
        let nleaves = t.nleaves as usize;
        let mut vals: Vec<Option<S::Val>> = vec![None; 2 * nleaves];
        for i in 0..nleaves {
            vals[nleaves + i] = roots
                .get(&(t.leaf_forest[i] as u64))
                .cloned()
                .expect("every hat leaf has a forest root value");
        }
        for v in (1..nleaves).rev() {
            vals[v] = comb_opt(sg, vals[2 * v].clone(), vals[2 * v + 1].clone());
        }
        out.insert(key, vals);
    }
    out
}
