//! The fused mixed-mode query engine: one machine submission per batch.
//!
//! The paper's optimality claim is a *constant* number of communication
//! rounds per query batch. The per-mode drivers in [`super`] honour that
//! for a single static tree, but a heterogeneous workload against a
//! [`DynamicDistRangeTree`](crate::DynamicDistRangeTree) with `L`
//! occupied levels used to pay `3·L` full [`Machine::run`] submissions
//! (one per logarithmic-method level per mode). This module plans *all*
//! count, aggregate and report queries over *all* levels into a single
//! SPMD program:
//!
//! 1. one all-gather fills the final-dimension hat aggregates of every
//!    level at once (skipped when the batch has no aggregate queries —
//!    counting reads the replicated `cnt` arrays directly);
//! 2. the hat stages of every mode and level run locally; forest visits
//!    are tagged with a *composite* resource id `(level << 32) | fid` so
//!    one multisearch balancing round (three supersteps,
//!    [`Ctx::load_balance_weighted_with`]) evens out the forest work of
//!    the whole batch — report visits weighted by their group's output
//!    volume, exactly as Algorithm Report prescribes;
//! 3. count/aggregate partials from all levels share one global sort +
//!    segmented fold; report pairs from all levels share one
//!    order-preserving rebalance.
//!
//! Every stage that would be a no-op for the batch shape is skipped
//! *uniformly* (the decision depends only on host-provided query counts,
//! so SPMD superstep alignment is preserved). The result: a mixed batch
//! costs at most 10 supersteps and exactly **one** run, independent of
//! the number of levels and of the mode mix.
//!
//! [`Ctx::load_balance_weighted_with`]: ddrs_cgm::Ctx::load_balance_weighted_with

use std::collections::{BTreeMap, HashMap};

use ddrs_cgm::{CgmError, Machine};

use crate::dist::construct::ForestEntry;
use crate::dist::search::{fill_hat_values, group_weights, hat_stage, report_visits, QueryRec};
use crate::dist::DistRangeTree;
use crate::point::Rect;
use crate::semigroup::{comb_opt, fold_points, Semigroup};
use crate::seq::{sel_count, sel_fold, sel_report, AggCache};

/// Results of one fused batch, per mode, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedOutputs<S: Semigroup> {
    /// One count per count query.
    pub counts: Vec<u64>,
    /// One fold per aggregate query (`None` when nothing matched).
    pub aggregates: Vec<Option<S::Val>>,
    /// Matching point ids per report query, ascending.
    pub reports: Vec<Vec<u32>>,
}

/// Composite resource id: `(level, forest id)` packed so one balancing
/// round can route visits of every level.
#[inline]
fn compose(level: usize, fid: u32) -> u64 {
    ((level as u64) << 32) | fid as u64
}

/// Inverse of [`compose`].
#[inline]
fn decompose(cid: u64) -> (usize, u32) {
    ((cid >> 32) as usize, cid as u32)
}

/// A count/aggregate partial: `(count part, aggregate part)`. Count
/// queries only populate the left, aggregate queries only the right, so
/// one sorted segmented fold combines both modes.
type Partial<V> = (u64, Option<V>);

/// Execute a heterogeneous count + aggregate + report batch against one
/// or more static trees ("levels") in a **single** [`Machine::run`].
///
/// Query ids are assigned per mode in slice order; the returned
/// [`FusedOutputs`] vectors are parallel to the input slices. Passing an
/// empty `levels` slice (an empty dynamic store) or an all-empty batch
/// returns immediately without submitting anything to the machine, so
/// `stats.supersteps()` and `stats.runs` stay untouched.
///
/// All levels must have been built on a machine of the same `p`.
///
/// # Panics
/// Panics when a simulated processor panics mid-program (delegates to
/// [`try_fused_query_batch`], mirroring the [`Machine::run`] /
/// [`Machine::try_run`](Machine::try_run) contract). Fallible callers —
/// the serving layer above all — should use the `try` variant.
pub fn fused_query_batch<S: Semigroup, const D: usize>(
    machine: &Machine,
    levels: &[&DistRangeTree<D>],
    sg: S,
    counts: &[Rect<D>],
    aggs: &[Rect<D>],
    reports: &[Rect<D>],
) -> FusedOutputs<S> {
    match try_fused_query_batch(machine, levels, sg, counts, aggs, reports) {
        Ok(out) => out,
        Err(CgmError::ProcessorPanicked { rank, payload }) => {
            panic!("simulated processor panicked: rank {rank}: {payload}")
        }
        Err(e) => panic!("{e}"),
    }
}

/// Fallible counterpart of [`fused_query_batch`]: the same single-run
/// fused plan, routed through [`Machine::try_run`] so a panic in any
/// simulated processor surfaces as
/// [`CgmError::ProcessorPanicked`] instead of unwinding
/// the caller. The machine remains usable afterwards — this is what lets
/// a long-lived serving layer treat a poisoned batch as one failed
/// request wave rather than a dead scheduler.
pub fn try_fused_query_batch<S: Semigroup, const D: usize>(
    machine: &Machine,
    levels: &[&DistRangeTree<D>],
    sg: S,
    counts: &[Rect<D>],
    aggs: &[Rect<D>],
    reports: &[Rect<D>],
) -> Result<FusedOutputs<S>, CgmError> {
    let (n_c, n_a, n_r) = (counts.len(), aggs.len(), reports.len());
    let mut out = FusedOutputs {
        counts: vec![0; n_c],
        aggregates: vec![None; n_a],
        reports: vec![Vec::new(); n_r],
    };
    if levels.is_empty() || n_c + n_a + n_r == 0 {
        return Ok(out);
    }
    for t in levels {
        t.assert_machine(machine);
    }
    let p = machine.p();
    let has_agg = n_a > 0;
    let has_ca = n_c + n_a > 0;
    let has_r = n_r > 0;

    // Per level: the count+aggregate records and the report records,
    // translated into that level's rank space, under global query ids
    // (count i → i, aggregate i → n_c + i, report i → n_c + n_a + i).
    let rqs_ca: Vec<Vec<QueryRec<D>>> = levels
        .iter()
        .map(|t| {
            counts
                .iter()
                .enumerate()
                .map(|(i, q)| (i as u32, t.ranks.translate(q)))
                .chain(
                    aggs.iter().enumerate().map(|(i, q)| ((n_c + i) as u32, t.ranks.translate(q))),
                )
                .collect()
        })
        .collect();
    let rqs_r: Vec<Vec<QueryRec<D>>> = levels
        .iter()
        .map(|t| {
            reports
                .iter()
                .enumerate()
                .map(|(i, q)| ((n_c + n_a + i) as u32, t.ranks.translate(q)))
                .collect()
        })
        .collect();

    type Share<V> = (Vec<(u64, Partial<V>)>, Vec<(u32, u32)>);
    let per_rank: Vec<Share<S::Val>> = machine.try_run(|ctx| {
        let me = ctx.rank();
        let states: Vec<_> = levels.iter().map(|t| &t.states[me]).collect();

        // (1) Value fill for the aggregate semigroup, all levels in one
        // all-gather. Counting needs no fill: the hat's replicated `cnt`
        // arrays already hold the Count folds.
        let hat_vals: Vec<BTreeMap<u64, Vec<Option<S::Val>>>> = if has_agg {
            let mut root_vals: Vec<(u64, Option<S::Val>)> = Vec::new();
            for (li, state) in states.iter().enumerate() {
                for (&fid, entry) in
                    state.forest.iter().filter(|(_, e)| e.start_dim as usize == D - 1)
                {
                    let real = entry.tree.r as usize;
                    let fold = fold_points(
                        &sg,
                        entry.tree.leaves[..real].iter().map(|pt| (pt.id, pt.weight)),
                    );
                    root_vals.push((compose(li, fid), fold));
                }
            }
            let mut per_level: Vec<HashMap<u64, Option<S::Val>>> =
                (0..levels.len()).map(|_| HashMap::new()).collect();
            for (cid, v) in ctx.all_gather(root_vals).into_iter().flatten() {
                let (li, fid) = decompose(cid);
                per_level[li].insert(fid as u64, v);
            }
            states
                .iter()
                .zip(&per_level)
                .map(|(state, roots)| fill_hat_values(state, &sg, roots))
                .collect()
        } else {
            Vec::new()
        };

        // (2) Hat stages of every mode and level (local), emitting hat
        // partials and composite-tagged forest visits.
        let mut pairs: Vec<(u64, Partial<S::Val>)> = Vec::new();
        let mut items: Vec<(u64, QueryRec<D>, u64)> = Vec::new();
        for (li, state) in states.iter().enumerate() {
            let mine_ca: Vec<QueryRec<D>> =
                rqs_ca[li].iter().filter(|(qid, _)| *qid as usize % p == me).copied().collect();
            let stage = hat_stage(state, &mine_ca);
            for &(qid, (key, v)) in &stage.sels {
                if (qid as usize) < n_c {
                    pairs.push((qid as u64, (state.hat.trees[&key].cnt[v as usize] as u64, None)));
                } else if let Some(val) = hat_vals[li][&key][v as usize].clone() {
                    pairs.push((qid as u64, (0, Some(val))));
                }
            }
            items.extend(
                stage.visits.into_iter().map(|(fid, rec)| (compose(li, fid as u32), rec, 1)),
            );
            if has_r {
                let mine_r: Vec<QueryRec<D>> =
                    rqs_r[li].iter().filter(|(qid, _)| *qid as usize % p == me).copied().collect();
                // Report visits carry their group's output volume as
                // weight (Algorithm Report's balancing measure).
                let group_count = group_weights(state);
                items.extend(
                    report_visits(state, &mine_r)
                        .into_iter()
                        .map(|(fid, rec)| (compose(li, fid as u32), rec, group_count[&fid])),
                );
            }
        }

        // (3) One multisearch balancing round for the whole batch.
        let owned_ids: Vec<u64> = states
            .iter()
            .enumerate()
            .flat_map(|(li, state)| state.forest.keys().map(move |&fid| compose(li, fid)))
            .collect();
        let outcome = ctx.load_balance_weighted_with(
            &owned_ids,
            |cid| {
                let (li, fid) = decompose(cid);
                states[li].forest[&fid].clone()
            },
            items,
        );
        let copies: HashMap<u64, &ForestEntry<D>> =
            outcome.resources.iter().map(|(cid, entry)| (*cid, entry)).collect();

        // (4) Forest finishes (local) for all three modes.
        let mut cache: AggCache<S> = AggCache::new();
        let mut report_pairs: Vec<(u32, u32)> = Vec::new();
        let mut sels = Vec::new();
        let mut ids = Vec::new();
        for (cid, (qid, q)) in outcome.items {
            let entry = copies.get(&cid).copied().unwrap_or_else(|| {
                let (li, fid) = decompose(cid);
                &states[li].forest[&fid]
            });
            sels.clear();
            entry.tree.search(&q, &mut sels);
            if (qid as usize) < n_c {
                let c: u64 = sels.iter().map(sel_count).sum();
                if c > 0 {
                    pairs.push((qid as u64, (c, None)));
                }
            } else if (qid as usize) < n_c + n_a {
                let mut acc: Option<S::Val> = None;
                for s in &sels {
                    acc = comb_opt(&sg, acc, sel_fold(&sg, s, &mut cache));
                }
                if let Some(val) = acc {
                    pairs.push((qid as u64, (0, Some(val))));
                }
            } else {
                ids.clear();
                for s in &sels {
                    sel_report(s, &mut ids);
                }
                report_pairs.extend(ids.iter().map(|&id| (qid, id)));
            }
        }

        // (5) Combine count/aggregate partials: global sort by query id,
        // then one segmented fold over both modes at once.
        let folded: Vec<(u64, Partial<S::Val>)> = if has_ca {
            let sorted = ctx.sort_by_key(pairs, |pair: &(u64, Partial<S::Val>)| pair.0);
            ctx.segmented_fold(sorted, |a: Partial<S::Val>, b: Partial<S::Val>| {
                (a.0 + b.0, comb_opt(&sg, a.1, b.1))
            })
        } else {
            Vec::new()
        };

        // (6) ⌈k/p⌉-balance the report output.
        let shares: Vec<(u32, u32)> = if has_r { ctx.rebalance(report_pairs) } else { Vec::new() };

        (folded, shares)
    })?;

    for (folded, shares) in per_rank {
        for (qid, (c, v)) in folded {
            let qid = qid as usize;
            if qid < n_c {
                out.counts[qid] += c;
            } else {
                let slot = &mut out.aggregates[qid - n_c];
                *slot = comb_opt(&sg, slot.take(), v);
            }
        }
        for (qid, id) in shares {
            out.reports[qid as usize - n_c - n_a].push(id);
        }
    }
    for ids in &mut out.reports {
        ids.sort_unstable();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::semigroup::{MaxWeight, Sum};

    fn pts(n: u32) -> Vec<Point<2>> {
        (0..n)
            .map(|i| Point::weighted([i as i64, ((i * 37) % n) as i64], i, (i + 1) as u64))
            .collect()
    }

    #[test]
    fn fused_matches_per_mode_on_static_tree() {
        let machine = Machine::new(4).unwrap();
        let pts = pts(200);
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let qs = vec![
            Rect::new([0, 0], [99, 199]),
            Rect::new([50, 10], [150, 120]),
            Rect::new([3, 3], [3, 3]),
        ];
        machine.take_stats();
        let fused = fused_query_batch(&machine, &[&tree], Sum, &qs, &qs, &qs);
        let stats = machine.take_stats();
        assert_eq!(stats.runs, 1, "fused mixed batch must be one submission");
        assert_eq!(fused.counts, tree.count_batch(&machine, &qs));
        assert_eq!(fused.aggregates, tree.aggregate_batch(&machine, Sum, &qs));
        assert_eq!(fused.reports, tree.report_batch(&machine, &qs));
    }

    #[test]
    fn fused_respects_semigroup_choice() {
        let machine = Machine::new(2).unwrap();
        let pts = pts(64);
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let qs = vec![Rect::new([0, 0], [31, 63])];
        let fused = fused_query_batch(&machine, &[&tree], MaxWeight, &[], &qs, &[]);
        assert_eq!(fused.aggregates, tree.aggregate_batch(&machine, MaxWeight, &qs));
    }

    #[test]
    fn try_variant_agrees_with_panicking_variant() {
        let machine = Machine::new(4).unwrap();
        let pts = pts(100);
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let qs = vec![Rect::new([0, 0], [49, 99]), Rect::new([10, 10], [20, 20])];
        let fused = fused_query_batch(&machine, &[&tree], Sum, &qs, &qs, &qs);
        let tried = try_fused_query_batch(&machine, &[&tree], Sum, &qs, &qs, &qs).unwrap();
        assert_eq!(fused.counts, tried.counts);
        assert_eq!(fused.aggregates, tried.aggregates);
        assert_eq!(fused.reports, tried.reports);
    }

    #[test]
    fn empty_batch_submits_nothing() {
        let machine = Machine::new(2).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts(32)).unwrap();
        machine.take_stats();
        let out = fused_query_batch::<Sum, 2>(&machine, &[&tree], Sum, &[], &[], &[]);
        let stats = machine.take_stats();
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.supersteps(), 0);
        assert!(out.counts.is_empty() && out.aggregates.is_empty() && out.reports.is_empty());
    }
}
