//! The distributed range tree of the paper: hat/forest decomposition on
//! a `CGM(s, p)` machine, batched multisearch query modes, and the
//! logarithmic-method dynamization.
//!
//! * [`hat`] — the replicated hat (top `log p` levels of every segment
//!   tree) and its path-key addressing;
//! * [`construct`] — Algorithm Construct: `5d` supersteps building the
//!   hat replica and the round-robin-dealt forest of `n/p`-point
//!   subtrees;
//! * [`search`] — Algorithm Search: the 4-case hat multisearch, the
//!   congestion-copy balancing, and the forest finishes;
//! * [`DistRangeTree`] — the host-side handle tying it together:
//!   [`count_batch`](DistRangeTree::count_batch),
//!   [`aggregate_batch`](DistRangeTree::aggregate_batch) (the
//!   associative-function mode) and
//!   [`report_batch`](DistRangeTree::report_batch) /
//!   [`report_batch_raw`](DistRangeTree::report_batch_raw) (report mode
//!   with `⌈k/p⌉`-balanced output);
//! * [`DynamicDistRangeTree`] — Section 5's future-work extension: the
//!   logarithmic method (Bentley–Saxe) over static distributed trees.

pub mod construct;
pub mod dynamic;
pub mod fused;
pub mod hat;
pub mod search;

use std::collections::HashMap;

use ddrs_cgm::Machine;

pub use construct::{construct as construct_spmd, ForestEntry, ProcState};
pub use dynamic::DynamicDistRangeTree;
pub use fused::{fused_query_batch, try_fused_query_batch, FusedOutputs};
pub use hat::ROOT_KEY;

use crate::point::{Point, Rect};
use crate::rank::{RankError, RankSpace};
use crate::semigroup::{comb_opt, fold_points, Count, Semigroup};
use crate::seq::{sel_fold, sel_report, AggCache};
use search::{
    balance_visits, balance_visits_report, fill_hat_values, hat_stage, report_visits, tree_for,
    QueryRec,
};

/// Errors from distributed range-tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The input point set is empty (the paper's structure is defined
    /// over a non-empty normalized point set).
    Empty,
    /// Two input points share a record id.
    DuplicateId(u32),
    /// A point uses the id reserved for sentinel pads.
    ReservedId,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Empty => write!(f, "cannot build over an empty point set"),
            BuildError::DuplicateId(id) => write!(f, "duplicate point id {id}"),
            BuildError::ReservedId => {
                write!(f, "point id {} is reserved for pads", crate::point::PAD_ID)
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<RankError> for BuildError {
    fn from(e: RankError) -> Self {
        match e {
            RankError::Empty => BuildError::Empty,
            RankError::DuplicateId(id) => BuildError::DuplicateId(id),
            RankError::ReservedId => BuildError::ReservedId,
        }
    }
}

/// Structural measurements of a built distributed tree (Theorem 1's
/// quantities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureReport {
    /// Nodes in the replicated hat (counted once, not per replica).
    pub hat_nodes: u64,
    /// Per-processor forest-shard sizes in tree nodes.
    pub forest_nodes: Vec<u64>,
    /// Per-processor owned forest-tree counts.
    pub forest_trees: Vec<usize>,
    /// Total structure size `s`: hat plus all forest shards.
    pub total_nodes: u64,
    /// Number of real (non-pad) input points `n`.
    pub real_points: u64,
}

/// The paper's distributed `d`-dimensional range tree on a simulated
/// `CGM(s, p)` machine.
///
/// The handle owns one [`ProcState`] per simulated processor (each
/// holding the identical hat replica plus its own forest shard) and the
/// host-side rank space used to translate queries; every query method
/// launches one SPMD program on the machine it is given, which must have
/// the same `p` the tree was built with.
pub struct DistRangeTree<const D: usize> {
    ranks: RankSpace<D>,
    states: Vec<ProcState<D>>,
}

impl<const D: usize> DistRangeTree<D> {
    /// Algorithm Construct: build the distributed tree over `pts`.
    ///
    /// The input is normalized to rank space and padded to a power of two
    /// divisible by `p`, each processor is dealt an `m/p`-point share,
    /// and the SPMD construction runs in `5d` supersteps.
    pub fn build(machine: &Machine, pts: &[Point<D>]) -> Result<Self, BuildError> {
        let p = machine.p();
        let ranks = RankSpace::build(pts, p)?;
        let rpts = ranks.to_rpoints(pts);
        let m = ranks.m();
        let share = m / p;
        let states = machine.run(|ctx| {
            let lo = ctx.rank() * share;
            construct::construct(ctx, rpts[lo..lo + share].to_vec(), m)
        });
        Ok(DistRangeTree { ranks, states })
    }

    fn assert_machine(&self, machine: &Machine) {
        assert_eq!(
            machine.p(),
            self.states.len(),
            "query machine size differs from the build machine"
        );
    }

    /// Translate a query batch into dealt rank-space records.
    fn translate_batch(&self, queries: &[Rect<D>]) -> Vec<QueryRec<D>> {
        queries.iter().enumerate().map(|(i, q)| (i as u32, self.ranks.translate(q))).collect()
    }

    /// Batched counting: the number of points in each query box.
    ///
    /// Counting is the associative-function mode with the [`Count`]
    /// semigroup; a query matching nothing counts 0.
    pub fn count_batch(&self, machine: &Machine, queries: &[Rect<D>]) -> Vec<u64> {
        self.aggregate_batch(machine, Count, queries).into_iter().map(|v| v.unwrap_or(0)).collect()
    }

    /// Batched associative-function mode (Algorithm AssociativeFunction):
    /// `⊗` of `f(l)` over the points matching each query, `None` when a
    /// query matches nothing.
    ///
    /// Eight supersteps regardless of `n`, `p` and the batch: one
    /// value-fill all-gather (forest-root values → replicated hat
    /// aggregates), three balancing rounds, a two-round sort of the
    /// `(query, value)` partials and a two-round segmented fold.
    pub fn aggregate_batch<S: Semigroup>(
        &self,
        machine: &Machine,
        sg: S,
        queries: &[Rect<D>],
    ) -> Vec<Option<S::Val>> {
        self.assert_machine(machine);
        if queries.is_empty() {
            // Trivial batches must not pay a machine dispatch.
            return Vec::new();
        }
        let p = machine.p();
        let rqs = self.translate_batch(queries);
        let per_rank: Vec<Vec<(u64, S::Val)>> = machine.run(|ctx| {
            let state = &self.states[ctx.rank()];

            // (1) Value fill: the final-dimension forest roots' folds,
            // all-gathered, then combined bottom-up into the
            // final-dimension hat trees. Only final-dimension hat trees
            // resolve selections from values, so earlier phases' forest
            // entries need no fold.
            let root_vals: Vec<(u64, Option<S::Val>)> = state
                .forest
                .iter()
                .filter(|(_, entry)| entry.start_dim as usize == D - 1)
                .map(|(&fid, entry)| {
                    let real = entry.tree.r as usize;
                    let fold = fold_points(
                        &sg,
                        entry.tree.leaves[..real].iter().map(|pt| (pt.id, pt.weight)),
                    );
                    (fid as u64, fold)
                })
                .collect();
            let roots: HashMap<u64, Option<S::Val>> =
                ctx.all_gather(root_vals).into_iter().flatten().collect();
            let hat_vals = fill_hat_values(state, &sg, &roots);

            // (2) Hat stage over this processor's query share (local).
            let mine: Vec<QueryRec<D>> =
                rqs.iter().filter(|(qid, _)| *qid as usize % p == ctx.rank()).copied().collect();
            let stage = hat_stage(state, &mine);
            let mut pairs: Vec<(u64, S::Val)> = Vec::new();
            for &(qid, (key, v)) in &stage.sels {
                if let Some(val) = hat_vals[&key][v as usize].clone() {
                    pairs.push((qid as u64, val));
                }
            }

            // (3) Congestion balancing of the forest visits.
            let (trees, items) = balance_visits(ctx, state, stage.visits);

            // (4) Forest finishes (local), with the per-batch bottom-up
            // value cache of Algorithm AssociativeFunction.
            let mut cache: AggCache<S> = AggCache::new();
            let mut sels = Vec::new();
            for (fid, (qid, q)) in items {
                sels.clear();
                tree_for(&trees, state, fid).tree.search(&q, &mut sels);
                let mut acc: Option<S::Val> = None;
                for s in &sels {
                    acc = comb_opt(&sg, acc, sel_fold(&sg, s, &mut cache));
                }
                if let Some(val) = acc {
                    pairs.push((qid as u64, val));
                }
            }

            // (5) Combine partials per query: sort by query id, then the
            // segmented partial-sum collective.
            let sorted = ctx.sort_by_key(pairs, |pair: &(u64, S::Val)| pair.0);
            ctx.segmented_fold(sorted, |a, b| sg.comb(a, b))
        });

        let mut out: Vec<Option<S::Val>> = vec![None; queries.len()];
        for (qid, val) in per_rank.into_iter().flatten() {
            let slot = &mut out[qid as usize];
            *slot = comb_opt(&sg, slot.take(), Some(val));
        }
        out
    }

    /// Batched report mode, returning the *per-processor output shares*:
    /// `(query id, point id)` pairs, exactly `⌈k/p⌉`-balanced across
    /// processors (Theorem 4's `O(k/p)` output term).
    ///
    /// Five supersteps: three balancing rounds plus the two-round
    /// order-preserving redistribution of the output pairs.
    pub fn report_batch_raw(&self, machine: &Machine, queries: &[Rect<D>]) -> Vec<Vec<(u32, u32)>> {
        self.assert_machine(machine);
        if queries.is_empty() {
            // Trivial batches must not pay a machine dispatch.
            return vec![Vec::new(); machine.p()];
        }
        let p = machine.p();
        let rqs = self.translate_batch(queries);
        machine.run(|ctx| {
            let state = &self.states[ctx.rank()];
            let mine: Vec<QueryRec<D>> =
                rqs.iter().filter(|(qid, _)| *qid as usize % p == ctx.rank()).copied().collect();
            let visits = report_visits(state, &mine);
            let (trees, items) = balance_visits_report(ctx, state, visits);
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let mut sels = Vec::new();
            let mut ids = Vec::new();
            for (fid, (qid, q)) in items {
                sels.clear();
                ids.clear();
                tree_for(&trees, state, fid).tree.search(&q, &mut sels);
                for s in &sels {
                    sel_report(s, &mut ids);
                }
                pairs.extend(ids.iter().map(|&id| (qid, id)));
            }
            ctx.rebalance(pairs)
        })
    }

    /// Batched report mode, assembled per query: the ids of the matching
    /// points, ascending.
    pub fn report_batch(&self, machine: &Machine, queries: &[Rect<D>]) -> Vec<Vec<u32>> {
        let shares = self.report_batch_raw(machine, queries);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        for (qid, id) in shares.into_iter().flatten() {
            out[qid as usize].push(id);
        }
        for ids in &mut out {
            ids.sort_unstable();
        }
        out
    }

    /// Theorem 1's structural measurements.
    pub fn structure_report(&self) -> StructureReport {
        let hat_nodes: u64 =
            self.states[0].hat.trees.values().map(|t| 2 * t.nleaves as u64 - 1).sum();
        let forest_nodes: Vec<u64> = self
            .states
            .iter()
            .map(|s| s.forest.values().map(|e| e.tree.size_nodes()).sum())
            .collect();
        let forest_trees: Vec<usize> = self.states.iter().map(|s| s.forest.len()).collect();
        let total_nodes = hat_nodes + forest_nodes.iter().sum::<u64>();
        StructureReport {
            hat_nodes,
            forest_nodes,
            forest_trees,
            total_nodes,
            real_points: self.ranks.n() as u64,
        }
    }

    /// Global record volumes `|S^j|` of the construction phases (the
    /// Section 5 caveat: phase `j` sorts `n·log^j p` records, not `n`).
    pub fn phase_records(&self) -> Vec<u64> {
        self.states[0].phase_records.clone()
    }

    /// Per-processor states (structural access for experiments).
    pub fn states(&self) -> &[ProcState<D>] {
        &self.states
    }

    /// The rank space used for query translation.
    pub fn ranks(&self) -> &RankSpace<D> {
        &self.ranks
    }

    /// Processor count the tree was built for.
    pub fn p(&self) -> usize {
        self.states.len()
    }
}

impl<const D: usize> std::fmt::Debug for DistRangeTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let forest: usize = self.states.iter().map(|s| s.forest.len()).sum();
        f.debug_struct("DistRangeTree")
            .field("d", &D)
            .field("n", &self.ranks.n())
            .field("m", &self.ranks.m())
            .field("p", &self.states.len())
            .field("hat_trees", &self.states[0].hat.trees.len())
            .field("forest_trees", &forest)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_cgm::log2_exact;

    fn diagonal(n: u32) -> Vec<Point<2>> {
        (0..n).map(|i| Point::new([i as i64, (n - i) as i64], i)).collect()
    }

    /// The hat of the primary tree has exactly `log2 p` levels: `p` group
    /// leaves under a `log p`-deep heap.
    #[test]
    fn hat_depth_is_log_p() {
        for p in [1usize, 2, 4, 8] {
            let machine = Machine::new(p).unwrap();
            let tree = DistRangeTree::<2>::build(&machine, &diagonal(257)).unwrap();
            let primary = &tree.states()[0].hat.trees[&ROOT_KEY];
            assert_eq!(primary.nleaves as usize, p, "p={p}");
            assert_eq!(
                log2_exact(primary.nleaves as usize),
                log2_exact(p),
                "hat depth must be log2(p) for p={p}"
            );
        }
    }

    /// Every forest subtree spans exactly `g = m/p` leaves — the `O(n/p)`
    /// group size of Theorem 1.
    #[test]
    fn forest_trees_span_exactly_g() {
        let p = 8;
        let machine = Machine::new(p).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &diagonal(300)).unwrap();
        let g = tree.states()[0].g;
        assert_eq!(g, tree.ranks().m() / p);
        for state in tree.states() {
            for entry in state.forest.values() {
                assert_eq!(entry.tree.leaves.len(), g);
            }
        }
    }

    /// StructureReport totals: `real_points = n`, the phase-0 forest
    /// partitions the input, and `total = hat + Σ shards`.
    #[test]
    fn structure_report_totals_match_n() {
        let n = 443u32;
        let machine = Machine::new(4).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &diagonal(n)).unwrap();
        let rep = tree.structure_report();
        assert_eq!(rep.real_points, n as u64);
        assert_eq!(rep.total_nodes, rep.hat_nodes + rep.forest_nodes.iter().sum::<u64>());
        assert_eq!(rep.forest_trees.len(), 4);
        assert_eq!(rep.forest_nodes.len(), 4);
        // Real points across phase-0 forest trees partition the input.
        let phase0_real: u64 = tree
            .states()
            .iter()
            .flat_map(|s| s.forest.values())
            .filter(|e| e.start_dim == 0)
            .map(|e| e.tree.r as u64)
            .sum();
        assert_eq!(phase0_real, n as u64);
    }

    /// Hat node counts at the final dimension agree with brute force —
    /// the replicated aggregates the counting mode reads.
    #[test]
    fn hat_counts_sum_to_n() {
        let n = 200u32;
        let machine = Machine::new(4).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &diagonal(n)).unwrap();
        let primary = &tree.states()[0].hat.trees[&ROOT_KEY];
        assert_eq!(primary.cnt[1] as u64, n as u64);
    }

    #[test]
    fn build_error_paths() {
        let machine = Machine::new(4).unwrap();
        assert!(matches!(DistRangeTree::<2>::build(&machine, &[]), Err(BuildError::Empty)));
        let mut pts = diagonal(4);
        pts[3].id = 0;
        assert!(matches!(
            DistRangeTree::<2>::build(&machine, &pts),
            Err(BuildError::DuplicateId(0))
        ));
        let mut pts = diagonal(2);
        pts[1].id = crate::point::PAD_ID;
        assert!(matches!(DistRangeTree::<2>::build(&machine, &pts), Err(BuildError::ReservedId)));
        // Error text is stable enough to match on.
        assert!(BuildError::Empty.to_string().contains("empty"));
    }

    /// Degenerate (point) rectangles and inverted rectangles behave.
    #[test]
    fn degenerate_queries() {
        let machine = Machine::new(4).unwrap();
        let pts = diagonal(64);
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        let point_q = Rect::new([5, 59], [5, 59]); // exactly point 5
        let inverted = Rect::new([9, 9], [3, 3]);
        let counts = tree.count_batch(&machine, &[point_q, inverted]);
        assert_eq!(counts, vec![1, 0]);
        let reports = tree.report_batch(&machine, &[point_q, inverted]);
        assert_eq!(reports[0], vec![5]);
        assert!(reports[1].is_empty());
    }
}
