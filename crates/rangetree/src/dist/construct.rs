//! Algorithm Construct: build the distributed range tree in `d` phases,
//! each a constant number of h-relations.
//!
//! Phase `j` receives the phase records `S^j` — one `(tree key, point)`
//! pair for every point of every dimension-`j` segment tree whose hat
//! part is non-trivial (`S^0` is the input itself, assigned to the
//! primary tree) — and performs, per the paper:
//!
//! 1. **sort** `S^j` by `(tree, rank_j)`, so every tree's points are
//!    contiguous and ordered (one sample all-gather + one bucket
//!    exchange);
//! 2. **scan**: all-gather the per-processor per-tree counts, from which
//!    every processor derives — identically — each tree's total size,
//!    its own offset inside each tree, and the global forest-id
//!    numbering (trees in key order, groups of `g = n/p` in rank order);
//! 3. **deal**: route every record to the home of its group,
//!    `owner(fid) = fid mod p` — the round-robin deal of the forest;
//! 4. locally build each received group's forest subtree (a
//!    `(d-j)`-dimensional [`DimTree`] on `g` points, pads included so
//!    sizes stay exact powers of two);
//! 5. **summary broadcast**: all-gather per-group summaries `(interval,
//!    real count, fid)`, from which every processor assembles the
//!    identical hat replica for this dimension; then locally emit
//!    `S^(j+1)` — each owned group's points, once per internal hat
//!    ancestor of its leaf (the descendant structures of hat nodes).
//!
//! That is 5 supersteps per dimension (sample, sort, deal, scan,
//! summary), `5d` in total — the constant-round bound of Corollary 1 —
//! and the phase volumes `|S^j| = n log^j p` of the paper's Section 5
//! caveat, recorded in [`ProcState::phase_records`].

use std::collections::BTreeMap;

use ddrs_cgm::{log2_exact, Ctx, Payload};

use crate::dist::hat::{child_key, Hat, HatTree, ROOT_KEY};
use crate::heap;
use crate::point::RPoint;
use crate::seq::DimTree;

/// One forest element: a sequential range tree over one `n/p`-point
/// group, starting at the dimension of the hat tree it hangs from.
#[derive(Debug, Clone)]
pub struct ForestEntry<const D: usize> {
    /// The group's subtree: dimensions `start_dim..D` over `g` points
    /// (pads included as trailing leaves).
    pub tree: DimTree<D>,
    /// Dimension of the hat tree this element is a leaf of.
    pub start_dim: u8,
    /// Path key of that hat tree.
    pub key: u64,
    /// Leaf position within that hat tree.
    pub group: u32,
}

impl<const D: usize> Payload for ForestEntry<D> {
    fn words(&self) -> u64 {
        // Key/group/dim header plus the whole subtree payload — what a
        // real machine would serialize when shipping a congestion copy.
        2 + self.tree.payload_words()
    }
}

/// Per-processor state of the distributed structure after Algorithm
/// Construct: the (replicated) hat and this processor's forest shard.
#[derive(Debug)]
pub struct ProcState<const D: usize> {
    /// The hat replica (identical on every processor).
    pub hat: Hat,
    /// Forest elements owned by this processor, by forest id
    /// (`owner(fid) = fid mod p`).
    pub forest: BTreeMap<u32, ForestEntry<D>>,
    /// Global record volume `|S^j|` of each construction phase (identical
    /// on every processor; the paper's Section 5 caveat quantities).
    pub phase_records: Vec<u64>,
    /// Padded global point count (a power of two).
    pub m: usize,
    /// Group size `g = m / p`.
    pub g: usize,
    /// Processor count.
    pub p: usize,
}

/// Record of phase `j`: a point tagged with the key of the dimension-`j`
/// tree it belongs to.
type PhaseRec<const D: usize> = (u64, RPoint<D>);

/// SPMD body of Algorithm Construct.
///
/// Every processor passes its `m/p`-point share of the rank-space input
/// (any order) and the padded global size `m`; all processors must call
/// with the same `m`. Returns this processor's [`ProcState`].
///
/// # Panics
/// Panics if `m` is not a positive power of two divisible by `p`.
pub fn construct<const D: usize>(
    ctx: &mut Ctx<'_>,
    local: Vec<RPoint<D>>,
    m: usize,
) -> ProcState<D> {
    let p = ctx.p();
    assert!(m.is_power_of_two(), "padded size must be a power of two");
    assert!(m >= p && m.is_multiple_of(p), "padded size must be divisible by p");
    let g = m / p;
    let key_shift = log2_exact(p) + 1;

    let mut hats: BTreeMap<u64, HatTree> = BTreeMap::new();
    let mut forest: BTreeMap<u32, ForestEntry<D>> = BTreeMap::new();
    let mut phase_records: Vec<u64> = Vec::with_capacity(D);
    let mut next_fid: u32 = 0;

    // S^0: every input point belongs to the primary tree.
    let mut records: Vec<PhaseRec<D>> = local.into_iter().map(|pt| (ROOT_KEY, pt)).collect();

    for j in 0..D {
        // (1) Sort S^j by (tree, rank in dimension j). Ranks are unique
        // within a tree, so the global order is fully determined.
        let sorted = ctx.sort_by_key(records, move |(key, pt): &PhaseRec<D>| (*key, pt.ranks[j]));

        // (2) Scan: per-tree local counts, all-gathered. Every processor
        // derives the identical tree table: total sizes, own offsets,
        // forest-id bases (trees in key order, phases consecutive).
        let mut local_counts: Vec<(u64, u64)> = Vec::new();
        for (key, _) in &sorted {
            match local_counts.last_mut() {
                Some((k, c)) if k == key => *c += 1,
                _ => local_counts.push((*key, 1)),
            }
        }
        let gathered = ctx.all_gather(local_counts);
        let mut table: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // key -> (total, my_offset)
        for (rank, counts) in gathered.iter().enumerate() {
            for &(key, c) in counts {
                let entry = table.entry(key).or_insert((0, 0));
                entry.0 += c;
                if rank < ctx.rank() {
                    entry.1 += c;
                }
            }
        }
        phase_records.push(table.values().map(|&(total, _)| total).sum());
        let mut bases: BTreeMap<u64, u32> = BTreeMap::new();
        for (&key, &(total, _)) in &table {
            debug_assert_eq!(total % g as u64, 0, "tree sizes are multiples of g");
            bases.insert(key, next_fid);
            next_fid += (total / g as u64) as u32;
        }

        // (3) Deal: route each record to its group's home processor.
        let mut outgoing: Vec<(usize, (u64, u32, RPoint<D>))> = Vec::with_capacity(sorted.len());
        let mut run: Option<(u64, u64)> = None; // (current tree, next global pos)
        for (key, pt) in sorted {
            let pos = match &mut run {
                Some((k, pos)) if *k == key => {
                    *pos += 1;
                    *pos
                }
                _ => {
                    let pos = table[&key].1;
                    run = Some((key, pos));
                    pos
                }
            };
            let gidx = (pos / g as u64) as u32;
            let fid = bases[&key] + gidx;
            outgoing.push((fid as usize % p, (key, gidx, pt)));
        }
        let received = ctx.route(outgoing);

        // (4) Build owned forest subtrees locally.
        let mut groups: BTreeMap<(u64, u32), Vec<RPoint<D>>> = BTreeMap::new();
        for (key, gidx, pt) in received {
            groups.entry((key, gidx)).or_default().push(pt);
        }
        let mut summaries: Vec<(u64, u32, u32, u32, u32, u32)> = Vec::new();
        let mut built: Vec<(u64, u32, u32)> = Vec::new(); // (key, gidx, fid)
        for ((key, gidx), mut pts) in groups {
            pts.sort_unstable_by_key(|pt| pt.ranks[j]);
            debug_assert_eq!(pts.len(), g, "every group holds exactly g records");
            let fid = bases[&key] + gidx;
            let real = pts.iter().take_while(|pt| !pt.is_pad()).count();
            let (lo, hi) =
                if real == 0 { (u32::MAX, 0) } else { (pts[0].ranks[j], pts[real - 1].ranks[j]) };
            summaries.push((key, gidx, fid, lo, hi, real as u32));
            let tree = DimTree::build(j, pts);
            forest.insert(fid, ForestEntry { tree, start_dim: j as u8, key, group: gidx });
            built.push((key, gidx, fid));
        }

        // (5) Summary broadcast: assemble the dimension-j hat replica.
        let all_summaries: Vec<(u64, u32, u32, u32, u32, u32)> =
            ctx.all_gather(summaries).into_iter().flatten().collect();
        for (&key, &(total, _)) in &table {
            hats.insert(key, HatTree::empty(j as u8, (total / g as u64) as usize));
        }
        for (key, gidx, fid, lo, hi, cnt) in all_summaries {
            hats.get_mut(&key).expect("summary for unknown tree").set_leaf(
                gidx as usize,
                fid,
                lo,
                hi,
                cnt,
            );
        }
        for &key in table.keys() {
            hats.get_mut(&key).expect("table tree").fill_internal();
        }

        // Emit S^(j+1): each owned group's points, once per internal hat
        // ancestor (the point sets of the descendant structures).
        records = Vec::new();
        if j + 1 < D {
            for (key, gidx, fid) in built {
                let nleaves = hats[&key].nleaves as usize;
                let pts = &forest[&fid].tree.leaves;
                for anc in heap::internal_ancestors(nleaves, gidx as usize) {
                    let ck = child_key(key, anc, key_shift);
                    records.extend(pts.iter().map(|pt| (ck, *pt)));
                }
            }
        }
    }

    ProcState { hat: Hat { trees: hats, key_shift }, forest, phase_records, m, g, p }
}
