//! The replicated **hat**: the top `log p` levels of every segment tree
//! of the conceptual range tree `T`.
//!
//! The paper splits `T` into a *hat* `H` — all nodes whose subtrees span
//! more than one `n/p`-point group, replicated on every processor — and a
//! *forest* `F` of `n/p`-point subtrees distributed round-robin
//! (Theorem 1: `|H| = O(p log^(d-1) p) = O(s/p)` and the forest shards
//! are balanced). Concretely, each segment tree of `T` whose point set
//! spans `k ≥ 1` groups contributes a [`HatTree`] with `k` leaves to the
//! hat; a hat leaf stands for one forest tree (a full
//! `(d-j)`-dimensional range tree on one group, stored by its owner),
//! and a hat internal node `v` of a non-final dimension points to the
//! descendant hat tree of the next dimension via [`child_key`].
//!
//! Hat nodes carry exactly what the 4-case multisearch needs: the
//! rank-interval spanned by the *real* (non-pad) points below and their
//! count.

use std::collections::BTreeMap;

/// The key of the primary (dimension-0) hat tree.
///
/// Hat trees are addressed by a path key mirroring the paper's
/// `Index`/`Level` label algebra (Definition 2): the primary tree is
/// `ROOT_KEY`, and the descendant tree of internal node `v` of the tree
/// with key `k` is [`child_key`]`(k, v, key_shift)`. Lemma 1 (the label
/// of a node's ancestor uniquely identifies its segment tree) is what
/// makes this addressing sound.
pub const ROOT_KEY: u64 = 1;

/// Key of the descendant hat tree hanging off internal node `v` of the
/// hat tree with key `key`. `key_shift` is the machine-wide constant
/// [`Hat::key_shift`] (enough bits to hold any heap index of a `p`-leaf
/// tree), so distinct `(key, v)` pairs map to distinct keys.
#[inline]
pub fn child_key(key: u64, v: usize, key_shift: u32) -> u64 {
    debug_assert!((v as u64) < (1u64 << key_shift), "heap index overflows key field");
    (key << key_shift) | v as u64
}

/// One segment tree's hat part: a heap-ordered tree over its `n/p`-point
/// groups, annotated with real-point intervals and counts.
///
/// Heap layout matches [`crate::heap`]: slot 1 is the root, leaves are
/// slots `nleaves..2*nleaves`, the leaf for group `i` at `nleaves + i`.
/// Slot 0 of every per-node array is unused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HatTree {
    /// Dimension of this tree (0-based).
    pub dim: u8,
    /// Number of group leaves (a power of two; 1 on a 1-processor hat).
    pub nleaves: u32,
    /// Per heap slot: smallest rank (in `dim`) of a real point below, or
    /// `u32::MAX` if no real point is below.
    pub lo: Vec<u32>,
    /// Per heap slot: largest rank (in `dim`) of a real point below, or
    /// `0` if no real point is below (check `cnt` first).
    pub hi: Vec<u32>,
    /// Per heap slot: number of real points below.
    pub cnt: Vec<u32>,
    /// Per *leaf position* `0..nleaves`: the forest id of that group's
    /// subtree.
    pub leaf_forest: Vec<u32>,
}

impl HatTree {
    /// An unfilled hat tree with `nleaves` group leaves.
    pub(crate) fn empty(dim: u8, nleaves: usize) -> Self {
        assert!(nleaves.is_power_of_two(), "hat trees span power-of-two group counts");
        HatTree {
            dim,
            nleaves: nleaves as u32,
            lo: vec![u32::MAX; 2 * nleaves],
            hi: vec![0; 2 * nleaves],
            cnt: vec![0; 2 * nleaves],
            leaf_forest: vec![0; nleaves],
        }
    }

    /// Fill the leaf for group `i` from its summary.
    pub(crate) fn set_leaf(&mut self, i: usize, fid: u32, lo: u32, hi: u32, cnt: u32) {
        let slot = self.nleaves as usize + i;
        self.lo[slot] = lo;
        self.hi[slot] = hi;
        self.cnt[slot] = cnt;
        self.leaf_forest[i] = fid;
    }

    /// Fill internal nodes bottom-up from the leaves.
    pub(crate) fn fill_internal(&mut self) {
        for v in (1..self.nleaves as usize).rev() {
            self.cnt[v] = self.cnt[2 * v] + self.cnt[2 * v + 1];
            self.lo[v] = self.lo[2 * v].min(self.lo[2 * v + 1]);
            self.hi[v] = self.hi[2 * v].max(self.hi[2 * v + 1]);
        }
    }

    /// Is heap slot `v` a group leaf?
    #[inline]
    pub fn is_leaf(&self, v: usize) -> bool {
        v >= self.nleaves as usize
    }
}

/// The full hat replica held (identically) by every processor.
#[derive(Debug, Clone, Default)]
pub struct Hat {
    /// All hat trees of all dimensions, by path key.
    pub trees: BTreeMap<u64, HatTree>,
    /// Bits reserved per path-key level (see [`child_key`]).
    pub key_shift: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_keys_are_injective() {
        let shift = 4u32; // p = 8 → heap indices < 16
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(ROOT_KEY));
        for v in 1..8 {
            let k = child_key(ROOT_KEY, v, shift);
            assert!(seen.insert(k), "collision at primary child {v}");
            for w in 1..8 {
                assert!(seen.insert(child_key(k, w, shift)), "collision at ({v},{w})");
            }
        }
    }

    #[test]
    fn fill_internal_aggregates() {
        let mut t = HatTree::empty(0, 4);
        t.set_leaf(0, 10, 0, 7, 8);
        t.set_leaf(1, 11, 8, 15, 8);
        t.set_leaf(2, 12, 16, 20, 5);
        t.set_leaf(3, 13, u32::MAX, 0, 0); // all pads
        t.fill_internal();
        assert_eq!(t.cnt[1], 21);
        assert_eq!((t.lo[1], t.hi[1]), (0, 20));
        assert_eq!((t.lo[2], t.hi[2]), (0, 15));
        assert_eq!(t.cnt[3], 5);
        assert_eq!((t.lo[3], t.hi[3]), (16, 20));
        assert!(t.is_leaf(4) && !t.is_leaf(3));
        assert_eq!(t.leaf_forest, vec![10, 11, 12, 13]);
    }

    #[test]
    fn single_leaf_hat() {
        let mut t = HatTree::empty(0, 1);
        t.set_leaf(0, 0, 0, 63, 64);
        t.fill_internal(); // no internal nodes
        assert!(t.is_leaf(1));
        assert_eq!(t.cnt[1], 64);
    }
}
