//! Dynamization by the logarithmic method (Bentley–Saxe).
//!
//! Section 5 of the paper notes the range tree "is inherently static"
//! and names a dynamic distributed structure as future work. The
//! classical route — used here — is the logarithmic method: maintain a
//! collection of static [`DistRangeTree`]s whose sizes follow a binary
//! counter (level `i` holds at most `capacity · 2^i` points). An
//! inserted batch cascades like a carry: it merges with occupied levels
//! until it reaches one that can absorb the union, which is then rebuilt
//! with Algorithm Construct. Decomposable queries (counting, semigroup
//! aggregation, reporting) are answered by combining the per-level
//! answers, costing one extra `O(log(n/capacity))` factor of *local
//! work* — but not of communication: every query mode plans all occupied
//! levels into a single fused SPMD program
//! ([`crate::dist::fused`]), so a batch costs exactly one
//! [`Machine::run`] and a constant number of supersteps regardless of
//! the level count.
//!
//! Deletions rebuild the affected structure wholesale (the conservative
//! choice: the semigroup aggregates have no inverses to subtract with),
//! keeping every query mode exact.

use std::collections::HashSet;

use ddrs_cgm::Machine;

use crate::dist::fused::fused_query_batch;
use crate::dist::{BuildError, DistRangeTree};
use crate::point::{Point, Rect, PAD_ID};
use crate::semigroup::{Count, Semigroup};

struct Level<const D: usize> {
    pts: Vec<Point<D>>,
    tree: DistRangeTree<D>,
}

/// A dynamic distributed range tree: the logarithmic method over static
/// [`DistRangeTree`]s.
pub struct DynamicDistRangeTree<const D: usize> {
    capacity: usize,
    levels: Vec<Option<Level<D>>>,
    ids: HashSet<u32>,
}

impl<const D: usize> DynamicDistRangeTree<D> {
    /// An empty store whose smallest rebuild unit holds `capacity`
    /// points (level `i` holds at most `capacity · 2^i`).
    pub fn new(capacity: usize) -> Self {
        DynamicDistRangeTree { capacity: capacity.max(1), levels: Vec::new(), ids: HashSet::new() }
    }

    /// Capacity of level `i`.
    fn cap(&self, i: usize) -> usize {
        self.capacity.saturating_mul(1usize << i.min(usize::BITS as usize - 2))
    }

    /// Place `carry` into the level structure, merging upward until a
    /// level can absorb it, then rebuild that level's static tree.
    fn place(&mut self, machine: &Machine, mut carry: Vec<Point<D>>) -> Result<(), BuildError> {
        let mut i = 0;
        loop {
            while carry.len() > self.cap(i) {
                i += 1;
            }
            if self.levels.len() <= i {
                self.levels.resize_with(i + 1, || None);
            }
            match self.levels[i].take() {
                None => {
                    let tree = DistRangeTree::build(machine, &carry)?;
                    self.levels[i] = Some(Level { pts: carry, tree });
                    return Ok(());
                }
                Some(level) => carry.extend(level.pts),
            }
        }
    }

    /// Insert a batch of points (ids must be new and not the pad id).
    pub fn insert_batch(&mut self, machine: &Machine, pts: &[Point<D>]) -> Result<(), BuildError> {
        if pts.is_empty() {
            return Ok(());
        }
        let mut batch_ids = HashSet::with_capacity(pts.len());
        for p in pts {
            if p.id == PAD_ID {
                return Err(BuildError::ReservedId);
            }
            if self.ids.contains(&p.id) || !batch_ids.insert(p.id) {
                return Err(BuildError::DuplicateId(p.id));
            }
        }
        self.ids.extend(batch_ids);
        self.place(machine, pts.to_vec())
    }

    /// Delete points by id (ids not present are ignored). The surviving
    /// points are repacked and rebuilt, keeping every query mode exact.
    pub fn delete_batch(&mut self, machine: &Machine, ids: &[u32]) -> Result<(), BuildError> {
        self.extract_batch(machine, ids).map(|_| ())
    }

    /// Delete points by id and hand the removed points back (ids not
    /// present are ignored). The surviving points are repacked and
    /// rebuilt exactly as by [`delete_batch`](Self::delete_batch).
    ///
    /// This is the donor side of shard migration (`ddrs-shard`): a
    /// subtree of points leaves this store and is re-inserted into a
    /// sibling store, so the extraction must return the full points —
    /// coordinates, ids and weights — not just acknowledge the ids.
    pub fn extract_batch(
        &mut self,
        machine: &Machine,
        ids: &[u32],
    ) -> Result<Vec<Point<D>>, BuildError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let dead: HashSet<u32> = ids.iter().copied().collect();
        let mut live: Vec<Point<D>> = Vec::new();
        let mut removed: Vec<Point<D>> = Vec::new();
        for level in self.levels.drain(..).flatten() {
            for p in level.pts {
                if dead.contains(&p.id) {
                    removed.push(p);
                } else {
                    live.push(p);
                }
            }
        }
        self.ids.retain(|id| !dead.contains(id));
        if live.is_empty() {
            return Ok(removed);
        }
        self.place(machine, live)?;
        Ok(removed)
    }

    /// All live points, in unspecified order. A read-only snapshot used
    /// by migration planning (choosing which subtree of points to move
    /// between shard groups) and by state export.
    pub fn points(&self) -> impl Iterator<Item = &Point<D>> + '_ {
        self.levels.iter().flatten().flat_map(|level| level.pts.iter())
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when a point with this id is live in the store. O(1); used by
    /// the serving layer to pre-validate merged write epochs against
    /// sequential semantics before paying any rebuild.
    pub fn contains_id(&self, id: u32) -> bool {
        self.ids.contains(&id)
    }

    /// Number of non-empty levels (static trees queries fan out over).
    pub fn occupied_levels(&self) -> usize {
        self.levels.iter().flatten().count()
    }

    /// The occupied levels' static trees, smallest level first — the
    /// "levels" slice the fused engine ([`fused_query_batch`]) fans a
    /// batch over.
    pub fn level_trees(&self) -> Vec<&DistRangeTree<D>> {
        self.levels.iter().flatten().map(|level| &level.tree).collect()
    }

    /// Batched counting over all levels, fused into **one**
    /// [`Machine::run`] regardless of how many levels are occupied (and
    /// zero runs for an empty batch or an empty store).
    pub fn count_batch(&self, machine: &Machine, queries: &[Rect<D>]) -> Vec<u64> {
        fused_query_batch::<Count, D>(machine, &self.level_trees(), Count, queries, &[], &[]).counts
    }

    /// Batched associative-function mode over all levels (query
    /// decomposability of the semigroup fold), fused into one
    /// [`Machine::run`].
    pub fn aggregate_batch<S: Semigroup>(
        &self,
        machine: &Machine,
        sg: S,
        queries: &[Rect<D>],
    ) -> Vec<Option<S::Val>> {
        fused_query_batch(machine, &self.level_trees(), sg, &[], queries, &[]).aggregates
    }

    /// Batched report mode over all levels, fused into one
    /// [`Machine::run`]: matching ids per query, ascending.
    pub fn report_batch(&self, machine: &Machine, queries: &[Rect<D>]) -> Vec<Vec<u32>> {
        fused_query_batch::<Count, D>(machine, &self.level_trees(), Count, &[], &[], queries)
            .reports
    }

    /// A heterogeneous count + aggregate + report batch over all levels
    /// in a single machine submission — the dynamic store's native query
    /// interface for mixed traffic (the `ddrs-engine` crate's
    /// `QueryBatch` builds on this).
    pub fn query_batch_fused<S: Semigroup>(
        &self,
        machine: &Machine,
        sg: S,
        counts: &[Rect<D>],
        aggs: &[Rect<D>],
        reports: &[Rect<D>],
    ) -> crate::dist::fused::FusedOutputs<S> {
        fused_query_batch(machine, &self.level_trees(), sg, counts, aggs, reports)
    }
}

impl<const D: usize> std::fmt::Debug for DynamicDistRangeTree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let level_sizes: Vec<usize> =
            self.levels.iter().map(|l| l.as_ref().map_or(0, |lv| lv.pts.len())).collect();
        f.debug_struct("DynamicDistRangeTree")
            .field("d", &D)
            .field("points", &self.ids.len())
            .field("capacity", &self.capacity)
            .field("level_sizes", &level_sizes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
        range.map(|i| Point::new([((i * 193) % 777) as i64, ((i * 71) % 555) as i64], i)).collect()
    }

    #[test]
    fn binary_counter_levels() {
        let machine = Machine::new(2).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(8);
        for wave in 0..4 {
            t.insert_batch(&machine, &pts(wave * 8..wave * 8 + 8)).unwrap();
        }
        assert_eq!(t.len(), 32);
        // 4 batches of exactly the base capacity: binary counter 100 →
        // one occupied level of 32.
        assert_eq!(t.occupied_levels(), 1);
        t.insert_batch(&machine, &pts(100..104)).unwrap();
        assert_eq!(t.occupied_levels(), 2);
    }

    #[test]
    fn rejects_duplicate_and_reserved_ids() {
        let machine = Machine::new(2).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(8);
        t.insert_batch(&machine, &pts(0..4)).unwrap();
        assert!(matches!(t.insert_batch(&machine, &pts(3..5)), Err(BuildError::DuplicateId(3))));
        assert_eq!(t.len(), 4, "failed insert must not change the store");
        let bad = vec![Point::<2>::new([0, 0], PAD_ID)];
        assert!(matches!(t.insert_batch(&machine, &bad), Err(BuildError::ReservedId)));
    }

    #[test]
    fn delete_then_query_all_modes() {
        let machine = Machine::new(4).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(16);
        let all = pts(0..60);
        t.insert_batch(&machine, &all).unwrap();
        t.delete_batch(&machine, &[0, 5, 10, 59, 1000]).unwrap();
        assert_eq!(t.len(), 56);
        let q = Rect::new([0, 0], [800, 600]);
        assert_eq!(t.count_batch(&machine, &[q])[0], 56);
        let ids = t.report_batch(&machine, &[q]);
        assert_eq!(ids[0].len(), 56);
        assert!(!ids[0].contains(&5));
        let sums = t.aggregate_batch(&machine, crate::semigroup::Sum, &[q]);
        // Unit weights, so the sum equals the live count.
        assert_eq!(sums[0], Some(56));
        // Delete everything.
        let rest: Vec<u32> = ids[0].clone();
        t.delete_batch(&machine, &rest).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.count_batch(&machine, &[q]), vec![0]);
        assert!(t.report_batch(&machine, &[q])[0].is_empty());
    }

    #[test]
    fn empty_store_queries() {
        let machine = Machine::new(2).unwrap();
        let t = DynamicDistRangeTree::<2>::new(4);
        let q = Rect::new([0, 0], [10, 10]);
        assert_eq!(t.count_batch(&machine, &[q]), vec![0]);
        assert_eq!(t.aggregate_batch(&machine, crate::semigroup::Sum, &[q]), vec![None]);
        assert!(format!("{t:?}").contains("DynamicDistRangeTree"));
    }

    /// A mixed batch over `L` occupied levels is one `Machine::run` (the
    /// per-level-per-mode dispatch used to cost `3·L`).
    #[test]
    fn mixed_batch_is_one_submission_across_levels() {
        let machine = Machine::new(4).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(8);
        // Batches sized to leave three levels occupied (binary counter 111).
        t.insert_batch(&machine, &pts(0..32)).unwrap();
        t.insert_batch(&machine, &pts(100..116)).unwrap();
        t.insert_batch(&machine, &pts(200..207)).unwrap();
        assert_eq!(t.occupied_levels(), 3);
        let qs = vec![Rect::new([0, 0], [800, 600]), Rect::new([100, 100], [300, 300])];
        machine.take_stats();
        let out = t.query_batch_fused(&machine, crate::semigroup::Sum, &qs, &qs, &qs);
        let stats = machine.take_stats();
        assert_eq!(stats.runs, 1, "mixed batch over 3 levels must be one run");
        // And the fused answers agree with the per-mode fused paths.
        assert_eq!(out.counts, t.count_batch(&machine, &qs));
        assert_eq!(out.aggregates, t.aggregate_batch(&machine, crate::semigroup::Sum, &qs));
        assert_eq!(out.reports, t.report_batch(&machine, &qs));
        // Each per-mode call above was itself one run.
        assert_eq!(machine.take_stats().runs, 3);
    }

    #[test]
    fn extract_returns_the_removed_points() {
        let machine = Machine::new(2).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(8);
        let all = pts(0..20);
        t.insert_batch(&machine, &all).unwrap();
        let mut removed = t.extract_batch(&machine, &[3, 7, 11, 999]).unwrap();
        removed.sort_unstable_by_key(|p| p.id);
        assert_eq!(removed.len(), 3, "missing ids are ignored");
        for (p, id) in removed.iter().zip([3u32, 7, 11]) {
            assert_eq!(p.id, id);
            assert_eq!(*p, all[id as usize], "extraction preserves coords and weight");
        }
        assert_eq!(t.len(), 17);
        assert!(!t.contains_id(7));
        // The extracted points can be re-inserted (migration round-trip).
        t.insert_batch(&machine, &removed).unwrap();
        assert_eq!(t.len(), 20);
        let q = Rect::new([0, 0], [800, 600]);
        assert_eq!(t.count_batch(&machine, &[q]), vec![20]);
    }

    #[test]
    fn points_iterates_every_live_point() {
        let machine = Machine::new(2).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(4);
        assert_eq!(t.points().count(), 0);
        t.insert_batch(&machine, &pts(0..9)).unwrap();
        t.delete_batch(&machine, &[2, 4]).unwrap();
        let mut ids: Vec<u32> = t.points().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3, 5, 6, 7, 8]);
    }

    /// Empty and trivial batches must not pay any machine dispatch.
    #[test]
    fn trivial_batches_skip_the_machine() {
        let machine = Machine::new(4).unwrap();
        let mut t = DynamicDistRangeTree::<2>::new(8);
        t.insert_batch(&machine, &pts(0..20)).unwrap();
        machine.take_stats();
        // Empty query batches against an occupied store…
        assert!(t.count_batch(&machine, &[]).is_empty());
        assert!(t.aggregate_batch(&machine, crate::semigroup::Sum, &[]).is_empty());
        assert!(t.report_batch(&machine, &[]).is_empty());
        // …and non-empty batches against an empty store.
        let empty = DynamicDistRangeTree::<2>::new(8);
        let q = Rect::new([0, 0], [10, 10]);
        assert_eq!(empty.count_batch(&machine, &[q]), vec![0]);
        assert_eq!(empty.report_batch(&machine, &[q]), vec![Vec::<u32>::new()]);
        let stats = machine.take_stats();
        assert_eq!(stats.supersteps(), 0, "trivial batches must not communicate");
        assert_eq!(stats.runs, 0, "trivial batches must not dispatch");
    }
}
