//! Points and orthogonal query domains in user coordinate space and in the
//! internal rank space.
//!
//! The paper assumes (w.l.o.g.) that "all coordinates in each dimension are
//! normalized by replacing each of them by their rank in increasing order,
//! i.e. points are in {1..n}^d, and n = 2^k". The public API works on raw
//! `i64` coordinates; [`crate::rank::RankSpace`] performs the normalization
//! (with identifier tie-breaking so duplicate coordinates get distinct
//! ranks) and the padding to a power of two.

use ddrs_cgm::Payload;

/// A point of the input set `L`: an ordered `d`-tuple of coordinates, a
/// unique record identifier, and an associated weight used by the
/// associative-function query mode (the paper's `f(l)` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point<const D: usize> {
    /// Cartesian coordinates `x_1(l) … x_d(l)`.
    pub coords: [i64; D],
    /// Unique record identifier (must be unique across the input set and
    /// less than [`PAD_ID`]).
    pub id: u32,
    /// Semigroup payload for associative-function queries (e.g. a sales
    /// amount for `Sum`). Ignored by count and report modes.
    pub weight: u64,
}

impl<const D: usize> Point<D> {
    /// A point with unit weight.
    pub fn new(coords: [i64; D], id: u32) -> Self {
        Point { coords, id, weight: 1 }
    }

    /// A point with an explicit semigroup weight.
    pub fn weighted(coords: [i64; D], id: u32, weight: u64) -> Self {
        Point { coords, id, weight }
    }
}

impl<const D: usize> Payload for Point<D> {}

/// Identifier reserved for the sentinel pad points that round the input
/// size up to a power of two. Pad points sort after every real point in
/// every dimension and are excluded from all query results.
pub const PAD_ID: u32 = u32::MAX;

/// An axis-aligned orthogonal query domain `q` with *inclusive* bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect<const D: usize> {
    /// Lower corner (inclusive).
    pub lo: [i64; D],
    /// Upper corner (inclusive).
    pub hi: [i64; D],
}

impl<const D: usize> Rect<D> {
    /// Construct a query box from inclusive corners.
    pub fn new(lo: [i64; D], hi: [i64; D]) -> Self {
        Rect { lo, hi }
    }

    /// Does the box contain the point (inclusively)?
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|j| self.lo[j] <= p.coords[j] && p.coords[j] <= self.hi[j])
    }

    /// True if some dimension has `lo > hi` (matches nothing).
    pub fn is_empty(&self) -> bool {
        (0..D).any(|j| self.lo[j] > self.hi[j])
    }
}

impl<const D: usize> Payload for Rect<D> {}

/// A point in rank space: per-dimension ranks in `0..m` (`m` the padded
/// size), plus the original id and weight. All internal algorithms operate
/// on `RPoint`s; ranks are unique per dimension by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RPoint<const D: usize> {
    /// Rank of this point in each dimension (unique within a dimension).
    pub ranks: [u32; D],
    /// Original record id, or [`PAD_ID`] for sentinel pads.
    pub id: u32,
    /// Original weight.
    pub weight: u64,
}

impl<const D: usize> RPoint<D> {
    /// Is this a sentinel pad point?
    #[inline]
    pub fn is_pad(&self) -> bool {
        self.id == PAD_ID
    }
}

impl<const D: usize> Payload for RPoint<D> {}

/// A query in rank space: inclusive rank intervals per dimension.
/// `lo[j] > hi[j]` encodes an empty interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RRect<const D: usize> {
    /// Inclusive lower ranks.
    pub lo: [u32; D],
    /// Inclusive upper ranks.
    pub hi: [u32; D],
}

impl<const D: usize> RRect<D> {
    /// True if some dimension's rank interval is empty.
    pub fn is_empty(&self) -> bool {
        (0..D).any(|j| self.lo[j] > self.hi[j])
    }

    /// Does the rank interval in dimension `j` fully contain `[lo, hi]`?
    #[inline]
    pub fn contains_interval(&self, j: usize, lo: u32, hi: u32) -> bool {
        self.lo[j] <= lo && hi <= self.hi[j]
    }

    /// Is the rank interval in dimension `j` disjoint from `[lo, hi]`?
    #[inline]
    pub fn disjoint_interval(&self, j: usize, lo: u32, hi: u32) -> bool {
        hi < self.lo[j] || lo > self.hi[j]
    }

    /// Does the point's rank vector fall inside the box on dimensions
    /// `from_dim..D`?
    #[inline]
    pub fn contains_ranks_from(&self, p: &RPoint<D>, from_dim: usize) -> bool {
        (from_dim..D).all(|j| self.lo[j] <= p.ranks[j] && p.ranks[j] <= self.hi[j])
    }
}

impl<const D: usize> Payload for RRect<D> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_is_inclusive() {
        let r = Rect::new([0, 0], [10, 10]);
        assert!(r.contains(&Point::new([0, 0], 1)));
        assert!(r.contains(&Point::new([10, 10], 2)));
        assert!(!r.contains(&Point::new([11, 5], 3)));
        assert!(!r.contains(&Point::new([-1, 5], 4)));
    }

    #[test]
    fn empty_rect() {
        assert!(Rect::new([5, 0], [4, 10]).is_empty());
        assert!(!Rect::new([5, 0], [5, 0]).is_empty());
    }

    #[test]
    fn rrect_interval_tests() {
        let q = RRect { lo: [2, 0], hi: [7, 3] };
        assert!(q.contains_interval(0, 2, 7));
        assert!(q.contains_interval(0, 3, 5));
        assert!(!q.contains_interval(0, 1, 7));
        assert!(q.disjoint_interval(0, 8, 9));
        assert!(q.disjoint_interval(0, 0, 1));
        assert!(!q.disjoint_interval(0, 7, 9));
    }

    #[test]
    fn rrect_point_membership_from_dim() {
        let q = RRect { lo: [5, 2, 0], hi: [9, 4, 1] };
        let p = RPoint { ranks: [100, 3, 1], id: 0, weight: 1 };
        assert!(q.contains_ranks_from(&p, 1)); // dim 0 ignored
        assert!(!q.contains_ranks_from(&p, 0));
    }
}
