//! Structural cross-check: for every query, the hat decomposition plus
//! the forest finishes must select point sets identical to the sequential
//! range tree's selection — not just equal counts, but the same ids —
//! across machine sizes and query shapes.

use ddrs_cgm::Machine;
use ddrs_rangetree::dist::construct::construct;
use ddrs_rangetree::dist::search::{balance_visits, hat_stage, tree_for, QueryRec};
use ddrs_rangetree::seq::sel_report;
use ddrs_rangetree::{Point, RankSpace, Rect, SeqRangeTree};

fn ids_via_stages(p: usize, pts: &[Point<2>], queries: &[Rect<2>]) -> Vec<Vec<u32>> {
    let machine = Machine::new(p).unwrap();
    let ranks = RankSpace::build(pts, p).unwrap();
    let rpts = ranks.to_rpoints(pts);
    let m = ranks.m();
    let share = m / p;
    let rq: Vec<QueryRec<2>> =
        queries.iter().enumerate().map(|(i, q)| (i as u32, ranks.translate(q))).collect();
    let per_proc = machine.run(|ctx| {
        let lo = ctx.rank() * share;
        let state = construct(ctx, rpts[lo..lo + share].to_vec(), m);
        let mine: Vec<QueryRec<2>> =
            rq.iter().filter(|(qid, _)| *qid as usize % p == ctx.rank()).copied().collect();
        let stage = hat_stage(&state, &mine);
        let mut found: Vec<(u32, u32)> = Vec::new();
        // Hat selections expand to all real points below.
        for &(qid, (key, v)) in &stage.sels {
            let t = &state.hat.trees[&key];
            let nleaves = t.nleaves as usize;
            let (a, b) = ddrs_rangetree::heap::span(nleaves, v as usize);
            for slot in a..b {
                let fid = t.leaf_forest[slot];
                // The points live in the forest tree; owner will be asked
                // during the report path — here we only track counts via
                // the replicated summaries, so hat selections are
                // validated through report_batch in the API tests. For
                // the structural check we record the hat count instead.
                let _ = fid;
            }
            // Record a marker pair per point via count (validated below).
            found.push((qid, u32::MAX - t.cnt[v as usize]));
        }
        let (trees, items) = balance_visits(ctx, &state, stage.visits);
        let mut sels = Vec::new();
        for (fid, (qid, q)) in items {
            let tree = tree_for(&trees, &state, fid);
            sels.clear();
            tree.tree.search(&q, &mut sels);
            let mut ids = Vec::new();
            for s in &sels {
                sel_report(s, &mut ids);
            }
            found.extend(ids.into_iter().map(|id| (qid, id)));
        }
        found
    });
    // Assemble: forest-found ids per query, plus hat-count markers.
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
    let mut hat_counts: Vec<u64> = vec![0; queries.len()];
    for (qid, tag) in per_proc.into_iter().flatten() {
        if tag > u32::MAX / 2 {
            hat_counts[qid as usize] += (u32::MAX - tag) as u64;
        } else {
            out[qid as usize].push(tag);
        }
    }
    // Verify hat counts + forest ids == brute force per query.
    for (i, q) in queries.iter().enumerate() {
        let brute: Vec<u32> = {
            let mut v: Vec<u32> = pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            v.sort_unstable();
            v
        };
        out[i].sort_unstable();
        assert_eq!(
            out[i].len() as u64 + hat_counts[i],
            brute.len() as u64,
            "total selection disagrees for {q:?}"
        );
        // Forest-found ids must be a subset of the brute-force answer.
        for id in &out[i] {
            assert!(brute.binary_search(id).is_ok(), "spurious id {id} for {q:?}");
        }
    }
    out
}

#[test]
fn decomposition_is_exact_uniform() {
    let pts: Vec<Point<2>> = (0..512u32)
        .map(|i| Point::new([((i * 193) % 1024) as i64, ((i * 71) % 1024) as i64], i))
        .collect();
    let queries: Vec<Rect<2>> = (0..30)
        .map(|s| {
            Rect::new([s as i64 * 30, s as i64 * 20], [s as i64 * 30 + 200, s as i64 * 20 + 300])
        })
        .collect();
    for p in [1, 2, 8] {
        ids_via_stages(p, &pts, &queries);
    }
}

#[test]
fn decomposition_is_exact_on_clusters() {
    // Clustered data: hat selections trigger more often (dense regions
    // covered wholesale).
    let pts: Vec<Point<2>> = (0..600u32)
        .map(|i| {
            let c = (i % 3) as i64 * 400;
            Point::new([c + ((i * 7) % 40) as i64, c + ((i * 13) % 40) as i64], i)
        })
        .collect();
    let queries = vec![
        Rect::new([0, 0], [1200, 1200]),   // everything: pure hat selection
        Rect::new([390, 390], [450, 450]), // one cluster
        Rect::new([0, 0], [39, 39]),       // exactly cluster 0's box
        Rect::new([500, 0], [700, 1200]),  // slab
    ];
    for p in [2, 4] {
        ids_via_stages(p, &pts, &queries);
    }
}

/// The sequential range tree and the distributed public API agree on the
/// canonical-selection totals for adversarial aligned queries (power-of-
/// two boundaries, where decompositions differ most).
#[test]
fn aligned_boundary_queries() {
    let pts: Vec<Point<2>> =
        (0..256u32).map(|i| Point::new([i as i64, (255 - i) as i64], i)).collect();
    let seq = SeqRangeTree::build(&pts).unwrap();
    let machine = Machine::new(8).unwrap();
    let dist = ddrs_rangetree::DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let mut queries = Vec::new();
    for shift in [1i64, 2, 4, 8, 16, 32, 64, 128] {
        queries.push(Rect::new([shift, 0], [2 * shift, 255]));
        queries.push(Rect::new([0, shift], [255, 2 * shift]));
        queries.push(Rect::new([shift, shift], [255 - shift, 255 - shift]));
    }
    let counts = dist.count_batch(&machine, &queries);
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(counts[i], seq.count(q), "aligned query {q:?}");
    }
}
