//! Structural invariants of Algorithm Construct, checked directly on the
//! per-processor states (below the public query API).

use ddrs_cgm::Machine;
use ddrs_rangetree::dist::construct::{construct, ProcState};
use ddrs_rangetree::dist::ROOT_KEY;
use ddrs_rangetree::{heap, Point, RankSpace};

fn build(p: usize, n: u32, seed: u64) -> (Vec<ProcState<2>>, usize) {
    let pts: Vec<Point<2>> = (0..n)
        .map(|i| {
            let x = ((i as i64) * 7919 + seed as i64) % 10007;
            let y = ((i as i64) * 104729 + seed as i64 * 31) % 10009;
            Point::new([x, y], i)
        })
        .collect();
    let machine = Machine::new(p).unwrap();
    let ranks = RankSpace::build(&pts, p).unwrap();
    let rpts = ranks.to_rpoints(&pts);
    let m = ranks.m();
    let share = m / p;
    let states = machine.run(|ctx| {
        let lo = ctx.rank() * share;
        construct(ctx, rpts[lo..lo + share].to_vec(), m)
    });
    (states, m)
}

/// Every hat-tree key is reachable through the child-key chain from the
/// primary tree, and every internal non-final-dimension hat node has its
/// descendant tree present.
#[test]
fn hat_key_space_is_closed() {
    let (states, _) = build(8, 700, 1);
    let hat = &states[0].hat;
    let mut reachable = std::collections::HashSet::new();
    let mut stack = vec![ROOT_KEY];
    while let Some(key) = stack.pop() {
        assert!(reachable.insert(key), "key {key} reached twice");
        let t = hat.trees.get(&key).unwrap_or_else(|| panic!("missing hat tree {key}"));
        if (t.dim as usize) < 1 {
            // d = 2: only dimension-0 trees have descendants.
            let nleaves = t.nleaves as usize;
            for v in 1..nleaves {
                stack.push(ddrs_rangetree::dist::hat::child_key(key, v, hat.key_shift));
            }
        }
    }
    assert_eq!(
        reachable.len(),
        hat.trees.len(),
        "unreachable hat trees exist: {} reachable vs {} stored",
        reachable.len(),
        hat.trees.len()
    );
}

/// Hat interval/count consistency: every internal node's count is the sum
/// of its children and intervals nest.
#[test]
fn hat_nodes_are_consistent() {
    let (states, _) = build(4, 500, 2);
    for t in states[0].hat.trees.values() {
        let nleaves = t.nleaves as usize;
        for v in 1..nleaves {
            let (l, r) = (2 * v, 2 * v + 1);
            assert_eq!(t.cnt[v], t.cnt[l] + t.cnt[r], "count mismatch at {v}");
            if t.cnt[l] > 0 && t.cnt[r] > 0 {
                assert!(t.hi[l] < t.lo[r], "child intervals overlap at {v}");
                assert_eq!(t.lo[v], t.lo[l]);
                assert_eq!(t.hi[v], t.hi[r]);
            }
        }
    }
}

/// The forest ids referenced by hat leaves are exactly the forest trees
/// held across processors, and the id → owner mapping is the round-robin
/// deal within each phase.
#[test]
fn forest_ids_cover_and_locate() {
    let p = 4;
    let (states, _) = build(p, 600, 3);
    let mut owned: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (rank, s) in states.iter().enumerate() {
        for &fid in s.forest.keys() {
            assert!(owned.insert(fid, rank).is_none(), "forest id {fid} duplicated");
        }
    }
    let mut referenced: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for t in states[0].hat.trees.values() {
        for i in 0..t.nleaves as usize {
            referenced.insert(t.leaf_forest[i]);
        }
    }
    assert_eq!(referenced.len(), owned.len(), "hat references and held trees disagree");
    for fid in referenced {
        assert!(owned.contains_key(&fid), "referenced tree {fid} not held anywhere");
    }
}

/// Every real point appears exactly once among the phase-0 forest trees,
/// and within any single forest tree each point appears once per
/// dimension level it participates in.
#[test]
fn phase0_trees_partition_the_input() {
    let n = 600u32;
    let (states, _) = build(4, n, 4);
    let mut seen = vec![0u32; n as usize];
    for s in &states {
        for t in s.forest.values().filter(|t| t.start_dim == 0) {
            for leaf in t.tree.leaves.iter().filter(|l| !l.is_pad()) {
                seen[leaf.id as usize] += 1;
            }
        }
    }
    assert!(seen.iter().all(|&c| c == 1), "phase-0 coverage: {seen:?}");
}

/// Later-phase forest trees hold exactly the points spanned by their hat
/// ancestor (checked via counts: the record volume of phase j+1 equals
/// the sum over internal dimension-j hat nodes of their spans).
#[test]
fn phase_record_volumes_match_hat_shape() {
    let p = 8;
    let (states, m) = build(p, 900, 5);
    let recs = &states[0].phase_records;
    assert_eq!(recs[0], m as u64);
    // Sum of spans of internal nodes of the primary hat tree.
    let primary = &states[0].hat.trees[&ROOT_KEY];
    let nleaves = primary.nleaves as usize;
    let mu = (m / p) as u64;
    let mut expect = 0u64;
    for v in 1..nleaves {
        let (a, b) = heap::span(nleaves, v);
        expect += (b - a) as u64 * mu;
    }
    assert_eq!(recs[1], expect, "phase-1 record volume disagrees with hat shape");
}

/// All processors compute identical phase-record tallies (they are global
/// quantities derived from scans).
#[test]
fn phase_records_agree_across_processors() {
    let (states, _) = build(4, 300, 6);
    for s in &states[1..] {
        assert_eq!(s.phase_records, states[0].phase_records);
    }
}

/// Rebuilding from the same input is deterministic: two independent
/// machines produce identical hats and forest shards.
#[test]
fn construction_is_deterministic() {
    let (a, _) = build(4, 400, 7);
    let (b, _) = build(4, 400, 7);
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.hat.trees, sb.hat.trees);
        assert_eq!(
            sa.forest.keys().collect::<std::collections::BTreeSet<_>>(),
            sb.forest.keys().collect::<std::collections::BTreeSet<_>>()
        );
    }
}
