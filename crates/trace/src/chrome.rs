//! chrome://tracing ("Trace Event Format") JSON export.
//!
//! Renders captured span events and per-rank machine timelines as one
//! JSON document loadable at chrome://tracing or
//! <https://ui.perfetto.dev>. Request spans appear under pid 1 — one
//! row (tid) per span, one complete ("X") slice per stage — and machine
//! timelines under pid 2, one row per rank with alternating compute and
//! barrier-wait slices. All timestamps share the [`now_ns`](crate::now_ns)
//! clock, so a request's `machine_run` slice visually brackets the
//! supersteps that served it.

use crate::{Event, EventKind, RankStep};

fn push_complete(
    out: &mut Vec<String>,
    name: &str,
    pid: u32,
    tid: u64,
    t0_ns: u64,
    dur_ns: u64,
    args: &str,
) {
    out.push(format!(
        r#"{{"name":"{}","ph":"X","pid":{},"tid":{},"ts":{:.3},"dur":{:.3}{}}}"#,
        name,
        pid,
        tid,
        t0_ns as f64 / 1_000.0,
        dur_ns as f64 / 1_000.0,
        args
    ));
}

/// Render `events` (and `timeline`, possibly empty) as a chrome
/// trace-event JSON document.
pub fn export(events: &[Event], timeline: &[RankStep]) -> String {
    let mut slices: Vec<String> = Vec::new();

    // Pair each stage's Begin with the next End of the same (span,
    // stage). Events arrive timestamp-sorted from `Trace::capture`, so
    // a linear scan with one open slot per (span, stage) suffices.
    let mut open: Vec<(u64, u8, u64)> = Vec::new(); // (span, stage, t0)
    for ev in events {
        let key = (ev.span.0, ev.stage.index() as u8);
        match ev.kind {
            EventKind::Begin => {
                open.push((key.0, key.1, ev.t_ns));
            }
            EventKind::End => {
                if let Some(pos) = open.iter().position(|&(s, g, _)| (s, g) == key) {
                    let (_, _, t0) = open.swap_remove(pos);
                    let args = if ev.err { r#","args":{"err":true}"# } else { "" };
                    push_complete(
                        &mut slices,
                        ev.stage.name(),
                        1,
                        ev.span.0,
                        t0,
                        ev.t_ns.saturating_sub(t0),
                        args,
                    );
                }
                // An End without a Begin (ring wrap ate the opener) is
                // dropped: a truncated slice would misattribute time.
            }
        }
    }

    for step in timeline {
        if step.compute_ns > 0 {
            push_complete(
                &mut slices,
                &format!("compute:{}", step.label),
                2,
                step.rank as u64,
                step.start_ns,
                step.compute_ns,
                "",
            );
        }
        push_complete(
            &mut slices,
            &format!("barrier:{}", step.label),
            2,
            step.rank as u64,
            step.start_ns + step.compute_ns,
            step.barrier_ns,
            "",
        );
    }

    format!("{{\"traceEvents\":[\n{}\n]}}\n", slices.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanId, Stage};

    fn ev(span: u64, stage: Stage, kind: EventKind, t_ns: u64, err: bool) -> Event {
        Event { span: SpanId(span), stage, kind, err, t_ns }
    }

    #[test]
    fn pairs_begin_end_into_complete_slices() {
        let events = vec![
            ev(7, Stage::Queue, EventKind::Begin, 1_000, false),
            ev(7, Stage::Queue, EventKind::End, 3_000, false),
            ev(7, Stage::Resolve, EventKind::Begin, 3_000, false),
            ev(7, Stage::Resolve, EventKind::End, 4_500, true),
        ];
        let json = export(&events, &[]);
        assert!(json.contains(r#""name":"queue""#));
        assert!(json.contains(r#""ts":1.000,"dur":2.000"#));
        assert!(json.contains(r#""args":{"err":true}"#));
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn unmatched_end_is_dropped() {
        let events = vec![ev(1, Stage::Merge, EventKind::End, 500, false)];
        let json = export(&events, &[]);
        assert!(!json.contains("merge"), "truncated slices must not render: {json}");
    }

    #[test]
    fn timeline_rows_render_compute_and_barrier() {
        let steps = vec![RankStep {
            rank: 3,
            round: 0,
            label: "all_to_all",
            start_ns: 10_000,
            compute_ns: 2_000,
            barrier_ns: 500,
        }];
        let json = export(&[], &steps);
        assert!(json.contains(r#""name":"compute:all_to_all""#));
        assert!(json.contains(r#""name":"barrier:all_to_all""#));
        assert!(json.contains(r#""pid":2,"tid":3"#));
    }
}
