//! Always-on per-stage latency aggregates.
//!
//! Unlike span recording (compiled out of default release builds),
//! these aggregates are plain O(1)-space counters the serving stats
//! embed unconditionally — they are what lets `BENCH_*.json` report a
//! `stage_breakdown_us` section from an ordinary release run. One
//! [`StageAgg`] per [`Stage`](crate::Stage), each carrying exact sum,
//! count and maximum in microseconds.

use crate::metrics::MetricsRegistry;

/// Sum/count/max of one stage's durations, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// Total microseconds spent in this stage across all recorded ops.
    pub total_us: u64,
    /// Number of ops that recorded this stage.
    pub count: u64,
    /// Largest single-op duration recorded for this stage.
    pub max_us: u64,
}

impl StageAgg {
    /// Record one op's duration in this stage.
    pub fn record(&mut self, us: u64) {
        self.total_us = self.total_us.saturating_add(us);
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Fold another aggregate into this one.
    pub fn absorb(&mut self, other: &StageAgg) {
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Mean microseconds per recorded op (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Per-stage latency aggregates over a request population: where the
/// end-to-end latency actually went, stage by stage.
///
/// Stage durations of one op sum to *at most* its end-to-end latency
/// (instrumentation gaps — e.g. between resolution being decided and
/// the wakeup running — are deliberately unattributed rather than
/// guessed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Admission → window fire.
    pub queue: StageAgg,
    /// Window fire → machine dispatch (carve, gating, routing,
    /// validation).
    pub window: StageAgg,
    /// Machine execution (scatter → last shard arrival for cross-shard
    /// reads).
    pub machine_run: StageAgg,
    /// Run completion → resolution decided (stats, partial merge,
    /// sequencing).
    pub merge: StageAgg,
    /// Ticket resolution (wakeup / callback delivery).
    pub resolve: StageAgg,
}

impl StageBreakdown {
    /// The stages as `(name, aggregate)` pairs, lifecycle order.
    pub fn stages(&self) -> [(&'static str, StageAgg); 5] {
        [
            ("queue", self.queue),
            ("window", self.window),
            ("machine_run", self.machine_run),
            ("merge", self.merge),
            ("resolve", self.resolve),
        ]
    }

    /// Fold another breakdown into this one.
    pub fn absorb(&mut self, other: &StageBreakdown) {
        self.queue.absorb(&other.queue);
        self.window.absorb(&other.window);
        self.machine_run.absorb(&other.machine_run);
        self.merge.absorb(&other.merge);
        self.resolve.absorb(&other.resolve);
    }

    /// Sum of per-stage mean durations — the attributed share of the
    /// mean end-to-end latency.
    pub fn attributed_mean_us(&self) -> f64 {
        self.stages().iter().map(|(_, a)| a.mean_us()).sum()
    }

    /// Render the plain-text breakdown table the repro harness and the
    /// tracing example print.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<12} {:>10} {:>12} {:>10}\n",
            "stage", "ops", "mean_us", "max_us"
        ));
        for (name, agg) in self.stages() {
            out.push_str(&format!(
                "  {:<12} {:>10} {:>12.1} {:>10}\n",
                name,
                agg.count,
                agg.mean_us(),
                agg.max_us
            ));
        }
        out
    }

    /// Register every stage's mean/max/count under
    /// `<prefix>.<stage>.{mean_us,max_us,count}` in `registry`.
    pub fn register_into(&self, registry: &MetricsRegistry, prefix: &str) {
        for (name, agg) in self.stages() {
            registry.set_gauge(&format!("{prefix}.{name}.mean_us"), agg.mean_us());
            registry.set_counter(&format!("{prefix}.{name}.max_us"), agg.max_us);
            registry.set_counter(&format!("{prefix}.{name}.count"), agg.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_absorb_and_means() {
        let mut a = StageBreakdown::default();
        a.queue.record(10);
        a.queue.record(30);
        a.machine_run.record(100);
        let mut b = StageBreakdown::default();
        b.queue.record(200);
        a.absorb(&b);
        assert_eq!(a.queue.count, 3);
        assert_eq!(a.queue.total_us, 240);
        assert_eq!(a.queue.max_us, 200);
        assert_eq!(a.queue.mean_us(), 80.0);
        assert_eq!(a.attributed_mean_us(), 180.0);
        assert_eq!(a.window.mean_us(), 0.0);
    }

    #[test]
    fn table_lists_every_stage() {
        let mut b = StageBreakdown::default();
        b.resolve.record(7);
        let table = b.render_table();
        for name in ["queue", "window", "machine_run", "merge", "resolve"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn registers_metrics_under_prefix() {
        let reg = MetricsRegistry::new();
        let mut b = StageBreakdown::default();
        b.merge.record(42);
        b.register_into(&reg, "svc.stage");
        let snap = reg.snapshot();
        assert!(snap.contains_key("svc.stage.merge.mean_us"));
        assert!(snap.contains_key("svc.stage.queue.count"));
        assert_eq!(snap.len(), 15, "5 stages x 3 metrics");
    }
}
