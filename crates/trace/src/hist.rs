//! The fixed-size base-2 histogram shared by every telemetry surface.
//!
//! Relocated here from `ddrs-service` (which re-exports it) so the
//! metrics registry, the serving stats and the repro harness all speak
//! one estimator. This revision also tracks the exact maximum sample:
//! the base-2 buckets resolve quantiles only to within a factor of two,
//! which made distinct sweep points indistinguishable whenever p50 and
//! p99 landed in one bucket — exact `mean()` and [`max`](Histogram::max)
//! disambiguate them.

/// A fixed-size base-2 histogram over `u64` samples.
///
/// Bucket `i` in `1..63` holds samples whose bit length is `i` (i.e.
/// values in `[2^(i-1), 2^i)`); bucket 0 holds zeros; bucket 63 is the
/// *saturating* top bucket and holds everything in `[2^62, u64::MAX]`
/// (both 63- and 64-bit samples), with upper bound reported as
/// `u64::MAX`. Quantiles are therefore resolved to within a factor of
/// two — the right fidelity for latency tails and batch-size
/// distributions at O(1) space — while the exact mean and maximum are
/// carried alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

/// Upper bound reported for bucket `i`: 0 for the zero bucket,
/// `2^i - 1` for the interior buckets, `u64::MAX` for the saturating
/// top bucket.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        63 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Record one sample. Public so harnesses comparing against the
    /// service (e.g. the `repro` experiments) can measure their own
    /// baselines with the same estimator the service telemetry uses.
    pub fn record(&mut self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` clamped to `[0, 1]`).
    ///
    /// The bound is exclusive-rounded-down: a return of `2^i - 1` means
    /// the quantile sample was in `[2^(i-1), 2^i)`; a return of
    /// `u64::MAX` means it landed in the saturating top bucket
    /// `[2^62, u64::MAX]`.
    ///
    /// Edge cases are pinned, not unspecified: an **empty** histogram
    /// returns 0 for every `q` (there is no sample to bound, and 0 is
    /// the identity the dashboards expect), and a **single-sample**
    /// histogram returns that sample's bucket bound for every `q` —
    /// p50 and p99 of one observation are the observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// Fold another histogram into this one (used by the sharded
    /// front-end to combine per-shard telemetry).
    pub fn absorb(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_mean_and_max() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 21.0);
        assert_eq!(h.max(), 100);
        // 0 → bucket 0; 1,1 → [1,2); 3 → [2,4); 100 → [64,128).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (3, 1), (127, 1)]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(10); // [8,16) → upper bound 15
        }
        h.record(1000); // [512,1024) → upper bound 1023
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.98), 15);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.max(), 1000, "the exact maximum survives bucketing");
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    /// Pin the empty-histogram contract: every quantile of zero samples
    /// is 0 (previously unspecified).
    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    /// Pin the single-sample contract: every quantile is the sample's
    /// bucket bound (p50 and p99 of one observation are the observation).
    #[test]
    fn single_sample_quantiles_are_the_sample() {
        let mut h = Histogram::default();
        h.record(10); // [8,16) → upper bound 15
        for q in [0.0, 0.001, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 15);
        }
        let mut z = Histogram::default();
        z.record(0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(z.quantile(q), 0);
        }
    }

    /// Pin the saturating top bucket: 63- and 64-bit samples share
    /// bucket 63, whose reported upper bound is u64::MAX (previously it
    /// claimed 2^63 - 1, *below* some of its samples).
    #[test]
    fn top_bucket_saturates_with_honest_upper_bound() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record((1u64 << 62) + 1);
        assert_eq!(h.nonzero_buckets(), vec![(u64::MAX, 3)]);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // The largest non-saturating bucket still reports 2^62 - 1.
        let mut g = Histogram::default();
        g.record((1u64 << 62) - 1);
        assert_eq!(g.nonzero_buckets(), vec![((1u64 << 62) - 1, 1)]);
        // Sum saturates instead of wrapping.
        assert_eq!(h.mean(), u64::MAX as f64 / 3.0);
    }

    #[test]
    fn absorb_merges_buckets_counts_sums_and_max() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0, 1, 100] {
            a.record(v);
        }
        for v in [1, 3, u64::MAX] {
            b.record(v);
        }
        a.absorb(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.nonzero_buckets(), vec![(0, 1), (1, 2), (3, 1), (127, 1), (u64::MAX, 1)]);
        assert_eq!(a.quantile(1.0), u64::MAX);
        assert_eq!(a.max(), u64::MAX);
    }
}
