//! # ddrs-trace — request-lifecycle tracing and unified metrics
//!
//! The paper's contribution is a *cost model* — O(1) communication
//! rounds, `h = s/p` words per h-relation — and the serving stack above
//! the simulator grew aggregate telemetry (`RunStatsRollup`, latency
//! histograms) that can verify those bounds in bulk but cannot say where
//! one request's p99 actually went: queue wait, coalescing window,
//! machine run, cross-shard merge, or wakeup. This crate is the missing
//! attribution layer, in four pieces:
//!
//! * **Span recording** ([`SpanId`], [`Stage`], [`begin`]/[`end`]/
//!   [`transition`]): every request op carries a `SpanId` from admission
//!   to resolution, and the front-ends mark its stage boundaries as
//!   nanosecond-timestamped events in per-thread bounded ring buffers.
//!   Recording is compiled to no-ops unless `debug_assertions` or the
//!   `trace` feature is on (the same plumbing as `ddrs-check`'s
//!   `lock-check`): the hot path of a default release build pays
//!   nothing, not even a branch on an atomic.
//! * **Stage aggregates** ([`StageBreakdown`]): always-on O(1)-space
//!   per-stage sums/maxima the serving stats embed, so `BENCH_*.json`
//!   can report a `stage_breakdown_us` section even in default release
//!   builds.
//! * **A unified registry** ([`MetricsRegistry`]): counters, gauges and
//!   the (relocated) [`Histogram`] under one namespace with one
//!   `snapshot()`, which `ServiceStats`, `ShardedStats` and
//!   `RunStatsRollup` register into.
//! * **Exporters**: [`Trace::export_chrome`] renders captured spans (and
//!   per-rank machine timelines) as chrome://tracing / Perfetto JSON;
//!   [`StageBreakdown::render_table`] prints the plain-text breakdown
//!   the repro harness embeds.
//!
//! The crate depends only on `ddrs-check` (its ring and registry locks
//! are [`TrackedMutex`](ddrs_check::TrackedMutex)es under the classes
//! `trace.ring` and `metrics.registry`, the two innermost classes of
//! the workspace lock order — recording is legal under any other held
//! lock, and must itself hold nothing while acquiring).

#![warn(missing_docs)]

mod hist;
mod metrics;
mod stage;

#[cfg(any(debug_assertions, feature = "trace"))]
mod ring;

pub mod chrome;

pub use hist::Histogram;
pub use metrics::{MetricValue, MetricsRegistry};
pub use stage::{StageAgg, StageBreakdown};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// True when span recording is compiled in (debug builds, or any build
/// with the `trace` feature). When false, [`SpanId::fresh`] returns
/// [`SpanId::NONE`], [`now_ns`] returns 0 and every recording entry
/// point is a no-op the optimizer deletes.
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "trace"))
}

/// Identity of one request op's lifecycle span, assigned at ticket
/// creation and carried through every stage transition. `NONE` (0) is
/// the inert identity: recording against it is a no-op, so spans thread
/// through the stack unconditionally and cost nothing when tracing is
/// compiled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The inert span: recording against it does nothing.
    pub const NONE: SpanId = SpanId(0);

    /// Allocate a fresh process-unique span id ([`SpanId::NONE`] when
    /// recording is compiled out).
    pub fn fresh() -> SpanId {
        if !enabled() {
            return SpanId::NONE;
        }
        static NEXT: AtomicU64 = AtomicU64::new(1);
        // ddrs-check: allow(relaxed) — a pure id allocator: uniqueness
        // needs only the RMW's atomicity, no ordering with other data.
        SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// True for the inert span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// The lifecycle stages a request op moves through, front-end agnostic:
/// the unsharded service and the sharded router both decompose into the
/// same five stages (per-stage meanings are documented on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Admission → window fire: time spent pending in the scheduler
    /// queue (includes the deliberate coalescing delay).
    Queue,
    /// Window fire → dispatch to the machine(s): carve, read gating,
    /// routing/planning, epoch validation.
    Window,
    /// Machine execution: the SPMD run(s) answering this op — for a
    /// cross-shard read, from scatter until the last shard's arrival.
    MachineRun,
    /// Run completion → resolution decided: stats absorption, partial
    /// merging (`CrossOp` countdown), commit-sequence assignment.
    Merge,
    /// Ticket resolution: waker/condvar signalling and callback
    /// delivery.
    Resolve,
    /// Wire serialization of a request or response (`ddrs-net` codec).
    /// Only networked requests pass through the three wire stages; for
    /// in-process backends they simply never appear on a span.
    Encode,
    /// Bytes in flight: from the frame's write on one side until its
    /// demultiplexed arrival on the other (includes kernel socket
    /// queues and the peer's reader wakeup).
    Transport,
    /// Wire deserialization of a request or response.
    Decode,
}

impl Stage {
    /// All stages in lifecycle order (the three wire stages trail the
    /// five serving stages; they wrap the serving lifecycle on
    /// networked requests).
    pub const ALL: [Stage; 8] = [
        Stage::Queue,
        Stage::Window,
        Stage::MachineRun,
        Stage::Merge,
        Stage::Resolve,
        Stage::Encode,
        Stage::Transport,
        Stage::Decode,
    ];

    /// Stable lowercase label (used by the exporters and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Window => "window",
            Stage::MachineRun => "machine_run",
            Stage::Merge => "merge",
            Stage::Resolve => "resolve",
            Stage::Encode => "encode",
            Stage::Transport => "transport",
            Stage::Decode => "decode",
        }
    }

    /// Position in lifecycle order (0-based).
    pub fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::Window => 1,
            Stage::MachineRun => 2,
            Stage::Merge => 3,
            Stage::Resolve => 4,
            Stage::Encode => 5,
            Stage::Transport => 6,
            Stage::Decode => 7,
        }
    }
}

/// Whether an event opens or closes a stage interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The stage interval opens at this event's timestamp.
    Begin,
    /// The stage interval closes at this event's timestamp.
    End,
}

/// One recorded span event: a stage boundary of one request op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The op's lifecycle span.
    pub span: SpanId,
    /// Which stage this boundary belongs to.
    pub stage: Stage,
    /// Opening or closing boundary.
    pub kind: EventKind,
    /// Error tag: a closing boundary recorded on a failure path (the
    /// op resolved with an error, expired, or hit a poisoned shard).
    pub err: bool,
    /// Nanoseconds since the process trace epoch (see [`now_ns`]).
    pub t_ns: u64,
}

/// One per-rank slice of a machine-run timeline: for one collective
/// call (superstep), how long this rank computed since the previous
/// collective and how long it waited at the exchange barrier.
/// Timestamps share the span clock ([`now_ns`]), so request spans and
/// machine timelines land on one chrome://tracing timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankStep {
    /// The simulated processor's rank.
    pub rank: usize,
    /// Superstep index within the run.
    pub round: usize,
    /// Label of the collective that closed this slice.
    pub label: &'static str,
    /// When the compute slice started (end of the previous collective).
    pub start_ns: u64,
    /// Local computation time before entering the collective.
    pub compute_ns: u64,
    /// Time blocked in the collective's exchange barrier.
    pub barrier_ns: u64,
}

/// Nanoseconds since the process trace epoch (a lazily initialised
/// monotonic base shared by all threads), or 0 when recording is
/// compiled out.
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[inline]
fn record(ev: Event) {
    #[cfg(any(debug_assertions, feature = "trace"))]
    ring::push(ev);
    #[cfg(not(any(debug_assertions, feature = "trace")))]
    let _ = ev;
}

/// Open `stage` on `span` now. No-op for [`SpanId::NONE`] or when
/// recording is compiled out.
#[inline]
pub fn begin(span: SpanId, stage: Stage) {
    if !enabled() || span.is_none() {
        return;
    }
    record(Event { span, stage, kind: EventKind::Begin, err: false, t_ns: now_ns() });
}

/// Close `stage` on `span` now.
#[inline]
pub fn end(span: SpanId, stage: Stage) {
    if !enabled() || span.is_none() {
        return;
    }
    record(Event { span, stage, kind: EventKind::End, err: false, t_ns: now_ns() });
}

/// Close `stage` on `span` now with the error tag set (failure paths:
/// deadline expiry, shutdown rejection, poisoned shards, machine
/// errors).
#[inline]
pub fn end_err(span: SpanId, stage: Stage) {
    if !enabled() || span.is_none() {
        return;
    }
    record(Event { span, stage, kind: EventKind::End, err: true, t_ns: now_ns() });
}

/// Close `from` and open `to` with one shared timestamp, so adjacent
/// stages are exactly contiguous (no gap, no overlap).
#[inline]
pub fn transition(span: SpanId, from: Stage, to: Stage) {
    if !enabled() || span.is_none() {
        return;
    }
    let t_ns = now_ns();
    record(Event { span, stage: from, kind: EventKind::End, err: false, t_ns });
    record(Event { span, stage: to, kind: EventKind::Begin, err: false, t_ns });
}

/// Record a complete (already elapsed) stage: a `Begin` at `t0_ns` and
/// an `End` now, the latter carrying `err`. Used for stages measured
/// around a call rather than marked incrementally (e.g. `Resolve`).
#[inline]
pub fn complete(span: SpanId, stage: Stage, t0_ns: u64, err: bool) {
    if !enabled() || span.is_none() {
        return;
    }
    record(Event { span, stage, kind: EventKind::Begin, err: false, t_ns: t0_ns });
    record(Event { span, stage, kind: EventKind::End, err, t_ns: now_ns() });
}

/// A captured snapshot of recorded span events, ordered by timestamp.
///
/// Capturing copies (does not drain) the per-thread rings, so
/// concurrent captures — e.g. parallel tests in one binary — never
/// steal each other's events; filter by the [`SpanId`]s you own.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The captured events, ascending by `t_ns` (ties keep per-ring
    /// order: a `transition`'s End sorts before its Begin's successor).
    pub events: Vec<Event>,
}

impl Trace {
    /// Snapshot every thread's ring. Empty when recording is compiled
    /// out.
    pub fn capture() -> Trace {
        #[cfg(any(debug_assertions, feature = "trace"))]
        {
            let mut events = ring::snapshot();
            events.sort_by_key(|e| (e.t_ns, e.span, e.stage.index(), e.kind == EventKind::Begin));
            Trace { events }
        }
        #[cfg(not(any(debug_assertions, feature = "trace")))]
        {
            Trace::default()
        }
    }

    /// The events of one span, in timestamp order.
    pub fn span_events(&self, span: SpanId) -> Vec<Event> {
        self.events.iter().filter(|e| e.span == span).copied().collect()
    }

    /// Render the captured spans (plus optional per-rank machine
    /// timeline steps) as a chrome://tracing "trace events" JSON array —
    /// load it at chrome://tracing or <https://ui.perfetto.dev>.
    pub fn export_chrome(&self, timeline: &[RankStep]) -> String {
        chrome::export(&self.events, timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_records_nothing() {
        begin(SpanId::NONE, Stage::Queue);
        end(SpanId::NONE, Stage::Queue);
        let t = Trace::capture();
        assert!(t.span_events(SpanId::NONE).is_empty());
    }

    #[test]
    fn fresh_spans_are_unique_when_enabled() {
        let a = SpanId::fresh();
        let b = SpanId::fresh();
        if enabled() {
            assert!(!a.is_none() && !b.is_none());
            assert_ne!(a, b);
        } else {
            assert!(a.is_none() && b.is_none());
        }
    }

    #[test]
    fn transition_shares_one_timestamp() {
        if !enabled() {
            return;
        }
        let s = SpanId::fresh();
        begin(s, Stage::Queue);
        transition(s, Stage::Queue, Stage::Window);
        end(s, Stage::Window);
        let evs = Trace::capture().span_events(s);
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[1].t_ns, evs[2].t_ns, "transition must share its timestamp");
        assert_eq!((evs[1].stage, evs[1].kind), (Stage::Queue, EventKind::End));
        assert_eq!((evs[2].stage, evs[2].kind), (Stage::Window, EventKind::Begin));
    }

    #[test]
    fn complete_records_a_closed_interval_with_err() {
        if !enabled() {
            return;
        }
        let s = SpanId::fresh();
        let t0 = now_ns();
        complete(s, Stage::Resolve, t0, true);
        let evs = Trace::capture().span_events(s);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert!(evs[1].err, "the closing boundary carries the error tag");
        assert!(evs[1].t_ns >= evs[0].t_ns);
    }

    #[test]
    fn stage_order_and_names_are_stable() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::MachineRun.name(), "machine_run");
    }
}
