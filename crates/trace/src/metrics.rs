//! The unified metrics registry.
//!
//! Every telemetry surface in the tree (`ServiceStats`, `ShardedStats`,
//! `RunStatsRollup`, the stage breakdowns) grew its own snapshot shape;
//! the registry gives them one namespace to publish into and one
//! [`snapshot`](MetricsRegistry::snapshot) for harnesses and exporters
//! to read. Publishing is pull-shaped: a stats owner calls its
//! `register_into(&registry, prefix)` with a fresh snapshot whenever it
//! wants the registry current — the registry itself never reaches into
//! live locks.

use std::collections::BTreeMap;

use ddrs_check::TrackedMutex;

use crate::Histogram;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic (or at least integral) counter.
    Counter(u64),
    /// An instantaneous floating-point reading.
    Gauge(f64),
    /// A full base-2 histogram snapshot (boxed: a histogram is two
    /// orders of magnitude larger than the scalar variants).
    Histogram(Box<Histogram>),
}

/// A named collection of counters, gauges and histograms with one
/// snapshot API.
///
/// Internally a [`TrackedMutex`] of lock class `metrics.registry` —
/// ordered after every serving-stack lock and before `trace.ring`, so
/// stats publication is legal under held stats guards while the
/// registry itself must not be held across recording calls that take
/// other serving locks.
pub struct MetricsRegistry {
    registry: TrackedMutex<BTreeMap<String, MetricValue>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry { registry: TrackedMutex::new("metrics.registry", BTreeMap::new()) }
    }

    /// Publish (insert or overwrite) a counter.
    pub fn set_counter(&self, name: &str, v: u64) {
        self.registry.lock().insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Publish (insert or overwrite) a gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.registry.lock().insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Publish (insert or overwrite) a histogram snapshot.
    pub fn set_histogram(&self, name: &str, h: Histogram) {
        self.registry.lock().insert(name.to_string(), MetricValue::Histogram(Box::new(h)));
    }

    /// Copy out every registered metric, name-ordered.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.registry.lock().clone()
    }

    /// Render the registry as a plain-text `name value` listing
    /// (histograms render as `count/mean/p50/p99/max`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.snapshot() {
            match v {
                MetricValue::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name} {g:.3}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name} count={} mean={:.1} p50<={} p99<={} max={}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                )),
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("metrics", &self.snapshot().len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_name_ordered_and_typed() {
        let reg = MetricsRegistry::new();
        reg.set_counter("b.count", 3);
        reg.set_gauge("a.rate", 1.5);
        let mut h = Histogram::default();
        h.record(10);
        reg.set_histogram("c.latency_us", h);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a.rate", "b.count", "c.latency_us"]);
        assert_eq!(snap["b.count"], MetricValue::Counter(3));
        match &snap["c.latency_us"] {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected a histogram, got {other:?}"),
        }
    }

    #[test]
    fn overwrite_keeps_latest() {
        let reg = MetricsRegistry::new();
        reg.set_counter("x", 1);
        reg.set_counter("x", 2);
        assert_eq!(reg.snapshot()["x"], MetricValue::Counter(2));
    }

    #[test]
    fn render_lists_each_metric_once() {
        let reg = MetricsRegistry::new();
        reg.set_counter("ops", 7);
        reg.set_gauge("skew", 1.25);
        let text = reg.render();
        assert!(text.contains("ops 7"));
        assert!(text.contains("skew 1.250"));
    }
}
