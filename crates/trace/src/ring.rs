//! Per-thread bounded ring buffers holding recorded span events.
//!
//! Each recording thread owns one ring, registered in a global list so
//! [`Trace::capture`](crate::Trace::capture) can snapshot them all. The
//! hot path (one push) takes exactly one uncontended `trace.ring` lock
//! and allocates nothing once the ring is full-size; when the ring
//! wraps, the oldest events are overwritten (bounded memory beats
//! complete history for an always-on recorder).
//!
//! Lock discipline: both the per-thread rings and the global list share
//! the innermost class `trace.ring`, and no code path acquires one
//! while holding the other (registration snapshots the list guard
//! closed before any ring is locked) — same-class nesting would be an
//! order cycle.

use std::sync::{Arc, OnceLock};

use ddrs_check::TrackedMutex;

use crate::Event;

/// Events retained per thread before the ring wraps. At ~5 stage
/// boundaries per request op a ring holds the most recent ~6k ops of
/// its thread, far beyond what any scenario in the tree inspects.
const RING_CAPACITY: usize = 32 * 1024;

pub(crate) struct Ring {
    /// Ring storage; grows up to [`RING_CAPACITY`], then wraps.
    events: Vec<Event>,
    /// Next write index once the ring is saturated.
    head: usize,
}

impl Ring {
    const fn new() -> Ring {
        Ring { events: Vec::new(), head: 0 }
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % RING_CAPACITY;
        }
    }
}

/// All rings ever registered, including those of exited threads (the
/// `Arc` keeps a dead thread's events capturable).
fn rings() -> &'static TrackedMutex<Vec<Arc<TrackedMutex<Ring>>>> {
    static RINGS: OnceLock<TrackedMutex<Vec<Arc<TrackedMutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| TrackedMutex::new("trace.ring", Vec::new()))
}

thread_local! {
    static LOCAL: Arc<TrackedMutex<Ring>> = {
        let ring = Arc::new(TrackedMutex::new("trace.ring", Ring::new()));
        rings().lock().push(Arc::clone(&ring));
        ring
    };
}

/// Append one event to the calling thread's ring.
pub(crate) fn push(ev: Event) {
    // A record issued while the thread-local is being torn down (e.g.
    // a Drop during thread exit) is silently dropped rather than
    // re-initialising the ring.
    let _ = LOCAL.try_with(|ring| ring.lock().push(ev));
}

/// Copy every ring's events (no draining: concurrent captures observe
/// each other's spans rather than stealing them).
pub(crate) fn snapshot() -> Vec<Event> {
    let handles: Vec<Arc<TrackedMutex<Ring>>> = rings().lock().clone();
    let mut out = Vec::new();
    for ring in handles {
        out.extend_from_slice(&ring.lock().events);
    }
    out
}
