//! Network-layer counters, published through the unified
//! [`MetricsRegistry`](ddrs_trace::MetricsRegistry).

use std::sync::atomic::{AtomicU64, Ordering};

use ddrs_trace::MetricsRegistry;

/// Internal live counters. All accesses are `SeqCst`: these are cold
/// bookkeeping paths, and the stricter ordering keeps the crate inside
/// the workspace's no-Relaxed lint discipline.
#[derive(Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub refused: AtomicU64,
    pub active: AtomicU64,
    pub requests: AtomicU64,
    pub responses: AtomicU64,
    pub responses_dropped: AtomicU64,
    pub decode_errors: AtomicU64,
    pub read_timeouts: AtomicU64,
    pub submit_rejections: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            refused: self.refused.load(Ordering::SeqCst),
            active: self.active.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            responses: self.responses.load(Ordering::SeqCst),
            responses_dropped: self.responses_dropped.load(Ordering::SeqCst),
            decode_errors: self.decode_errors.load(Ordering::SeqCst),
            read_timeouts: self.read_timeouts.load(Ordering::SeqCst),
            submit_rejections: self.submit_rejections.load(Ordering::SeqCst),
        }
    }
}

/// A point-in-time snapshot of a [`NetServer`](crate::NetServer)'s
/// counters, taken with [`NetServer::stats`](crate::NetServer::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted and admitted (a Hello was sent).
    pub accepted: u64,
    /// Connections turned away with a typed [`Refused`
    /// frame](crate::codec::RefusedReason) — over the connection limit,
    /// or arriving during drain.
    pub refused: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Request frames decoded and admitted into the store.
    pub requests: u64,
    /// Frames flushed to a connection's socket: responses, plus the
    /// occasional terminal refusal frame.
    pub responses: u64,
    /// Response frames that never reached the wire — their client
    /// disconnected with requests in flight.
    pub responses_dropped: u64,
    /// Byte streams terminated for a framing or decode violation.
    pub decode_errors: u64,
    /// Connections reaped by the read deadline.
    pub read_timeouts: u64,
    /// Requests the store's admission control rejected at submit.
    pub submit_rejections: u64,
}

impl NetStats {
    /// Publish this snapshot into `reg`, one metric per counter, named
    /// `{prefix}.accepted`, `{prefix}.active`, and so on. `active` is
    /// published as a gauge, everything else as counters.
    pub fn register_into(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.accepted"), self.accepted);
        reg.set_counter(&format!("{prefix}.refused"), self.refused);
        reg.set_gauge(&format!("{prefix}.active"), self.active as f64);
        reg.set_counter(&format!("{prefix}.requests"), self.requests);
        reg.set_counter(&format!("{prefix}.responses"), self.responses);
        reg.set_counter(&format!("{prefix}.responses_dropped"), self.responses_dropped);
        reg.set_counter(&format!("{prefix}.decode_errors"), self.decode_errors);
        reg.set_counter(&format!("{prefix}.read_timeouts"), self.read_timeouts);
        reg.set_counter(&format!("{prefix}.submit_rejections"), self.submit_rejections);
    }
}
