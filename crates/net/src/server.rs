//! The TCP front-end: accept loop, per-connection reader/writer pair,
//! and graceful drain.
//!
//! # Threading model
//!
//! One **accept thread** owns the listener. Each admitted connection
//! gets a **reader thread** (decodes request frames, submits into the
//! store) and a **writer thread** (serializes response frames onto the
//! socket, fed by an in-process channel). Responses resolve on whatever
//! thread the store resolves tickets on — a [`Ticket::on_resolve`]
//! callback encodes the outcome and hands the frame to the writer, so
//! responses flow back **out of order** and are re-correlated client
//! side by request id. The reader never blocks on the store's answers;
//! a connection can have its whole window of requests in flight at
//! once.
//!
//! # Drain semantics
//!
//! [`NetServer::begin_shutdown`] stops accepting, half-closes every
//! connection's read side (readers see EOF and stop admitting), then
//! joins the readers. Each reader in turn joins its writer — and the
//! writer only exits once every in-flight response callback has fired
//! and released its channel handle. When `begin_shutdown` returns,
//! every admitted request has had its response flushed to the socket.
//!
//! [`Ticket::on_resolve`]: ddrs_client::Ticket::on_resolve

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use ddrs_check::TrackedMutex;
use ddrs_client::{RangeStore, ServiceError, SubmitError};
use ddrs_rangetree::Semigroup;
use ddrs_trace::{complete, now_ns, Stage};

use crate::codec::{
    decode_request, encode_hello, encode_refused, encode_response, read_frame, FrameError,
    RefusedReason, WireValue,
};
use crate::stats::{Counters, NetStats};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connections served concurrently; arrivals beyond this are turned
    /// away with a typed [`RefusedReason::AtCapacity`] frame.
    pub max_connections: usize,
    /// Read deadline per connection: a connection idle longer than this
    /// is reaped (`None` waits forever).
    pub read_timeout: Option<Duration>,
    /// The queue capacity advertised in the Hello frame. The
    /// [`RangeStore`] trait has no capacity accessor, so the config
    /// carries it; set it to the served store's admission bound (the
    /// default matches `ServiceConfig`'s default) and the remote client
    /// will reproduce the store's local admission behavior.
    pub queue_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            queue_capacity: 4096,
        }
    }
}

struct ConnEntry {
    /// A clone of the connection's stream held for drain: shutting down
    /// its read half pops the reader out of its blocking read.
    stream: TcpStream,
    reader: JoinHandle<()>,
}

struct Inner<S: Semigroup, const D: usize> {
    store: Box<dyn RangeStore<S, D> + Send + Sync>,
    cfg: NetConfig,
    stats: Counters,
    draining: AtomicBool,
    conns: TrackedMutex<HashMap<u64, ConnEntry>>,
    next_conn: AtomicU64,
    local: SocketAddr,
}

/// A listening network front-end over one [`RangeStore`].
///
/// ```no_run
/// use ddrs_client::InlineStore;
/// use ddrs_net::{NetConfig, NetServer};
/// # use ddrs_cgm::Machine;
/// # use ddrs_rangetree::{DynamicDistRangeTree, Sum};
/// # let machine = Machine::new(1).unwrap();
/// # let tree = DynamicDistRangeTree::<2>::new(8);
/// let store = InlineStore::new(machine, tree, Sum);
/// let server =
///     NetServer::serve(Box::new(store), "127.0.0.1:0", NetConfig::default()).unwrap();
/// println!("serving on {}", server.local_addr());
/// # server.shutdown();
/// ```
pub struct NetServer<S: Semigroup, const D: usize> {
    inner: Arc<Inner<S, D>>,
    accept: Option<JoinHandle<()>>,
}

impl<S: Semigroup, const D: usize> NetServer<S, D>
where
    S::Val: WireValue,
{
    /// Bind `addr` and serve `store` until shutdown. Every connection
    /// is greeted with a Hello frame carrying the store's dimension and
    /// the configured queue capacity.
    pub fn serve(
        store: Box<dyn RangeStore<S, D> + Send + Sync>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> io::Result<Self> {
        assert!(D <= u8::MAX as usize, "wire protocol caps the dimension at 255");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            store,
            cfg,
            stats: Counters::default(),
            draining: AtomicBool::new(false),
            conns: TrackedMutex::new("net.conn", HashMap::new()),
            next_conn: AtomicU64::new(0),
            local,
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(inner, listener))
        };
        Ok(NetServer { inner, accept: Some(accept) })
    }
}

impl<S: Semigroup, const D: usize> NetServer<S, D> {
    /// The bound address (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local
    }

    /// Snapshot the server's counters.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.snapshot()
    }

    /// Publish the current counters into `reg` under `prefix`
    /// (see [`NetStats::register_into`]).
    pub fn register_into(&self, reg: &ddrs_trace::MetricsRegistry, prefix: &str) {
        self.stats().register_into(reg, prefix);
    }

    /// Stop accepting, drain every in-flight response to its socket,
    /// and close all connections. Idempotent; returns once every
    /// admitted request has had its response flushed (or its
    /// connection observed to be gone).
    pub fn begin_shutdown(&self) {
        if self.inner.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Pop the accept thread out of its blocking accept; it observes
        // `draining` and exits, dropping (closing) the listener.
        drop(TcpStream::connect(self.inner.local));
        let drained: Vec<ConnEntry> = {
            let mut conns = self.inner.conns.lock();
            conns.drain().map(|(_, e)| e).collect()
        };
        for e in &drained {
            // Readers blocked in a frame read see EOF and stop
            // admitting; everything already admitted still resolves.
            let _ = e.stream.shutdown(std::net::Shutdown::Read);
        }
        for e in drained {
            let _ = e.reader.join();
        }
    }

    /// Drain ([`begin_shutdown`](NetServer::begin_shutdown)) and join
    /// the accept thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl<S: Semigroup, const D: usize> Drop for NetServer<S, D> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn refuse(mut stream: TcpStream, reason: RefusedReason, detail: &str) {
    let _ = stream.write_all(&encode_refused(reason, detail));
    let _ = stream.flush();
}

fn accept_loop<S: Semigroup, const D: usize>(inner: Arc<Inner<S, D>>, listener: TcpListener)
where
    S::Val: WireValue,
{
    loop {
        let Ok((stream, _)) = listener.accept() else { break };
        if inner.draining.load(Ordering::SeqCst) {
            inner.stats.bump(&inner.stats.refused);
            refuse(stream, RefusedReason::Draining, "server is draining");
            break;
        }
        admit(&inner, stream);
    }
}

fn admit<S: Semigroup, const D: usize>(inner: &Arc<Inner<S, D>>, mut stream: TcpStream)
where
    S::Val: WireValue,
{
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(inner.cfg.read_timeout);
    let id = inner.next_conn.fetch_add(1, Ordering::SeqCst);
    let (shutdown_clone, writer_clone) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return,
    };
    // Admission is decided under the connection map lock so a drain
    // that races with an accept either sees the entry (and joins it)
    // or wins the flag check here (and the connection is refused).
    let mut conns = inner.conns.lock();
    if inner.draining.load(Ordering::SeqCst) {
        drop(conns);
        inner.stats.bump(&inner.stats.refused);
        refuse(stream, RefusedReason::Draining, "server is draining");
        return;
    }
    if conns.len() >= inner.cfg.max_connections {
        let n = inner.cfg.max_connections;
        drop(conns);
        inner.stats.bump(&inner.stats.refused);
        refuse(stream, RefusedReason::AtCapacity, &format!("{n} of {n} connections in use"));
        return;
    }
    if stream.write_all(&encode_hello(D as u8, inner.cfg.queue_capacity as u64)).is_err() {
        return;
    }
    inner.stats.bump(&inner.stats.accepted);
    inner.stats.bump(&inner.stats.active);
    let reader = {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || serve_conn(inner, id, stream, writer_clone))
    };
    conns.insert(id, ConnEntry { stream: shutdown_clone, reader });
}

/// The per-connection reader: pulls frames, decodes, submits, and wires
/// each ticket's resolution back to the writer. Owns the writer thread
/// for its lifetime.
fn serve_conn<S: Semigroup, const D: usize>(
    inner: Arc<Inner<S, D>>,
    id: u64,
    mut read_half: TcpStream,
    mut write_half: TcpStream,
) where
    S::Val: WireValue,
{
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            // Keep draining the channel even after the socket breaks so
            // every response callback is accounted (flushed or dropped)
            // and the channel disconnects cleanly.
            let mut broken = false;
            while let Ok(frame) = rx.recv() {
                if !broken && write_half.write_all(&frame).is_ok() {
                    inner.stats.bump(&inner.stats.responses);
                } else {
                    broken = true;
                    inner.stats.bump(&inner.stats.responses_dropped);
                }
            }
            let _ = write_half.shutdown(std::net::Shutdown::Both);
        })
    };
    loop {
        let t0 = now_ns();
        let payload = match read_frame(&mut read_half) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean disconnect
            Err(FrameError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                inner.stats.bump(&inner.stats.read_timeouts);
                break;
            }
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Protocol(msg)) => {
                inner.stats.bump(&inner.stats.decode_errors);
                let _ = tx.send(encode_refused(RefusedReason::Protocol, &msg));
                break;
            }
        };
        let (req_id, req) = match decode_request::<S, D>(&payload) {
            Ok(v) => v,
            Err(msg) => {
                inner.stats.bump(&inner.stats.decode_errors);
                let _ = tx.send(encode_refused(RefusedReason::Protocol, &msg));
                break;
            }
        };
        match inner.store.submit(req) {
            Ok(ticket) => {
                inner.stats.bump(&inner.stats.requests);
                let span = ticket.span();
                complete(span, Stage::Decode, t0, false);
                let tx = tx.clone();
                let inner = Arc::clone(&inner);
                ticket.on_resolve(move |out| {
                    let t_enc = now_ns();
                    let frame = encode_response::<S>(req_id, &out);
                    complete(span, Stage::Encode, t_enc, out.is_err());
                    if tx.send(frame).is_err() {
                        // The writer is gone entirely (its channel is
                        // closed); flushed-vs-dropped is otherwise the
                        // writer's call.
                        inner.stats.bump(&inner.stats.responses_dropped);
                    }
                });
            }
            Err(e) => {
                // The store's admission control said no. The wire's
                // response channel speaks `ServiceError`, so map the
                // rejection onto it (documented in the README's error
                // mapping): `ShutDown` keeps its meaning, the other two
                // surface as machine-side diagnostics. The remote
                // client reproduces `Overloaded`/`RequestTooLarge`
                // locally from the advertised capacity, so these
                // frames only appear when many clients share a server.
                inner.stats.bump(&inner.stats.submit_rejections);
                let mapped = match e {
                    SubmitError::ShutDown => ServiceError::ShuttingDown,
                    SubmitError::Overloaded { depth } => {
                        ServiceError::Machine(format!("server overloaded: queue depth {depth}"))
                    }
                    SubmitError::RequestTooLarge { ops, capacity } => ServiceError::Machine(
                        format!("request of {ops} ops exceeds server capacity {capacity}"),
                    ),
                };
                let _ = tx.send(encode_response::<S>(req_id, &Err(mapped)));
            }
        }
    }
    // Hand the channel back and wait for the writer: it exits only once
    // every in-flight `on_resolve` callback has sent (or dropped) its
    // response, which is exactly the drain guarantee.
    drop(tx);
    let _ = writer.join();
    inner.stats.active.fetch_sub(1, Ordering::SeqCst);
    let mut conns = inner.conns.lock();
    conns.remove(&id);
}
