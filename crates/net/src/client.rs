//! [`RemoteStore`]: a [`RangeStore`] whose backend lives across a TCP
//! connection.
//!
//! The client keeps a small pool of connections, **pipelines** requests
//! (submit never waits for earlier responses), and resolves tickets
//! from one demultiplexer thread per connection as response frames
//! arrive — in whatever order the server resolved them, re-correlated
//! by request id. To a caller, a remote store is indistinguishable from
//! a local backend: same tickets, same responses, same sequence
//! numbers, same error vocabulary. The differential proptest runs over
//! it unchanged.
//!
//! # Error mapping
//!
//! Transport failures are folded onto the client contract's existing
//! error vocabulary instead of inventing a parallel one:
//!
//! * connect/handshake problems — [`NetError`], before a store exists;
//! * a request too large for the server's advertised capacity —
//!   [`SubmitError::RequestTooLarge`], decided locally;
//! * more in-flight ops than the advertised capacity —
//!   [`SubmitError::Overloaded`], decided locally (the Hello frame
//!   advertises the server's admission bound exactly so the client can
//!   reproduce local admission behavior without a round trip);
//! * a dead connection pool — [`SubmitError::ShutDown`];
//! * a connection dying with requests in flight — their tickets resolve
//!   [`ServiceError::ShuttingDown`], the same outcome an in-process
//!   store's drop gives its orphans.

use std::collections::HashMap;
use std::io::Write;
use std::marker::PhantomData;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ddrs_check::TrackedMutex;
use ddrs_client::{
    ticket, RangeStore, Request, Resolver, Response, ServiceError, SubmitError, Ticket,
};
use ddrs_rangetree::Semigroup;
use ddrs_trace::{complete, now_ns, SpanId, Stage};

use crate::codec::{
    decode_server_msg, encode_request, read_frame, RefusedReason, ServerMsg, WireValue,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Pooled connections; requests round-robin across them and every
    /// connection pipelines independently.
    pub connections: usize,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig { connections: 2 }
    }
}

/// A connect-time or protocol-level failure of the remote client.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed before a usable connection existed.
    Io(std::io::Error),
    /// The server turned the connection away with a typed refusal.
    Refused {
        /// Why the server said no.
        reason: RefusedReason,
        /// The server's diagnostic.
        detail: String,
    },
    /// The handshake violated the protocol.
    Protocol(String),
    /// The server stores points of a different dimension than this
    /// client's `D` — every query would be garbage, so connecting is
    /// refused outright.
    DimensionMismatch {
        /// The dimension the server's Hello advertised.
        server: u8,
        /// This client's compile-time dimension.
        client: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "connect failed: {e}"),
            NetError::Refused { reason, detail } => {
                let r = match reason {
                    RefusedReason::AtCapacity => "at capacity",
                    RefusedReason::Draining => "draining",
                    RefusedReason::Protocol => "protocol violation",
                };
                write!(f, "server refused connection ({r}): {detail}")
            }
            NetError::Protocol(msg) => write!(f, "handshake protocol violation: {msg}"),
            NetError::DimensionMismatch { server, client } => {
                write!(f, "server stores {server}-dimensional points, client expects {client}")
            }
        }
    }
}

impl std::error::Error for NetError {}

struct Pending<S: Semigroup> {
    resolver: Resolver<Response<S>>,
    ops: usize,
    span: SpanId,
    sent_ns: u64,
}

struct Conn<S: Semigroup> {
    /// The write half; one frame is written per lock hold, so frames
    /// from concurrent submitters never interleave.
    stream: TrackedMutex<TcpStream>,
    /// In-flight requests awaiting their response frame, by request id.
    pending: TrackedMutex<HashMap<u64, Pending<S>>>,
    dead: AtomicBool,
}

/// A [`RangeStore`] client for a [`NetServer`](crate::NetServer).
///
/// ```no_run
/// use ddrs_client::{RangeStore, Request};
/// use ddrs_net::{RemoteConfig, RemoteStore};
/// use ddrs_rangetree::{Rect, Sum};
///
/// let store: RemoteStore<Sum, 2> =
///     RemoteStore::connect("127.0.0.1:4771", RemoteConfig::default()).unwrap();
/// let mut req = Request::new();
/// let c = req.count(Rect::new([0, 0], [10, 10]));
/// let resp = store.submit(req).unwrap().wait().unwrap().value;
/// println!("{} points in range", resp.count(c));
/// ```
pub struct RemoteStore<S: Semigroup, const D: usize> {
    conns: Vec<Arc<Conn<S>>>,
    demux: Vec<JoinHandle<()>>,
    next: AtomicUsize,
    next_req: AtomicU64,
    /// The server's advertised admission bound, from the Hello frame.
    capacity: usize,
    /// Ops currently in flight across the whole pool; admission is
    /// enforced against `capacity` locally.
    inflight: Arc<AtomicUsize>,
    _dim: PhantomData<[(); D]>,
}

impl<S: Semigroup, const D: usize> std::fmt::Debug for RemoteStore<S, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("connections", &self.conns.len())
            .field("capacity", &self.capacity)
            .field("inflight", &self.inflight.load(Ordering::SeqCst))
            .finish()
    }
}

impl<S: Semigroup, const D: usize> RemoteStore<S, D>
where
    S::Val: WireValue,
{
    /// Open `cfg.connections` connections to a server and handshake on
    /// each. Fails fast on refusal, protocol violation, or a dimension
    /// mismatch between the server's store and `D`.
    pub fn connect(addr: impl ToSocketAddrs, cfg: RemoteConfig) -> Result<Self, NetError> {
        assert!(cfg.connections > 0, "a remote store needs at least one connection");
        let addrs: Vec<_> = addr.to_socket_addrs().map_err(NetError::Io)?.collect();
        let inflight = Arc::new(AtomicUsize::new(0));
        let mut conns = Vec::with_capacity(cfg.connections);
        let mut demux = Vec::with_capacity(cfg.connections);
        let mut capacity = None;
        for _ in 0..cfg.connections {
            let stream = TcpStream::connect(&addrs[..]).map_err(NetError::Io)?;
            let _ = stream.set_nodelay(true);
            let mut read_half = stream.try_clone().map_err(NetError::Io)?;
            let payload = match read_frame(&mut read_half) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    return Err(NetError::Protocol("connection closed before hello".into()))
                }
                Err(crate::codec::FrameError::Io(e)) => return Err(NetError::Io(e)),
                Err(crate::codec::FrameError::Protocol(msg)) => {
                    return Err(NetError::Protocol(msg))
                }
            };
            match decode_server_msg::<S>(&payload).map_err(NetError::Protocol)? {
                ServerMsg::Hello { dim, queue_capacity } => {
                    if usize::from(dim) != D {
                        return Err(NetError::DimensionMismatch { server: dim, client: D });
                    }
                    capacity = Some(queue_capacity as usize);
                }
                ServerMsg::Refused { reason, detail } => {
                    return Err(NetError::Refused { reason, detail })
                }
                ServerMsg::Response { .. } => {
                    return Err(NetError::Protocol("response before hello".into()))
                }
            }
            let conn = Arc::new(Conn {
                stream: TrackedMutex::new("net.conn", stream),
                pending: TrackedMutex::new("net.conn", HashMap::new()),
                dead: AtomicBool::new(false),
            });
            demux.push({
                let conn = Arc::clone(&conn);
                let inflight = Arc::clone(&inflight);
                std::thread::spawn(move || demux_loop(conn, read_half, inflight))
            });
            conns.push(conn);
        }
        Ok(RemoteStore {
            conns,
            demux,
            next: AtomicUsize::new(0),
            next_req: AtomicU64::new(0),
            capacity: capacity.expect("at least one connection handshook"),
            inflight,
            _dim: PhantomData,
        })
    }

    /// The server's advertised queue capacity (the local admission
    /// bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ops currently in flight across the pool.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Reserve `ops` slots against the advertised capacity, or report
    /// why not — the same admission verdicts a local backend gives.
    fn admit(&self, ops: usize) -> Result<(), SubmitError> {
        if ops > self.capacity {
            return Err(SubmitError::RequestTooLarge { ops, capacity: self.capacity });
        }
        loop {
            let cur = self.inflight.load(Ordering::SeqCst);
            if cur + ops > self.capacity {
                return Err(SubmitError::Overloaded { depth: cur });
            }
            if self
                .inflight
                .compare_exchange(cur, cur + ops, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }

    /// Next live connection, round-robin.
    fn pick(&self) -> Option<&Arc<Conn<S>>> {
        for _ in 0..self.conns.len() {
            let i = self.next.fetch_add(1, Ordering::SeqCst) % self.conns.len();
            if !self.conns[i].dead.load(Ordering::SeqCst) {
                return Some(&self.conns[i]);
            }
        }
        None
    }
}

impl<S: Semigroup, const D: usize> RangeStore<S, D> for RemoteStore<S, D>
where
    S::Val: WireValue,
{
    fn submit(&self, req: Request<S, D>) -> Result<Ticket<Response<S>>, SubmitError> {
        assert!(!req.is_empty(), "an empty request has no response to wait for");
        let ops = req.len();
        self.admit(ops)?;
        let Some(conn) = self.pick() else {
            self.inflight.fetch_sub(ops, Ordering::SeqCst);
            return Err(SubmitError::ShutDown);
        };
        let req_id = self.next_req.fetch_add(1, Ordering::SeqCst);
        let (outer, resolver) = ticket::<Response<S>>();
        let span = outer.span();
        let t0 = now_ns();
        let frame = encode_request(req_id, &req);
        complete(span, Stage::Encode, t0, false);
        let sent_ns = now_ns();
        {
            let mut pending = conn.pending.lock();
            pending.insert(req_id, Pending { resolver, ops, span, sent_ns });
        }
        // The demux marks a connection dead *before* draining its
        // pending map, so observing `dead == false` here means a
        // concurrent drain will still see our entry; observing `true`
        // means the drain may already have missed it, so we take it
        // back out ourselves (at most one side wins the `remove`).
        if conn.dead.load(Ordering::SeqCst) {
            let taken = {
                let mut pending = conn.pending.lock();
                pending.remove(&req_id)
            };
            if let Some(p) = taken {
                self.inflight.fetch_sub(p.ops, Ordering::SeqCst);
            }
            return Err(SubmitError::ShutDown);
        }
        let wrote = {
            let mut stream = conn.stream.lock();
            stream.write_all(&frame)
        };
        if wrote.is_err() {
            conn.dead.store(true, Ordering::SeqCst);
            let taken = {
                let mut pending = conn.pending.lock();
                pending.remove(&req_id)
            };
            if let Some(p) = taken {
                self.inflight.fetch_sub(p.ops, Ordering::SeqCst);
            }
            return Err(SubmitError::ShutDown);
        }
        Ok(outer)
    }
}

impl<S: Semigroup, const D: usize> Drop for RemoteStore<S, D> {
    fn drop(&mut self) {
        for conn in &self.conns {
            conn.dead.store(true, Ordering::SeqCst);
            let stream = conn.stream.lock();
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.demux.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-connection demultiplexer: pulls response frames, re-correlates
/// them by request id, and resolves the waiting tickets. On any
/// transport or protocol failure the connection is marked dead and
/// every still-pending ticket resolves
/// [`ServiceError::ShuttingDown`].
fn demux_loop<S: Semigroup>(
    conn: Arc<Conn<S>>,
    mut read_half: TcpStream,
    inflight: Arc<AtomicUsize>,
) where
    S::Val: WireValue,
{
    while let Ok(Some(payload)) = read_frame(&mut read_half) {
        let t_dec = now_ns();
        let Ok(msg) = decode_server_msg::<S>(&payload) else { break };
        let ServerMsg::Response { req_id, outcome } = msg else {
            // A second Hello or a refusal mid-stream: the server is
            // telling us this connection is done (protocol refusals are
            // terminal by contract).
            break;
        };
        let taken = {
            let mut pending = conn.pending.lock();
            pending.remove(&req_id)
        };
        let Some(p) = taken else {
            // A response for a request we never sent: framing is
            // untrustworthy, stop using the connection.
            break;
        };
        complete(p.span, Stage::Transport, p.sent_ns, false);
        complete(p.span, Stage::Decode, t_dec, outcome.is_err());
        inflight.fetch_sub(p.ops, Ordering::SeqCst);
        p.resolver.resolve(outcome);
    }
    // Dead first, then drain: a submitter that saw `dead == false`
    // inserted early enough for this drain to observe its entry.
    conn.dead.store(true, Ordering::SeqCst);
    let drained: Vec<Pending<S>> = {
        let mut pending = conn.pending.lock();
        pending.drain().map(|(_, p)| p).collect()
    };
    for p in drained {
        inflight.fetch_sub(p.ops, Ordering::SeqCst);
        p.resolver.resolve(Err(ServiceError::ShuttingDown));
    }
}
