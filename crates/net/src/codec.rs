//! The wire codec: CRC-framed binary encoding of the client contract.
//!
//! # Frame layout
//!
//! Every message is one length-prefixed, checksummed frame — the same
//! shape as `ddrs-wal`'s epoch records, because the same idiom solves
//! the same problem (decode untrusted bytes without ever reading past a
//! buffer or trusting a length):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length `len`, u32 little-endian
//! 4       4     CRC-32 (IEEE polynomial, reflected) of the payload
//! 8       len   payload
//! ```
//!
//! # Payload layout
//!
//! All integers little-endian. Every payload starts
//! `u8 protocol version` (currently 1), `u8 message tag`:
//!
//! ```text
//! tag 0  Hello      (server → client, once per connection)
//!        u8 dimension D · u64 advertised queue capacity
//! tag 1  Refused    (server → client, terminal)
//!        u8 reason (0 at-capacity, 1 draining, 2 protocol error)
//!        u32 len · len bytes of UTF-8 diagnostic
//! tag 2  Request    (client → server)
//!        u64 request id
//!        u8 has-deadline [· u64 deadline µs]
//!        u8 consistency (0 latest, 1 at-least) [· u64 seq]
//!        u32 W writes · W × { u8 kind (0 insert, 1 delete) ·
//!            insert: u32 n · n × (u32 id · u64 weight · D × i64 coords)
//!            delete: u32 n · n × u32 id }
//!        u32 C counts  · C × rect        rect = D × i64 lo · D × i64 hi
//!        u32 A aggs    · A × rect
//!        u32 R reports · R × rect
//! tag 3  Response   (server → client)
//!        u64 request id
//!        u8 outcome (0 committed, 1 failed)
//!        committed: u64 seq
//!                   u32 C · C × u64 counts
//!                   u32 A · A × (u8 some [· Val])
//!                   u32 R · R × (u32 n · n × u32 ids)
//!                   u32 W · W × (u8 0 ok | 1 · service-error)
//!        failed:    service-error
//! ```
//!
//! `service-error` is `u8 tag`: 0 deadline-expired, 1 shutting-down,
//! 2 machine failure (`u32 len` + UTF-8 message), 3 rejected
//! (`u8` build-error tag: 0 empty, 1 duplicate-id + `u32`, 2
//! reserved-id), 4 consistency (`u64 required` · `u64 committed`).
//!
//! # Robustness contract
//!
//! Decoding never panics, never reads past the buffer, and never
//! allocates from an untrusted length without a sanity bound: every
//! truncation offset and every single-byte corruption of a valid frame
//! yields either a checksum mismatch or a structured decode error (the
//! `tests/net_codec.rs` battery walks all of them). A decode error is
//! terminal for its connection — there is no resynchronization inside a
//! byte stream whose framing is broken.

use std::io::Read;
use std::time::Duration;

use ddrs_client::{Commit, Consistency, Outcome, Request, Response, ServiceError, WriteOp};
use ddrs_rangetree::{BuildError, Point, Rect, Semigroup};

/// Current protocol version byte.
pub const PROTO_VERSION: u8 = 1;

/// Bytes of frame header preceding every payload (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a sane payload length; a declared length above this
/// is treated as corruption rather than an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 26;

const MSG_HELLO: u8 = 0;
const MSG_REFUSED: u8 = 1;
const MSG_REQUEST: u8 = 2;
const MSG_RESPONSE: u8 = 3;

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/xorout `!0`),
/// implemented bitwise to stay dependency-free. Corruption detection
/// only; not cryptographic.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = !0;
    for &b in bytes {
        c ^= u32::from(b);
        for _ in 0..8 {
            c = if c & 1 != 0 { (c >> 1) ^ 0xEDB8_8320 } else { c >> 1 };
        }
    }
    !c
}

/// Why the server turned a connection (or its byte stream) away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusedReason {
    /// The server is at its configured connection limit.
    AtCapacity,
    /// The server is draining for shutdown and accepts no new
    /// connections.
    Draining,
    /// The byte stream violated the protocol; the diagnostic carries
    /// the decode error.
    Protocol,
}

impl RefusedReason {
    fn to_byte(self) -> u8 {
        match self {
            RefusedReason::AtCapacity => 0,
            RefusedReason::Draining => 1,
            RefusedReason::Protocol => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(RefusedReason::AtCapacity),
            1 => Some(RefusedReason::Draining),
            2 => Some(RefusedReason::Protocol),
            _ => None,
        }
    }
}

/// A value that can cross the wire: the aggregation payload of the
/// store's [`Semigroup`]. Implemented for the primitive value types the
/// repo's semigroups use (`u64` for Count/Sum/MaxWeight, `u32` for
/// MinId); a custom semigroup joins the network stack by implementing
/// it for its `Val`.
pub trait WireValue: Sized {
    /// Append the little-endian encoding of `self`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Bounds-checked decode; `None` on truncation.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl WireValue for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl WireValue for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.u32()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a payload with bounds-checked little-endian reads.
/// Public so [`WireValue`] implementations outside this crate can
/// decode their value bytes; every accessor returns `None` instead of
/// reading past the buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Next little-endian u32.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Next little-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Next little-endian i64.
    pub fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
}

/// Wrap `payload` in a frame (length prefix + checksum).
fn frame(payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn header(tag: u8) -> Vec<u8> {
    vec![PROTO_VERSION, tag]
}

/// Encode the per-connection Hello frame the server sends on accept.
pub fn encode_hello(dim: u8, queue_capacity: u64) -> Vec<u8> {
    let mut p = header(MSG_HELLO);
    p.push(dim);
    put_u64(&mut p, queue_capacity);
    frame(p)
}

/// Encode a typed refusal frame (terminal for its connection).
pub fn encode_refused(reason: RefusedReason, detail: &str) -> Vec<u8> {
    let mut p = header(MSG_REFUSED);
    p.push(reason.to_byte());
    put_u32(&mut p, detail.len() as u32);
    p.extend_from_slice(detail.as_bytes());
    frame(p)
}

fn put_rect<const D: usize>(out: &mut Vec<u8>, q: &Rect<D>) {
    for c in &q.lo {
        out.extend_from_slice(&c.to_le_bytes());
    }
    for c in &q.hi {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

fn put_rects<const D: usize>(out: &mut Vec<u8>, qs: &[Rect<D>]) {
    put_u32(out, qs.len() as u32);
    for q in qs {
        put_rect(out, q);
    }
}

/// Encode a request frame under correlation id `req_id`.
pub fn encode_request<S: Semigroup, const D: usize>(req_id: u64, req: &Request<S, D>) -> Vec<u8> {
    let mut p = header(MSG_REQUEST);
    put_u64(&mut p, req_id);
    match req.queue_deadline() {
        Some(d) => {
            p.push(1);
            put_u64(&mut p, d.as_micros() as u64);
        }
        None => p.push(0),
    }
    match req.read_consistency() {
        Consistency::Latest => p.push(0),
        Consistency::AtLeast(seq) => {
            p.push(1);
            put_u64(&mut p, seq);
        }
    }
    put_u32(&mut p, req.writes() as u32);
    for w in req.write_ops() {
        match w {
            WriteOp::Insert(pts) => {
                p.push(0);
                put_u32(&mut p, pts.len() as u32);
                for pt in pts {
                    put_u32(&mut p, pt.id);
                    put_u64(&mut p, pt.weight);
                    for c in &pt.coords {
                        p.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
            WriteOp::Delete(ids) => {
                p.push(1);
                put_u32(&mut p, ids.len() as u32);
                for id in ids {
                    put_u32(&mut p, *id);
                }
            }
        }
    }
    put_rects(&mut p, req.count_queries());
    put_rects(&mut p, req.aggregate_queries());
    put_rects(&mut p, req.report_queries());
    frame(p)
}

fn take_rect<const D: usize>(r: &mut Reader<'_>) -> Option<Rect<D>> {
    let mut lo = [0i64; D];
    for c in &mut lo {
        *c = r.i64()?;
    }
    let mut hi = [0i64; D];
    for c in &mut hi {
        *c = r.i64()?;
    }
    Some(Rect { lo, hi })
}

/// Sanity-check an untrusted element count against the bytes that
/// remain: `n` elements of at least `min_size` bytes each cannot decode
/// from fewer than `n * min_size` remaining bytes.
fn check_count(r: &Reader<'_>, n: usize, min_size: usize, what: &str) -> Result<(), String> {
    if n.saturating_mul(min_size) > r.remaining() {
        return Err(format!("{what} count {n} exceeds payload"));
    }
    Ok(())
}

fn take_rects<const D: usize>(r: &mut Reader<'_>, what: &str) -> Result<Vec<Rect<D>>, String> {
    let n = r.u32().ok_or_else(|| format!("truncated {what} count"))? as usize;
    check_count(r, n, 16 * D, what)?;
    let mut qs = Vec::with_capacity(n);
    for _ in 0..n {
        qs.push(take_rect(r).ok_or_else(|| format!("truncated {what} rect"))?);
    }
    Ok(qs)
}

fn expect_header(r: &mut Reader<'_>, tag: u8, what: &str) -> Result<(), String> {
    let version = r.u8().ok_or("payload shorter than version byte")?;
    if version != PROTO_VERSION {
        return Err(format!("unsupported protocol version {version}"));
    }
    let got = r.u8().ok_or("payload shorter than message tag")?;
    if got != tag {
        return Err(format!("expected a {what} message, got tag {got}"));
    }
    Ok(())
}

/// Decode a request payload into the correlation id and a rebuilt
/// [`Request`]. Rejects anything that is not a structurally complete,
/// non-empty request — including trailing bytes, which on a framed
/// stream can only mean corruption the checksum missed.
pub fn decode_request<S: Semigroup, const D: usize>(
    payload: &[u8],
) -> Result<(u64, Request<S, D>), String> {
    let mut r = Reader::new(payload);
    expect_header(&mut r, MSG_REQUEST, "request")?;
    let req_id = r.u64().ok_or("truncated request id")?;
    let mut req = Request::new();
    match r.u8().ok_or("truncated deadline flag")? {
        0 => {}
        1 => {
            let us = r.u64().ok_or("truncated deadline")?;
            req.deadline(Some(Duration::from_micros(us)));
        }
        b => return Err(format!("bad deadline flag {b}")),
    }
    match r.u8().ok_or("truncated consistency tag")? {
        0 => {}
        1 => {
            let seq = r.u64().ok_or("truncated consistency bound")?;
            req.consistency(Consistency::AtLeast(seq));
        }
        b => return Err(format!("bad consistency tag {b}")),
    }
    let nw = r.u32().ok_or("truncated write count")? as usize;
    check_count(&r, nw, 5, "write")?;
    for _ in 0..nw {
        match r.u8().ok_or("truncated write kind")? {
            0 => {
                let n = r.u32().ok_or("truncated insert count")? as usize;
                check_count(&r, n, 12 + 8 * D, "insert point")?;
                let mut pts = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u32().ok_or("truncated insert id")?;
                    let weight = r.u64().ok_or("truncated insert weight")?;
                    let mut coords = [0i64; D];
                    for c in &mut coords {
                        *c = r.i64().ok_or("truncated insert coord")?;
                    }
                    pts.push(Point::weighted(coords, id, weight));
                }
                req.insert(pts);
            }
            1 => {
                let n = r.u32().ok_or("truncated delete count")? as usize;
                check_count(&r, n, 4, "delete id")?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32().ok_or("truncated delete id")?);
                }
                req.delete(ids);
            }
            b => return Err(format!("bad write kind {b}")),
        }
    }
    for q in take_rects::<D>(&mut r, "count")? {
        req.count(q);
    }
    for q in take_rects::<D>(&mut r, "aggregate")? {
        req.aggregate(q);
    }
    for q in take_rects::<D>(&mut r, "report")? {
        req.report(q);
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", r.remaining()));
    }
    if req.is_empty() {
        // Submitting an empty request is a caller-side contract panic;
        // bytes claiming one are a protocol error, never a panic.
        return Err("empty request".into());
    }
    Ok((req_id, req))
}

fn put_service_error(out: &mut Vec<u8>, e: &ServiceError) {
    match e {
        ServiceError::DeadlineExpired => out.push(0),
        ServiceError::ShuttingDown => out.push(1),
        ServiceError::Machine(msg) => {
            out.push(2);
            put_u32(out, msg.len() as u32);
            out.extend_from_slice(msg.as_bytes());
        }
        ServiceError::Rejected(b) => {
            out.push(3);
            match b {
                BuildError::Empty => out.push(0),
                BuildError::DuplicateId(id) => {
                    out.push(1);
                    put_u32(out, *id);
                }
                BuildError::ReservedId => out.push(2),
            }
        }
        ServiceError::Consistency { required, committed } => {
            out.push(4);
            put_u64(out, *required);
            put_u64(out, *committed);
        }
    }
}

fn take_service_error(r: &mut Reader<'_>) -> Result<ServiceError, String> {
    match r.u8().ok_or("truncated error tag")? {
        0 => Ok(ServiceError::DeadlineExpired),
        1 => Ok(ServiceError::ShuttingDown),
        2 => {
            let n = r.u32().ok_or("truncated machine-error length")? as usize;
            let bytes = r.take(n).ok_or("truncated machine-error message")?;
            Ok(ServiceError::Machine(String::from_utf8_lossy(bytes).into_owned()))
        }
        3 => match r.u8().ok_or("truncated rejection tag")? {
            0 => Ok(ServiceError::Rejected(BuildError::Empty)),
            1 => {
                let id = r.u32().ok_or("truncated duplicate id")?;
                Ok(ServiceError::Rejected(BuildError::DuplicateId(id)))
            }
            2 => Ok(ServiceError::Rejected(BuildError::ReservedId)),
            b => Err(format!("bad rejection tag {b}")),
        },
        4 => {
            let required = r.u64().ok_or("truncated consistency bound")?;
            let committed = r.u64().ok_or("truncated commit count")?;
            Ok(ServiceError::Consistency { required, committed })
        }
        b => Err(format!("bad error tag {b}")),
    }
}

/// Encode a response frame for `req_id`: the request's whole outcome —
/// committed response or service error — exactly as a local backend
/// would resolve the ticket.
pub fn encode_response<S: Semigroup>(req_id: u64, out: &Outcome<Response<S>>) -> Vec<u8>
where
    S::Val: WireValue,
{
    let mut p = header(MSG_RESPONSE);
    put_u64(&mut p, req_id);
    match out {
        Ok(c) => {
            p.push(0);
            put_u64(&mut p, c.seq);
            put_u32(&mut p, c.value.counts.len() as u32);
            for n in &c.value.counts {
                put_u64(&mut p, *n);
            }
            put_u32(&mut p, c.value.aggregates.len() as u32);
            for a in &c.value.aggregates {
                match a {
                    Some(v) => {
                        p.push(1);
                        v.encode(&mut p);
                    }
                    None => p.push(0),
                }
            }
            put_u32(&mut p, c.value.reports.len() as u32);
            for ids in &c.value.reports {
                put_u32(&mut p, ids.len() as u32);
                for id in ids {
                    put_u32(&mut p, *id);
                }
            }
            put_u32(&mut p, c.value.writes.len() as u32);
            for w in &c.value.writes {
                match w {
                    Ok(()) => p.push(0),
                    Err(e) => {
                        p.push(1);
                        put_service_error(&mut p, e);
                    }
                }
            }
        }
        Err(e) => {
            p.push(1);
            put_service_error(&mut p, e);
        }
    }
    frame(p)
}

fn take_response<S: Semigroup>(r: &mut Reader<'_>) -> Result<Outcome<Response<S>>, String>
where
    S::Val: WireValue,
{
    match r.u8().ok_or("truncated outcome tag")? {
        0 => {
            let seq = r.u64().ok_or("truncated commit seq")?;
            let nc = r.u32().ok_or("truncated count-result count")? as usize;
            check_count(r, nc, 8, "count result")?;
            let mut counts = Vec::with_capacity(nc);
            for _ in 0..nc {
                counts.push(r.u64().ok_or("truncated count result")?);
            }
            let na = r.u32().ok_or("truncated aggregate-result count")? as usize;
            check_count(r, na, 1, "aggregate result")?;
            let mut aggregates = Vec::with_capacity(na);
            for _ in 0..na {
                aggregates.push(match r.u8().ok_or("truncated aggregate flag")? {
                    0 => None,
                    1 => Some(S::Val::decode(r).ok_or("truncated aggregate value")?),
                    b => return Err(format!("bad aggregate flag {b}")),
                });
            }
            let nr = r.u32().ok_or("truncated report-result count")? as usize;
            check_count(r, nr, 4, "report result")?;
            let mut reports = Vec::with_capacity(nr);
            for _ in 0..nr {
                let n = r.u32().ok_or("truncated report length")? as usize;
                check_count(r, n, 4, "report id")?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32().ok_or("truncated report id")?);
                }
                reports.push(ids);
            }
            let nw = r.u32().ok_or("truncated verdict count")? as usize;
            check_count(r, nw, 1, "verdict")?;
            let mut writes = Vec::with_capacity(nw);
            for _ in 0..nw {
                writes.push(match r.u8().ok_or("truncated verdict")? {
                    0 => Ok(()),
                    1 => Err(take_service_error(r)?),
                    b => return Err(format!("bad verdict tag {b}")),
                });
            }
            Ok(Ok(Commit { value: Response { counts, aggregates, reports, writes }, seq }))
        }
        1 => Ok(Err(take_service_error(r)?)),
        b => Err(format!("bad outcome tag {b}")),
    }
}

/// A decoded server→client message.
pub enum ServerMsg<S: Semigroup> {
    /// The per-connection handshake.
    Hello {
        /// The server store's dimension, for cross-checking against the
        /// client's `D`.
        dim: u8,
        /// The server's advertised queue capacity; the remote client
        /// enforces admission against it locally.
        queue_capacity: u64,
    },
    /// A typed refusal; terminal for the connection.
    Refused {
        /// Why the server turned the connection away.
        reason: RefusedReason,
        /// Human-readable diagnostic.
        detail: String,
    },
    /// The outcome of one request.
    Response {
        /// Correlation id echoed from the request.
        req_id: u64,
        /// The request's outcome, exactly as a local ticket would
        /// resolve.
        outcome: Outcome<Response<S>>,
    },
}

/// Decode one server→client payload.
pub fn decode_server_msg<S: Semigroup>(payload: &[u8]) -> Result<ServerMsg<S>, String>
where
    S::Val: WireValue,
{
    let mut r = Reader::new(payload);
    let version = r.u8().ok_or("payload shorter than version byte")?;
    if version != PROTO_VERSION {
        return Err(format!("unsupported protocol version {version}"));
    }
    let msg = match r.u8().ok_or("payload shorter than message tag")? {
        MSG_HELLO => {
            let dim = r.u8().ok_or("truncated hello dimension")?;
            let queue_capacity = r.u64().ok_or("truncated hello capacity")?;
            ServerMsg::Hello { dim, queue_capacity }
        }
        MSG_REFUSED => {
            let reason = r.u8().and_then(RefusedReason::from_byte).ok_or("bad refusal reason")?;
            let n = r.u32().ok_or("truncated refusal length")? as usize;
            let bytes = r.take(n).ok_or("truncated refusal detail")?;
            ServerMsg::Refused { reason, detail: String::from_utf8_lossy(bytes).into_owned() }
        }
        MSG_RESPONSE => {
            let req_id = r.u64().ok_or("truncated response id")?;
            ServerMsg::Response { req_id, outcome: take_response::<S>(&mut r)? }
        }
        b => return Err(format!("unexpected message tag {b}")),
    };
    if r.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", r.remaining()));
    }
    Ok(msg)
}

/// A failure while pulling one frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (including read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut` io errors).
    Io(std::io::Error),
    /// The bytes violated the framing (truncated header/payload,
    /// over-cap length, checksum mismatch). Terminal for the stream.
    Protocol(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport failure: {e}"),
            FrameError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

/// Read exactly one frame off `stream` and verify its checksum.
/// `Ok(None)` is a clean end-of-stream on a frame boundary; EOF
/// anywhere else is a [`FrameError::Protocol`].
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut hdr = [0u8; FRAME_HEADER];
    let mut got = 0usize;
    while got < FRAME_HEADER {
        match stream.read(&mut hdr[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Protocol("truncated frame header".into()))
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Protocol(format!("frame length {len} exceeds cap")));
    }
    let stored_crc = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]);
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        match stream.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Protocol("truncated frame payload".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if crc32(&payload) != stored_crc {
        return Err(FrameError::Protocol("frame checksum mismatch".into()));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_rangetree::Sum;

    fn sample_request() -> Request<Sum, 2> {
        let mut req = Request::new();
        req.insert(vec![Point::weighted([3, 4], 7, 2), Point::weighted([5, 6], 8, 1)]);
        req.delete(vec![1, 2]);
        req.count(Rect::new([0, 0], [10, 10]));
        req.aggregate(Rect::new([1, 1], [9, 9]));
        req.report(Rect::new([2, 2], [8, 8]));
        req.deadline(Some(Duration::from_millis(250)));
        req.consistency(Consistency::AtLeast(41));
        req
    }

    #[test]
    fn request_roundtrips() {
        let req = sample_request();
        let frame = encode_request(99, &req);
        let (id, back) =
            decode_request::<Sum, 2>(&frame[FRAME_HEADER..]).expect("roundtrip decodes");
        assert_eq!(id, 99);
        assert_eq!(back.count_queries(), req.count_queries());
        assert_eq!(back.aggregate_queries(), req.aggregate_queries());
        assert_eq!(back.report_queries(), req.report_queries());
        assert_eq!(back.queue_deadline(), req.queue_deadline());
        assert_eq!(back.read_consistency(), req.read_consistency());
        assert_eq!(back.writes(), req.writes());
        assert!(back.write_ops().eq(req.write_ops()));
    }

    #[test]
    fn response_roundtrips_both_arms() {
        let resp: Response<Sum> = Response {
            counts: vec![4, 0],
            aggregates: vec![Some(17), None],
            reports: vec![vec![1, 2, 3]],
            writes: vec![Ok(()), Err(ServiceError::Rejected(BuildError::DuplicateId(7)))],
        };
        let frame = encode_response::<Sum>(5, &Ok(Commit { value: resp, seq: 12 }));
        let ServerMsg::Response { req_id, outcome } =
            decode_server_msg::<Sum>(&frame[FRAME_HEADER..]).expect("decodes")
        else {
            panic!("expected a response message");
        };
        assert_eq!(req_id, 5);
        let commit = outcome.expect("committed arm");
        assert_eq!(commit.seq, 12);
        assert_eq!(commit.value.counts, vec![4, 0]);
        assert_eq!(commit.value.aggregates, vec![Some(17), None]);
        assert_eq!(commit.value.reports, vec![vec![1, 2, 3]]);
        assert_eq!(
            commit.value.writes,
            vec![Ok(()), Err(ServiceError::Rejected(BuildError::DuplicateId(7)))]
        );

        let frame = encode_response::<Sum>(
            6,
            &Err(ServiceError::Consistency { required: 9, committed: 3 }),
        );
        let ServerMsg::Response { outcome, .. } =
            decode_server_msg::<Sum>(&frame[FRAME_HEADER..]).expect("decodes")
        else {
            panic!("expected a response message");
        };
        assert_eq!(outcome, Err(ServiceError::Consistency { required: 9, committed: 3 }));
    }

    #[test]
    fn hello_and_refused_roundtrip() {
        let frame = encode_hello(2, 4096);
        match decode_server_msg::<Sum>(&frame[FRAME_HEADER..]).expect("decodes") {
            ServerMsg::Hello { dim, queue_capacity } => {
                assert_eq!((dim, queue_capacity), (2, 4096));
            }
            _ => panic!("expected hello"),
        }
        let frame = encode_refused(RefusedReason::AtCapacity, "16 of 16 connections in use");
        match decode_server_msg::<Sum>(&frame[FRAME_HEADER..]).expect("decodes") {
            ServerMsg::Refused { reason, detail } => {
                assert_eq!(reason, RefusedReason::AtCapacity);
                assert!(detail.contains("16"));
            }
            _ => panic!("expected refusal"),
        }
    }

    #[test]
    fn empty_request_is_a_decode_error_not_a_panic() {
        let req: Request<Sum, 2> = Request::new();
        let frame = encode_request(1, &req);
        let err = decode_request::<Sum, 2>(&frame[FRAME_HEADER..]).unwrap_err();
        assert!(err.contains("empty"), "got: {err}");
    }

    #[test]
    fn read_frame_detects_corruption_and_clean_eof() {
        let frame = encode_hello(2, 64);
        let mut cursor = std::io::Cursor::new(frame.clone());
        assert!(read_frame(&mut cursor).expect("valid frame").is_some());
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());

        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        let mut cursor = std::io::Cursor::new(bad);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Protocol(_))));

        let mut torn = frame;
        torn.truncate(FRAME_HEADER + 2);
        let mut cursor = std::io::Cursor::new(torn);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Protocol(_))));
    }
}
