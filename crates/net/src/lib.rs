//! `ddrs-net` — the TCP network front-end for the range store.
//!
//! Everything below this crate speaks [`RangeStore`]: one `submit`
//! taking a multi-op [`Request`](ddrs_client::Request) and returning a
//! [`Ticket`](ddrs_client::Ticket). This crate carries that exact
//! contract across a socket, dependency-free, on `std::net`:
//!
//! * [`codec`] — a hand-rolled, length-prefixed, CRC-framed binary
//!   protocol (the same framing discipline as the WAL: decode never
//!   trusts a length, never panics, never reads past a buffer);
//! * [`NetServer`] — an accept loop plus a reader/writer thread pair
//!   per connection, resolving responses **out of order** through
//!   ticket callbacks and re-correlating them by request id, with
//!   connection limits, read deadlines, and a graceful drain that
//!   flushes every in-flight response before closing;
//! * [`RemoteStore`] — a pooled, pipelining client that implements
//!   [`RangeStore`] itself, so a served store is a drop-in backend:
//!   the differential proptest runs over loopback unchanged, down to
//!   absolute commit sequence numbers.
//!
//! # Tracing
//!
//! A networked request reports under **two spans**: the client-side
//! ticket's span carries `encode` (request serialization), `transport`
//! (socket round trip, measured send-to-receive), and `decode`
//! (response deserialization); the server-side store ticket's span
//! carries the usual queue/window/run/merge/resolve stages plus its
//! own `decode` (request) and `encode` (response) bookends.
//!
//! # Lock discipline
//!
//! All shared state on both sides lives in `net.conn`-class
//! [`TrackedMutex`](ddrs_check::TrackedMutex)es (the server's
//! connection registry, the client's per-connection pending map and
//! write half), ranked below the ticket locks in the canonical order
//! and never held across a `submit` or a resolve.

pub mod codec;

mod client;
mod server;
mod stats;

pub use client::{NetError, RemoteConfig, RemoteStore};
pub use codec::{RefusedReason, WireValue};
pub use server::{NetConfig, NetServer};
pub use stats::NetStats;

// Re-exported so examples and tests can name the contract without a
// second import; `RangeStore` is the trait both sides implement against.
pub use ddrs_client::RangeStore;

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_cgm::Machine;
    use ddrs_client::{InlineStore, Request};
    use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};

    fn inline_store() -> InlineStore<Sum, 2> {
        let machine = Machine::new(1).unwrap();
        let mut tree = DynamicDistRangeTree::<2>::new(8);
        tree.insert_batch(
            &machine,
            &[Point::weighted([1, 1], 1, 10), Point::weighted([5, 5], 2, 20)],
        )
        .unwrap();
        InlineStore::new(machine, tree, Sum)
    }

    #[test]
    fn round_trip_over_loopback() {
        let server =
            NetServer::serve(Box::new(inline_store()), "127.0.0.1:0", NetConfig::default())
                .unwrap();
        let store: RemoteStore<Sum, 2> =
            RemoteStore::connect(server.local_addr(), RemoteConfig::default()).unwrap();

        let mut req = Request::new();
        let w = req.insert(vec![Point::weighted([3, 3], 3, 5)]);
        let c = req.count(Rect::new([0, 0], [10, 10]));
        let a = req.aggregate(Rect::new([0, 0], [4, 4]));
        let r = req.report(Rect::new([0, 0], [10, 10]));
        let commit = store.submit(req).unwrap().wait().unwrap();
        assert_eq!(commit.value.write(w), &Ok(()));
        assert_eq!(commit.value.count(c), 3);
        assert_eq!(commit.value.aggregate(a), &Some(15));
        assert_eq!(commit.value.report(r), &[1, 2, 3]);

        let stats = server.stats();
        assert_eq!(stats.accepted, 2); // default pool of 2 connections
        assert_eq!(stats.requests, 1);
        drop(store);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_resolve_out_of_order_safely() {
        let server =
            NetServer::serve(Box::new(inline_store()), "127.0.0.1:0", NetConfig::default())
                .unwrap();
        let store: RemoteStore<Sum, 2> =
            RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();

        let tickets: Vec<_> = (0..16)
            .map(|i| {
                let mut req = Request::new();
                let c = req.count(Rect::new([0, 0], [10, 10]));
                if i % 3 == 0 {
                    req.insert(vec![Point::weighted([i, i], 100 + i as u32, 1)]);
                }
                (c, store.submit(req).unwrap())
            })
            .collect();
        let mut last_seq = None;
        for (c, t) in tickets {
            let commit = t.wait().unwrap();
            assert!(commit.value.count(c) >= 2);
            if let Some(prev) = last_seq {
                assert!(commit.seq > prev, "seqs advance in submit order on one connection");
            }
            last_seq = Some(commit.seq);
        }
        assert_eq!(store.inflight(), 0);
        drop(store);
        server.shutdown();
    }

    #[test]
    fn dimension_mismatch_is_refused_at_connect() {
        let server =
            NetServer::serve(Box::new(inline_store()), "127.0.0.1:0", NetConfig::default())
                .unwrap();
        let err = RemoteStore::<Sum, 3>::connect(server.local_addr(), RemoteConfig::default())
            .unwrap_err();
        assert!(matches!(err, NetError::DimensionMismatch { server: 2, client: 3 }));
        server.shutdown();
    }
}
