//! CSV export of experiment measurements.
//!
//! The `repro` harness prints tables; for plotting or regression-tracking
//! the same data is more useful as CSV. This module is a tiny,
//! dependency-free writer for the record shapes the experiments produce.

use std::fmt::Write as _;

/// A rectangular measurement table destined for CSV.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (RFC-4180 quoting for fields containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |f: &str| -> String {
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_csv() {
        let mut t = CsvTable::new(&["p", "rounds", "h"]);
        t.push_row(vec!["2".into(), "10".into(), "114681".into()]);
        t.push_row(vec!["4".into(), "10".into(), "172032".into()]);
        assert_eq!(t.to_csv(), "p,rounds,h\n2,10,114681\n4,10,172032\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn escapes_delicate_fields() {
        let mut t = CsvTable::new(&["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn roundtrips_to_disk() {
        let mut t = CsvTable::new(&["x"]);
        t.push_row(vec!["7".into()]);
        let path = std::env::temp_dir().join("ddrs_trace_test.csv");
        t.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n7\n");
        let _ = std::fs::remove_file(&path);
    }
}
