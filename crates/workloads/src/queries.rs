//! Range-query workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ddrs_rangetree::{Point, Rect};

/// Shape of the query mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryDistribution {
    /// Boxes with corners uniform over the data's bounding box, side
    /// lengths chosen for the target selectivity under a uniform data
    /// assumption.
    Selectivity {
        /// Desired fraction of the point set matched per query (0..=1).
        fraction: f64,
    },
    /// All queries concentrated inside one small region of space — every
    /// search path funnels into the same few forest trees, the workload
    /// the paper's congestion-copying mechanism (`c_j` copies) exists for.
    HotSpot {
        /// Fraction of the domain covered by the hot region (per axis).
        region: f64,
        /// Query side as a fraction of the hot region (per axis).
        fraction: f64,
    },
    /// Degenerate boxes probing single coordinates (point queries).
    PointProbe,
    /// Half-open slabs: full range in every dimension except one, which
    /// gets a thin band. Exercises high-fanout hat splits.
    Slab {
        /// Dimension that is constrained.
        dim: usize,
        /// Band width as a fraction of that dimension's extent.
        fraction: f64,
    },
}

/// Query mode of one entry in a mixed-mode workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Range counting.
    Count,
    /// Associative-function (semigroup) aggregation.
    Aggregate,
    /// Report (enumerate matching ids).
    Report,
}

/// One query of a mixed-mode batch: a box plus the mode it should be
/// served in. Produced by [`QueryWorkload::mixed`] and consumed by the
/// engine's `QueryBatch` (or the per-mode APIs, for comparison runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedQuery<const D: usize> {
    /// The query mode.
    pub mode: QueryMode,
    /// The query box.
    pub rect: Rect<D>,
}

/// Seeded query-workload generator over a concrete point set's bounding
/// box.
#[derive(Debug, Clone)]
pub struct QueryWorkload<const D: usize> {
    lo: [i64; D],
    hi: [i64; D],
    seed: u64,
}

impl<const D: usize> QueryWorkload<D> {
    /// Derive the generator domain from the point set's bounding box.
    pub fn from_points(pts: &[Point<D>], seed: u64) -> Self {
        assert!(!pts.is_empty());
        let mut lo = [i64::MAX; D];
        let mut hi = [i64::MIN; D];
        for p in pts {
            for j in 0..D {
                lo[j] = lo[j].min(p.coords[j]);
                hi[j] = hi[j].max(p.coords[j]);
            }
        }
        QueryWorkload { lo, hi, seed }
    }

    /// Generate `count` queries of the given distribution.
    pub fn queries(&self, dist: QueryDistribution, count: usize) -> Vec<Rect<D>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let extent = |j: usize| (self.hi[j] - self.lo[j] + 1).max(1);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let q = match dist {
                QueryDistribution::Selectivity { fraction } => {
                    let side_frac = fraction.clamp(0.0, 1.0).powf(1.0 / D as f64);
                    let mut lo = [0i64; D];
                    let mut hi = [0i64; D];
                    for j in 0..D {
                        let w = ((extent(j) as f64) * side_frac).ceil() as i64;
                        let start = self.lo[j] + rng.random_range(0..(extent(j) - w + 1).max(1));
                        lo[j] = start;
                        hi[j] = start + w - 1;
                    }
                    Rect::new(lo, hi)
                }
                QueryDistribution::HotSpot { region, fraction } => {
                    let mut lo = [0i64; D];
                    let mut hi = [0i64; D];
                    for j in 0..D {
                        let reg = ((extent(j) as f64) * region.clamp(0.0, 1.0)).ceil() as i64;
                        let w = ((reg as f64) * fraction.clamp(0.0, 1.0)).ceil().max(1.0) as i64;
                        let start = self.lo[j] + rng.random_range(0..(reg - w + 1).max(1));
                        lo[j] = start;
                        hi[j] = start + w - 1;
                    }
                    Rect::new(lo, hi)
                }
                QueryDistribution::PointProbe => {
                    let mut c = [0i64; D];
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = self.lo[j] + rng.random_range(0..extent(j));
                    }
                    Rect::new(c, c)
                }
                QueryDistribution::Slab { dim, fraction } => {
                    let mut lo = self.lo;
                    let mut hi = self.hi;
                    let j = dim % D;
                    let w = ((extent(j) as f64) * fraction.clamp(0.0, 1.0)).ceil().max(1.0) as i64;
                    let start = self.lo[j] + rng.random_range(0..(extent(j) - w + 1).max(1));
                    lo[j] = start;
                    hi[j] = start + w - 1;
                    Rect::new(lo, hi)
                }
            };
            out.push(q);
        }
        out
    }

    /// Generate a mixed-mode batch: `count` queries of the given spatial
    /// distribution, with modes drawn by the (relative, not necessarily
    /// normalised) weights `(count, aggregate, report)`. Deterministic in
    /// the workload seed; at least one weight must be non-zero.
    pub fn mixed(
        &self,
        dist: QueryDistribution,
        weights: (u32, u32, u32),
        count: usize,
    ) -> Vec<MixedQuery<D>> {
        let (wc, wa, wr) = weights;
        let total = wc + wa + wr;
        assert!(total > 0, "mixed workload needs at least one non-zero mode weight");
        // Modes come from a derived stream so the boxes are identical to
        // the plain `queries(dist, count)` batch — per-mode comparison
        // runs see the same spatial workload.
        let mut mode_rng = StdRng::seed_from_u64(self.seed ^ 0x6d69_7865_645f_6d6f);
        self.queries(dist, count)
            .into_iter()
            .map(|rect| {
                let roll = mode_rng.random_range(0..total);
                let mode = if roll < wc {
                    QueryMode::Count
                } else if roll < wc + wa {
                    QueryMode::Aggregate
                } else {
                    QueryMode::Report
                };
                MixedQuery { mode, rect }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::{PointDistribution, WorkloadBuilder};

    fn setup() -> (Vec<Point<2>>, QueryWorkload<2>) {
        let pts = WorkloadBuilder::new(11, 2000)
            .points::<2>(PointDistribution::UniformCube { side: 1 << 16 });
        let w = QueryWorkload::from_points(&pts, 42);
        (pts, w)
    }

    #[test]
    fn selectivity_calibration_is_approximate() {
        let (pts, w) = setup();
        for target in [0.01, 0.1, 0.4] {
            let qs = w.queries(QueryDistribution::Selectivity { fraction: target }, 50);
            let mean: f64 =
                qs.iter().map(|q| pts.iter().filter(|p| q.contains(p)).count() as f64).sum::<f64>()
                    / (qs.len() as f64 * pts.len() as f64);
            assert!(mean > target / 4.0 && mean < target * 4.0, "target {target}, measured {mean}");
        }
    }

    #[test]
    fn hotspot_queries_stay_in_region() {
        let (_, w) = setup();
        let qs = w.queries(QueryDistribution::HotSpot { region: 0.1, fraction: 0.5 }, 100);
        for q in &qs {
            for j in 0..2 {
                let extent = w.hi[j] - w.lo[j] + 1;
                assert!(q.hi[j] <= w.lo[j] + extent / 5, "query escapes hot region: {q:?}");
            }
        }
    }

    #[test]
    fn point_probes_are_degenerate() {
        let (_, w) = setup();
        for q in w.queries(QueryDistribution::PointProbe, 20) {
            assert_eq!(q.lo, q.hi);
        }
    }

    #[test]
    fn slab_constrains_one_dimension() {
        let (_, w) = setup();
        for q in w.queries(QueryDistribution::Slab { dim: 1, fraction: 0.05 }, 20) {
            assert_eq!(q.lo[0], w.lo[0]);
            assert_eq!(q.hi[0], w.hi[0]);
            assert!(q.hi[1] - q.lo[1] < (w.hi[1] - w.lo[1]) / 10);
        }
    }

    #[test]
    fn mixed_batches_are_deterministic_and_weighted() {
        let (_, w) = setup();
        let dist = QueryDistribution::Selectivity { fraction: 0.05 };
        let a = w.mixed(dist, (2, 1, 1), 400);
        let b = w.mixed(dist, (2, 1, 1), 400);
        assert_eq!(a, b, "same seed, same batch");
        // The boxes match the plain batch (modes only re-tag them).
        let plain = w.queries(dist, 400);
        assert!(a.iter().zip(&plain).all(|(m, q)| m.rect == *q));
        let n_count = a.iter().filter(|m| m.mode == QueryMode::Count).count();
        let n_agg = a.iter().filter(|m| m.mode == QueryMode::Aggregate).count();
        let n_rep = a.iter().filter(|m| m.mode == QueryMode::Report).count();
        assert_eq!(n_count + n_agg + n_rep, 400);
        // Weight 2:1:1 → roughly half the queries are counts.
        assert!(n_count > 120 && n_count < 280, "counts: {n_count}");
        assert!(n_agg > 40 && n_rep > 40, "agg: {n_agg}, rep: {n_rep}");
    }

    #[test]
    fn deterministic_by_seed() {
        let (pts, _) = setup();
        let a = QueryWorkload::from_points(&pts, 5)
            .queries(QueryDistribution::Selectivity { fraction: 0.1 }, 10);
        let b = QueryWorkload::from_points(&pts, 5)
            .queries(QueryDistribution::Selectivity { fraction: 0.1 }, 10);
        assert_eq!(a, b);
    }
}
