//! Open-loop traffic generation for the serving layer.
//!
//! Closed-loop drivers (each client waits for its answer before sending
//! the next request) can never expose queueing behaviour: offered load
//! collapses to match service capacity. The serving front-end's
//! micro-batching, admission control and latency tails only show up under
//! an **open-loop** arrival process, where requests arrive on their own
//! schedule regardless of completions. This module generates such
//! schedules — Poisson (memoryless) and bursty on/off arrivals — plus a
//! mixed read/write request stream to ride on them. Everything is seeded
//! and deterministic, so service tests and benches are reproducible.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ddrs_client::{RangeStore, SubmitError, Ticket};
use ddrs_rangetree::{Point, Semigroup};

use crate::queries::{MixedQuery, QueryDistribution, QueryMode, QueryWorkload};

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival times with the
    /// given mean rate.
    Poisson {
        /// Mean arrival rate in requests per second (> 0).
        rate_hz: f64,
    },
    /// On/off bursts: Poisson arrivals at `rate_hz` during `on` windows,
    /// silence during `off` windows. The duty cycle repeats; arrivals
    /// falling into an off window are deferred to the next on window,
    /// producing the synchronized request floods that stress admission
    /// control.
    Bursty {
        /// Arrival rate inside an on window, in requests per second (> 0).
        rate_hz: f64,
        /// Length of each on window (> 0).
        on: Duration,
        /// Length of each off window.
        off: Duration,
    },
}

/// A deterministic open-loop arrival schedule: non-decreasing offsets
/// from the trace start.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Arrival instants as offsets from the trace start, non-decreasing.
    pub at: Vec<Duration>,
}

/// A uniform sample in `[0, 1)` from the raw generator (53 mantissa bits).
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One exponential inter-arrival time (seconds) at the given rate.
fn exp_interval(rng: &mut StdRng, rate_hz: f64) -> f64 {
    // Inverse CDF; 1 - u is in (0, 1], so ln is finite.
    -(1.0 - unit_f64(rng)).ln() / rate_hz
}

impl ArrivalTrace {
    /// Generate `n` arrivals of the given process, deterministically in
    /// `seed`.
    pub fn generate(seed: u64, process: ArrivalProcess, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let mut at = Vec::with_capacity(n);
        match process {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!(rate_hz > 0.0, "arrival rate must be positive");
                for _ in 0..n {
                    t += exp_interval(&mut rng, rate_hz);
                    at.push(Duration::from_secs_f64(t));
                }
            }
            ArrivalProcess::Bursty { rate_hz, on, off } => {
                assert!(rate_hz > 0.0, "arrival rate must be positive");
                let (on_s, off_s) = (on.as_secs_f64(), off.as_secs_f64());
                assert!(on_s > 0.0, "on window must be non-empty");
                let period = on_s + off_s;
                // The Poisson clock only advances during on windows:
                // `window` counts completed periods, `w` is the offset
                // inside the current on window (strictly < on_s), so
                // every arrival lands inside an on window by
                // construction.
                let mut window = 0u64;
                let mut w = 0.0f64;
                for _ in 0..n {
                    w += exp_interval(&mut rng, rate_hz);
                    while w >= on_s {
                        w -= on_s;
                        window += 1;
                    }
                    at.push(Duration::from_secs_f64(window as f64 * period + w));
                }
            }
        }
        ArrivalTrace { at }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// True when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Time of the last arrival (zero for an empty trace).
    pub fn span(&self) -> Duration {
        self.at.last().copied().unwrap_or(Duration::ZERO)
    }

    /// Realised mean arrival rate over the trace span, in requests per
    /// second (0 for traces shorter than two arrivals).
    pub fn mean_rate_hz(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.at.len() as f64 / span
        }
    }
}

/// One request of a service workload: a read in one of the three query
/// modes, or a write batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceOp<const D: usize> {
    /// A read — count, aggregate or report, per the carried mode.
    Query(MixedQuery<D>),
    /// An insert batch of fresh points.
    Insert(Vec<Point<D>>),
    /// A delete batch by id (ids may already be dead: deletes of missing
    /// ids are no-ops, as in `DynamicDistRangeTree::delete_batch`).
    Delete(Vec<u32>),
}

/// A request bound to its open-loop arrival instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOp<const D: usize> {
    /// Offset from the stream start at which the request arrives.
    pub at: Duration,
    /// The request itself.
    pub op: ServiceOp<D>,
}

/// Knobs of the mixed read/write request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMix {
    /// Relative weights of (count, aggregate, report) among reads.
    pub mode_weights: (u32, u32, u32),
    /// Every `write_every`-th request is a write (0 disables writes).
    pub write_every: usize,
    /// Points per insert / ids per delete request.
    pub write_batch: usize,
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix { mode_weights: (1, 1, 1), write_every: 0, write_batch: 0 }
    }
}

/// Build a deterministic mixed read/write request stream riding an
/// [`ArrivalTrace`].
///
/// Reads are drawn from `queries` with the mix's mode weights. When
/// writes are enabled, every `write_every`-th request alternates between
/// an insert of the next `write_batch` unconsumed points from
/// `fresh_points` (ids must be unused in the served store) and a delete
/// of `write_batch` ids sampled from the stream's own earlier inserts.
/// When `fresh_points` runs dry, would-be inserts become deletes, so the
/// write cadence is preserved. The result is deterministic in `seed`.
pub fn request_stream<const D: usize>(
    seed: u64,
    trace: &ArrivalTrace,
    queries: &QueryWorkload<D>,
    dist: QueryDistribution,
    mix: RequestMix,
    fresh_points: &[Point<D>],
) -> Vec<TimedOp<D>> {
    let n = trace.len();
    let reads = queries.mixed(dist, mix.mode_weights, n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7772_6974_655f_6d69);
    let mut fresh = fresh_points.iter();
    let mut inserted: Vec<u32> = Vec::new();
    let mut insert_turn = true;
    let mut out = Vec::with_capacity(n);
    for (i, (at, read)) in trace.at.iter().zip(reads).enumerate() {
        let is_write = mix.write_every > 0 && (i + 1) % mix.write_every == 0;
        let op = if !is_write {
            ServiceOp::Query(read)
        } else {
            let batch: Vec<Point<D>> = if insert_turn {
                fresh.by_ref().take(mix.write_batch).copied().collect()
            } else {
                Vec::new()
            };
            insert_turn = !insert_turn;
            if !batch.is_empty() {
                inserted.extend(batch.iter().map(|p| p.id));
                ServiceOp::Insert(batch)
            } else if inserted.is_empty() {
                // Nothing to delete yet either; keep it a read.
                ServiceOp::Query(read)
            } else {
                let ids = (0..mix.write_batch)
                    .map(|_| inserted[rng.random_range(0..inserted.len())])
                    .collect();
                ServiceOp::Delete(ids)
            }
        };
        out.push(TimedOp { at: *at, op });
    }
    out
}

/// Submit one [`ServiceOp`] through the unified client trait, returning
/// a ticket for a scalar summary of the response: the count, the
/// aggregate (0 when empty), the number of reported ids, or 0 for a
/// committed write.
///
/// This is the one driver every request-stream consumer shares — the
/// serving example, the benches and the repro experiments all route a
/// [`TimedOp`] stream through any [`RangeStore`] backend with it,
/// instead of re-matching the op shape per front-end.
pub fn submit_op<S, const D: usize>(
    store: &dyn RangeStore<S, D>,
    op: &ServiceOp<D>,
) -> Result<Ticket<u64>, SubmitError>
where
    S: Semigroup<Val = u64>,
{
    match op {
        ServiceOp::Query(q) => match q.mode {
            QueryMode::Count => store.count(q.rect),
            QueryMode::Aggregate => Ok(store.aggregate(q.rect)?.map(|v| v.unwrap_or(0))),
            QueryMode::Report => Ok(store.report(q.rect)?.map(|ids| ids.len() as u64)),
        },
        ServiceOp::Insert(pts) => Ok(store.insert(pts.clone())?.map(|()| 0)),
        ServiceOp::Delete(ids) => Ok(store.delete(ids.clone())?.map(|()| 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::{PointDistribution, WorkloadBuilder};

    #[test]
    fn poisson_is_deterministic_and_calibrated() {
        let p = ArrivalProcess::Poisson { rate_hz: 10_000.0 };
        let a = ArrivalTrace::generate(7, p, 5000);
        let b = ArrivalTrace::generate(7, p, 5000);
        assert_eq!(a, b, "same seed, same trace");
        assert_ne!(a, ArrivalTrace::generate(8, p, 5000));
        assert!(a.at.windows(2).all(|w| w[0] <= w[1]), "arrivals non-decreasing");
        let rate = a.mean_rate_hz();
        assert!(rate > 8_000.0 && rate < 12_000.0, "measured rate {rate}");
    }

    #[test]
    fn bursty_arrivals_respect_off_windows() {
        let on = Duration::from_millis(2);
        let off = Duration::from_millis(8);
        let tr =
            ArrivalTrace::generate(3, ArrivalProcess::Bursty { rate_hz: 20_000.0, on, off }, 2000);
        let period = (on + off).as_secs_f64();
        for t in &tr.at {
            let phase = t.as_secs_f64() % period;
            assert!(
                phase < on.as_secs_f64() + 1e-9,
                "arrival at {t:?} falls in an off window (phase {phase})"
            );
        }
        // The deferrals compress arrivals: realised rate exceeds the
        // duty-cycle average.
        assert!(tr.mean_rate_hz() > 2_000.0);
    }

    #[test]
    fn request_stream_is_deterministic_and_mixes_writes() {
        let pts = WorkloadBuilder::new(11, 512)
            .points::<2>(PointDistribution::UniformCube { side: 1 << 12 });
        let fresh = WorkloadBuilder::new(12, 256)
            .points::<2>(PointDistribution::UniformCube { side: 1 << 12 });
        // Fresh ids must not collide with the base set's.
        let fresh: Vec<Point<2>> =
            fresh.iter().map(|p| Point::weighted(p.coords, p.id + 10_000, p.weight)).collect();
        let qw = QueryWorkload::from_points(&pts, 21);
        let trace = ArrivalTrace::generate(5, ArrivalProcess::Poisson { rate_hz: 50_000.0 }, 400);
        let mix = RequestMix { mode_weights: (1, 1, 1), write_every: 10, write_batch: 4 };
        let dist = QueryDistribution::Selectivity { fraction: 0.05 };
        let a = request_stream(9, &trace, &qw, dist, mix, &fresh);
        let b = request_stream(9, &trace, &qw, dist, mix, &fresh);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 400);
        let inserts: Vec<&Vec<Point<2>>> = a
            .iter()
            .filter_map(|t| match &t.op {
                ServiceOp::Insert(pts) => Some(pts),
                _ => None,
            })
            .collect();
        let deletes: Vec<&Vec<u32>> = a
            .iter()
            .filter_map(|t| match &t.op {
                ServiceOp::Delete(ids) => Some(ids),
                _ => None,
            })
            .collect();
        let writes = inserts.len() + deletes.len();
        assert_eq!(writes, 400 / 10, "write cadence honoured");
        assert!(!inserts.is_empty() && !deletes.is_empty(), "both write kinds appear");
        // Insert ids are unique across the stream and drawn from `fresh`.
        let mut seen = std::collections::HashSet::new();
        let fresh_ids: std::collections::HashSet<u32> = fresh.iter().map(|p| p.id).collect();
        for batch in &inserts {
            for p in *batch {
                assert!(seen.insert(p.id), "insert id {} repeated", p.id);
                assert!(fresh_ids.contains(&p.id));
            }
        }
        // Deletes only target ids the stream inserted earlier.
        for batch in &deletes {
            for id in *batch {
                assert!(seen.contains(id), "delete of never-inserted id {id}");
            }
        }
    }

    #[test]
    fn read_only_stream_has_no_writes() {
        let pts = WorkloadBuilder::new(1, 64)
            .points::<2>(PointDistribution::UniformCube { side: 1 << 10 });
        let qw = QueryWorkload::from_points(&pts, 2);
        let trace = ArrivalTrace::generate(3, ArrivalProcess::Poisson { rate_hz: 1000.0 }, 50);
        let stream = request_stream(
            4,
            &trace,
            &qw,
            QueryDistribution::PointProbe,
            RequestMix::default(),
            &[],
        );
        assert!(stream.iter().all(|t| matches!(t.op, ServiceOp::Query(_))));
    }
}
