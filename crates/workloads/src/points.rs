//! Point-set generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ddrs_rangetree::Point;

/// Spatial distribution of the generated point set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointDistribution {
    /// Independent uniform coordinates in `[0, side)`.
    UniformCube {
        /// Coordinate domain size.
        side: i64,
    },
    /// `k` Gaussian-ish clusters (sum of three uniforms) of width
    /// `spread`, centres uniform in `[0, side)`.
    Clusters {
        /// Coordinate domain size.
        side: i64,
        /// Number of clusters.
        k: usize,
        /// Cluster radius.
        spread: i64,
    },
    /// The densest regular grid with at least the requested points,
    /// truncated to exactly `n` (worst case for duplicate-heavy
    /// per-dimension ranks).
    Grid {
        /// Grid side length (points per axis).
        side: i64,
    },
    /// Points near the main diagonal (highly correlated dimensions), with
    /// uniform jitter `[-jitter, jitter]`.
    Diagonal {
        /// Coordinate domain size.
        side: i64,
        /// Per-coordinate jitter.
        jitter: i64,
    },
}

/// Seeded builder for point sets.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadBuilder {
    /// RNG seed (same seed → identical workload).
    pub seed: u64,
    /// Number of points.
    pub n: usize,
}

impl WorkloadBuilder {
    /// A builder with the given seed and size.
    pub fn new(seed: u64, n: usize) -> Self {
        WorkloadBuilder { seed, n }
    }

    /// Generate the point set. Ids are `0..n`; weights are pseudo-random
    /// in `1..=100` (for the associative-function experiments).
    pub fn points<const D: usize>(&self, dist: PointDistribution) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.n);
        match dist {
            PointDistribution::UniformCube { side } => {
                for id in 0..self.n {
                    let mut c = [0i64; D];
                    for x in c.iter_mut() {
                        *x = rng.random_range(0..side);
                    }
                    out.push(Point::weighted(c, id as u32, rng.random_range(1..=100)));
                }
            }
            PointDistribution::Clusters { side, k, spread } => {
                let centres: Vec<[i64; D]> = (0..k.max(1))
                    .map(|_| {
                        let mut c = [0i64; D];
                        for x in c.iter_mut() {
                            *x = rng.random_range(0..side);
                        }
                        c
                    })
                    .collect();
                for id in 0..self.n {
                    let centre = centres[rng.random_range(0..centres.len())];
                    let mut c = [0i64; D];
                    for (j, x) in c.iter_mut().enumerate() {
                        // Sum of three uniforms ≈ bell-shaped.
                        let noise: i64 =
                            (0..3).map(|_| rng.random_range(-spread..=spread)).sum::<i64>() / 3;
                        *x = (centre[j] + noise).clamp(0, side - 1);
                    }
                    out.push(Point::weighted(c, id as u32, rng.random_range(1..=100)));
                }
            }
            PointDistribution::Grid { side } => {
                'outer: for i in 0.. {
                    let mut rem: i64 = i;
                    let mut c = [0i64; D];
                    for x in c.iter_mut() {
                        *x = rem % side;
                        rem /= side;
                    }
                    if rem > 0 || out.len() >= self.n {
                        break 'outer;
                    }
                    out.push(Point::weighted(c, out.len() as u32, rng.random_range(1..=100)));
                }
                assert!(out.len() == self.n, "grid side {side}^{D} too small for n={}", self.n);
            }
            PointDistribution::Diagonal { side, jitter } => {
                for id in 0..self.n {
                    let t = rng.random_range(0..side);
                    let mut c = [0i64; D];
                    for x in c.iter_mut() {
                        *x = (t + rng.random_range(-jitter..=jitter)).clamp(0, side - 1);
                    }
                    out.push(Point::weighted(c, id as u32, rng.random_range(1..=100)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a =
            WorkloadBuilder::new(7, 100).points::<2>(PointDistribution::UniformCube { side: 1000 });
        let b =
            WorkloadBuilder::new(7, 100).points::<2>(PointDistribution::UniformCube { side: 1000 });
        let c =
            WorkloadBuilder::new(8, 100).points::<2>(PointDistribution::UniformCube { side: 1000 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_and_ids() {
        for dist in [
            PointDistribution::UniformCube { side: 500 },
            PointDistribution::Clusters { side: 500, k: 5, spread: 20 },
            PointDistribution::Grid { side: 32 },
            PointDistribution::Diagonal { side: 500, jitter: 10 },
        ] {
            let pts = WorkloadBuilder::new(1, 256).points::<3>(dist);
            assert_eq!(pts.len(), 256, "{dist:?}");
            let mut ids: Vec<u32> = pts.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..256).collect::<Vec<u32>>());
            assert!(pts.iter().all(|p| p.weight >= 1 && p.weight <= 100));
        }
    }

    #[test]
    fn grid_panics_when_too_small() {
        let r = std::panic::catch_unwind(|| {
            WorkloadBuilder::new(1, 1000).points::<2>(PointDistribution::Grid { side: 4 })
        });
        assert!(r.is_err());
    }

    #[test]
    fn diagonal_is_correlated() {
        let pts = WorkloadBuilder::new(3, 500)
            .points::<2>(PointDistribution::Diagonal { side: 1000, jitter: 5 });
        assert!(pts.iter().all(|p| (p.coords[0] - p.coords[1]).abs() <= 10));
    }
}
