//! # ddrs-workloads — deterministic point & query generators
//!
//! The paper evaluates analytically; to *measure* its bounds the harness
//! needs concrete inputs. This crate provides seeded, reproducible
//! generators for point sets (uniform, clustered, grid, correlated),
//! range-query workloads (selectivity-calibrated boxes, hot-spot mixes
//! that stress the multisearch load balancer, point probes), and
//! open-loop arrival schedules (Poisson / bursty on-off) with mixed
//! read/write request streams for driving the serving layer.

mod arrivals;
mod points;
mod queries;
mod trace;

pub use arrivals::{
    request_stream, submit_op, ArrivalProcess, ArrivalTrace, RequestMix, ServiceOp, TimedOp,
};
pub use points::{PointDistribution, WorkloadBuilder};
pub use queries::{MixedQuery, QueryDistribution, QueryMode, QueryWorkload};
pub use trace::CsvTable;
