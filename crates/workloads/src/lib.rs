//! # ddrs-workloads — deterministic point & query generators
//!
//! The paper evaluates analytically; to *measure* its bounds the harness
//! needs concrete inputs. This crate provides seeded, reproducible
//! generators for point sets (uniform, clustered, grid, correlated) and
//! range-query workloads (selectivity-calibrated boxes, hot-spot mixes
//! that stress the multisearch load balancer, point probes).

mod points;
mod queries;
mod trace;

pub use points::{PointDistribution, WorkloadBuilder};
pub use queries::{MixedQuery, QueryDistribution, QueryMode, QueryWorkload};
pub use trace::CsvTable;
