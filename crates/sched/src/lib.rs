//! # ddrs-sched — the shared group-commit scheduler core
//!
//! Both serving front-ends — the single-store `ddrs-service` scheduler
//! and the multi-group `ddrs-shard` router — coalesce client requests
//! the same way: a bounded FIFO of pending ops, admission control,
//! `max_batch`/`max_delay` window firing, deadline expiry in the queue,
//! a carve that pops the dispatchable prefix, and an `AtLeast`
//! consistency gate judged at dispatch time. Those layers used to be
//! two diverged copies; this crate is the single definition both
//! front-ends instantiate. The front-ends keep what genuinely differs —
//! how a carved window is *executed* (one fused batch vs per-shard
//! scatter-gather) — and delegate everything about *when* and *what* to
//! dispatch to [`SchedCore`].
//!
//! ## The carve invariants
//!
//! [`SchedCore::next_window`] pops the dispatchable prefix of the queue
//! with [`carve`]. Its invariants, stated once and relied on by every
//! front-end:
//!
//! 1. **Expired first.** Requests whose deadline passed while queued are
//!    popped out of the prefix and returned separately; they never reach
//!    a machine and do not count toward the window cap.
//! 2. **Same-kind runs.** A window contains ops of exactly one kind
//!    (as classified by the caller's `kind` function): reads coalesce
//!    only with reads, writes only with writes. The first op's kind
//!    decides the window's kind.
//! 3. **Groups never split.** All ops admitted by one `submit_ops` call
//!    share a group id, and a contiguous same-kind run of one group is
//!    never split across windows — even when that overflows `max_batch`.
//!    This is what makes the client contract's "a request's reads fuse
//!    into one dispatch" guarantee unconditional.
//! 4. **Exclusive kinds dispatch alone.** A kind the caller marks
//!    `exclusive` (the shard router's split command) terminates its
//!    window immediately: one exclusive op per window.
//! 5. **`max_batch` is a target, not a limit.** The cap stops the carve
//!    between groups; invariant 3 means a single oversized group can
//!    exceed it.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use ddrs_check::{TrackedCondvar, TrackedMutex};

pub use ddrs_client::SubmitError;

/// Tuning knobs of the scheduler core. Front-ends build this from their
/// public config types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Fire a window as soon as this many ops are pending. Must be ≥ 1.
    pub max_batch: usize,
    /// Fire once the oldest pending op has waited this long.
    pub max_delay: Duration,
    /// Admission bound: submissions beyond this queue depth are rejected
    /// with [`SubmitError::Overloaded`]; a single request carrying more
    /// ops than the whole capacity is rejected with the permanent
    /// [`SubmitError::RequestTooLarge`]. Must be ≥ 1.
    pub queue_capacity: usize,
}

/// One op as it sits in the pending queue: the front-end's op payload
/// plus the queueing metadata the core schedules by.
pub struct Pending<O> {
    /// The front-end's op (the service queues `PlannedOp` directly; the
    /// shard router wraps it to add its split command).
    pub op: O,
    /// When the op was admitted (latency accounting).
    pub submitted: Instant,
    /// Queue deadline: if still pending past this instant, the op is
    /// expired by the next carve instead of dispatched.
    pub deadline: Option<Instant>,
    /// Consistency bound: minimum commits the store must have performed
    /// when this op dispatches (`Consistency::AtLeast`).
    pub min_seq: Option<u64>,
    /// Ops of one `submit_ops` call share a group id; see the carve
    /// invariants in the crate docs.
    pub group: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Running,
    Draining,
    Rejecting,
    Poisoned,
}

/// How to stop: serve what is already queued, or reject it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMode {
    /// Serve everything already queued, then stop.
    Drain,
    /// Reject everything already queued, then stop.
    Reject,
}

/// What the scheduler thread should do next, as decided by
/// [`SchedCore::next_window`].
pub enum Window<O> {
    /// Execute this window. `expired` are the requests whose deadline
    /// passed in the queue — fail them with `DeadlineExpired`, they
    /// never reach a machine. `batch` may be empty (everything expired).
    Dispatch {
        /// The carved same-kind run to execute.
        batch: Vec<Pending<O>>,
        /// Requests that expired while queued.
        expired: Vec<Pending<O>>,
    },
    /// The caller's `wake_at` instant passed before any dispatch
    /// condition was met — run periodic work (the shard router flushes
    /// its due read stages) and call again.
    Idle,
    /// Stop serving. `rejected` holds whatever was still queued (empty
    /// on a drained exit) — fail them with `ShuttingDown`. `poisoned`
    /// is true when the stop was a [`SchedCore::poison`].
    Shutdown {
        /// Ops still queued at stop time.
        rejected: Vec<Pending<O>>,
        /// True when a failed epoch poisoned the front-end.
        poisoned: bool,
    },
}

struct SchedQueue<O> {
    q: VecDeque<Pending<O>>,
    mode: Mode,
    /// Source of request group ids (see [`Pending::group`]).
    group_counter: u64,
}

/// The shared scheduler state: one bounded pending queue, its mode, and
/// the condvar the scheduler thread sleeps on.
///
/// The queue lock is a [`TrackedMutex`] under the class `sched.queue` —
/// the outermost class of the stack's canonical lock order (the
/// admission callbacks of [`submit_ops`](SchedCore::submit_ops) take
/// the front-end's `stats` lock while it is held).
pub struct SchedCore<O> {
    cfg: SchedConfig,
    queue: TrackedMutex<SchedQueue<O>>,
    arrived: TrackedCondvar,
}

impl<O> SchedCore<O> {
    /// Build a core.
    ///
    /// # Panics
    /// Panics if `max_batch` or `queue_capacity` is zero.
    pub fn new(cfg: SchedConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be at least 1");
        SchedCore {
            cfg,
            queue: TrackedMutex::new(
                "sched.queue",
                SchedQueue { q: VecDeque::new(), mode: Mode::Running, group_counter: 0 },
            ),
            arrived: TrackedCondvar::new(),
        }
    }

    /// The configuration this core was built with.
    pub fn cfg(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Current queue depth (for telemetry snapshots).
    pub fn depth(&self) -> usize {
        self.queue.lock().q.len()
    }

    /// Admit one request's ops all-or-nothing: either every op is
    /// enqueued contiguously under one fresh group id, or nothing is.
    ///
    /// `make` lowers the request into `(ops, deadline, min_seq)` only
    /// once admission is certain, so a rejection never pays for (and
    /// then tears down) per-op resolver plumbing. It runs under the
    /// queue lock and must not take locks that can be held while this
    /// core is used. `on_admitted` / `on_overloaded` run under the same
    /// lock so the front-end's submission counters order consistently
    /// with completion counters (`submitted ≥ completed` holds in every
    /// telemetry snapshot).
    pub fn submit_ops(
        &self,
        n_ops: usize,
        make: impl FnOnce() -> (Vec<O>, Option<Duration>, Option<u64>),
        on_admitted: impl FnOnce(),
        on_overloaded: impl FnOnce(),
    ) -> Result<(), SubmitError> {
        let now = Instant::now();
        let mut q = self.queue.lock();
        if q.mode != Mode::Running {
            return Err(SubmitError::ShutDown);
        }
        if n_ops > self.cfg.queue_capacity {
            // Rejecting as Overloaded would send the caller into a
            // futile retry loop: this request can never fit.
            return Err(SubmitError::RequestTooLarge {
                ops: n_ops,
                capacity: self.cfg.queue_capacity,
            });
        }
        if q.q.len() + n_ops > self.cfg.queue_capacity {
            let depth = q.q.len();
            on_overloaded();
            return Err(SubmitError::Overloaded { depth });
        }
        let (ops, deadline, min_seq) = make();
        debug_assert_eq!(ops.len(), n_ops, "make() must produce the admitted op count");
        q.group_counter += 1;
        let group = q.group_counter;
        let deadline = deadline.map(|d| now + d);
        for op in ops {
            q.q.push_back(Pending { op, submitted: now, deadline, min_seq, group });
        }
        self.arrived.notify_all();
        on_admitted();
        Ok(())
    }

    /// Ask the core to stop. Idempotent: only a `Running` core changes
    /// mode (a poison is never downgraded).
    pub fn begin_stop(&self, mode: StopMode) {
        let mut q = self.queue.lock();
        if q.mode == Mode::Running {
            q.mode = match mode {
                StopMode::Drain => Mode::Draining,
                StopMode::Reject => Mode::Rejecting,
            };
        }
        self.arrived.notify_all();
    }

    /// Mark the front-end poisoned (an epoch failed mid-apply and the
    /// store may be inconsistent): pending and future work is rejected,
    /// and the eventual [`Window::Shutdown`] reports `poisoned: true`.
    pub fn poison(&self) {
        self.queue.lock().mode = Mode::Poisoned;
        self.arrived.notify_all();
    }

    /// Block until there is something to do and say what: a carved
    /// window to dispatch, an [`Window::Idle`] tick because `wake_at`
    /// passed (for front-ends with their own periodic work; pass `None`
    /// to never idle-tick), or a shutdown.
    ///
    /// `kind` classifies ops into windows (invariant 2 of the carve);
    /// `exclusive` marks kinds that dispatch alone (invariant 4).
    pub fn next_window<K: PartialEq>(
        &self,
        wake_at: Option<Instant>,
        kind: impl Fn(&O) -> K,
        exclusive: impl Fn(&K) -> bool,
    ) -> Window<O> {
        let mut q = self.queue.lock();
        loop {
            match q.mode {
                Mode::Rejecting | Mode::Poisoned => {
                    let poisoned = q.mode == Mode::Poisoned;
                    let rejected: Vec<Pending<O>> = q.q.drain(..).collect();
                    return Window::Shutdown { rejected, poisoned };
                }
                Mode::Draining => {
                    if q.q.is_empty() {
                        return Window::Shutdown { rejected: Vec::new(), poisoned: false };
                    }
                    break; // dispatch immediately, no delay window
                }
                Mode::Running => {
                    let now = Instant::now();
                    if wake_at.is_some_and(|w| now >= w) {
                        return Window::Idle;
                    }
                    let Some(front) = q.q.front() else {
                        q = match wake_at {
                            None => self.arrived.wait(q),
                            Some(w) => self.arrived.wait_timeout(q, w - now).0,
                        };
                        continue;
                    };
                    if q.q.len() >= self.cfg.max_batch {
                        break;
                    }
                    let dispatch_at = front.submitted + self.cfg.max_delay;
                    if now >= dispatch_at {
                        break;
                    }
                    let until = wake_at.map_or(dispatch_at, |w| w.min(dispatch_at));
                    q = self.arrived.wait_timeout(q, until - now).0;
                }
            }
        }
        let (batch, expired) = carve(&mut q.q, self.cfg.max_batch, kind, exclusive);
        Window::Dispatch { batch, expired }
    }
}

impl<O> std::fmt::Debug for SchedCore<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedCore").field("cfg", &self.cfg).field("depth", &self.depth()).finish()
    }
}

/// Pop the dispatchable prefix of the queue. See the carve invariants
/// in the crate docs — this function is their single definition.
pub fn carve<O, K: PartialEq>(
    q: &mut VecDeque<Pending<O>>,
    max_batch: usize,
    kind: impl Fn(&O) -> K,
    exclusive: impl Fn(&K) -> bool,
) -> (Vec<Pending<O>>, Vec<Pending<O>>) {
    let now = Instant::now();
    let mut expired = Vec::new();
    let mut batch: Vec<Pending<O>> = Vec::new();
    let mut window_kind: Option<K> = None;
    let mut last_group: Option<u64> = None;
    // Peek to decide, then pop the op the decision was made about — the
    // structure keeps every pop statically infallible (no unwrap).
    loop {
        let is_dead = {
            let Some(front) = q.front() else { break };
            if front.deadline.is_some_and(|d| d <= now) {
                true
            } else {
                if batch.len() >= max_batch && last_group != Some(front.group) {
                    break;
                }
                let k = kind(&front.op);
                match &window_kind {
                    None => window_kind = Some(k),
                    Some(prev) if *prev != k => break,
                    _ => {}
                }
                last_group = Some(front.group);
                false
            }
        };
        let Some(p) = q.pop_front() else { break };
        if is_dead {
            expired.push(p);
            continue;
        }
        batch.push(p);
        if window_kind.as_ref().is_some_and(&exclusive) {
            break;
        }
    }
    (batch, expired)
}

/// The `AtLeast` consistency gate, judged at dispatch time: partition a
/// carved window into the ops that may dispatch and the reads whose
/// bound the store has not yet committed (fail those with
/// `ServiceError::Consistency`). Writes pass unconditionally — a write
/// observes nothing.
pub fn gate_reads<O>(
    batch: Vec<Pending<O>>,
    committed: u64,
    is_read: impl Fn(&O) -> bool,
) -> (Vec<Pending<O>>, Vec<Pending<O>>) {
    batch.into_iter().partition(|p| !is_read(&p.op) || p.min_seq.is_none_or(|s| s < committed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pend(op: u8, group: u64) -> Pending<u8> {
        Pending { op, submitted: Instant::now(), deadline: None, min_seq: None, group }
    }

    fn carve_kinds(q: &mut VecDeque<Pending<u8>>, max_batch: usize) -> (Vec<u8>, usize) {
        // Kind = op value; ops >= 100 are exclusive.
        let (batch, expired) = carve(q, max_batch, |op| *op, |k| *k >= 100);
        (batch.into_iter().map(|p| p.op).collect(), expired.len())
    }

    #[test]
    fn carve_pops_same_kind_prefix() {
        let mut q: VecDeque<Pending<u8>> =
            [pend(1, 1), pend(1, 2), pend(2, 3), pend(1, 4)].into_iter().collect();
        assert_eq!(carve_kinds(&mut q, 64), (vec![1, 1], 0));
        assert_eq!(carve_kinds(&mut q, 64), (vec![2], 0));
        assert_eq!(carve_kinds(&mut q, 64), (vec![1], 0));
    }

    #[test]
    fn carve_never_splits_a_group_past_the_cap() {
        // Group 7 holds three ops; the cap of 2 must not split it.
        let mut q: VecDeque<Pending<u8>> =
            [pend(1, 7), pend(1, 7), pend(1, 7), pend(1, 8)].into_iter().collect();
        assert_eq!(carve_kinds(&mut q, 2), (vec![1, 1, 1], 0));
        assert_eq!(carve_kinds(&mut q, 2), (vec![1], 0));
    }

    #[test]
    fn carve_exclusive_kind_dispatches_alone() {
        let mut q: VecDeque<Pending<u8>> =
            [pend(100, 1), pend(100, 2), pend(1, 3)].into_iter().collect();
        assert_eq!(carve_kinds(&mut q, 64), (vec![100], 0));
        assert_eq!(carve_kinds(&mut q, 64), (vec![100], 0));
        assert_eq!(carve_kinds(&mut q, 64), (vec![1], 0));
    }

    #[test]
    fn carve_expires_dead_requests_first() {
        let mut q: VecDeque<Pending<u8>> = VecDeque::new();
        let mut dead = pend(1, 1);
        dead.deadline = Some(Instant::now() - Duration::from_millis(1));
        q.push_back(dead);
        q.push_back(pend(2, 2));
        let (batch, expired) = carve_kinds(&mut q, 64);
        assert_eq!((batch, expired), (vec![2], 1));
    }

    #[test]
    fn admission_is_all_or_nothing() {
        let core: SchedCore<u8> = SchedCore::new(SchedConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 4,
        });
        assert!(core.submit_ops(3, || (vec![1, 2, 3], None, None), || (), || ()).is_ok());
        match core.submit_ops(2, || unreachable!("rejected: must not lower"), || (), || ()) {
            Err(SubmitError::Overloaded { depth }) => assert_eq!(depth, 3),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        match core.submit_ops(5, || unreachable!(), || (), || ()) {
            Err(SubmitError::RequestTooLarge { ops: 5, capacity: 4 }) => {}
            other => panic!("expected RequestTooLarge, got {other:?}"),
        }
        assert_eq!(core.depth(), 3);
    }

    #[test]
    fn stopped_core_rejects_submissions_and_reports_pending() {
        let core: SchedCore<u8> = SchedCore::new(SchedConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 8,
        });
        core.submit_ops(2, || (vec![1, 2], None, None), || (), || ()).unwrap();
        core.begin_stop(StopMode::Reject);
        assert!(matches!(
            core.submit_ops(1, || unreachable!(), || (), || ()),
            Err(SubmitError::ShutDown)
        ));
        match core.next_window(None, |op| *op, |_| false) {
            Window::Shutdown { rejected, poisoned } => {
                assert_eq!(rejected.len(), 2);
                assert!(!poisoned);
            }
            _ => panic!("expected shutdown"),
        }
    }

    #[test]
    fn poison_outranks_drain_and_reports() {
        let core: SchedCore<u8> = SchedCore::new(SchedConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_capacity: 8,
        });
        core.begin_stop(StopMode::Drain);
        core.poison();
        match core.next_window(None, |op| *op, |_| false) {
            Window::Shutdown { poisoned, .. } => assert!(poisoned),
            _ => panic!("expected shutdown"),
        }
    }

    #[test]
    fn idle_tick_fires_when_wake_passes() {
        let core: SchedCore<u8> = SchedCore::new(SchedConfig {
            max_batch: 64,
            max_delay: Duration::from_secs(10),
            queue_capacity: 8,
        });
        // Empty queue, wake already due: the core must tick, not block.
        let w = core.next_window(Some(Instant::now()), |op| *op, |_| false);
        assert!(matches!(w, Window::Idle));
        // Queue below max_batch, delay far away, wake imminent: tick too.
        core.submit_ops(1, || (vec![1], None, None), || (), || ()).unwrap();
        let w =
            core.next_window(Some(Instant::now() + Duration::from_millis(5)), |op| *op, |_| false);
        assert!(matches!(w, Window::Idle));
    }

    #[test]
    fn gate_fails_only_unmet_reads() {
        // Reads are odd ops; committed counter is 3.
        let batch = vec![
            pend(1, 1), // read, no bound
            {
                let mut p = pend(3, 2);
                p.min_seq = Some(2); // met: 2 < 3
                p
            },
            {
                let mut p = pend(5, 3);
                p.min_seq = Some(3); // unmet: needs a 4th commit
                p
            },
            {
                let mut p = pend(2, 4);
                p.min_seq = Some(9); // write: bound ignored
                p
            },
        ];
        let (ready, unmet) = gate_reads(batch, 3, |op| op % 2 == 1);
        let ready: Vec<u8> = ready.into_iter().map(|p| p.op).collect();
        let unmet: Vec<u8> = unmet.into_iter().map(|p| p.op).collect();
        assert_eq!(ready, vec![1, 3, 2]);
        assert_eq!(unmet, vec![5]);
    }

    #[test]
    fn window_fires_on_batch_size_and_on_delay() {
        let core: SchedCore<u8> = SchedCore::new(SchedConfig {
            max_batch: 2,
            max_delay: Duration::from_secs(10),
            queue_capacity: 8,
        });
        core.submit_ops(2, || (vec![1, 1], None, None), || (), || ()).unwrap();
        match core.next_window(None, |op| *op, |_| false) {
            Window::Dispatch { batch, expired } => {
                assert_eq!(batch.len(), 2);
                assert!(expired.is_empty());
            }
            _ => panic!("expected dispatch at max_batch"),
        }
        // One op below the cap: fires only after max_delay.
        let quick: SchedCore<u8> = SchedCore::new(SchedConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_capacity: 8,
        });
        quick.submit_ops(1, || (vec![1], None, None), || (), || ()).unwrap();
        let t0 = Instant::now();
        match quick.next_window(None, |op| *op, |_| false) {
            Window::Dispatch { batch, .. } => assert_eq!(batch.len(), 1),
            _ => panic!("expected dispatch after max_delay"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }
}
