//! Binary framing of epoch records.
//!
//! # Frame layout
//!
//! Every record is one length-prefixed, checksummed frame:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length `len`, u32 little-endian
//! 4       4     CRC-32 (IEEE polynomial, reflected) of the payload
//! 8       len   payload
//! ```
//!
//! # Payload layout
//!
//! All integers little-endian:
//!
//! ```text
//! u8            record-format version (currently 1)
//! u8            record kind (0 load, 1 epoch, 2 migrate-out, 3 migrate-in)
//! u8            dimension D (cross-checked on decode)
//! u64           first_seq — global commit seq of the first committed op
//! u32 V         verdict count, then V bytes (0 commit, 1 rejected,
//!               2 unavailable)
//! u32 N         delete count, then N × u32 point ids
//! u32 M         insert count, then M × (u32 id, u64 weight, D × i64
//!               coords)
//! ```
//!
//! # Replay invariants
//!
//! [`decode_log`] walks frames front to back and **stops cleanly at the
//! first incomplete or corrupt frame**: every record before the bad
//! frame is returned, the bad frame and everything after it is
//! discarded, and the [`LogTail`] reports where and why the walk
//! stopped. A torn tail (partial final frame after a crash mid-append)
//! therefore recovers exactly the epochs that fully committed — never a
//! partial epoch, never a panic. Decoding never reads past the buffer
//! and rejects frames whose declared length exceeds
//! [`MAX_FRAME_PAYLOAD`].

use ddrs_rangetree::Point;

/// Current record-format version byte.
pub const RECORD_VERSION: u8 = 1;

/// Bytes of frame header preceding every payload (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a sane payload length; a declared length above this
/// is treated as corruption rather than an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// What a logged record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Initial bulk load of the shard at service start.
    Load,
    /// A committed client write epoch (merged delete+insert batches).
    Epoch,
    /// Points migrated out of this shard by a split/rebalance.
    MigrateOut,
    /// Points migrated into this shard by a split/rebalance.
    MigrateIn,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Load => 0,
            RecordKind::Epoch => 1,
            RecordKind::MigrateOut => 2,
            RecordKind::MigrateIn => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(RecordKind::Load),
            1 => Some(RecordKind::Epoch),
            2 => Some(RecordKind::MigrateOut),
            3 => Some(RecordKind::MigrateIn),
            _ => None,
        }
    }
}

/// Per-op outcome of a committed write epoch, in submission order.
/// Committed ops consume global seqs `first_seq, first_seq+1, …` in
/// this order; rejected/unavailable ops consume none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The op committed and consumed a global seq.
    Commit,
    /// The op was rejected by sequential validation (duplicate id,
    /// reserved id, unknown id).
    Rejected,
    /// The op addressed a quarantined shard.
    Unavailable,
}

impl Verdict {
    fn to_byte(self) -> u8 {
        match self {
            Verdict::Commit => 0,
            Verdict::Rejected => 1,
            Verdict::Unavailable => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Verdict::Commit),
            1 => Some(Verdict::Rejected),
            2 => Some(Verdict::Unavailable),
            _ => None,
        }
    }
}

/// One write-ahead log record: a committed epoch (or load/migration
/// event) exactly as the router applied it to the shard's store.
///
/// Replay applies `deletes` before `inserts`, matching the epoch apply
/// order on the live shard (extract then insert), so replaying a log
/// front to back reproduces the store byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord<const D: usize> {
    /// What this record represents.
    pub kind: RecordKind,
    /// Global commit seq of the epoch's first committed op (forensic;
    /// load/migration records carry the router's next seq at the time).
    pub first_seq: u64,
    /// Per-op outcomes in submission order (empty for load/migration).
    pub verdicts: Vec<Verdict>,
    /// Ids deleted from this shard's store by the epoch.
    pub deletes: Vec<u32>,
    /// Points inserted into this shard's store by the epoch.
    pub inserts: Vec<Point<D>>,
}

impl<const D: usize> EpochRecord<D> {
    /// A record with no verdicts — load and migration events.
    pub fn event(
        kind: RecordKind,
        first_seq: u64,
        deletes: Vec<u32>,
        inserts: Vec<Point<D>>,
    ) -> Self {
        EpochRecord { kind, first_seq, verdicts: Vec::new(), deletes, inserts }
    }
}

/// Why and where [`decode_log`] stopped walking the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogTail {
    /// The stream ended exactly on a frame boundary.
    Clean,
    /// The final frame is incomplete — a crash mid-append. `offset` is
    /// where the torn frame starts.
    Torn {
        /// Byte offset of the incomplete frame's header.
        offset: usize,
    },
    /// A complete frame failed its checksum or structural validation.
    Corrupt {
        /// Byte offset of the corrupt frame's header.
        offset: usize,
        /// Human-readable reason (checksum mismatch, bad version, …).
        reason: String,
    },
}

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/xorout `!0`) — the
/// ubiquitous `crc32` of zlib/gzip, implemented bitwise to stay
/// dependency-free. Corruption detection only; not cryptographic.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = !0;
    for &b in bytes {
        c ^= u32::from(b);
        for _ in 0..8 {
            c = if c & 1 != 0 { (c >> 1) ^ 0xEDB8_8320 } else { c >> 1 };
        }
    }
    !c
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one record as a complete frame (header + payload), ready to
/// append to a sink.
pub fn encode_record<const D: usize>(rec: &EpochRecord<D>) -> Vec<u8> {
    let mut payload = Vec::with_capacity(
        32 + rec.verdicts.len() + 4 * rec.deletes.len() + (12 + 8 * D) * rec.inserts.len(),
    );
    payload.push(RECORD_VERSION);
    payload.push(rec.kind.to_byte());
    payload.push(D as u8);
    put_u64(&mut payload, rec.first_seq);
    put_u32(&mut payload, rec.verdicts.len() as u32);
    payload.extend(rec.verdicts.iter().map(|v| v.to_byte()));
    put_u32(&mut payload, rec.deletes.len() as u32);
    for id in &rec.deletes {
        put_u32(&mut payload, *id);
    }
    put_u32(&mut payload, rec.inserts.len() as u32);
    for p in &rec.inserts {
        put_u32(&mut payload, p.id);
        put_u64(&mut payload, p.weight);
        for c in &p.coords {
            payload.extend_from_slice(&c.to_le_bytes());
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Cursor over a payload with bounds-checked little-endian reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
}

fn decode_payload<const D: usize>(payload: &[u8]) -> Result<EpochRecord<D>, String> {
    let mut r = Reader { buf: payload, pos: 0 };
    let version = r.u8().ok_or("payload shorter than version byte")?;
    if version != RECORD_VERSION {
        return Err(format!("unknown record version {version}"));
    }
    let kind = r.u8().and_then(RecordKind::from_byte).ok_or("bad record kind")?;
    let dim = r.u8().ok_or("payload shorter than dimension byte")?;
    if usize::from(dim) != D {
        return Err(format!("record dimension {dim} != store dimension {D}"));
    }
    let first_seq = r.u64().ok_or("truncated first_seq")?;
    let nv = r.u32().ok_or("truncated verdict count")? as usize;
    if nv > payload.len() {
        return Err("verdict count exceeds payload".into());
    }
    let mut verdicts = Vec::with_capacity(nv);
    for _ in 0..nv {
        let v = r.u8().and_then(Verdict::from_byte).ok_or("bad verdict byte")?;
        verdicts.push(v);
    }
    let nd = r.u32().ok_or("truncated delete count")? as usize;
    if nd.saturating_mul(4) > payload.len() {
        return Err("delete count exceeds payload".into());
    }
    let mut deletes = Vec::with_capacity(nd);
    for _ in 0..nd {
        deletes.push(r.u32().ok_or("truncated delete id")?);
    }
    let ni = r.u32().ok_or("truncated insert count")? as usize;
    if ni.saturating_mul(12 + 8 * D) > payload.len() {
        return Err("insert count exceeds payload".into());
    }
    let mut inserts = Vec::with_capacity(ni);
    for _ in 0..ni {
        let id = r.u32().ok_or("truncated insert id")?;
        let weight = r.u64().ok_or("truncated insert weight")?;
        let mut coords = [0i64; D];
        for c in &mut coords {
            *c = r.i64().ok_or("truncated insert coord")?;
        }
        inserts.push(Point::weighted(coords, id, weight));
    }
    if r.pos != payload.len() {
        return Err(format!("{} trailing payload bytes", payload.len() - r.pos));
    }
    Ok(EpochRecord { kind, first_seq, verdicts, deletes, inserts })
}

/// Decode a whole log byte stream into the records that fully
/// committed, stopping cleanly at the first torn or corrupt frame (see
/// the module docs for the exact invariants). Never panics on
/// attacker-controlled or crash-damaged input.
pub fn decode_log<const D: usize>(bytes: &[u8]) -> (Vec<EpochRecord<D>>, LogTail) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            return (records, LogTail::Torn { offset: pos });
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len > MAX_FRAME_PAYLOAD {
            return (
                records,
                LogTail::Corrupt { offset: pos, reason: format!("frame length {len} exceeds cap") },
            );
        }
        let stored_crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        let len = len as usize;
        if remaining - FRAME_HEADER < len {
            return (records, LogTail::Torn { offset: pos });
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != stored_crc {
            return (records, LogTail::Corrupt { offset: pos, reason: "checksum mismatch".into() });
        }
        match decode_payload::<D>(payload) {
            Ok(rec) => records.push(rec),
            Err(reason) => return (records, LogTail::Corrupt { offset: pos, reason }),
        }
        pos += FRAME_HEADER + len;
    }
    (records, LogTail::Clean)
}
