//! # ddrs-wal — per-shard epoch write-ahead log
//!
//! The dynamization scheme already serializes every mutation into
//! epochs of merged delete+insert batches, so the WAL record **is the
//! committed epoch itself**: the global commit seq of its first
//! committed op, the per-op verdicts, and the exact delete/insert
//! batches the shard's worker applied (see
//! [`EpochRecord`]). Load and migration events use the same record with
//! no verdicts. The framing (length prefix + CRC-32, [`encode_record`]) makes
//! the log self-delimiting and torn-tail-safe: [`decode_log`] stops
//! cleanly at the first incomplete or corrupt frame and returns exactly
//! the epochs that fully committed.
//!
//! ## Write path
//!
//! The shard router appends **log-before-resolve**: a committed epoch
//! is appended to every involved shard's [`EpochWal`] after the workers
//! acknowledge the apply but *before* any client ticket resolves, so a
//! crash between commit and resolution never yields a response the log
//! cannot reproduce. Appends go through a [`LogSink`] — in-memory by
//! default, optionally file-backed — with fsync-free append-buffer
//! semantics ([`MemSink`], [`FileSink`]).
//!
//! ## Recovery
//!
//! [`replay_into_store`] folds a decoded record sequence into a fresh
//! `DynamicDistRangeTree`, applying each record's deletes before its
//! inserts (the same order the live shard used). `ddrs-shard` builds
//! its `recover_shard()` on top of this: decode the quarantined shard's
//! log, rebuild the store on the shard's own `Machine`, re-derive the
//! id→shard ownership index from the live ids, and let the rebuilt
//! shard rejoin the service.

#![forbid(unsafe_code)]

mod frame;
mod sink;

pub use frame::{
    crc32, decode_log, encode_record, EpochRecord, LogTail, RecordKind, Verdict, FRAME_HEADER,
    MAX_FRAME_PAYLOAD, RECORD_VERSION,
};
pub use sink::{FileSink, LogSink, MemSink};

use std::io;

use ddrs_cgm::Machine;
use ddrs_check::TrackedMutex;
use ddrs_rangetree::DynamicDistRangeTree;

/// Cumulative append-side counters of one [`EpochWal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since the log was created.
    pub records: u64,
    /// Total frame bytes appended (headers included).
    pub bytes: u64,
}

struct WalInner {
    sink: Box<dyn LogSink>,
    stats: WalStats,
}

/// One shard's write-ahead log: an append-only sequence of
/// [`EpochRecord`] frames behind a tracked mutex (lock class
/// `wal.append`, ordered after the router's `shard.faults` and before
/// every telemetry lock — see `ddrs-check`'s canonical order).
pub struct EpochWal<const D: usize> {
    append: TrackedMutex<WalInner>,
}

impl<const D: usize> EpochWal<D> {
    /// A log backed by the default in-memory sink.
    pub fn in_memory() -> Self {
        Self::with_sink(Box::new(MemSink::new()))
    }

    /// A log backed by a caller-provided sink (e.g. [`FileSink`]).
    pub fn with_sink(sink: Box<dyn LogSink>) -> Self {
        EpochWal {
            append: TrackedMutex::new("wal.append", WalInner { sink, stats: WalStats::default() }),
        }
    }

    /// Append one record; returns the frame size in bytes. An `Err`
    /// means the sink rejected the write — the caller must treat the
    /// epoch as failed (the log no longer reproduces the store).
    pub fn append_record(&self, rec: &EpochRecord<D>) -> io::Result<u64> {
        let frame = encode_record(rec);
        let mut inner = self.append.lock();
        inner.sink.append(&frame)?;
        inner.stats.records += 1;
        inner.stats.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Append-side counters (records / bytes appended so far).
    pub fn stats(&self) -> WalStats {
        self.append.lock().stats
    }

    /// Raw log bytes appended so far.
    pub fn snapshot_bytes(&self) -> io::Result<Vec<u8>> {
        self.append.lock().sink.snapshot()
    }

    /// Decode every fully-committed record appended so far, plus the
    /// tail verdict ([`LogTail::Clean`] unless the sink was damaged).
    pub fn replay(&self) -> io::Result<(Vec<EpochRecord<D>>, LogTail)> {
        let bytes = self.snapshot_bytes()?;
        Ok(decode_log(&bytes))
    }
}

impl<const D: usize> std::fmt::Debug for EpochWal<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EpochWal")
            .field("records", &stats.records)
            .field("bytes", &stats.bytes)
            .finish()
    }
}

/// Rebuild a shard store by replaying `records` front to back on
/// `machine`: each record's deletes are applied before its inserts,
/// reproducing exactly the apply order of the live shard. `capacity`
/// must match the store the log was written against (it shapes the
/// logarithmic-method levels, not the contents).
pub fn replay_into_store<const D: usize>(
    machine: &Machine,
    capacity: usize,
    records: &[EpochRecord<D>],
) -> Result<DynamicDistRangeTree<D>, String> {
    let mut tree = DynamicDistRangeTree::new(capacity);
    for (i, rec) in records.iter().enumerate() {
        if !rec.deletes.is_empty() {
            tree.delete_batch(machine, &rec.deletes)
                .map_err(|e| format!("wal replay: delete batch of record {i} failed: {e}"))?;
        }
        if !rec.inserts.is_empty() {
            tree.insert_batch(machine, &rec.inserts)
                .map_err(|e| format!("wal replay: insert batch of record {i} failed: {e}"))?;
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_rangetree::Point;

    fn rec(first_seq: u64, ids: std::ops::Range<u32>) -> EpochRecord<2> {
        EpochRecord {
            kind: RecordKind::Epoch,
            first_seq,
            verdicts: vec![Verdict::Commit, Verdict::Rejected],
            deletes: vec![7, 9],
            inserts: ids
                .map(|i| Point::weighted([i as i64, -(i as i64)], i, 1 + u64::from(i) % 5))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_single_record() {
        let r = rec(42, 100..110);
        let frame = encode_record(&r);
        let (out, tail) = decode_log::<2>(&frame);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(out, vec![r]);
    }

    #[test]
    fn roundtrip_many_records_and_kinds() {
        let mut bytes = Vec::new();
        let records = vec![
            EpochRecord::event(RecordKind::Load, 0, vec![], vec![Point::weighted([1, 2], 1, 3)]),
            rec(5, 10..13),
            EpochRecord::event(RecordKind::MigrateOut, 9, vec![10, 11], vec![]),
            EpochRecord::event(RecordKind::MigrateIn, 9, vec![], vec![Point::new([4, 4], 50)]),
        ];
        for r in &records {
            bytes.extend(encode_record(r));
        }
        let (out, tail) = decode_log::<2>(&bytes);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(out, records);
    }

    #[test]
    fn empty_log_is_clean() {
        let (out, tail) = decode_log::<2>(&[]);
        assert!(out.is_empty());
        assert_eq!(tail, LogTail::Clean);
    }

    #[test]
    fn torn_tail_at_every_offset_keeps_complete_prefix() {
        let complete = [rec(0, 0..4), rec(2, 4..9)];
        let mut bytes = Vec::new();
        for r in &complete {
            bytes.extend(encode_record(r));
        }
        let last_start = encode_record(&complete[0]).len();
        for cut in 0..(bytes.len() - last_start) {
            let torn = &bytes[..last_start + cut];
            let (out, tail) = decode_log::<2>(torn);
            assert_eq!(out, vec![complete[0].clone()], "cut at +{cut}");
            if cut == 0 {
                assert_eq!(tail, LogTail::Clean);
            } else {
                assert_eq!(tail, LogTail::Torn { offset: last_start }, "cut at +{cut}");
            }
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_partial_apply() {
        let complete = [rec(0, 0..4), rec(2, 4..9)];
        let mut bytes = Vec::new();
        for r in &complete {
            bytes.extend(encode_record(r));
        }
        let last_start = encode_record(&complete[0]).len();
        for i in last_start..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[i] ^= 1 << bit;
                let (out, tail) = decode_log::<2>(&damaged);
                // The first record must always survive; the damaged one
                // must never be partially reconstructed.
                assert!(!out.is_empty(), "flip {i}.{bit} lost the clean prefix");
                assert_eq!(out[0], complete[0], "flip {i}.{bit}");
                if out.len() == 2 {
                    // A flip that still decodes must decode to
                    // *something structurally complete*; it can only be
                    // the original if the flip landed in slack we don't
                    // have — so require tail-clean equality.
                    assert_eq!(tail, LogTail::Clean);
                } else {
                    assert_ne!(tail, LogTail::Clean, "flip {i}.{bit} silently dropped a record");
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_alloc() {
        let mut bytes = encode_record(&rec(0, 0..2));
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (out, tail) = decode_log::<2>(&bytes);
        assert!(out.is_empty());
        assert!(matches!(tail, LogTail::Corrupt { offset: 0, .. }));
    }

    #[test]
    fn wrong_dimension_is_corrupt() {
        let bytes = encode_record(&rec(0, 0..2));
        let (out, tail) = decode_log::<3>(&bytes);
        assert!(out.is_empty());
        assert!(matches!(tail, LogTail::Corrupt { .. }));
    }

    #[test]
    fn wal_appends_and_replays_through_mem_sink() {
        let wal = EpochWal::<2>::in_memory();
        let records = [rec(0, 0..3), rec(7, 3..6)];
        let mut bytes = 0;
        for r in &records {
            bytes += wal.append_record(r).expect("mem sink append");
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.bytes, bytes);
        let (out, tail) = wal.replay().expect("mem sink replay");
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(out, records);
    }

    #[test]
    fn file_sink_roundtrip_and_reopen() {
        let path = std::env::temp_dir().join(format!("ddrs-wal-test-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let records = [rec(0, 0..3), rec(7, 3..6)];
        {
            let wal =
                EpochWal::<2>::with_sink(Box::new(FileSink::create(&path).expect("create sink")));
            wal.append_record(&records[0]).expect("file append");
            wal.append_record(&records[1]).expect("file append");
            let (out, tail) = wal.replay().expect("file replay");
            assert_eq!(tail, LogTail::Clean);
            assert_eq!(out, records);
        }
        // Re-open after "restart": existing bytes survive, appends land
        // after them.
        let wal = EpochWal::<2>::with_sink(Box::new(FileSink::open(&path).expect("open sink")));
        let extra = rec(20, 6..8);
        wal.append_record(&extra).expect("file append after reopen");
        let (out, tail) = wal.replay().expect("file replay after reopen");
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(out, vec![records[0].clone(), records[1].clone(), extra]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_rebuilds_store_with_epoch_order() {
        let machine = Machine::new(2).expect("machine");
        let records = vec![
            EpochRecord::event(
                RecordKind::Load,
                0,
                vec![],
                (0..20).map(|i| Point::weighted([i, i * 2], i as u32, 1)).collect(),
            ),
            // One epoch deletes 0..5 and re-inserts 3 with a new weight:
            // the delete must apply first or the insert collides.
            EpochRecord {
                kind: RecordKind::Epoch,
                first_seq: 0,
                verdicts: vec![Verdict::Commit; 6],
                deletes: vec![0, 1, 2, 3, 4],
                inserts: vec![Point::weighted([3, 6], 3, 9)],
            },
        ];
        let tree = replay_into_store::<2>(&machine, 4, &records).expect("replay");
        assert_eq!(tree.len(), 16);
        assert!(tree.contains_id(3));
        assert!(!tree.contains_id(4));
        let p3 = tree.points().find(|p| p.id == 3).expect("point 3");
        assert_eq!(p3.weight, 9);
    }
}
