//! Append targets for the log: an in-memory buffer (the default — the
//! crash domain is a *processor panic*, not the whole OS) and an
//! optional file-backed sink for logs that must survive the process.
//!
//! Both are **fsync-free by design**: `append` hands the frame to the
//! buffer (or the kernel page cache) and returns. The durability
//! contract is append-buffer semantics — a frame is recoverable once
//! `append` returned, within the sink's crash domain — not synchronous
//! disk persistence. Nothing here ever calls `fsync`.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Somewhere frames can be appended to and read back from.
///
/// `append` receives one complete frame (header + payload, see
/// [`crate::encode_record`]); `snapshot` returns every byte appended so far, in
/// order. A snapshot taken concurrently with a crash may end mid-frame
/// — [`crate::decode_log`] handles that torn tail.
pub trait LogSink: Send {
    /// Append one encoded frame.
    fn append(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Read back the full byte stream appended so far.
    fn snapshot(&self) -> io::Result<Vec<u8>>;
}

/// The default sink: a growable in-memory buffer. Infallible.
#[derive(Debug, Default)]
pub struct MemSink {
    buf: Vec<u8>,
}

impl MemSink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// A sink pre-loaded with existing log bytes (restart simulation).
    pub fn from_bytes(buf: Vec<u8>) -> Self {
        MemSink { buf }
    }
}

impl LogSink for MemSink {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(frame);
        Ok(())
    }

    fn snapshot(&self) -> io::Result<Vec<u8>> {
        Ok(self.buf.clone())
    }
}

/// A file-backed sink: frames are appended with plain `write` calls,
/// never `fsync`ed (see the module docs for the durability contract).
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    file: fs::File,
}

impl FileSink {
    /// Create (truncating any existing file) a fresh log at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = fs::OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        Ok(FileSink { path, file })
    }

    /// Open an existing log at `path` for further appends (creating it
    /// empty if absent). Existing bytes are preserved — `snapshot`
    /// returns them ahead of anything appended through this sink.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = fs::OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileSink { path, file })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogSink for FileSink {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.file.write_all(frame)
    }

    fn snapshot(&self) -> io::Result<Vec<u8>> {
        fs::read(&self.path)
    }
}
