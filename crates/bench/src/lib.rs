//! # ddrs-bench — experiment harness
//!
//! Shared helpers for the Criterion benches and the `repro` binary that
//! regenerates every figure/theorem-scale experiment of the paper (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
//! outcomes).

use std::time::Instant;

use ddrs_rangetree::{Point, Rect};
use ddrs_workloads::{PointDistribution, QueryDistribution, QueryWorkload, WorkloadBuilder};

/// Standard uniform point workload used across experiments.
pub fn uniform_points<const D: usize>(seed: u64, n: usize) -> Vec<Point<D>> {
    WorkloadBuilder::new(seed, n).points(PointDistribution::UniformCube { side: 1 << 20 })
}

/// Standard query batch at a target selectivity.
pub fn selectivity_queries<const D: usize>(
    pts: &[Point<D>],
    seed: u64,
    fraction: f64,
    count: usize,
) -> Vec<Rect<D>> {
    QueryWorkload::from_points(pts, seed)
        .queries(QueryDistribution::Selectivity { fraction }, count)
}

/// Hot-spot query batch (all queries in one small region).
pub fn hotspot_queries<const D: usize>(pts: &[Point<D>], seed: u64, count: usize) -> Vec<Rect<D>> {
    QueryWorkload::from_points(pts, seed)
        .queries(QueryDistribution::HotSpot { region: 0.03, fraction: 0.5 }, count)
}

/// Wall-clock one closure, in milliseconds.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

/// Render one table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

/// Print a table: header + rows, with a rule. When the `DDRS_CSV_DIR`
/// environment variable is set, the same table is also written there as
/// CSV (named after the first word of the title) for plotting or
/// regression tracking.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(4))
        .collect();
    println!("{}", row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for r in rows {
        println!("{}", row(r, &widths));
    }
    if let Ok(dir) = std::env::var("DDRS_CSV_DIR") {
        let mut csv = ddrs_workloads::CsvTable::new(header);
        for r in rows {
            csv.push_row(r.clone());
        }
        let name = title.split_whitespace().next().unwrap_or("table").to_lowercase();
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        if let Err(e) = csv.write_to(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(csv written to {})", path.display());
        }
    }
}
