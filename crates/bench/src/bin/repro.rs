//! `repro` — regenerate every figure and theorem-scale experiment of the
//! paper.
//!
//! The paper (a theory paper) has no empirical tables; its results are
//! Figures 1–3 (structural) and Theorems 1–4 with Corollaries (complexity
//! bounds). Each subcommand reproduces one of them on the CGM simulator;
//! EXPERIMENTS.md records the expected-vs-measured outcome per experiment.
//!
//! ```text
//! cargo run --release -p ddrs-bench --bin repro -- all
//! cargo run --release -p ddrs-bench --bin repro -- t2
//! ```

use std::collections::BTreeMap;

use ddrs_baselines::{
    BruteForce, KdTree, LayeredRangeTree2d, ReplicatedRangeTree, WeightedDominance2d,
};
use ddrs_bench::{hotspot_queries, print_table, selectivity_queries, time_ms, uniform_points};
use ddrs_cgm::Machine;
use ddrs_client::RangeStore;
use ddrs_engine::QueryBatch;
use ddrs_rangetree::dist::construct::construct;
use ddrs_rangetree::dist::search::{balance_visits, hat_stage, tree_for, QueryRec};
use ddrs_rangetree::{
    heap, label, DistRangeTree, DynamicDistRangeTree, Point, RankSpace, SeqRangeTree, Sum,
};
use ddrs_service::{Service, ServiceConfig};
use ddrs_workloads::{ArrivalProcess, ArrivalTrace, QueryDistribution, QueryMode, QueryWorkload};

/// The per-stage latency attribution as a JSON object (mean µs per
/// stage), for the `stage_breakdown_us` field of the BENCH files.
fn stage_json(stages: &ddrs_trace::StageBreakdown) -> String {
    let fields = stages
        .stages()
        .iter()
        .map(|(name, agg)| format!("\"{name}\": {:.1}", agg.mean_us()))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{fields}}}")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let all = which == "all";
    let mut ran = false;
    for (name, f) in EXPERIMENTS {
        if all || which == *name {
            f();
            ran = true;
        }
    }
    if !ran {
        eprintln!("unknown experiment '{which}'. available:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }
}

const EXPERIMENTS: &[(&str, fn())] = &[
    ("fig1", fig1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("t1", t1),
    ("t2", t2),
    ("t3", t3),
    ("t4a", t4a),
    ("t4b", t4b),
    ("b1", b1),
    ("b2", b2),
    ("a1", a1),
    ("a2", a2),
    ("e1", e1),
    ("e2", e2),
    ("e3", e3),
    ("e4", e4),
    ("e5", e5),
    ("e6", e6),
];

/// Figure 1: the segment tree structure for [1, 8].
fn fig1() {
    println!("\n## FIG1 — segment tree for [1,8] (paper Figure 1)\n");
    let m = 8usize;
    let mut by_level: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for v in 1..2 * m {
        let (a, b) = heap::span(m, v);
        let lvl = heap::level(m, v);
        // Paper convention: 1-based segments, the last leaf degenerate.
        let seg =
            if b == m { format!("[{},{}]", a + 1, b) } else { format!("[{},{})", a + 1, b + 1) };
        by_level.entry(lvl).or_default().push(seg);
    }
    for (lvl, segs) in by_level.iter().rev() {
        println!("level {lvl}: {}", segs.join(" "));
    }
    println!("\nexpected (paper): [1,8] / [1,5) [5,8] / [1,3) [3,5) [5,7) [7,8] / 8 leaves");
}

/// Figure 2: the Index/Level label algebra.
fn fig2() {
    println!("\n## FIG2 — Index and Level of nodes of T (paper Figure 2)\n");
    let m_i = 8usize;
    let u = 5usize; // a node U at level 1 in dimension i
    let x = label::index_in_tree(1, u);
    println!("U in dimension i:   Index(U) = x = {x}, Level(U) = {}", heap::level(m_i, u));
    println!("children of U:      Index = 2x = {}, 2x+1 = {}, Level = 0", 2 * x, 2 * x + 1);
    let v = label::PathLabel::of(&[(u, m_i), (1, 4)]);
    println!(
        "V = root desc(U):   Index(V) = Index(U) = {}, Level(V) = {}",
        v.pairs[1].index, v.pairs[1].level
    );
    let leaves: Vec<u64> = (0..4)
        .map(|i| label::PathLabel::of(&[(u, m_i), (heap::leaf(4, i), 4)]).pairs[1].index)
        .collect();
    println!("leaves of desc(U):  Index = {leaves:?}  (= 4x .. 4x+3)");
    assert_eq!(leaves, vec![4 * x, 4 * x + 1, 4 * x + 2, 4 * x + 3]);
    println!("\nall Figure 2 identities hold ✓");
}

/// Figure 3: the hat and forest for p = 8 in dimension 1.
fn fig3() {
    println!("\n## FIG3 — hat of T in dimension 1 with forest, p = 8 (paper Figure 3)\n");
    let p = 8;
    let n = 2048usize;
    let machine = Machine::new(p).unwrap();
    let pts: Vec<Point<2>> = uniform_points(42, n);
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let rep = tree.structure_report();
    println!("n = {n}, d = 2, p = {p}, n/p = {}", n / p);
    println!("hat: {} nodes, replicated on all p processors", rep.hat_nodes);
    println!("log p = {} levels of the primary tree are in the hat", p.ilog2());
    println!(
        "forest: {} trees dealt round-robin; per-processor shard sizes {:?}",
        rep.forest_trees.iter().sum::<usize>(),
        rep.forest_nodes
    );
    println!(
        "descendant trees of hat nodes (dim 2) hold n, n/2, n/4 … points,\n\
         decomposed recursively into hat + forest parts — see the\n\
         `hat_anatomy` example for the per-tree breakdown."
    );
}

/// Theorem 1: |H| = O(p log^(d-1) p) = O(s/p); |F_i| = O(s/p), balanced.
fn t1() {
    let mut rows = Vec::new();
    for &(n, d) in &[(1usize << 12, 2u32), (1 << 14, 2), (1 << 16, 2), (1 << 10, 3), (1 << 12, 3)] {
        for &p in &[2usize, 4, 8, 16] {
            let machine = Machine::new(p).unwrap();
            let rep = match d {
                2 => {
                    let pts: Vec<Point<2>> = uniform_points(1, n);
                    DistRangeTree::<2>::build(&machine, &pts).unwrap().structure_report()
                }
                _ => {
                    let pts: Vec<Point<3>> = uniform_points(1, n);
                    DistRangeTree::<3>::build(&machine, &pts).unwrap().structure_report()
                }
            };
            let s_over_p = rep.total_nodes / p as u64;
            let max_shard = *rep.forest_nodes.iter().max().unwrap();
            let min_shard = *rep.forest_nodes.iter().min().unwrap();
            rows.push(vec![
                n.to_string(),
                d.to_string(),
                p.to_string(),
                rep.total_nodes.to_string(),
                s_over_p.to_string(),
                rep.hat_nodes.to_string(),
                format!("{:.3}", rep.hat_nodes as f64 / s_over_p as f64),
                max_shard.to_string(),
                format!("{:.3}", max_shard as f64 / s_over_p as f64),
                format!("{:.3}", max_shard as f64 / min_shard.max(1) as f64),
            ]);
        }
    }
    print_table(
        "T1 — Theorem 1: hat and forest-shard sizes vs s/p",
        &["n", "d", "p", "s(nodes)", "s/p", "|H|", "|H|/(s/p)", "max|F_i|", "max/(s/p)", "imbal"],
        &rows,
    );
    println!("\nclaim: |H|/(s/p) = O(1), shrinking in n; max|F_i|/(s/p) ≈ 1; imbal ≈ 1.");
}

/// Theorem 2 / Corollary 1: construction scales as seq/p + O(1) rounds.
fn t2() {
    let n = 1 << 15;
    let pts: Vec<Point<2>> = uniform_points(2, n);
    let (seq_ms, seq_tree) = time_ms(|| SeqRangeTree::build(&pts).unwrap());
    let mut rows = vec![vec![
        "seq".into(),
        format!("{seq_ms:.1}"),
        seq_tree.size_nodes().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]];
    for p in [1usize, 2, 4, 8, 16] {
        let machine = Machine::new(p).unwrap();
        let (ms, tree) = time_ms(|| DistRangeTree::<2>::build(&machine, &pts).unwrap());
        let stats = machine.take_stats();
        let rep = tree.structure_report();
        // Local construction work per processor = the nodes it builds
        // (its forest shard) plus its hat replica; the theorem's claim is
        // that the *maximum* share is s/p.
        let max_work = rep.hat_nodes + rep.forest_nodes.iter().max().unwrap();
        rows.push(vec![
            format!("p={p}"),
            format!("{ms:.1}"),
            max_work.to_string(),
            format!("{:.2}", rep.total_nodes as f64 / max_work as f64),
            stats.supersteps().to_string(),
            stats.max_h().to_string(),
        ]);
    }
    print_table(
        &format!("T2 — Theorem 2/Cor 1: construction, n = {n}, d = 2"),
        &["machine", "wall(ms)", "max nodes built/proc", "work speedup", "rounds", "max h(words)"],
        &rows,
    );
    println!(
        "\nclaim: rounds constant in p; max per-processor construction work\n\
         (nodes built) = s/p, i.e. work speedup ≈ p; h = O(s/p).\n\
         note: wall-clock cannot show parallel speedup on this host (the\n\
         simulator's p threads share the physical cores available — on a\n\
         single-core host they are purely time-sliced); the theorem's\n\
         quantities are the measured work shares and round counts."
    );
}

/// Theorem 3 / Corollary 2: n queries in O(s log n / p) + O(1) rounds.
fn t3() {
    let n = 1 << 14;
    let pts: Vec<Point<2>> = uniform_points(3, n);
    let queries = selectivity_queries(&pts, 7, 0.002, n / 2);
    let seq_tree = SeqRangeTree::build(&pts).unwrap();
    let (seq_ms, _) = time_ms(|| queries.iter().map(|q| seq_tree.count(q)).collect::<Vec<_>>());
    let mut rows = vec![vec![
        "seq".into(),
        format!("{seq_ms:.1}"),
        queries.len().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]];
    let ranks = RankSpace::build(&pts, 16).unwrap();
    let rq: Vec<QueryRec<2>> =
        queries.iter().enumerate().map(|(i, q)| (i as u32, ranks.translate(q))).collect();
    for p in [1usize, 2, 4, 8, 16] {
        let machine = Machine::new(p).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        machine.take_stats();
        let (ms, counts) = time_ms(|| tree.count_batch(&machine, &queries));
        let stats = machine.take_stats();
        assert_eq!(counts.len(), queries.len());
        // Per-processor query work: hat advances (the query share) plus
        // routed forest visits after balancing.
        let rpts = ranks.to_rpoints(&pts);
        let m = ranks.m();
        let share = m / p;
        let work: Vec<usize> = machine.run(|ctx| {
            let state =
                construct(ctx, rpts[ctx.rank() * share..(ctx.rank() + 1) * share].to_vec(), m);
            let mine: Vec<QueryRec<2>> =
                rq.iter().filter(|(qid, _)| *qid as usize % p == ctx.rank()).copied().collect();
            let hat_work = mine.len();
            let stage = hat_stage(&state, &mine);
            let (_trees, items) = balance_visits(ctx, &state, stage.visits);
            hat_work + items.len()
        });
        machine.take_stats();
        let total: usize = work.iter().sum();
        let max_work = *work.iter().max().unwrap();
        rows.push(vec![
            format!("p={p}"),
            format!("{ms:.1}"),
            max_work.to_string(),
            format!("{:.2}", total as f64 / max_work as f64),
            stats.supersteps().to_string(),
            stats.max_h().to_string(),
        ]);
    }
    print_table(
        &format!("T3 — Theorem 3/Cor 2: {} count queries, n = {n}, d = 2", queries.len()),
        &["machine", "wall(ms)", "max work/proc", "work speedup", "rounds", "max h(words)"],
        &rows,
    );
    println!(
        "\nclaim: rounds constant in p and n; max per-processor query work\n\
         (hat advances + routed visits) ≈ total/p, i.e. work speedup ≈ p.\n\
         note: wall-clock parallel speedup is not observable on a host with\n\
         fewer physical cores than p (threads are time-sliced)."
    );
}

/// Theorem 4(a): associative-function mode over selectivities.
fn t4a() {
    let n = 1 << 14;
    let pts: Vec<Point<2>> = uniform_points(4, n);
    let mut rows = Vec::new();
    for &sel in &[0.0001, 0.001, 0.01, 0.1] {
        let queries = selectivity_queries(&pts, 11, sel, 2048);
        for p in [2usize, 8] {
            let machine = Machine::new(p).unwrap();
            let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
            machine.take_stats();
            let (ms, sums) = time_ms(|| tree.aggregate_batch(&machine, Sum, &queries));
            let stats = machine.take_stats();
            let hits = sums.iter().filter(|s| s.is_some()).count();
            rows.push(vec![
                format!("{sel}"),
                p.to_string(),
                format!("{ms:.1}"),
                stats.supersteps().to_string(),
                stats.max_h().to_string(),
                hits.to_string(),
            ]);
        }
    }
    print_table(
        &format!("T4a — Theorem 4: associative-function (Sum), n = {n}, 2048 queries"),
        &["selectivity", "p", "wall(ms)", "rounds", "max h", "nonempty"],
        &rows,
    );
    println!(
        "\nclaim: wall roughly independent of selectivity (no k term in the\n\
         associative mode); rounds constant."
    );
}

/// Theorem 4(b): report mode with the k/p output term.
fn t4b() {
    let n = 1 << 14;
    let pts: Vec<Point<2>> = uniform_points(5, n);
    let p = 8;
    let machine = Machine::new(p).unwrap();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let mut rows = Vec::new();
    for &sel in &[0.0001, 0.001, 0.01, 0.05, 0.2] {
        let queries = selectivity_queries(&pts, 13, sel, 1024);
        machine.take_stats();
        let (ms, shares) = time_ms(|| tree.report_batch_raw(&machine, &queries));
        let stats = machine.take_stats();
        let k: usize = shares.iter().map(Vec::len).sum();
        let max_share = shares.iter().map(Vec::len).max().unwrap();
        rows.push(vec![
            format!("{sel}"),
            k.to_string(),
            format!("{ms:.1}"),
            (k.div_ceil(p)).to_string(),
            max_share.to_string(),
            stats.supersteps().to_string(),
            stats.max_h().to_string(),
        ]);
    }
    print_table(
        &format!("T4b — Theorem 4: report mode, n = {n}, p = {p}, 1024 queries"),
        &["selectivity", "k", "wall(ms)", "⌈k/p⌉", "max share", "rounds", "max h"],
        &rows,
    );
    println!(
        "\nclaim: max share = ⌈k/p⌉ exactly (balanced output); wall grows\n\
         linearly once k dominates; rounds constant."
    );
}

/// Baseline comparison (Section 1 claims): range tree vs k-d tree vs
/// layered vs brute force, sequential query times.
fn b1() {
    let mut rows = Vec::new();
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let pts: Vec<Point<2>> = uniform_points(6, n);
        let range = SeqRangeTree::build(&pts).unwrap();
        let kd = KdTree::build(pts.clone());
        let layered = LayeredRangeTree2d::build(&pts);
        let dominance = WeightedDominance2d::build(&pts);
        let brute = BruteForce::new(pts.clone());
        for &sel in &[0.0001, 0.01, 0.3] {
            let queries = selectivity_queries(&pts, 17, sel, 200);
            let (rt, c1) = time_ms(|| queries.iter().map(|q| range.count(q)).sum::<u64>());
            let (kt, c2) = time_ms(|| queries.iter().map(|q| kd.count(q)).sum::<u64>());
            let (lt, c3) = time_ms(|| queries.iter().map(|q| layered.count(q)).sum::<u64>());
            let (dt, c5) = time_ms(|| queries.iter().map(|q| dominance.count(q)).sum::<u64>());
            let (bt, c4) = time_ms(|| queries.iter().map(|q| brute.count(q)).sum::<u64>());
            assert!(c1 == c2 && c2 == c3 && c3 == c4 && c4 == c5, "baselines disagree");
            rows.push(vec![
                n.to_string(),
                format!("{sel}"),
                format!("{:.3}", rt / 200.0),
                format!("{:.3}", lt / 200.0),
                format!("{:.3}", dt / 200.0),
                format!("{:.3}", kt / 200.0),
                format!("{:.3}", bt / 200.0),
            ]);
        }
    }
    print_table(
        "B1 — §1 baselines: per-query count time (ms), d = 2",
        &["n", "selectivity", "range tree", "layered", "dominance", "k-d tree", "brute"],
        &rows,
    );
    println!(
        "\nclaim: tree structures win at low selectivity and large n (O(log^d n)\n\
         vs O(√n) vs O(n)); layered ≤ range tree; brute competitive only when\n\
         queries match large fractions."
    );
}

/// The replication strawman (Section 1): memory blow-up measured.
fn b2() {
    let n = 1 << 13;
    let pts: Vec<Point<2>> = uniform_points(8, n);
    let queries = selectivity_queries(&pts, 19, 0.001, 2048);
    let mut rows = Vec::new();
    for p in [2usize, 4, 8] {
        let machine = Machine::new(p).unwrap();
        let (dist_build, dist) = time_ms(|| DistRangeTree::<2>::build(&machine, &pts).unwrap());
        let rep_struct = dist.structure_report();
        let (dist_q, _) = time_ms(|| dist.count_batch(&machine, &queries));
        let (repl_build, repl) = time_ms(|| ReplicatedRangeTree::build(p, &pts).unwrap());
        let (repl_q, _) = time_ms(|| repl.count_batch(&queries));
        let dist_max_proc = rep_struct.hat_nodes + rep_struct.forest_nodes.iter().max().unwrap();
        rows.push(vec![
            p.to_string(),
            dist_max_proc.to_string(),
            repl.nodes_per_copy().to_string(),
            format!("{:.1}x", repl.nodes_per_copy() as f64 / dist_max_proc as f64),
            format!("{dist_build:.1}"),
            format!("{repl_build:.1}"),
            format!("{dist_q:.1}"),
            format!("{repl_q:.1}"),
        ]);
    }
    print_table(
        &format!("B2 — §1 replication strawman, n = {n}, d = 2, 2048 queries"),
        &[
            "p",
            "dist mem/proc",
            "repl mem/proc",
            "mem ratio",
            "dist build",
            "repl build",
            "dist query",
            "repl query",
        ],
        &rows,
    );
    println!(
        "\nclaim: replication's per-processor memory ≈ p× the distributed\n\
         structure's and does not shrink with p — the memory wall the paper\n\
         rejects — while its query latency is (unsurprisingly) lower."
    );
}

/// Ablation: the multisearch congestion balancing (Search steps 2–4)
/// on a hot-spot workload, vs naive route-to-owner.
fn a1() {
    let n = 1 << 14;
    let p = 8;
    let pts: Vec<Point<2>> = uniform_points(9, n);
    let queries = hotspot_queries(&pts, 23, 4096);
    let ranks = RankSpace::build(&pts, p).unwrap();
    let rpts = ranks.to_rpoints(&pts);
    let m = ranks.m();
    let share = m / p;
    let rq: Vec<QueryRec<2>> =
        queries.iter().enumerate().map(|(i, q)| (i as u32, ranks.translate(q))).collect();

    let run = |balanced: bool| -> (f64, Vec<usize>) {
        let machine = Machine::new(p).unwrap();
        time_ms(|| {
            machine.run(|ctx| {
                let lo = ctx.rank() * share;
                let state = construct(ctx, rpts[lo..lo + share].to_vec(), m);
                let mine: Vec<QueryRec<2>> =
                    rq.iter().filter(|(qid, _)| *qid as usize % p == ctx.rank()).copied().collect();
                let stage = hat_stage(&state, &mine);
                let mut sels = Vec::new();
                let mut work = 0usize;
                if balanced {
                    let (trees, items) = balance_visits(ctx, &state, stage.visits);
                    for (fid, (_qid, q)) in items {
                        sels.clear();
                        tree_for(&trees, &state, fid).tree.search(&q, &mut sels);
                        work += 1;
                    }
                } else {
                    // Naive: ship each visit to the tree's owner; no copies.
                    let owners: std::collections::HashMap<u64, usize> = ctx
                        .all_gather(
                            state
                                .forest
                                .keys()
                                .map(|&f| (f as u64, ctx.rank()))
                                .collect::<Vec<_>>(),
                        )
                        .into_iter()
                        .flatten()
                        .collect();
                    let routed = ctx.route(
                        stage
                            .visits
                            .into_iter()
                            .map(|(fid, q)| (owners[&fid], (fid, q)))
                            .collect::<Vec<_>>(),
                    );
                    for (fid, (_qid, q)) in routed {
                        sels.clear();
                        state.forest[&(fid as u32)].tree.search(&q, &mut sels);
                        work += 1;
                    }
                }
                work
            })
        })
    };

    let (ms_bal, loads_bal) = run(true);
    let (ms_naive, loads_naive) = run(false);
    let summarize = |loads: &[usize]| {
        let max = *loads.iter().max().unwrap();
        let total: usize = loads.iter().sum();
        (max, total, max as f64 / (total as f64 / p as f64).max(1.0))
    };
    let (bmax, btot, bratio) = summarize(&loads_bal);
    let (nmax, ntot, nratio) = summarize(&loads_naive);
    print_table(
        &format!(
            "A1 — ablation: congestion copying on a hot-spot batch (n={n}, p={p}, 4096 queries)"
        ),
        &["variant", "wall(ms)", "max visits/proc", "total visits", "max/mean"],
        &[
            vec![
                "balanced (paper)".into(),
                format!("{ms_bal:.1}"),
                bmax.to_string(),
                btot.to_string(),
                format!("{bratio:.2}"),
            ],
            vec![
                "route-to-owner".into(),
                format!("{ms_naive:.1}"),
                nmax.to_string(),
                ntot.to_string(),
                format!("{nratio:.2}"),
            ],
        ],
    );
    println!(
        "\nclaim: without copying, the hot trees' owners absorb nearly all\n\
         visits (max/mean → p); with the paper's c_j copies the load is\n\
         near the mean (max/mean → 1)."
    );
}

/// Engine: fused mixed-mode batches vs per-mode dispatch over a
/// multi-level dynamic store — machine submissions, supersteps, wall.
fn e1() {
    let p = 8;
    let machine = Machine::new(p).unwrap();
    let pts: Vec<Point<2>> = uniform_points(27, 1 << 13);
    let mut rows = Vec::new();
    for waves in [1usize, 2, 3, 4] {
        // `waves` insert batches with strictly shrinking sizes leave
        // `waves` occupied logarithmic-method levels.
        let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
        let mut lo = 0usize;
        for w in 0..waves {
            let size = (1 << 12) >> w;
            tree.insert_batch(&machine, &pts[lo..lo + size]).unwrap();
            lo += size;
        }
        assert_eq!(tree.occupied_levels(), waves);
        let mixed = QueryWorkload::from_points(&pts, 33).mixed(
            QueryDistribution::Selectivity { fraction: 0.005 },
            (1, 1, 1),
            1024,
        );
        let mut batch = QueryBatch::new(Sum);
        let (mut counts, mut aggs, mut reports) = (Vec::new(), Vec::new(), Vec::new());
        for q in &mixed {
            match q.mode {
                QueryMode::Count => {
                    batch.count(q.rect);
                    counts.push(q.rect);
                }
                QueryMode::Aggregate => {
                    batch.aggregate(q.rect);
                    aggs.push(q.rect);
                }
                QueryMode::Report => {
                    batch.report(q.rect);
                    reports.push(q.rect);
                }
            }
        }
        machine.take_stats();
        let (fused_ms, fused_out) = time_ms(|| batch.execute_dynamic(&machine, &tree));
        let fused_stats = machine.take_stats();
        let (pm_ms, pm_counts) = time_ms(|| {
            let c = tree.count_batch(&machine, &counts);
            tree.aggregate_batch(&machine, Sum, &aggs);
            tree.report_batch(&machine, &reports);
            c
        });
        let pm_stats = machine.take_stats();
        assert_eq!(fused_out.counts, pm_counts, "fused and per-mode counts agree");
        rows.push(vec![
            waves.to_string(),
            fused_stats.runs.to_string(),
            fused_stats.supersteps().to_string(),
            format!("{fused_ms:.1}"),
            pm_stats.runs.to_string(),
            pm_stats.supersteps().to_string(),
            format!("{pm_ms:.1}"),
        ]);
    }
    print_table(
        &format!("E1 — engine: fused mixed batch vs per-mode dispatch, p = {p}, 1024 queries"),
        &[
            "levels",
            "fused runs",
            "fused rounds",
            "fused ms",
            "per-mode runs",
            "per-mode rounds",
            "per-mode ms",
        ],
        &rows,
    );
    println!(
        "\nclaim: the fused batch is exactly one machine submission and a\n\
         constant number of supersteps independent of the level count and\n\
         mode mix; per-mode dispatch pays three submissions (and before the\n\
         fused engine it paid 3·levels)."
    );
}

/// Service: the serving layer under open-loop load — throughput and
/// latency vs offered load, coalesced dispatch vs one machine run per
/// query. Emits `BENCH_service.json` to start the perf trajectory.
fn e2() {
    use std::time::Instant;

    let p = 8;
    let clients = 8usize;
    let n_requests = 1600usize;
    let pts: Vec<Point<2>> = uniform_points(61, 1 << 13);
    let qw = QueryWorkload::from_points(&pts, 67);
    let queries = qw.queries(QueryDistribution::Selectivity { fraction: 0.005 }, n_requests);
    let build_store = |machine: &Machine| {
        let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
        tree.insert_batch(machine, &pts).unwrap();
        tree
    };

    // Baseline: every query pays its own machine run, 8 closed-loop
    // client threads sharing the machine.
    let machine = Machine::new(p).unwrap();
    let tree = build_store(&machine);
    let chunk = n_requests.div_ceil(clients);
    let naive_lat: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for qs in queries.chunks(chunk) {
            let (machine, tree, naive_lat) = (&machine, &tree, &naive_lat);
            s.spawn(move || {
                let mut lats = Vec::with_capacity(qs.len());
                for q in qs {
                    let t = Instant::now();
                    std::hint::black_box(tree.count_batch(machine, &[*q]));
                    lats.push(t.elapsed().as_micros() as u64);
                }
                naive_lat.lock().unwrap().extend(lats);
            });
        }
    });
    let naive_wall = t0.elapsed().as_secs_f64();
    let naive_rps = n_requests as f64 / naive_wall;
    // Same estimator as ServiceStats::latency_us (base-2 histogram
    // bucket upper bounds), so the two sides of the table and the JSON
    // are commensurable.
    let mut naive_hist = ddrs_service::Histogram::default();
    for l in naive_lat.into_inner().unwrap() {
        naive_hist.record(l);
    }
    let naive_p50 = naive_hist.quantile(0.5);
    let naive_p99 = naive_hist.quantile(0.99);

    // The service, swept over offered loads (open loop: arrivals do not
    // wait for completions).
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut best_rps = 0.0f64;
    for &rate in &[10_000.0f64, 40_000.0, 160_000.0] {
        let machine = Machine::new(p).unwrap();
        let tree = build_store(&machine);
        let service = Service::start(
            machine,
            tree,
            Sum,
            ServiceConfig {
                max_batch: 128,
                max_delay: std::time::Duration::from_micros(300),
                ..ServiceConfig::default()
            },
        );
        let trace =
            ArrivalTrace::generate(13, ArrivalProcess::Poisson { rate_hz: rate }, n_requests);
        let schedule: Vec<(std::time::Duration, ddrs_rangetree::Rect<2>)> =
            trace.at.iter().copied().zip(queries.iter().copied()).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for k in 0..clients {
                let service = &service;
                let schedule = &schedule;
                s.spawn(move || {
                    let mut tickets = Vec::new();
                    for (at, q) in schedule.iter().skip(k).step_by(clients) {
                        let target = start + *at;
                        let now = Instant::now();
                        if target > now {
                            std::thread::sleep(target - now);
                        }
                        tickets.push(service.count(*q).expect("submission rejected"));
                    }
                    for t in tickets {
                        t.wait().unwrap();
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let stats = service.stats();
        let rps = n_requests as f64 / wall;
        best_rps = best_rps.max(rps);
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{rps:.0}"),
            format!("{:.1}", stats.mean_batch_size()),
            format!("{:.1}", stats.coalescing_factor()),
            stats.machine.runs.to_string(),
            stats.p50_latency_us().to_string(),
            stats.p99_latency_us().to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"offered_rps\": {rate:.0}, \"achieved_rps\": {rps:.1}, \
             \"mean_batch\": {:.2}, \"queries_per_run\": {:.2}, \"machine_runs\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {:.1}, \"max_us\": {}, \
             \"stage_breakdown_us\": {}}}",
            stats.mean_batch_size(),
            stats.coalescing_factor(),
            stats.machine.runs,
            stats.p50_latency_us(),
            stats.p99_latency_us(),
            stats.latency_us.mean(),
            stats.latency_us.max(),
            stage_json(&stats.stages),
        ));
    }
    rows.push(vec![
        "naive".into(),
        format!("{naive_rps:.0}"),
        "1.0".into(),
        "1.0".into(),
        n_requests.to_string(),
        naive_p50.to_string(),
        naive_p99.to_string(),
    ]);
    print_table(
        &format!(
            "E2 — service: open-loop load sweep, p = {p}, {clients} clients, {n_requests} queries"
        ),
        &["offered rps", "achieved rps", "mean batch", "q/run", "runs", "p50 µs", "p99 µs"],
        &rows,
    );
    println!(
        "\nclaim: the service coalesces concurrent arrivals into few fused runs\n\
         (mean batch ≫ 1), sustaining ≥ 3× the one-run-per-query throughput at\n\
         saturation (measured: {:.1}×).",
        best_rps / naive_rps
    );
    let json = format!(
        "{{\n  \"experiment\": \"e2\",\n  \"p\": {p},\n  \"clients\": {clients},\n  \
         \"requests\": {n_requests},\n  \"coalesced\": [\n{}\n  ],\n  \
         \"one_run_per_query\": {{\"achieved_rps\": {naive_rps:.1}, \"p50_us\": {naive_p50}, \
         \"p99_us\": {naive_p99}, \"mean_us\": {:.1}, \"max_us\": {}}},\n  \
         \"speedup_at_saturation\": {:.2}\n}}\n",
        json_rows.join(",\n"),
        naive_hist.mean(),
        naive_hist.max(),
        best_rps / naive_rps
    );
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => println!("(json written to BENCH_service.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_service.json: {e}"),
    }
}

/// Sharding: strong scaling at a fixed total simulated-processor budget
/// P — S range-partitioned groups of p = P/S processors each, serving
/// closed-loop clients that submit multi-op request blocks. Routing
/// sends each narrow query only to the slab(s) it overlaps, so more
/// shards mean smaller per-run SPMD choreography *and* concurrent
/// per-shard windows — machine runs no longer scale with S. Plus the
/// rebalance-pause measurement. Emits `BENCH_shard.json`.
fn e3() {
    use std::time::Instant;

    use ddrs_client::Request;

    let budget = 4usize; // total simulated processors, fixed across the sweep
    let clients = 8usize;
    let per_block = 64usize;
    let blocks = 3usize;
    let n_requests = clients * per_block * blocks;
    let pts: Vec<Point<2>> = uniform_points(61, 1 << 13);
    let qw = QueryWorkload::from_points(&pts, 67);
    let queries =
        qw.queries(QueryDistribution::Selectivity { fraction: 0.005 }, clients * per_block);

    let run_sweep = |shards: usize| -> (f64, ddrs_shard::ShardedStats) {
        let p = budget / shards;
        let machines: Vec<Machine> = (0..shards).map(|_| Machine::new(p).unwrap()).collect();
        let service = ddrs_shard::ShardedService::start(
            machines,
            1 << 9,
            &pts,
            Sum,
            ddrs_shard::PartitionPolicy::range_from_sample(shards, &pts),
            ddrs_shard::ShardedConfig {
                max_batch: 128,
                max_delay: std::time::Duration::from_micros(300),
                queue_capacity: 1 << 16,
                ..Default::default()
            },
        )
        .expect("building the sharded store");
        // Closed-loop clients, one multi-op block of `per_block` counts
        // per round: the e4-proven submission shape, so the sweep
        // measures dispatch and machine cost, not queue transactions.
        let start = Instant::now();
        std::thread::scope(|s| {
            for qs in queries.chunks(per_block) {
                let service = &service;
                s.spawn(move || {
                    for _ in 0..blocks {
                        let mut req = Request::new();
                        let handles: Vec<_> = qs.iter().map(|q| req.count(*q)).collect();
                        let resp = service.submit(req).unwrap().wait().unwrap().value;
                        std::hint::black_box(
                            handles.into_iter().map(|h| resp.count(h)).sum::<u64>(),
                        );
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let stats = service.stats();
        service.shutdown();
        (n_requests as f64 / wall, stats)
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut rps_by_s = std::collections::BTreeMap::new();
    for shards in [1usize, 2, 4] {
        let (rps, stats) = run_sweep(shards);
        rps_by_s.insert(shards, rps);
        rows.push(vec![
            format!("{shards}×p{}", budget / shards),
            format!("{rps:.0}"),
            format!("{:.1}", stats.mean_batch_size()),
            format!("{:.2}", stats.mean_read_fanout()),
            stats.machine.runs.to_string(),
            stats.p50_latency_us().to_string(),
            stats.p99_latency_us().to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"shards\": {shards}, \"p_per_shard\": {}, \"achieved_rps\": {rps:.1}, \
             \"mean_batch\": {:.2}, \"mean_read_fanout\": {:.3}, \"machine_runs\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {:.1}, \"max_us\": {}, \
             \"stage_breakdown_us\": {}}}",
            budget / shards,
            stats.mean_batch_size(),
            stats.mean_read_fanout(),
            stats.machine.runs,
            stats.p50_latency_us(),
            stats.p99_latency_us(),
            stats.latency_us.mean(),
            stats.latency_us.max(),
            stage_json(&stats.stages),
        ));
    }

    // Rebalance pause: pile everything onto one shard of a two-group
    // service, then measure the wall time of one skew-healing split
    // while the service keeps its serving loop (the split runs between
    // dispatches — the pause is what a client-visible request would
    // wait behind the migration).
    let machines: Vec<Machine> = (0..2).map(|_| Machine::new(budget / 2).unwrap()).collect();
    let service = ddrs_shard::ShardedService::start(
        machines,
        1 << 9,
        &pts, // bounds put every point on shard 0
        Sum,
        ddrs_shard::PartitionPolicy::Range { bounds: vec![i64::MAX] },
        ddrs_shard::ShardedConfig::default(),
    )
    .expect("building the rebalance store");
    let t0 = Instant::now();
    let report = service.split_shard(0).unwrap().wait().unwrap().value;
    let pause_ms = t0.elapsed().as_secs_f64() * 1e3;
    let probe = service
        .count(ddrs_rangetree::Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]))
        .unwrap();
    let post_split_count = probe.wait().unwrap().value;
    assert_eq!(post_split_count, pts.len() as u64, "no point lost in migration");
    service.shutdown();

    rows.push(vec![
        format!("split {}→{}", report.from, report.to),
        format!("{:.1}ms", pause_ms),
        report.moved.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    print_table(
        &format!(
            "E3 — sharding: strong scaling at a fixed budget of {budget} simulated \
             processors ({clients} clients × blocks of {per_block}, {n_requests} queries)"
        ),
        &["S×p", "achieved rps", "mean batch", "read fanout", "runs", "p50 µs", "p99 µs"],
        &rows,
    );
    let speedup = rps_by_s[&4] / rps_by_s[&1];
    if speedup < 3.0 {
        eprintln!(
            "warning: e3 shard-scaling regression — speedup_s4_vs_s1 = {speedup:.2}, \
             expected >= 3.0 (single-shard routing + concurrent per-shard windows)"
        );
    }
    // The PR 3 reference point: the unsharded service's saturation rps
    // as recorded by experiment e2 (one p = 8 group). Crude but
    // dependency-free extraction: the largest achieved_rps in the file.
    let reference = std::fs::read_to_string("BENCH_service.json")
        .ok()
        .map(|text| {
            text.match_indices("\"achieved_rps\":")
                .filter_map(|(i, key)| {
                    let rest = &text[i + key.len()..];
                    let num: String = rest
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_ascii_digit() || *c == '.')
                        .collect();
                    num.parse::<f64>().ok()
                })
                .fold(0.0f64, f64::max)
        })
        .filter(|&r| r > 0.0);
    let vs_reference = reference.map(|r| rps_by_s[&4] / r);
    println!(
        "\nclaim: at a fixed budget of {budget} simulated processors, splitting\n\
         the store into S=4 single-processor groups beats one p=4 group by\n\
         {speedup:.2}× (goal ≥ 3×): single-shard routing keeps the mean read\n\
         fan-out near 1, each window dispatches concurrently on its own\n\
         shard thread, and every run pays p=1 choreography instead of p=4.\n\
         Against the e2 single-service reference ({}) the S=4 router\n\
         sustains {:.0} rps ({}). A skew-healing split migrates {} points\n\
         with a {pause_ms:.1}ms pause, serving before and after.",
        reference.map_or("<BENCH_service.json missing>".into(), |r| format!("{r:.0} rps")),
        rps_by_s[&4],
        vs_reference.map_or("n/a".into(), |x| format!("{x:.2}×")),
        report.moved
    );
    let json = format!(
        "{{\n  \"experiment\": \"e3\",\n  \"processor_budget\": {budget},\n  \
         \"clients\": {clients},\n  \"queries_per_block\": {per_block},\n  \
         \"requests\": {n_requests},\n  \"sweep\": [\n{}\n  ],\n  \
         \"speedup_s4_vs_s1\": {speedup:.2},\n  \
         \"reference_service_saturation_rps\": {},\n  \
         \"speedup_s4_vs_service_reference\": {},\n  \
         \"rebalance\": {{\"from\": {}, \"to\": {}, \"moved\": {}, \"pause_ms\": {pause_ms:.2}}}\n}}\n",
        json_rows.join(",\n"),
        reference.map_or("null".into(), |r| format!("{r:.1}")),
        vs_reference.map_or("null".into(), |x| format!("{x:.2}")),
        report.from,
        report.to,
        report.moved,
    );
    match std::fs::write("BENCH_shard.json", &json) {
        Ok(()) => println!("(json written to BENCH_shard.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_shard.json: {e}"),
    }
}

/// Client API: multi-op `Request` vs N individual submissions against
/// the same service — the submission-amortization contrast of the
/// unified client contract. Emits `BENCH_client.json`.
fn e4() {
    use std::time::Instant;

    use ddrs_client::Request;

    let p = 8;
    let clients = 8usize;
    let per_client = 64usize;
    let blocks = 3usize; // blocks of `per_client` queries per client
    let pts: Vec<Point<2>> = uniform_points(61, 1 << 13);
    let qw = QueryWorkload::from_points(&pts, 67);
    let queries =
        qw.queries(QueryDistribution::Selectivity { fraction: 0.005 }, clients * per_client);
    let n_requests = clients * per_client * blocks;

    let start_service = || {
        let machine = Machine::new(p).unwrap();
        let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
        tree.insert_batch(&machine, &pts).unwrap();
        Service::start(
            machine,
            tree,
            Sum,
            ServiceConfig {
                max_batch: 512,
                max_delay: std::time::Duration::from_micros(200),
                ..ServiceConfig::default()
            },
        )
    };

    // Each mode answers the same `n_requests` counting queries with 8
    // closed-loop client threads; what varies is how a client hands a
    // block of 64 queries to the service.
    let run = |mode: &str| -> (f64, ddrs_service::ServiceStats) {
        let service = start_service();
        let t0 = Instant::now();
        for _ in 0..blocks {
            std::thread::scope(|s| {
                for qs in queries.chunks(per_client) {
                    let service = &service;
                    s.spawn(move || match mode {
                        "multi_op" => {
                            let mut req = Request::new();
                            let handles: Vec<_> = qs.iter().map(|q| req.count(*q)).collect();
                            let resp = service.submit(req).unwrap().wait().unwrap().value;
                            handles.into_iter().map(|h| resp.count(h)).sum::<u64>()
                        }
                        "individual_pipelined" => {
                            let tickets: Vec<_> =
                                qs.iter().map(|q| service.count(*q).unwrap()).collect();
                            tickets.into_iter().map(|t| t.wait().unwrap().value).sum::<u64>()
                        }
                        "individual_sequential" => qs
                            .iter()
                            .map(|q| service.count(*q).unwrap().wait().unwrap().value)
                            .sum::<u64>(),
                        _ => unreachable!(),
                    });
                }
            });
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats = service.stats();
        service.shutdown();
        (n_requests as f64 / wall, stats)
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut rps_by_mode = std::collections::BTreeMap::new();
    for mode in ["multi_op", "individual_pipelined", "individual_sequential"] {
        let (rps, stats) = run(mode);
        rps_by_mode.insert(mode, rps);
        rows.push(vec![
            mode.to_string(),
            format!("{rps:.0}"),
            format!("{:.1}", stats.mean_batch_size()),
            stats.dispatches.to_string(),
            stats.machine.runs.to_string(),
            stats.p50_latency_us().to_string(),
            stats.p99_latency_us().to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"mode\": \"{mode}\", \"achieved_rps\": {rps:.1}, \"mean_batch\": {:.2}, \
             \"dispatches\": {}, \"machine_runs\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"mean_us\": {:.1}, \"max_us\": {}}}",
            stats.mean_batch_size(),
            stats.dispatches,
            stats.machine.runs,
            stats.p50_latency_us(),
            stats.p99_latency_us(),
            stats.latency_us.mean(),
            stats.latency_us.max(),
        ));
    }
    print_table(
        &format!(
            "E4 — client API: one multi-op Request vs {per_client} individual \
             submissions (p = {p}, {clients} clients, {n_requests} queries)"
        ),
        &["mode", "achieved rps", "mean batch", "dispatches", "runs", "p50 µs", "p99 µs"],
        &rows,
    );
    let vs_sequential = rps_by_mode["multi_op"] / rps_by_mode["individual_sequential"];
    let vs_pipelined = rps_by_mode["multi_op"] / rps_by_mode["individual_pipelined"];
    println!(
        "\nclaim: a client needing a block of answers should compose ONE\n\
         request — its reads fuse into one guaranteed dispatch instead of\n\
         paying {per_client} queue transactions (and, for dependent-flow\n\
         clients, {per_client} dispatch round trips). Goal ≥ 2× over\n\
         individual sequential submissions at {clients} clients; measured\n\
         {vs_sequential:.1}× (and {vs_pipelined:.2}× vs the pipelined\n\
         request-less best case)."
    );
    let json = format!(
        "{{\n  \"experiment\": \"e4\",\n  \"p\": {p},\n  \"clients\": {clients},\n  \
         \"queries_per_block\": {per_client},\n  \"requests\": {n_requests},\n  \
         \"modes\": [\n{}\n  ],\n  \"speedup_multi_op_vs_sequential\": {vs_sequential:.2},\n  \
         \"speedup_multi_op_vs_pipelined\": {vs_pipelined:.2}\n}}\n",
        json_rows.join(",\n"),
    );
    match std::fs::write("BENCH_client.json", &json) {
        Ok(()) => println!("(json written to BENCH_client.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_client.json: {e}"),
    }
}

/// Durability: kill one of two shard groups mid-load with a simulated
/// processor panic, recover it live from its per-shard write-ahead log,
/// and verify the healed service against a sequential oracle replay of
/// every committed seq. Emits `BENCH_recovery.json` with the recovery
/// time for a ≥ 64k-point shard.
fn e5() {
    use std::time::Instant;

    use ddrs_rangetree::Rect;

    let shards = 2usize;
    let p = 2usize;
    let n_initial = 1usize << 17; // 64k per shard before streaming
    let block_size = 1024usize;
    let n_blocks = 32usize;
    let kill_at = n_blocks / 2;
    let killed = 1usize;

    let all_pts: Vec<Point<2>> = uniform_points(91, n_initial + n_blocks * block_size);
    let initial = &all_pts[..n_initial];
    let machines: Vec<Machine> = (0..shards).map(|_| Machine::new(p).unwrap()).collect();
    let service = ddrs_shard::ShardedService::start(
        machines,
        1 << 9,
        initial,
        Sum,
        ddrs_shard::PartitionPolicy::range_from_sample(shards, initial),
        ddrs_shard::ShardedConfig {
            max_delay: std::time::Duration::from_micros(200),
            queue_capacity: 1 << 14,
            ..Default::default()
        },
    )
    .expect("building the recovery store");

    // The injected processor panic (and the sibling-cancellation
    // unwinds it triggers) is expected: silence panic output from the
    // simulated processors — any real failure there still surfaces as a
    // structured machine error. The default hook handles everything else.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let simulated = std::thread::current().name().is_some_and(|n| n.starts_with("cgm-worker"));
        if !simulated {
            default_hook(info);
        }
    }));

    // The committed history, (seq, event), for the post-recovery oracle
    // replay. Uniform blocks span both range slabs, so every block after
    // the kill fails against the quarantine until recovery heals it.
    enum Ev {
        Insert(std::ops::Range<usize>),
        Count(Rect<2>, u64),
    }
    let everything = Rect::new([i64::MIN, i64::MIN], [i64::MAX, i64::MAX]);
    let mut events: Vec<(u64, Ev)> = Vec::new();
    let c0 = service.count(everything).unwrap().wait().unwrap();
    events.push((c0.seq, Ev::Count(everything, c0.value)));
    let (mut committed_blocks, mut failed_blocks) = (0usize, 0usize);
    for b in 0..n_blocks {
        if b == kill_at {
            service.fail_next_write_epoch(killed);
        }
        let lo = n_initial + b * block_size;
        let block = &all_pts[lo..lo + block_size];
        match service.insert(block.to_vec()).unwrap().wait() {
            Ok(c) => {
                committed_blocks += 1;
                events.push((c.seq, Ev::Insert(lo..lo + block_size)));
            }
            Err(ddrs_service::ServiceError::Machine(msg)) => {
                assert!(
                    msg.contains("write epoch aborted") || msg.contains("poisoned"),
                    "unexpected load failure: {msg}"
                );
                failed_blocks += 1;
            }
            Err(other) => panic!("unexpected load failure: {other:?}"),
        }
    }
    let pre = service.stats();
    let reason = pre.per_shard[killed].poisoned.clone().expect("the kill must quarantine");
    assert!(pre.per_shard[1 - killed].poisoned.is_none(), "blast radius must stop at the shard");

    // Live recovery from the shard's write-ahead log.
    let t0 = Instant::now();
    let rec = service.recover_shard(killed).unwrap().wait().expect("recovery must succeed").value;
    let recover_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(rec.clean_tail, "in-memory log must decode cleanly");
    assert!(
        rec.live_points >= 1 << 16,
        "acceptance: a >= 64k-point shard must be recovered, got {}",
        rec.live_points
    );

    // Post-recovery: the whole keyspace serves again, and every
    // committed response replays exactly through the flat oracle.
    let c1 = service.count(everything).unwrap().wait().unwrap();
    events.push((c1.seq, Ev::Count(everything, c1.value)));
    let quarter = Rect::new([i64::MIN, i64::MIN], [0, 0]);
    let c2 = service.count(quarter).unwrap().wait().unwrap();
    events.push((c2.seq, Ev::Count(quarter, c2.value)));
    events.sort_by_key(|(seq, _)| *seq);
    let mut oracle: Vec<Point<2>> = initial.to_vec();
    for (seq, ev) in &events {
        match ev {
            Ev::Insert(range) => oracle.extend_from_slice(&all_pts[range.clone()]),
            Ev::Count(q, observed) => {
                let want = oracle.iter().filter(|pt| q.contains(pt)).count() as u64;
                assert_eq!(want, *observed, "oracle replay diverged at seq {seq}");
            }
        }
    }
    let total = oracle.len();

    // The registry carries the same recovery telemetry the report does.
    let stats = service.stats();
    let registry = ddrs_trace::MetricsRegistry::new();
    stats.register_into(&registry, "sharded");
    let registry_p50 = match registry.snapshot().get("sharded.recovery_us") {
        Some(ddrs_trace::MetricValue::Histogram(h)) => h.quantile(0.5),
        other => panic!("sharded.recovery_us missing from the registry: {other:?}"),
    };
    service.shutdown();
    let _ = std::panic::take_hook(); // back to the default hook

    print_table(
        &format!(
            "E5 — durability: kill shard {killed} mid-load, recover from its WAL \
             ({shards} shards × p{p}, {n_initial} initial + {n_blocks}×{block_size} streamed)"
        ),
        &["phase", "blocks", "shard points", "wal records", "recovery ms"],
        &[
            vec![
                "committed".into(),
                committed_blocks.to_string(),
                pre.per_shard[killed].live_points.to_string(),
                pre.per_shard[killed].wal_records.to_string(),
                "-".into(),
            ],
            vec![
                format!("failed ({})", reason.split(':').next().unwrap_or("quarantined")),
                failed_blocks.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
            vec![
                "recovered".into(),
                "-".into(),
                rec.live_points.to_string(),
                rec.replayed_records.to_string(),
                format!("{:.1}", rec.duration.as_secs_f64() * 1e3),
            ],
        ],
    );
    println!(
        "\nclaim: a mid-load processor panic quarantines exactly one shard;\n\
         recover_shard() replays its {} WAL records into a fresh {}-point\n\
         store in {:.1}ms (wall incl. dispatch {recover_wall_ms:.1}ms), the shard\n\
         rejoins live, and the oracle replay of all {} committed seqs\n\
         reproduces every response exactly ({} points total).",
        rec.replayed_records,
        rec.live_points,
        rec.duration.as_secs_f64() * 1e3,
        events.len(),
        total,
    );
    let json = format!(
        "{{\n  \"experiment\": \"e5\",\n  \"shards\": {shards},\n  \"p_per_shard\": {p},\n  \
         \"initial_points\": {n_initial},\n  \"block_size\": {block_size},\n  \
         \"streamed_blocks\": {n_blocks},\n  \"committed_blocks\": {committed_blocks},\n  \
         \"failed_blocks\": {failed_blocks},\n  \"killed_shard\": {killed},\n  \
         \"quarantine\": \"{}\",\n  \"wal_records_at_kill\": {},\n  \
         \"wal_bytes_at_kill\": {},\n  \"replayed_records\": {},\n  \
         \"recovered_live_points\": {},\n  \"clean_tail\": {},\n  \
         \"recovery_ms\": {:.2},\n  \"recovery_wall_ms\": {recover_wall_ms:.2},\n  \
         \"registry_recovery_p50_us\": {registry_p50},\n  \
         \"oracle_replay\": \"exact\",\n  \"post_recovery_total_points\": {total}\n}}\n",
        reason.split(':').next().unwrap_or("quarantined"),
        pre.per_shard[killed].wal_records,
        pre.per_shard[killed].wal_bytes,
        rec.replayed_records,
        rec.live_points,
        rec.clean_tail,
        rec.duration.as_secs_f64() * 1e3,
    );
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("(json written to BENCH_recovery.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_recovery.json: {e}"),
    }
}

/// The construction caveat (Section 5): per-phase sorted record volume.
fn a2() {
    let mut rows = Vec::new();
    for &(n, d) in &[(1usize << 14, 2u32), (1 << 12, 3)] {
        for &p in &[4usize, 16] {
            let machine = Machine::new(p).unwrap();
            let recs = match d {
                2 => {
                    let pts: Vec<Point<2>> = uniform_points(10, n);
                    DistRangeTree::<2>::build(&machine, &pts).unwrap().phase_records()
                }
                _ => {
                    let pts: Vec<Point<3>> = uniform_points(10, n);
                    DistRangeTree::<3>::build(&machine, &pts).unwrap().phase_records()
                }
            };
            let logp = (p as f64).log2();
            let bound: Vec<u64> =
                (0..d).map(|j| ((n as f64) * logp.powi(j as i32)).round() as u64).collect();
            rows.push(vec![
                n.to_string(),
                d.to_string(),
                p.to_string(),
                format!("{recs:?}"),
                format!("{bound:?}"),
            ]);
        }
    }
    print_table(
        "A2 — §5 caveat: records sorted per phase |S^j| vs n·log^j p",
        &["n", "d", "p", "measured |S^j|", "bound n·log^j p"],
        &rows,
    );
    println!(
        "\nclaim: |S^0| = n (padded); later phases sort ≈ n·log^j p records,\n\
         not n — the acknowledged sub-optimality of Construct."
    );
}

/// Network front-end: the E4 closed-loop multi-op workload, but over a
/// real TCP loopback — `NetServer` + `RemoteStore` — swept across
/// client connection-pool sizes against the in-process reference.
/// Emits `BENCH_net.json`.
fn e6() {
    use std::sync::Arc;
    use std::time::Instant;

    use ddrs_client::Request;
    use ddrs_net::{NetConfig, NetServer, RemoteConfig, RemoteStore};

    let p = 8;
    let clients = 8usize;
    let per_client = 64usize;
    let blocks = 3usize;
    let pts: Vec<Point<2>> = uniform_points(61, 1 << 13);
    let qw = QueryWorkload::from_points(&pts, 67);
    let queries =
        qw.queries(QueryDistribution::Selectivity { fraction: 0.005 }, clients * per_client);
    let n_queries = clients * per_client * blocks;

    let start_service = || {
        let machine = Machine::new(p).unwrap();
        let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
        tree.insert_batch(&machine, &pts).unwrap();
        Arc::new(Service::start(
            machine,
            tree,
            Sum,
            ServiceConfig {
                max_batch: 512,
                max_delay: std::time::Duration::from_micros(200),
                ..ServiceConfig::default()
            },
        ))
    };

    // Closed-loop driver: `clients` threads, each submitting one
    // multi-op request of `per_client` counts per block and waiting for
    // it. Returns (wall seconds, per-request latencies in µs).
    let drive = |store: &(dyn RangeStore<Sum, 2> + Sync)| -> (f64, Vec<u64>) {
        let mut latencies = Vec::with_capacity(clients * blocks);
        let t0 = Instant::now();
        for _ in 0..blocks {
            std::thread::scope(|s| {
                let handles: Vec<_> = queries
                    .chunks(per_client)
                    .map(|qs| {
                        s.spawn(move || {
                            let mut req = Request::new();
                            let handles: Vec<_> = qs.iter().map(|q| req.count(*q)).collect();
                            let t = Instant::now();
                            let resp = store.submit(req).unwrap().wait().unwrap().value;
                            let us = t.elapsed().as_micros() as u64;
                            let total: u64 = handles.into_iter().map(|h| resp.count(h)).sum();
                            assert!(total < u64::MAX);
                            us
                        })
                    })
                    .collect();
                latencies.extend(handles.into_iter().map(|h| h.join().unwrap()));
            });
        }
        (t0.elapsed().as_secs_f64(), latencies)
    };

    let pct = |sorted: &[u64], q: f64| -> u64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    };

    // In-process reference: the same driver straight at the service.
    let service = start_service();
    let (wall, mut lats) = drive(service.as_ref());
    lats.sort_unstable();
    let inproc_rps = n_queries as f64 / wall;
    let (inproc_p50, inproc_p99) = (pct(&lats, 0.5), pct(&lats, 0.99));
    let inproc_stats = service.stats();
    Arc::try_unwrap(service).unwrap_or_else(|_| panic!("sole owner")).shutdown();

    let mut rows = vec![vec![
        "in-process".into(),
        "-".into(),
        format!("{inproc_rps:.0}"),
        "1.00".into(),
        inproc_p50.to_string(),
        inproc_p99.to_string(),
        inproc_stats.machine.runs.to_string(),
    ]];
    let mut json_rows = vec![format!(
        "    {{\"mode\": \"in_process\", \"connections\": 0, \"achieved_rps\": {inproc_rps:.1}, \
         \"relative_to_in_process\": 1.0, \"p50_us\": {inproc_p50}, \"p99_us\": {inproc_p99}, \
         \"machine_runs\": {}, \"dispatches\": {}}}",
        inproc_stats.machine.runs, inproc_stats.dispatches,
    )];
    let mut best_rel = 0.0f64;
    for conns in [1usize, 2, 4] {
        let service = start_service();
        let server =
            NetServer::serve(Box::new(Arc::clone(&service)), "127.0.0.1:0", NetConfig::default())
                .unwrap();
        let store: RemoteStore<Sum, 2> =
            RemoteStore::connect(server.local_addr(), RemoteConfig { connections: conns }).unwrap();
        let (wall, mut lats) = drive(&store);
        lats.sort_unstable();
        let rps = n_queries as f64 / wall;
        let rel = rps / inproc_rps;
        best_rel = best_rel.max(rel);
        let (p50, p99) = (pct(&lats, 0.5), pct(&lats, 0.99));
        let stats = service.stats();
        let net = server.stats();
        drop(store);
        server.shutdown();
        Arc::try_unwrap(service).unwrap_or_else(|_| panic!("sole owner")).shutdown();
        rows.push(vec![
            "remote".into(),
            conns.to_string(),
            format!("{rps:.0}"),
            format!("{rel:.2}"),
            p50.to_string(),
            p99.to_string(),
            stats.machine.runs.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"mode\": \"remote\", \"connections\": {conns}, \"achieved_rps\": {rps:.1}, \
             \"relative_to_in_process\": {rel:.3}, \"p50_us\": {p50}, \"p99_us\": {p99}, \
             \"machine_runs\": {}, \"dispatches\": {}, \"net_requests\": {}, \
             \"net_responses\": {}}}",
            stats.machine.runs, stats.dispatches, net.requests, net.responses,
        ));
    }
    print_table(
        &format!(
            "E6 — network front-end: {clients} closed-loop clients × {per_client}-op \
             requests over TCP loopback vs in-process (p = {p}, {n_queries} queries)"
        ),
        &["mode", "conns", "achieved rps", "vs in-proc", "p50 µs", "p99 µs", "runs"],
        &rows,
    );
    println!(
        "\nclaim: the hand-rolled framed protocol plus pipelined RemoteStore\n\
         keeps the serving fast path intact — same fused dispatches, same\n\
         machine-run counts — and costs only encode/transport/decode.\n\
         Goal ≥ 0.50× the in-process closed-loop throughput over loopback;\n\
         measured best {best_rel:.2}×."
    );
    let json = format!(
        "{{\n  \"experiment\": \"e6\",\n  \"p\": {p},\n  \"clients\": {clients},\n  \
         \"queries_per_block\": {per_client},\n  \"queries\": {n_queries},\n  \
         \"modes\": [\n{}\n  ],\n  \"best_relative_to_in_process\": {best_rel:.3},\n  \
         \"goal\": \"remote >= 0.5x in-process closed-loop throughput\"\n}}\n",
        json_rows.join(",\n"),
    );
    match std::fs::write("BENCH_net.json", &json) {
        Ok(()) => println!("(json written to BENCH_net.json)"),
        Err(e) => eprintln!("warning: could not write BENCH_net.json: {e}"),
    }
}
