//! Criterion bench for experiment T2: construction time, sequential vs
//! distributed over machine sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_rangetree::{DistRangeTree, Point, SeqRangeTree};

fn bench_construct(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct");
    g.sample_size(10);
    for &n in &[1usize << 12, 1 << 14] {
        let pts: Vec<Point<2>> = uniform_points(1, n);
        g.bench_with_input(BenchmarkId::new("seq", n), &pts, |b, pts| {
            b.iter(|| SeqRangeTree::build(pts).unwrap());
        });
        for &p in &[2usize, 8] {
            let machine = Machine::new(p).unwrap();
            g.bench_with_input(BenchmarkId::new(format!("dist_p{p}"), n), &pts, |b, pts| {
                b.iter(|| DistRangeTree::<2>::build(&machine, pts).unwrap());
            });
        }
    }
    g.finish();
}

fn bench_construct_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct_3d");
    g.sample_size(10);
    let n = 1usize << 10;
    let pts: Vec<Point<3>> = uniform_points(2, n);
    g.bench_function("seq", |b| b.iter(|| SeqRangeTree::build(&pts).unwrap()));
    let machine = Machine::new(4).unwrap();
    g.bench_function("dist_p4", |b| b.iter(|| DistRangeTree::<3>::build(&machine, &pts).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_construct, bench_construct_3d);
criterion_main!(benches);
