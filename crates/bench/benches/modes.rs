//! Criterion bench for experiment T4: associative-function and report
//! modes over selectivity (Theorem 4, including the k/p term).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddrs_bench::{selectivity_queries, uniform_points};
use ddrs_cgm::Machine;
use ddrs_rangetree::{DistRangeTree, Point, Sum};

fn bench_modes(c: &mut Criterion) {
    let n = 1usize << 13;
    let p = 8;
    let pts: Vec<Point<2>> = uniform_points(5, n);
    let machine = Machine::new(p).unwrap();
    let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();

    let mut g = c.benchmark_group("modes");
    g.sample_size(10);
    for &sel in &[0.0001f64, 0.01, 0.1] {
        let queries = selectivity_queries(&pts, 11, sel, 1024);
        g.bench_with_input(BenchmarkId::new("aggregate_sum", sel), &queries, |b, qs| {
            b.iter(|| tree.aggregate_batch(&machine, Sum, qs));
        });
        g.bench_with_input(BenchmarkId::new("report", sel), &queries, |b, qs| {
            b.iter(|| tree.report_batch_raw(&machine, qs));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
