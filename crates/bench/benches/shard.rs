//! Criterion benches for the sharded scatter-gather router.
//!
//! The scaling contrast (ISSUE 4 / experiment `e3`): the same 8-client
//! closed-loop query load against
//!
//! * `shard/s4` — four range-partitioned shard groups answering
//!   per-shard fused sub-batches concurrently, vs
//! * `shard/s1` — one group behind the same router (the router-overhead
//!   baseline: identical code path, no partition parallelism).
//!
//! The repro binary's `e3` experiment measures the same contrast
//! open-loop at saturation and writes `BENCH_shard.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_client::RangeStore;
use ddrs_rangetree::{Point, Rect, Sum};
use ddrs_shard::{PartitionPolicy, ShardedConfig, ShardedService};
use ddrs_workloads::{QueryDistribution, QueryWorkload};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 64;

fn start_sharded(shards: usize, pts: &[Point<2>]) -> ShardedService<Sum, 2> {
    let machines: Vec<Machine> = (0..shards).map(|_| Machine::new(2).unwrap()).collect();
    ShardedService::start(
        machines,
        1 << 9,
        pts,
        Sum,
        PartitionPolicy::range_from_sample(shards, pts),
        ShardedConfig {
            max_batch: 128,
            max_delay: Duration::from_micros(200),
            ..ShardedConfig::default()
        },
    )
    .expect("bench store build")
}

fn client_queries(pts: &[Point<2>]) -> Vec<Vec<Rect<2>>> {
    let qw = QueryWorkload::from_points(pts, 93);
    let all =
        qw.queries(QueryDistribution::Selectivity { fraction: 0.01 }, CLIENTS * QUERIES_PER_CLIENT);
    all.chunks(QUERIES_PER_CLIENT).map(<[Rect<2>]>::to_vec).collect()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let pts: Vec<Point<2>> = uniform_points(51, 1 << 12);
    let per_client = client_queries(&pts);

    let mut g = c.benchmark_group("shard");
    g.sample_size(10);
    for shards in [1usize, 4] {
        let service = start_sharded(shards, &pts);
        g.bench_function(format!("s{shards}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for queries in &per_client {
                        let service = &service;
                        s.spawn(move || {
                            let tickets: Vec<_> =
                                queries.iter().map(|q| service.count(*q).unwrap()).collect();
                            tickets.into_iter().map(|t| t.wait().unwrap().value).sum::<u64>()
                        });
                    }
                });
            });
        });
        let stats = service.stats();
        assert!(
            stats.mean_batch_size() > 1.0,
            "coalescing must be visible at s={shards}: mean batch {}",
            stats.mean_batch_size()
        );
        println!(
            "shard s={shards}: mean batch {:.1}, {:.1} queries/run, runs {}, \
             fanout {:.2} ({} shards touched / {} routed reads), p50 {}µs p99 {}µs",
            stats.mean_batch_size(),
            stats.coalescing_factor(),
            stats.machine.runs,
            stats.mean_read_fanout(),
            stats.read_shards_touched,
            stats.read_ops_routed,
            stats.p50_latency_us(),
            stats.p99_latency_us(),
        );
        println!(
            "shard s={shards}: per-shard runs {:?}",
            stats.per_shard.iter().map(|s| s.machine.runs).collect::<Vec<_>>()
        );
        service.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
