//! Criterion benches for the engine layer.
//!
//! Two contrasts, matching the two halves of the persistent-executor /
//! fused-engine change:
//!
//! * `engine/fused` vs `engine/per_mode`: one fused mixed-mode
//!   submission against a multi-level dynamic store vs three per-mode
//!   dispatches over the same queries (the pre-engine shape; before the
//!   fusion each of those was itself one run *per level*);
//! * `executor/persistent_pool` vs `executor/spawn_per_run`: repeated
//!   small batches on the reusable rank-pinned worker pool vs paying an
//!   OS thread spawn per processor per batch, which is what every
//!   `Machine::run` used to cost.

use criterion::{criterion_group, criterion_main, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_engine::QueryBatch;
use ddrs_rangetree::{DynamicDistRangeTree, Point, Sum};
use ddrs_workloads::{QueryDistribution, QueryMode, QueryWorkload};

fn bench_fused_vs_per_mode(c: &mut Criterion) {
    let p = 8;
    let machine = Machine::new(p).unwrap();
    let pts: Vec<Point<2>> = uniform_points(21, 1 << 12);
    // Three insert waves with strictly shrinking sizes: each lands in a
    // distinct (empty) level, leaving three occupied levels.
    let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
    tree.insert_batch(&machine, &pts[..2048]).unwrap();
    tree.insert_batch(&machine, &pts[2048..3072]).unwrap();
    tree.insert_batch(&machine, &pts[3072..3584]).unwrap();
    assert_eq!(tree.occupied_levels(), 3);

    let mixed = QueryWorkload::from_points(&pts, 31).mixed(
        QueryDistribution::Selectivity { fraction: 0.01 },
        (1, 1, 1),
        512,
    );
    let mut batch = QueryBatch::new(Sum);
    let (mut counts, mut aggs, mut reports) = (Vec::new(), Vec::new(), Vec::new());
    for q in &mixed {
        match q.mode {
            QueryMode::Count => {
                batch.count(q.rect);
                counts.push(q.rect);
            }
            QueryMode::Aggregate => {
                batch.aggregate(q.rect);
                aggs.push(q.rect);
            }
            QueryMode::Report => {
                batch.report(q.rect);
                reports.push(q.rect);
            }
        }
    }

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("fused", |b| {
        b.iter(|| batch.execute_dynamic(&machine, &tree));
    });
    g.bench_function("per_mode", |b| {
        b.iter(|| {
            (
                tree.count_batch(&machine, &counts),
                tree.aggregate_batch(&machine, Sum, &aggs),
                tree.report_batch(&machine, &reports),
            )
        });
    });
    g.finish();
}

/// The old `Machine::run` cost per batch: spawn `p` scoped threads, run a
/// trivial per-rank program, join. Used as the baseline the persistent
/// pool is measured against.
fn spawn_per_run(p: usize) -> u64 {
    let barrier = std::sync::Barrier::new(p);
    let total = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for rank in 0..p {
            let barrier = &barrier;
            let total = &total;
            s.spawn(move || {
                barrier.wait();
                total.fetch_add(rank as u64, std::sync::atomic::Ordering::Relaxed);
                barrier.wait();
            });
        }
    });
    total.into_inner()
}

fn bench_executor(c: &mut Criterion) {
    let p = 8;
    let machine = Machine::new(p).unwrap();
    let mut g = c.benchmark_group("executor");
    g.sample_size(20);
    // Repeated small batches: the shape that exposed the thread-spawn tax.
    g.bench_function("persistent_pool", |b| {
        b.iter(|| {
            let out = machine.run(|ctx| {
                ctx.barrier();
                let s = ctx.rank() as u64;
                ctx.barrier();
                s
            });
            out.iter().sum::<u64>()
        });
    });
    g.bench_function("spawn_per_run", |b| {
        b.iter(|| spawn_per_run(p));
    });
    g.finish();
}

criterion_group!(benches, bench_fused_vs_per_mode, bench_executor);
criterion_main!(benches);
