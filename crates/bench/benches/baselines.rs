//! Criterion bench for experiments B1/B2: sequential structure shoot-out
//! and the replication strawman.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddrs_baselines::{BruteForce, KdTree, LayeredRangeTree2d, ReplicatedRangeTree};
use ddrs_bench::{selectivity_queries, uniform_points};
use ddrs_cgm::Machine;
use ddrs_rangetree::{DistRangeTree, Point, SeqRangeTree};

fn bench_baselines(c: &mut Criterion) {
    let n = 1usize << 14;
    let pts: Vec<Point<2>> = uniform_points(6, n);
    let range = SeqRangeTree::build(&pts).unwrap();
    let kd = KdTree::build(pts.clone());
    let layered = LayeredRangeTree2d::build(&pts);
    let brute = BruteForce::new(pts.clone());

    let mut g = c.benchmark_group("baselines_count");
    for &sel in &[0.0001f64, 0.01, 0.3] {
        let queries = selectivity_queries(&pts, 17, sel, 100);
        g.bench_with_input(BenchmarkId::new("range_tree", sel), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| range.count(q)).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("layered", sel), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| layered.count(q)).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("kd_tree", sel), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| kd.count(q)).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("brute", sel), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| brute.count(q)).sum::<u64>())
        });
    }
    g.finish();
}

fn bench_replication(c: &mut Criterion) {
    let n = 1usize << 12;
    let p = 4;
    let pts: Vec<Point<2>> = uniform_points(8, n);
    let queries = selectivity_queries(&pts, 19, 0.001, 1024);
    let machine = Machine::new(p).unwrap();
    let dist = DistRangeTree::<2>::build(&machine, &pts).unwrap();
    let repl = ReplicatedRangeTree::build(p, &pts).unwrap();

    let mut g = c.benchmark_group("replication_strawman");
    g.sample_size(10);
    g.bench_function("distributed_query", |b| b.iter(|| dist.count_batch(&machine, &queries)));
    g.bench_function("replicated_query", |b| b.iter(|| repl.count_batch(&queries)));
    g.bench_function("distributed_build", |b| {
        b.iter(|| DistRangeTree::<2>::build(&machine, &pts).unwrap())
    });
    g.bench_function("replicated_build", |b| {
        b.iter(|| ReplicatedRangeTree::build(p, &pts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_baselines, bench_replication);
criterion_main!(benches);
