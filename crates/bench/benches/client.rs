//! Criterion benches for the unified client API.
//!
//! The contrast that justifies multi-op requests (ISSUE 5 / experiment
//! `e4`): 8 concurrent clients each needing a block of 64 query answers
//! from the same service, through
//!
//! * `client/multi_op` — ONE composed `Request` per block: one
//!   submission, one ticket, reads guaranteed to fuse into one dispatch
//!   per window;
//! * `client/individual_pipelined` — 64 separate submissions per block,
//!   tickets all waited at the end (the request-less best case: the
//!   coalescer can still merge across ops, but every op pays its own
//!   queue transaction and ticket);
//! * `client/individual_sequential` — 64 separate submissions, each
//!   waited before the next (the dependent-flow shape the old per-op
//!   API forced): every op pays a full dispatch round trip.
//!
//! The acceptance bar is ≥ 2× throughput for `multi_op` over the
//! sequential individual shape at 8 clients; the repro binary's `e4`
//! measures the same contrast and writes `BENCH_client.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_client::{RangeStore, Request};
use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};
use ddrs_service::{Service, ServiceConfig};
use ddrs_workloads::{QueryDistribution, QueryWorkload};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 64;

fn start_service() -> (Service<Sum, 2>, Vec<Vec<Rect<2>>>) {
    let machine = Machine::new(8).unwrap();
    let pts: Vec<Point<2>> = uniform_points(51, 1 << 12);
    let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
    tree.insert_batch(&machine, &pts).unwrap();
    let service = Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 512,
            max_delay: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
    );
    let qw = QueryWorkload::from_points(&pts, 77);
    let all =
        qw.queries(QueryDistribution::Selectivity { fraction: 0.01 }, CLIENTS * QUERIES_PER_CLIENT);
    let per_client = all.chunks(QUERIES_PER_CLIENT).map(<[Rect<2>]>::to_vec).collect();
    (service, per_client)
}

fn bench_multi_op_vs_individual(c: &mut Criterion) {
    let (service, per_client) = start_service();

    let mut g = c.benchmark_group("client");
    g.sample_size(10);
    g.bench_function("multi_op", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for queries in &per_client {
                    let service = &service;
                    s.spawn(move || {
                        let mut req = Request::new();
                        let handles: Vec<_> = queries.iter().map(|q| req.count(*q)).collect();
                        let resp = service.submit(req).unwrap().wait().unwrap().value;
                        handles.into_iter().map(|h| resp.count(h)).sum::<u64>()
                    });
                }
            });
        });
    });
    g.bench_function("individual_pipelined", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for queries in &per_client {
                    let service = &service;
                    s.spawn(move || {
                        let tickets: Vec<_> =
                            queries.iter().map(|q| service.count(*q).unwrap()).collect();
                        tickets.into_iter().map(|t| t.wait().unwrap().value).sum::<u64>()
                    });
                }
            });
        });
    });
    g.bench_function("individual_sequential", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for queries in &per_client {
                    let service = &service;
                    s.spawn(move || {
                        queries
                            .iter()
                            .map(|q| service.count(*q).unwrap().wait().unwrap().value)
                            .sum::<u64>()
                    });
                }
            });
        });
    });
    g.finish();

    let stats = service.stats();
    println!(
        "client api: mean batch {:.1}, {:.1} queries/run, p50 {}µs p99 {}µs",
        stats.mean_batch_size(),
        stats.coalescing_factor(),
        stats.p50_latency_us(),
        stats.p99_latency_us(),
    );
}

criterion_group!(benches, bench_multi_op_vs_individual);
criterion_main!(benches);
