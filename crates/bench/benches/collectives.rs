//! Criterion bench for the CGM collective primitives (the substrate the
//! theorems charge as `T_c(s, p)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddrs_cgm::Machine;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for &p in &[2usize, 8] {
        let machine = Machine::new(p).unwrap();
        let per = 1usize << 14;
        g.bench_with_input(BenchmarkId::new("sort", p), &p, |b, _| {
            b.iter(|| {
                machine.run(|ctx| {
                    let data: Vec<u64> = (0..per)
                        .map(|i| ((i * 2654435761 + ctx.rank() * 97) % 1_000_003) as u64)
                        .collect();
                    ctx.sort_by_key(data, |x| *x).len()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("all_to_all", p), &p, |b, _| {
            b.iter(|| {
                machine.run(|ctx| {
                    let out: Vec<Vec<u64>> =
                        (0..ctx.p()).map(|d| vec![d as u64; per / ctx.p()]).collect();
                    ctx.all_to_all(out).len()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("all_gather", p), &p, |b, _| {
            b.iter(|| machine.run(|ctx| ctx.all_gather(vec![ctx.rank() as u64; 1024]).len()))
        });
        g.bench_with_input(BenchmarkId::new("load_balance_hotspot", p), &p, |b, _| {
            b.iter(|| {
                machine.run(|ctx| {
                    let owned: Vec<(u64, u64)> =
                        if ctx.rank() == 0 { vec![(0, 42)] } else { Vec::new() };
                    let items: Vec<(u64, u64)> = vec![(0u64, 7u64); per / ctx.p()];
                    ctx.load_balance(&owned, items).items.len()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
