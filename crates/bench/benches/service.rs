//! Criterion benches for the serving layer.
//!
//! The contrast that justifies the service's existence: `8` concurrent
//! clients issuing small independent queries through
//!
//! * `service/coalesced` — the serving front-end, which group-commits
//!   the concurrent queries into few fused `Machine::run`s, vs
//! * `service/one_run_per_query` — the naive shape, where every client
//!   query pays its own full machine submission (the pre-service cost).
//!
//! The acceptance bar (ISSUE 3 / experiment `e2`) is ≥ 3× throughput for
//! the coalesced path at 8 clients with mean batch size > 1; the repro
//! binary's `e2` experiment measures the same contrast open-loop and
//! writes `BENCH_service.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_client::RangeStore;
use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};
use ddrs_service::{Service, ServiceConfig};
use ddrs_workloads::{QueryDistribution, QueryWorkload};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 64;

fn setup_store(machine: &Machine) -> (Vec<Point<2>>, DynamicDistRangeTree<2>) {
    let pts: Vec<Point<2>> = uniform_points(51, 1 << 12);
    let mut tree = DynamicDistRangeTree::<2>::new(1 << 9);
    tree.insert_batch(machine, &pts).unwrap();
    (pts, tree)
}

fn client_queries(pts: &[Point<2>]) -> Vec<Vec<Rect<2>>> {
    let qw = QueryWorkload::from_points(pts, 77);
    let all =
        qw.queries(QueryDistribution::Selectivity { fraction: 0.01 }, CLIENTS * QUERIES_PER_CLIENT);
    all.chunks(QUERIES_PER_CLIENT).map(<[Rect<2>]>::to_vec).collect()
}

fn bench_service_vs_naive(c: &mut Criterion) {
    let p = 8;

    // The coalescing side: one long-lived service, clients submit waves.
    let machine = Machine::new(p).unwrap();
    let (pts, tree) = setup_store(&machine);
    let per_client = client_queries(&pts);
    let service = Service::start(
        machine,
        tree,
        Sum,
        ServiceConfig {
            max_batch: 128,
            max_delay: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
    );

    // The naive side: same store, every query its own machine run.
    let naive_machine = Machine::new(p).unwrap();
    let (_, naive_tree) = setup_store(&naive_machine);

    let mut g = c.benchmark_group("service");
    g.sample_size(10);
    g.bench_function("coalesced", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for queries in &per_client {
                    let service = &service;
                    s.spawn(move || {
                        let tickets: Vec<_> =
                            queries.iter().map(|q| service.count(*q).unwrap()).collect();
                        tickets.into_iter().map(|t| t.wait().unwrap().value).sum::<u64>()
                    });
                }
            });
        });
    });
    g.bench_function("one_run_per_query", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for queries in &per_client {
                    let machine = &naive_machine;
                    let tree = &naive_tree;
                    s.spawn(move || {
                        queries.iter().map(|q| tree.count_batch(machine, &[*q])[0]).sum::<u64>()
                    });
                }
            });
        });
    });
    g.finish();

    let stats = service.stats();
    assert!(
        stats.mean_batch_size() > 1.0,
        "coalescing must be visible: mean batch size {}",
        stats.mean_batch_size()
    );
    println!(
        "service coalescing: mean batch size {:.1}, {:.1} queries/run, p50 {}µs p99 {}µs",
        stats.mean_batch_size(),
        stats.coalescing_factor(),
        stats.p50_latency_us(),
        stats.p99_latency_us(),
    );
}

criterion_group!(benches, bench_service_vs_naive);
criterion_main!(benches);
