//! Criterion benches for the TCP network front-end:
//!
//! * `net/encode_request` — serializing a 64-op multi-op request into
//!   one CRC-framed wire frame (the client-side cost every submission
//!   pays before the socket),
//! * `net/decode_request` — the server-side inverse, rebuilding the
//!   request through the public builder API with full bounds checking,
//! * `net/roundtrip_loopback` — one pipelined window of 16 multi-op
//!   requests submitted through a `RemoteStore` and resolved over a
//!   real loopback connection against an `InlineStore`.
//!
//! The repro binary's `e6` experiment measures the closed-loop
//! throughput of the same stack against the in-process reference and
//! writes `BENCH_net.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_client::{InlineStore, RangeStore, Request};
use ddrs_net::codec::{decode_request, encode_request, FRAME_HEADER};
use ddrs_net::{NetConfig, NetServer, RemoteConfig, RemoteStore};
use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};

fn sample_request(ops: usize) -> Request<Sum, 2> {
    let mut req = Request::new();
    for i in 0..ops as i64 {
        req.count(Rect::new([i, i], [i + 64, i + 64]));
    }
    req
}

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net");
    g.sample_size(10);

    let req = sample_request(64);
    g.bench_function("encode_request", |b| {
        b.iter(|| encode_request(7, &req).len());
    });

    let frame = encode_request(7, &req);
    g.bench_function("decode_request", |b| {
        b.iter(|| decode_request::<Sum, 2>(&frame[FRAME_HEADER..]).unwrap().1.len());
    });

    let pts: Vec<Point<2>> = uniform_points(11, 1 << 10);
    let machine = Machine::new(2).unwrap();
    let mut tree = DynamicDistRangeTree::<2>::new(64);
    tree.insert_batch(&machine, &pts).unwrap();
    let store = InlineStore::new(machine, tree, Sum);
    let server = NetServer::serve(Box::new(store), "127.0.0.1:0", NetConfig::default()).unwrap();
    let remote: RemoteStore<Sum, 2> =
        RemoteStore::connect(server.local_addr(), RemoteConfig { connections: 1 }).unwrap();
    g.bench_function("roundtrip_loopback", |b| {
        b.iter(|| {
            let tickets: Vec<_> =
                (0..16).map(|_| remote.submit(sample_request(8)).unwrap()).collect();
            tickets.into_iter().map(|t| t.wait().unwrap().seq).max()
        });
    });
    g.finish();
    drop(remote);
    server.shutdown();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
