//! Criterion bench for experiment T3: batched count queries over machine
//! sizes (Theorem 3 / Corollary 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddrs_bench::{selectivity_queries, uniform_points};
use ddrs_cgm::Machine;
use ddrs_rangetree::{DistRangeTree, Point, SeqRangeTree};

fn bench_search(c: &mut Criterion) {
    let n = 1usize << 13;
    let pts: Vec<Point<2>> = uniform_points(3, n);
    let queries = selectivity_queries(&pts, 7, 0.002, n / 4);

    let mut g = c.benchmark_group("search_count_batch");
    g.sample_size(10);
    let seq = SeqRangeTree::build(&pts).unwrap();
    g.bench_function("seq", |b| b.iter(|| queries.iter().map(|q| seq.count(q)).sum::<u64>()));
    for &p in &[1usize, 2, 4, 8] {
        let machine = Machine::new(p).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        g.bench_with_input(BenchmarkId::new("dist", p), &p, |b, _| {
            b.iter(|| tree.count_batch(&machine, &queries));
        });
    }
    g.finish();
}

fn bench_search_skew(c: &mut Criterion) {
    // Hot-spot batch: exercises the congestion-copy path end to end.
    let n = 1usize << 13;
    let pts: Vec<Point<2>> = uniform_points(4, n);
    let queries = ddrs_bench::hotspot_queries(&pts, 9, n / 4);
    let mut g = c.benchmark_group("search_hotspot");
    g.sample_size(10);
    for &p in &[2usize, 8] {
        let machine = Machine::new(p).unwrap();
        let tree = DistRangeTree::<2>::build(&machine, &pts).unwrap();
        g.bench_with_input(BenchmarkId::new("dist", p), &p, |b, _| {
            b.iter(|| tree.count_batch(&machine, &queries));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search, bench_search_skew);
criterion_main!(benches);
