//! Criterion benches for the per-shard epoch write-ahead log:
//!
//! * `wal/append` — framing + checksum + in-memory append cost per
//!   committed epoch record (the tax every write epoch pays on the
//!   log-before-resolve path),
//! * `wal/decode` — torn-tail-safe frame decoding of a full shard log,
//! * `wal/recover` — the full crash-recovery path: decode the log and
//!   replay it into a fresh store on a `Machine` (what
//!   `ShardedService::recover_shard` runs between two dispatches).
//!
//! The repro binary's `e5` experiment measures the same recovery path
//! end-to-end inside a live sharded service and writes
//! `BENCH_recovery.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use ddrs_bench::uniform_points;
use ddrs_cgm::Machine;
use ddrs_rangetree::Point;
use ddrs_wal::{decode_log, EpochRecord, EpochWal, RecordKind, Verdict};

/// A shard's worth of log records: one bulk load plus `epochs` mixed
/// delete+insert epochs over `n` points.
fn build_records(n: usize, epochs: usize) -> Vec<EpochRecord<2>> {
    let pts: Vec<Point<2>> = uniform_points(7, n);
    let mut records = vec![EpochRecord::event(RecordKind::Load, 0, Vec::new(), pts.clone())];
    for e in 0..epochs {
        let start = (e * 13) % n;
        let deletes: Vec<u32> = (0..8).map(|j| pts[(start + j) % n].id).collect();
        let inserts: Vec<Point<2>> = deletes
            .iter()
            .map(|&id| Point::weighted([i64::from(id) % 512, i64::from(id) / 2], id, 3))
            .collect();
        records.push(EpochRecord {
            kind: RecordKind::Epoch,
            first_seq: e as u64 * 16,
            verdicts: vec![Verdict::Commit; 16],
            deletes,
            inserts,
        });
    }
    records
}

fn bench_wal(c: &mut Criterion) {
    let records = build_records(1 << 12, 64);

    let mut g = c.benchmark_group("wal");
    g.sample_size(10);

    g.bench_function("append", |b| {
        b.iter(|| {
            let wal = EpochWal::<2>::in_memory();
            for r in &records {
                wal.append_record(r).expect("mem append");
            }
            wal.stats().bytes
        });
    });

    let wal = EpochWal::<2>::in_memory();
    for r in &records {
        wal.append_record(r).expect("mem append");
    }
    let bytes = wal.snapshot_bytes().expect("mem snapshot");
    println!(
        "wal: {} records, {} bytes ({:.1} bytes/record)",
        records.len(),
        bytes.len(),
        bytes.len() as f64 / records.len() as f64
    );

    g.bench_function("decode", |b| {
        b.iter(|| {
            let (recs, tail) = decode_log::<2>(&bytes);
            assert!(matches!(tail, ddrs_wal::LogTail::Clean));
            recs.len()
        });
    });

    let machine = Machine::new(2).expect("bench machine");
    g.bench_function("recover", |b| {
        b.iter(|| {
            let (recs, _) = decode_log::<2>(&bytes);
            ddrs_wal::replay_into_store(&machine, 1 << 9, &recs).expect("replay").len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
