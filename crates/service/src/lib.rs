//! # ddrs-service — the concurrent serving front-end
//!
//! The layers below this crate are synchronous and single-caller: the
//! fused engine turns one `QueryBatch` into one SPMD submission, but
//! somebody still has to *assemble* large batches, and nothing arbitrates
//! between concurrent clients or interleaves updates safely. This crate
//! is that missing serving layer — the piece that turns many small
//! independent requests into the few big fused runs the machine is fast
//! at:
//!
//! ```text
//!  client threads                    scheduler thread
//!  ──────────────   ┌─────────┐   ┌──────────────────────────────────┐
//!  count(q) ───┐    │ bounded │   │ group-commit window:             │
//!  sum(q)   ───┼──▶ │  FIFO   │──▶│  dispatch at max_batch pending   │
//!  report(q) ──┤    │  queue  │   │  or max_delay elapsed            │
//!  insert(b) ──┤    └─────────┘   │                                  │
//!  delete(b) ──┘      ▲           │ reads  → one fused QueryBatch    │
//!     │               │ Overloaded│          (one Machine::run)      │
//!     ▼               └───────────│ writes → one merged epoch        │
//!  Ticket::wait ◀─────────────────│          (delete + insert        │
//!  (value, commit seq)            │           cascade, then resume)  │
//!                                 └──────────────────────────────────┘
//! ```
//!
//! ## Guarantees
//!
//! * **Batch serializability.** Every response carries a commit sequence
//!   number, and replaying all committed requests in sequence order
//!   against a sequential oracle reproduces every response exactly. The
//!   scheduler achieves this the simple way: it is the only thread that
//!   touches the store, reads coalesce only with reads, and writes apply
//!   in epochs between read dispatches — each epoch drains the in-flight
//!   readers (the dispatch before it completes first), applies one merged
//!   `delete_batch` + `insert_batch` cascade, and resumes.
//! * **Adaptive micro-batching.** A dispatch fires when `max_batch`
//!   requests are pending or the oldest has waited `max_delay`, whichever
//!   comes first — group commit for query traffic. Under load, batches
//!   grow toward `max_batch` and the per-run cost amortises; when idle,
//!   a lone request pays at most `max_delay` of extra latency.
//! * **Admission control.** The queue is bounded; submissions beyond
//!   `queue_capacity` fail fast with [`SubmitError::Overloaded`] instead
//!   of growing latency without bound.
//! * **Deadlines.** A request may carry a deadline; if it is still queued
//!   when the deadline passes it completes with
//!   [`ServiceError::DeadlineExpired`] and never reaches the machine.
//! * **Graceful shutdown.** [`Service::shutdown`] drains the queue and
//!   returns the machine and store; [`Service::abort`] rejects pending
//!   requests with [`ServiceError::ShuttingDown`] instead. Either way
//!   every ticket resolves — no client blocks forever.
//!
//! ## Example
//!
//! The submission surface is the unified [`RangeStore`] contract from
//! `ddrs-client` — the same code runs against the sharded router or the
//! zero-thread inline engine:
//!
//! ```
//! use ddrs_cgm::Machine;
//! use ddrs_client::RangeStore;
//! use ddrs_rangetree::{DynamicDistRangeTree, Point, Rect, Sum};
//! use ddrs_service::{Service, ServiceConfig};
//!
//! let machine = Machine::new(2).unwrap();
//! let mut tree = DynamicDistRangeTree::<2>::new(16);
//! let pts: Vec<Point<2>> =
//!     (0..64).map(|i| Point::weighted([i, 63 - i], i as u32, 1)).collect();
//! tree.insert_batch(&machine, &pts).unwrap();
//!
//! let service = Service::start(machine, tree, Sum, ServiceConfig::default());
//! let a = service.count(Rect::new([0, 0], [31, 63])).unwrap();
//! let b = service.aggregate(Rect::new([0, 0], [63, 63])).unwrap();
//! assert_eq!(a.wait().unwrap().value, 32);
//! assert_eq!(b.wait().unwrap().value, Some(64));
//! let (_machine, tree) = service.shutdown();
//! assert_eq!(tree.len(), 64);
//! ```

#![warn(missing_docs)]

mod stats;

pub use stats::{register_rollup, Histogram, ServiceStats};
// The completion-handle machinery and the error vocabulary moved to the
// unified client contract in `ddrs-client`; re-exported here so existing
// `ddrs_service::{Ticket, ServiceError, ...}` paths keep working.
pub use ddrs_client::{
    ticket, Commit, Outcome, RangeStore, Resolver, ServiceError, SubmitError, Ticket, WaitFor,
};

use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ddrs_cgm::{panic_message, Machine};
use ddrs_check::TrackedMutex;
use ddrs_client::{PlannedOp, Request, Response};
use ddrs_engine::QueryBatch;
use ddrs_rangetree::{BuildError, DynamicDistRangeTree, Point, Semigroup, PAD_ID};
use ddrs_sched::{gate_reads, Pending, SchedConfig, SchedCore, StopMode, Window};
use ddrs_trace::Stage;

/// Tuning knobs of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Dispatch as soon as this many requests are pending (group-commit
    /// batch-size trigger). Must be at least 1. One multi-op request's
    /// contiguous run is never split by this cap: a request carrying
    /// more reads than `max_batch` still dispatches as one fused window.
    pub max_batch: usize,
    /// Dispatch once the oldest pending request has waited this long
    /// (group-commit delay trigger).
    pub max_delay: Duration,
    /// Admission bound: submissions beyond this queue depth are rejected
    /// with [`SubmitError::Overloaded`]; a single request carrying more
    /// ops than the whole capacity is rejected with the permanent
    /// [`SubmitError::RequestTooLarge`] instead. Must be at least 1.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { max_batch: 64, max_delay: Duration::from_micros(500), queue_capacity: 4096 }
    }
}

/// The service queues the client contract's [`PlannedOp`] directly: all
/// queueing metadata (deadline, consistency bound, group id) lives in the
/// shared scheduler core's [`Pending`] wrapper, and all queueing *policy*
/// (admission, coalescing, carve, expiry) lives in [`SchedCore`] — shared
/// verbatim with the `ddrs-shard` router.
struct Inner<S: Semigroup, const D: usize> {
    sg: S,
    core: SchedCore<PlannedOp<S, D>>,
    /// Lock class `stats` (canonical order: after `sched.queue` — the
    /// admission callbacks take it under the queue lock — and before
    /// every resolution path, which runs with no stats guard live).
    stats: TrackedMutex<ServiceStats>,
}

/// The serving front-end over one [`Machine`] and one
/// [`DynamicDistRangeTree`].
///
/// Submission methods take `&self` and may be called from any number of
/// threads; each returns a [`Ticket`] redeemable for the response and its
/// commit sequence number. The machine and store are owned by the
/// scheduler thread for the service's lifetime and handed back by
/// [`shutdown`](Service::shutdown) / [`abort`](Service::abort).
///
/// The store handed to [`start`](Service::start) must have been built
/// with the same machine (or be empty): the service applies all further
/// construction with the machine it owns.
pub struct Service<S: Semigroup, const D: usize> {
    inner: Arc<Inner<S, D>>,
    scheduler: Option<JoinHandle<(Machine, DynamicDistRangeTree<D>, bool)>>,
}

// The scheduler thread owns the machine and the store; clients share
// `Inner`. Everything crossing those boundaries must be thread-safe, and
// this must hold by construction, not by test coverage.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Machine>();
    assert_sync::<Machine>();
};

impl<S: Semigroup, const D: usize> Service<S, D> {
    /// Start the service: spawns the scheduler thread and takes ownership
    /// of the machine and store.
    ///
    /// # Panics
    /// Panics if `cfg.max_batch` or `cfg.queue_capacity` is zero.
    pub fn start(
        machine: Machine,
        tree: DynamicDistRangeTree<D>,
        sg: S,
        cfg: ServiceConfig,
    ) -> Self {
        let inner = Arc::new(Inner {
            sg,
            core: SchedCore::new(SchedConfig {
                max_batch: cfg.max_batch,
                max_delay: cfg.max_delay,
                queue_capacity: cfg.queue_capacity,
            }),
            stats: TrackedMutex::new("service.stats", ServiceStats::default()),
        });
        let sched_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("ddrs-service-scheduler".into())
            .spawn(move || scheduler_loop(&sched_inner, machine, tree))
            // ddrs-check: allow(unwrap) — OS thread-spawn failure at
            // startup, before any request exists; nothing to poison.
            .expect("spawning the service scheduler");
        Service { inner, scheduler: Some(scheduler) }
    }

    /// Snapshot the service telemetry.
    pub fn stats(&self) -> ServiceStats {
        let depth = self.inner.core.depth();
        let mut snap = self.inner.stats.lock().clone();
        snap.queue_depth = depth;
        snap
    }

    fn stop(&mut self, mode: StopMode) -> (Machine, DynamicDistRangeTree<D>, bool) {
        self.inner.core.begin_stop(mode);
        self.scheduler
            .take()
            // ddrs-check: allow(unwrap) — invariant: every caller either
            // consumes `self` or checks `scheduler.is_some()` first.
            .expect("service already stopped")
            .join()
            // ddrs-check: allow(unwrap) — the scheduler loop contains
            // its own panics (catch_unwind around every machine run); a
            // panic escaping it is a scheduler bug, and silently
            // fabricating a (machine, store) here would hide it.
            .expect("service scheduler panicked")
    }

    /// Begin a graceful shutdown without blocking: new submissions fail
    /// with [`SubmitError::ShutDown`] from this point on, while already
    /// queued requests are still served. Call
    /// [`shutdown`](Service::shutdown) (or drop the service) to join the
    /// scheduler and reclaim the machine and store.
    ///
    /// This is the entry point for shutdown *under load*: any thread
    /// holding `&Service` can flip the switch while other threads are
    /// mid-submission.
    pub fn begin_shutdown(&self) {
        self.inner.core.begin_stop(StopMode::Drain);
    }

    /// Stop accepting work, serve everything already queued, then return
    /// the machine and the store.
    ///
    /// # Panics
    /// Panics if a write epoch failed mid-apply during the service's
    /// lifetime (every affected ticket already resolved with
    /// [`ServiceError::Machine`]): the store would be inconsistent, and
    /// handing it back as if healthy would silently serve wrong answers.
    pub fn shutdown(mut self) -> (Machine, DynamicDistRangeTree<D>) {
        let (machine, tree, poisoned) = self.stop(StopMode::Drain);
        assert!(
            !poisoned,
            "service store poisoned: a write epoch failed mid-apply, the store is inconsistent"
        );
        (machine, tree)
    }

    /// Stop accepting work and reject everything already queued with
    /// [`ServiceError::ShuttingDown`], then return the machine and store.
    ///
    /// # Panics
    /// Panics if a write epoch failed mid-apply, as with
    /// [`shutdown`](Service::shutdown).
    pub fn abort(mut self) -> (Machine, DynamicDistRangeTree<D>) {
        let (machine, tree, poisoned) = self.stop(StopMode::Reject);
        assert!(
            !poisoned,
            "service store poisoned: a write epoch failed mid-apply, the store is inconsistent"
        );
        (machine, tree)
    }
}

impl<S: Semigroup, const D: usize> RangeStore<S, D> for Service<S, D> {
    /// Submit a composed multi-op request as one unit (the single-op
    /// `count`/`insert`/… conveniences are the trait's default methods
    /// over this).
    ///
    /// Admission is all-or-nothing: either every op of the request is
    /// enqueued contiguously (writes first, then reads — so the reads
    /// coalesce into one fused window and observe the request's own
    /// writes), or the whole request is rejected. Each op counts toward
    /// the queue capacity and the submission telemetry individually.
    fn submit(&self, req: Request<S, D>) -> Result<Ticket<Response<S>>, SubmitError> {
        assert!(!req.is_empty(), "submitted an empty request");
        let n_ops = req.len();
        // Admission, contiguous enqueue and the submitted/overloaded
        // counter ordering (`submitted >= completed` in every snapshot)
        // are the shared core's contract. The request is lowered only
        // once admission is certain: plan() allocates the aggregator and
        // one resolver per op, all of which a rejection would
        // immediately tear down.
        let mut ticket = None;
        self.inner.core.submit_ops(
            n_ops,
            || {
                let planned = req.plan();
                // The request's lifecycle spans open here — admission is
                // certain, so every Queue begin is matched by an End on
                // some dispatch or failure path.
                for op in &planned.ops {
                    ddrs_trace::begin(op.span(), Stage::Queue);
                }
                ticket = Some(planned.ticket);
                (planned.ops, planned.deadline, planned.min_seq)
            },
            || self.inner.stats.lock().submitted += n_ops as u64,
            || self.inner.stats.lock().overloaded += 1,
        )?;
        // ddrs-check: allow(unwrap) — submit_ops ran `make` on the Ok
        // path, and `make` always fills the ticket slot.
        Ok(ticket.expect("admission ran the lowering closure"))
    }
}

impl<S: Semigroup, const D: usize> Drop for Service<S, D> {
    fn drop(&mut self) {
        if self.scheduler.is_some() {
            let _ = self.stop(StopMode::Drain);
        }
    }
}

impl<S: Semigroup, const D: usize> std::fmt::Debug for Service<S, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("d", &D)
            .field("queue_depth", &self.inner.core.depth())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

/// Per-read bookkeeping between batch assembly and result distribution.
enum ReadSlot<S: Semigroup> {
    Count(usize, Resolver<u64>),
    Agg(usize, Resolver<Option<S::Val>>),
    Report(usize, Resolver<Vec<u32>>),
}

impl<S: Semigroup> ReadSlot<S> {
    fn fail(self, e: ServiceError) {
        match self {
            ReadSlot::Count(_, r) => r.resolve(Err(e)),
            ReadSlot::Agg(_, r) => r.resolve(Err(e)),
            ReadSlot::Report(_, r) => r.resolve(Err(e)),
        }
    }

    fn span(&self) -> ddrs_trace::SpanId {
        match self {
            ReadSlot::Count(_, r) => r.span(),
            ReadSlot::Agg(_, r) => r.span(),
            ReadSlot::Report(_, r) => r.span(),
        }
    }
}

/// Whole microseconds between two instants (saturating at zero).
fn us_between(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

/// The scheduler body. The third element of the return value is the
/// poisoned flag: true when a write epoch failed mid-apply and the store
/// should not be handed back as healthy.
fn scheduler_loop<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    machine: Machine,
    mut tree: DynamicDistRangeTree<D>,
) -> (Machine, DynamicDistRangeTree<D>, bool) {
    let mut next_seq: u64 = 0;
    // Start from a clean slate so rollups cover exactly the service's
    // dispatches.
    machine.take_stats();
    loop {
        // Phase 1: wait for the group-commit condition (or a stop mode).
        // When, what and how much to dispatch is the shared core's
        // decision; this loop only executes what it carves.
        let (batch, expired) = match inner.core.next_window(None, PlannedOp::is_read, |_| false) {
            Window::Shutdown { rejected, poisoned } => {
                // Stats before resolution, here and in the dispatch
                // paths: a client that has observed its response
                // must also observe its effects in the telemetry.
                inner.stats.lock().completed += rejected.len() as u64;
                for p in rejected {
                    ddrs_trace::end_err(p.op.span(), Stage::Queue);
                    p.op.fail(ServiceError::ShuttingDown);
                }
                return (machine, tree, poisoned);
            }
            // No wake_at was requested, so the core never idles.
            Window::Idle => continue,
            Window::Dispatch { batch, expired } => (batch, expired),
        };

        if !expired.is_empty() {
            {
                let mut st = inner.stats.lock();
                st.expired += expired.len() as u64;
                st.completed += expired.len() as u64;
            }
            for p in expired {
                ddrs_trace::end_err(p.op.span(), Stage::Queue);
                p.op.fail(ServiceError::DeadlineExpired);
            }
        }
        // Consistency bounds gate reads only (a write observes
        // nothing), judged at dispatch time against the serial commit
        // counter: a read demanding a commit the store has not
        // performed fails instead of serving state it promised not to
        // serve. (A bound learned from this store's own commits is
        // always satisfied — dispatch is FIFO.)
        let (batch, unmet) = gate_reads(batch, next_seq, PlannedOp::is_read);
        if !unmet.is_empty() {
            inner.stats.lock().completed += unmet.len() as u64;
            for p in unmet {
                // ddrs-check: allow(unwrap) — gate_reads puts an op in
                // `unmet` only when its min_seq bound exists and failed.
                let required = p.min_seq.expect("partitioned on min_seq");
                ddrs_trace::end_err(p.op.span(), Stage::Queue);
                p.op.fail(ServiceError::Consistency { required, committed: next_seq });
            }
        }
        if batch.is_empty() {
            continue;
        }
        if batch[0].op.is_read() {
            dispatch_reads(inner, &machine, &tree, batch, &mut next_seq);
        } else {
            dispatch_write_epoch(inner, &machine, &mut tree, batch, &mut next_seq);
        }
    }
}

/// Coalesce a run of read requests into one fused [`QueryBatch`] and
/// distribute the results. One `Machine::run` for the whole batch — zero
/// when the store is empty (the engine's short-circuit), in which case
/// the dispatch is not counted in the telemetry either.
fn dispatch_reads<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    machine: &Machine,
    tree: &DynamicDistRangeTree<D>,
    batch: Vec<Pending<PlannedOp<S, D>>>,
    next_seq: &mut u64,
) {
    let t_carve = Instant::now();
    let mut qb = QueryBatch::new(inner.sg);
    let mut slots: Vec<(ReadSlot<S>, Instant)> = Vec::with_capacity(batch.len());
    for p in batch {
        ddrs_trace::transition(p.op.span(), Stage::Queue, Stage::Window);
        match p.op {
            PlannedOp::Count(rect, r) => {
                slots.push((ReadSlot::Count(qb.count(rect), r), p.submitted))
            }
            PlannedOp::Aggregate(rect, r) => {
                slots.push((ReadSlot::Agg(qb.aggregate(rect), r), p.submitted))
            }
            PlannedOp::Report(rect, r) => {
                slots.push((ReadSlot::Report(qb.report(rect), r), p.submitted))
            }
            PlannedOp::Insert(..) | PlannedOp::Delete(..) => {
                unreachable!("carve() mixed writes into a read run")
            }
        }
    }
    let n = slots.len() as u64;
    let t_run0 = Instant::now();
    for (slot, _) in &slots {
        ddrs_trace::transition(slot.span(), Stage::Window, Stage::MachineRun);
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| qb.try_execute_dynamic(machine, tree)));
    let run_stats = machine.take_stats();
    let t_run1 = Instant::now();
    for (slot, _) in &slots {
        ddrs_trace::transition(slot.span(), Stage::MachineRun, Stage::Merge);
    }
    {
        // Stats before resolution: a client that has observed its
        // response must also observe its effects in the telemetry.
        let mut st = inner.stats.lock();
        st.completed += n;
        st.machine.absorb(&run_stats);
        if run_stats.runs > 0 {
            st.dispatches += 1;
            st.queries_coalesced += n;
            st.batch_sizes.record(n);
        }
        for (_, submitted) in &slots {
            st.latency_us.record(submitted.elapsed().as_micros() as u64);
            st.stages.queue.record(us_between(*submitted, t_carve));
            st.stages.window.record(us_between(t_carve, t_run0));
            st.stages.machine_run.record(us_between(t_run0, t_run1));
        }
    }
    let t_merge1 = Instant::now();
    match outcome {
        Ok(Ok(mut out)) => {
            for (slot, _) in slots {
                let seq = *next_seq;
                *next_seq += 1;
                ddrs_trace::end(slot.span(), Stage::Merge);
                match slot {
                    ReadSlot::Count(i, r) => r.resolve(Ok(Commit { value: out.counts[i], seq })),
                    ReadSlot::Agg(i, r) => {
                        r.resolve(Ok(Commit { value: out.aggregates[i].take(), seq }))
                    }
                    ReadSlot::Report(i, r) => {
                        r.resolve(Ok(Commit { value: std::mem::take(&mut out.reports[i]), seq }))
                    }
                }
            }
        }
        Ok(Err(e)) => {
            let err = ServiceError::Machine(e.to_string());
            for (slot, _) in slots {
                ddrs_trace::end_err(slot.span(), Stage::Merge);
                slot.fail(err.clone());
            }
        }
        Err(payload) => {
            // A host-side panic (not a simulated-processor one, which
            // try_execute catches) — fail the batch but keep serving:
            // reads do not mutate the store.
            let err = ServiceError::Machine(panic_message(&*payload));
            for (slot, _) in slots {
                ddrs_trace::end_err(slot.span(), Stage::Merge);
                slot.fail(err.clone());
            }
        }
    }
    // Merge/resolve attribution lands after the tickets fired — a
    // deliberate relaxation of stats-before-resolve for these two
    // breakdown columns only: their duration *is* the resolution work,
    // so it cannot precede it.
    let t_resolve1 = Instant::now();
    {
        let mut st = inner.stats.lock();
        for _ in 0..n {
            st.stages.merge.record(us_between(t_run1, t_merge1));
            st.stages.resolve.record(us_between(t_merge1, t_resolve1));
        }
    }
}

/// Apply a run of write requests as one epoch: validate each request in
/// arrival order against the store plus the epoch's accumulated delta
/// (sequential semantics), then apply at most one merged `delete_batch`
/// and one merged `insert_batch` cascade.
fn dispatch_write_epoch<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    machine: &Machine,
    tree: &mut DynamicDistRangeTree<D>,
    batch: Vec<Pending<PlannedOp<S, D>>>,
    next_seq: &mut u64,
) {
    // Epoch delta over the store: Some(pt) = inserted this epoch (live),
    // None = dead. Ids absent from the delta defer to the store.
    let mut delta: BTreeMap<u32, Option<Point<D>>> = BTreeMap::new();
    // Ids live in the store that a delete touched; they must be removed
    // even if a later insert in the same epoch revives the id (the new
    // point replaces the old one).
    let mut tree_deleted: Vec<u32> = Vec::new();
    let mut outcomes: Vec<(Resolver<()>, Result<(), BuildError>, Instant)> =
        Vec::with_capacity(batch.len());
    let t_carve = Instant::now();
    for p in batch {
        ddrs_trace::transition(p.op.span(), Stage::Queue, Stage::Window);
        match p.op {
            PlannedOp::Insert(pts, r) => {
                let mut verdict: Result<(), BuildError> = Ok(());
                let mut seen: HashSet<u32> = HashSet::with_capacity(pts.len());
                for pt in &pts {
                    if pt.id == PAD_ID {
                        verdict = Err(BuildError::ReservedId);
                        break;
                    }
                    let live = match delta.get(&pt.id) {
                        Some(Some(_)) => true,
                        Some(None) => false,
                        None => tree.contains_id(pt.id),
                    };
                    if live || !seen.insert(pt.id) {
                        verdict = Err(BuildError::DuplicateId(pt.id));
                        break;
                    }
                }
                if verdict.is_ok() {
                    for pt in pts {
                        delta.insert(pt.id, Some(pt));
                    }
                }
                outcomes.push((r, verdict, p.submitted));
            }
            PlannedOp::Delete(ids, r) => {
                for id in ids {
                    match delta.get(&id) {
                        Some(Some(_)) => {
                            delta.insert(id, None);
                        }
                        Some(None) => {}
                        None => {
                            if tree.contains_id(id) {
                                tree_deleted.push(id);
                                delta.insert(id, None);
                            }
                        }
                    }
                }
                outcomes.push((r, Ok(()), p.submitted));
            }
            PlannedOp::Count(..) | PlannedOp::Aggregate(..) | PlannedOp::Report(..) => {
                unreachable!("carve() mixed reads into a write run")
            }
        }
    }

    let inserts: Vec<Point<D>> = delta.values().filter_map(|v| *v).collect();
    let t_apply0 = Instant::now();
    for (r, _, _) in &outcomes {
        ddrs_trace::transition(r.span(), Stage::Window, Stage::MachineRun);
    }
    let applied = catch_unwind(AssertUnwindSafe(|| -> Result<(), BuildError> {
        if !tree_deleted.is_empty() {
            tree.delete_batch(machine, &tree_deleted)?;
        }
        if !inserts.is_empty() {
            tree.insert_batch(machine, &inserts)?;
        }
        Ok(())
    }));
    let run_stats = machine.take_stats();
    let t_apply1 = Instant::now();
    for (r, _, _) in &outcomes {
        ddrs_trace::transition(r.span(), Stage::MachineRun, Stage::Merge);
    }
    let n = outcomes.len() as u64;
    {
        // Stats before resolution: a client that has observed its
        // response must also observe its effects in the telemetry.
        let mut st = inner.stats.lock();
        st.completed += n;
        st.machine.absorb(&run_stats);
        if run_stats.runs > 0 {
            st.write_epochs += 1;
        }
        for (_, _, submitted) in &outcomes {
            st.latency_us.record(submitted.elapsed().as_micros() as u64);
            st.stages.queue.record(us_between(*submitted, t_carve));
            st.stages.window.record(us_between(t_carve, t_apply0));
            st.stages.machine_run.record(us_between(t_apply0, t_apply1));
        }
    }
    let t_merge1 = Instant::now();
    match applied {
        Ok(Ok(())) => {
            for (r, verdict, _) in outcomes {
                ddrs_trace::end(r.span(), Stage::Merge);
                match verdict {
                    Ok(()) => {
                        let seq = *next_seq;
                        *next_seq += 1;
                        r.resolve(Ok(Commit { value: (), seq }));
                    }
                    // Rejected writes are no-ops; they carry no commit
                    // position.
                    Err(e) => r.resolve(Err(ServiceError::Rejected(e))),
                }
            }
        }
        other => {
            // Pre-validation makes both failure arms unreachable in
            // correct builds; if the cascade still failed the store may
            // be mid-rebuild, so stop serving from it.
            let msg = match other {
                Ok(Err(e)) => format!("write epoch failed validation at apply time: {e}"),
                Err(payload) => format!("write epoch panicked: {}", panic_message(&*payload)),
                Ok(Ok(())) => unreachable!(),
            };
            inner.core.poison();
            let err = ServiceError::Machine(msg);
            for (r, _, _) in outcomes {
                ddrs_trace::end_err(r.span(), Stage::Merge);
                r.resolve(Err(err.clone()));
            }
        }
    }
    // Same deliberate relaxation as the read path: merge/resolve columns
    // measure the resolution work itself, so they land after it.
    let t_resolve1 = Instant::now();
    {
        let mut st = inner.stats.lock();
        for _ in 0..n {
            st.stages.merge.record(us_between(t_apply1, t_merge1));
            st.stages.resolve.record(us_between(t_merge1, t_resolve1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_rangetree::{Rect, Sum};

    fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
        range
            .map(|i| Point::weighted([((i * 193) % 777) as i64, ((i * 71) % 555) as i64], i, 2))
            .collect()
    }

    fn quick_service(p: usize) -> Service<Sum, 2> {
        let machine = Machine::new(p).unwrap();
        let mut tree = DynamicDistRangeTree::<2>::new(16);
        tree.insert_batch(&machine, &pts(0..48)).unwrap();
        Service::start(
            machine,
            tree,
            Sum,
            ServiceConfig { max_delay: Duration::from_micros(100), ..ServiceConfig::default() },
        )
    }

    #[test]
    fn serves_all_three_read_modes() {
        let service = quick_service(2);
        let all = Rect::new([0, 0], [800, 600]);
        let c = service.count(all).unwrap();
        let a = service.aggregate(all).unwrap();
        let r = service.report(Rect::new([0, 0], [0, 0])).unwrap();
        assert_eq!(c.wait().unwrap().value, 48);
        assert_eq!(a.wait().unwrap().value, Some(96));
        assert_eq!(r.wait().unwrap().value, vec![0]); // point (0,0) is id 0
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn writes_commit_and_reads_observe_them() {
        let service = quick_service(2);
        let all = Rect::new([0, 0], [800, 600]);
        service.insert(pts(100..110)).unwrap().wait().unwrap();
        let c = service.count(all).unwrap().wait().unwrap();
        assert_eq!(c.value, 58);
        service.delete((100..105).collect()).unwrap().wait().unwrap();
        assert_eq!(service.count(all).unwrap().wait().unwrap().value, 53);
        let (_, tree) = service.shutdown();
        assert_eq!(tree.len(), 53);
    }

    #[test]
    fn duplicate_insert_is_rejected_sequentially() {
        let service = quick_service(2);
        // Id 5 is live in the base set.
        let verdict = service.insert(pts(5..6)).unwrap().wait();
        assert_eq!(verdict, Err(ServiceError::Rejected(BuildError::DuplicateId(5))));
        // The store is unchanged and keeps serving.
        assert_eq!(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().value, 48);
    }

    #[test]
    fn insert_delete_reinsert_in_one_epoch() {
        // All three writes queue before the scheduler can wake: they land
        // in one epoch and must still behave sequentially.
        let machine = Machine::new(2).unwrap();
        let mut tree = DynamicDistRangeTree::<2>::new(8);
        tree.insert_batch(&machine, &pts(0..8)).unwrap();
        let service = Service::start(
            machine,
            tree,
            Sum,
            ServiceConfig { max_delay: Duration::from_millis(50), ..ServiceConfig::default() },
        );
        // Delete id 3, then re-insert it at a new location.
        let moved = vec![Point::weighted([700, 500], 3, 9)];
        let t1 = service.delete(vec![3]).unwrap();
        let t2 = service.insert(moved).unwrap();
        let s1 = t1.wait().unwrap().seq;
        let s2 = t2.wait().unwrap().seq;
        assert!(s1 < s2, "epoch preserves arrival order in commit seqs");
        let hit = service.report(Rect::new([700, 500], [700, 500])).unwrap().wait().unwrap();
        assert_eq!(hit.value, vec![3]);
        let (_, tree) = service.shutdown();
        assert_eq!(tree.len(), 8);
    }

    #[test]
    fn commit_seqs_are_dense_and_ordered() {
        let service = quick_service(2);
        let mut seqs: Vec<u64> = Vec::new();
        for _ in 0..5 {
            seqs.push(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().seq);
        }
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seqs, sorted, "sequential submission commits in order");
        assert_eq!(seqs, (seqs[0]..seqs[0] + 5).collect::<Vec<u64>>(), "seqs are dense");
    }

    #[test]
    fn stats_snapshot_shape() {
        let service = quick_service(2);
        for _ in 0..10 {
            service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert!(stats.machine.runs >= 1);
        assert!(stats.dispatches >= 1 && stats.dispatches <= 10);
        assert_eq!(stats.queries_coalesced, 10);
        assert!(stats.mean_batch_size() >= 1.0);
        assert!(stats.latency_us.count() == 10);
        assert_eq!(stats.queue_depth, 0);
    }
}
