//! Service telemetry: bounded-memory counters, histograms and rollups.
//!
//! Everything here is O(1) space per service regardless of traffic
//! volume: scalar counters, the fixed 64-bucket logarithmic
//! [`Histogram`] (now shared workspace-wide from `ddrs-trace`), the
//! always-on per-stage latency breakdown, and the `ddrs-cgm`
//! [`RunStatsRollup`] for the machine-side quantities (runs, supersteps,
//! max h-relation) the paper's bounds are stated in.

use ddrs_cgm::RunStatsRollup;
// The histogram estimator moved to `ddrs-trace` (the unified telemetry
// vocabulary); re-exported so existing `ddrs_service::Histogram` paths
// keep working.
pub use ddrs_trace::Histogram;
use ddrs_trace::{MetricsRegistry, StageBreakdown};

/// A point-in-time snapshot of the service's telemetry.
///
/// Obtained from `Service::stats`; all counters are cumulative since the
/// service started.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that received a terminal response (success or error).
    pub completed: u64,
    /// Submissions rejected by admission control (`SubmitError::Overloaded`).
    pub overloaded: u64,
    /// Requests that expired in the queue (`ServiceError::DeadlineExpired`).
    pub expired: u64,
    /// Read batches that reached the machine (coalesced dispatches).
    /// Batches answered without any SPMD run — an empty store, for
    /// example — are *not* counted: the short-circuit contract is that
    /// they cost nothing, machine runs included.
    pub dispatches: u64,
    /// Write epochs that reached the machine (merged cascades applied).
    pub write_epochs: u64,
    /// Queries answered through coalesced read dispatches.
    pub queries_coalesced: u64,
    /// Rollup of the machine-side statistics of every dispatch.
    pub machine: RunStatsRollup,
    /// Distribution of coalesced read-batch sizes (queries per dispatch).
    pub batch_sizes: Histogram,
    /// Distribution of request latencies, submit → response, in µs.
    pub latency_us: Histogram,
    /// Where dispatched ops spent their time, per lifecycle stage
    /// (queue / window / machine-run / merge / resolve). Always
    /// recorded — plain counters, independent of span recording.
    pub stages: StageBreakdown,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
}

impl ServiceStats {
    /// Mean queries per coalesced read dispatch (0 before any dispatch).
    pub fn mean_batch_size(&self) -> f64 {
        self.batch_sizes.mean()
    }

    /// Queries answered per machine run — the service's coalescing
    /// leverage over one-run-per-query dispatch (0 before any run).
    pub fn coalescing_factor(&self) -> f64 {
        if self.machine.runs == 0 {
            0.0
        } else {
            self.queries_coalesced as f64 / self.machine.runs as f64
        }
    }

    /// Median request latency in µs (bucket upper bound).
    pub fn p50_latency_us(&self) -> u64 {
        self.latency_us.quantile(0.5)
    }

    /// 99th-percentile request latency in µs (bucket upper bound).
    pub fn p99_latency_us(&self) -> u64 {
        self.latency_us.quantile(0.99)
    }

    /// Publish this snapshot into a [`MetricsRegistry`] under
    /// `<prefix>.*` — the unified export path shared with the sharded
    /// front-end and the CGM rollup.
    pub fn register_into(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.set_counter(&format!("{prefix}.submitted"), self.submitted);
        registry.set_counter(&format!("{prefix}.completed"), self.completed);
        registry.set_counter(&format!("{prefix}.overloaded"), self.overloaded);
        registry.set_counter(&format!("{prefix}.expired"), self.expired);
        registry.set_counter(&format!("{prefix}.dispatches"), self.dispatches);
        registry.set_counter(&format!("{prefix}.write_epochs"), self.write_epochs);
        registry.set_counter(&format!("{prefix}.queries_coalesced"), self.queries_coalesced);
        registry.set_counter(&format!("{prefix}.queue_depth"), self.queue_depth as u64);
        registry.set_gauge(&format!("{prefix}.coalescing_factor"), self.coalescing_factor());
        registry.set_histogram(&format!("{prefix}.batch_sizes"), self.batch_sizes.clone());
        registry.set_histogram(&format!("{prefix}.latency_us"), self.latency_us.clone());
        self.stages.register_into(registry, &format!("{prefix}.stage"));
        register_rollup(&self.machine, registry, &format!("{prefix}.machine"));
    }
}

/// Publish a CGM [`RunStatsRollup`] into a [`MetricsRegistry`] under
/// `<prefix>.*`.
pub fn register_rollup(rollup: &RunStatsRollup, registry: &MetricsRegistry, prefix: &str) {
    registry.set_counter(&format!("{prefix}.runs"), rollup.runs);
    registry.set_counter(&format!("{prefix}.supersteps"), rollup.supersteps);
    registry.set_counter(&format!("{prefix}.max_h"), rollup.max_h);
    registry.set_counter(&format!("{prefix}.total_words"), rollup.total_words);
    registry.set_gauge(&format!("{prefix}.rounds_per_run"), rollup.rounds_per_run());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_trace::MetricValue;

    #[test]
    fn empty_stats_quantiles_are_zero() {
        let s = ServiceStats::default();
        assert_eq!(s.p50_latency_us(), 0);
        assert_eq!(s.p99_latency_us(), 0);
        assert_eq!(s.latency_us.max(), 0);
        assert_eq!(s.latency_us.mean(), 0.0);
    }

    #[test]
    fn coalescing_factor_and_batch_mean() {
        let mut s = ServiceStats::default();
        assert_eq!(s.coalescing_factor(), 0.0);
        s.queries_coalesced = 120;
        s.machine.runs = 3;
        s.batch_sizes.record(40);
        s.batch_sizes.record(40);
        s.batch_sizes.record(40);
        assert_eq!(s.coalescing_factor(), 40.0);
        assert_eq!(s.mean_batch_size(), 40.0);
    }

    #[test]
    fn register_into_publishes_counters_stages_and_rollup() {
        let mut s = ServiceStats { submitted: 7, completed: 7, ..Default::default() };
        s.machine.runs = 2;
        s.machine.supersteps = 6;
        s.latency_us.record(100);
        s.stages.queue.record(40);
        let reg = MetricsRegistry::new();
        s.register_into(&reg, "service");
        let snap = reg.snapshot();
        assert_eq!(snap.get("service.submitted"), Some(&MetricValue::Counter(7)));
        assert_eq!(snap.get("service.machine.runs"), Some(&MetricValue::Counter(2)));
        assert_eq!(snap.get("service.stage.queue.max_us"), Some(&MetricValue::Counter(40)));
        match snap.get("service.latency_us") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 1),
            other => panic!("latency_us missing or mistyped: {other:?}"),
        }
        assert!(matches!(
            snap.get("service.machine.rounds_per_run"),
            Some(MetricValue::Gauge(g)) if (*g - 3.0).abs() < 1e-9
        ));
    }
}
