//! Future-like completion handles for submitted requests.
//!
//! A [`Ticket`] is the client half of a one-shot channel filled in by the
//! scheduler thread; [`Resolver`] is the scheduler half. Tickets are
//! plain blocking futures (no async runtime in this workspace): `wait`
//! parks the calling thread until the scheduler resolves the request.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::ServiceError;

/// A successfully committed response: the value plus the request's
/// position in the service's serial commit order.
///
/// Commit sequence numbers are assigned densely in dispatch order; a
/// replay of all committed requests in ascending `seq` against a
/// sequential oracle reproduces every `value` exactly (the
/// batch-serializability contract, pinned by `tests/service.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit<T> {
    /// The response value.
    pub value: T,
    /// Position in the service's serial commit order.
    pub seq: u64,
}

enum State<T> {
    Waiting,
    Done(Result<Commit<T>, ServiceError>),
    Taken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The client half: redeem it for the response with [`wait`](Ticket::wait).
pub struct Ticket<T> {
    shared: Arc<Shared<T>>,
}

/// The scheduler half: resolves the paired [`Ticket`] exactly once.
///
/// Dropping an unresolved resolver resolves the ticket with
/// [`ServiceError::ShuttingDown`] — a safety net that keeps clients from
/// blocking forever if the scheduler abandons a request.
///
/// Public so alternative serving front-ends (e.g. the sharded
/// scatter-gather router in `ddrs-shard`) can hand out the same
/// [`Ticket`] API without re-implementing the channel.
pub struct Resolver<T> {
    shared: Option<Arc<Shared<T>>>,
}

/// Create a connected ticket/resolver pair.
///
/// Public for the same reason as [`Resolver`]: front-ends layered over
/// (or beside) [`Service`](crate::Service) mint tickets with it.
pub fn ticket<T>() -> (Ticket<T>, Resolver<T>) {
    let shared = Arc::new(Shared { state: Mutex::new(State::Waiting), cv: Condvar::new() });
    (Ticket { shared: Arc::clone(&shared) }, Resolver { shared: Some(shared) })
}

impl<T> Resolver<T> {
    /// Resolve the paired ticket and wake its waiter.
    pub fn resolve(mut self, outcome: Result<Commit<T>, ServiceError>) {
        let shared = self.shared.take().expect("resolver used twice");
        *lock(&shared) = State::Done(outcome);
        shared.cv.notify_all();
    }
}

impl<T> std::fmt::Debug for Resolver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolver").field("resolved", &self.shared.is_none()).finish()
    }
}

impl<T> Drop for Resolver<T> {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            *lock(&shared) = State::Done(Err(ServiceError::ShuttingDown));
            shared.cv.notify_all();
        }
    }
}

impl<T> Ticket<T> {
    /// Block until the service resolves this request.
    pub fn wait(self) -> Result<Commit<T>, ServiceError> {
        let mut state = lock(&self.shared);
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Done(outcome) => return outcome,
                s @ State::Waiting => {
                    *state = s;
                    state = self
                        .shared
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                State::Taken => unreachable!("ticket waited twice"),
            }
        }
    }

    /// Block for at most `timeout`; returns the ticket back on timeout so
    /// the caller can keep waiting later.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Commit<T>, ServiceError>, Self> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Done(outcome) => return Ok(outcome),
                s @ State::Waiting => {
                    *state = s;
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        drop(state);
                        return Err(self);
                    }
                    let (guard, _) = self
                        .shared
                        .cv
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state = guard;
                }
                State::Taken => unreachable!("ticket waited twice"),
            }
        }
    }

    /// True once the service has resolved this request (`wait` will not
    /// block).
    pub fn is_done(&self) -> bool {
        !matches!(*lock(&self.shared), State::Waiting)
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("done", &self.is_done()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_then_wait() {
        let (t, r) = ticket::<u64>();
        assert!(!t.is_done());
        r.resolve(Ok(Commit { value: 7, seq: 3 }));
        assert!(t.is_done());
        assert_eq!(t.wait(), Ok(Commit { value: 7, seq: 3 }));
    }

    #[test]
    fn wait_blocks_until_resolved_from_another_thread() {
        let (t, r) = ticket::<Vec<u32>>();
        let h = std::thread::spawn(move || t.wait());
        std::thread::sleep(Duration::from_millis(10));
        r.resolve(Ok(Commit { value: vec![1, 2], seq: 0 }));
        assert_eq!(h.join().unwrap(), Ok(Commit { value: vec![1, 2], seq: 0 }));
    }

    #[test]
    fn timeout_returns_ticket_back() {
        let (t, r) = ticket::<()>();
        let t = t.wait_timeout(Duration::from_millis(5)).unwrap_err();
        r.resolve(Err(ServiceError::DeadlineExpired));
        assert_eq!(t.wait(), Err(ServiceError::DeadlineExpired));
    }

    #[test]
    fn dropping_the_resolver_fails_the_ticket() {
        let (t, r) = ticket::<u64>();
        drop(r);
        assert_eq!(t.wait(), Err(ServiceError::ShuttingDown));
    }
}
