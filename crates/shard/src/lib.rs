//! # ddrs-shard — the multi-group scatter-gather router
//!
//! One `Machine` + one store + one scheduler (the `ddrs-service` stack)
//! saturates at whatever a single SPMD group can sustain. This crate adds
//! the next scaling axis: the id/key domain is partitioned across `S`
//! *shard groups*, each owning its own [`Machine`], its own
//! [`DynamicDistRangeTree`] and its own scheduler thread, behind a single
//! [`ShardedService`] façade with the same `Ticket`/`Commit { value, seq }`
//! API as the unsharded service:
//!
//! ```text
//!  client threads        router thread                 shard groups
//!  ──────────────   ┌──────────────────────┐   ┌───────────────────────┐
//!  count(q) ───┐    │ group-commit window  │   │ shard 0: Machine +    │
//!  insert(b) ──┼──▶ │  (ddrs-sched core:   │──▶│  tree + worker thread │
//!  report(q) ──┘    │   max_batch /        │   ├───────────────────────┤
//!     │             │   max_delay)         │   │ shard 1: Machine + …  │
//!     ▼             │                      │   ├───────────────────────┤
//!  Ticket::wait ◀───│ reads → routed fused │   │ …                     │
//!  (value, global   │  sub-batches, async  │   ├───────────────────────┤
//!   commit seq)     │  scatter-gather      │   │ shard S-1             │
//!                   │ writes → routed      │   └───────────────────────┘
//!                   │  sub-epoch barrier   │     each sub-batch: ≤ 1
//!                   └──────────────────────┘     Machine::run per shard
//! ```
//!
//! ## Routing and merging
//!
//! * **Reads.** A coalesced read window is planned into at most one fused
//!   sub-batch per *touched* shard ([`ddrs_engine::QueryBatch`]), so a
//!   mixed cross-shard read batch costs **at most one machine run per
//!   shard it overlaps** however many queries it coalesced. Under the
//!   range policy a query is enqueued only on the slabs its first-axis
//!   interval overlaps, clipped at the shard boundaries; under hash
//!   placement a degenerate (point) query routes to exactly the shard
//!   the placement mix chose, while wider hash-policy scans — the one
//!   genuinely unroutable shape — still fan out to every shard.
//!   Partials merge deterministically: counts sum, aggregates fold with
//!   the (commutative) semigroup, report ids concatenate and sort
//!   ascending — byte-identical to the unsharded answer.
//! * **Writes.** Each write routes by key: inserts to the placement
//!   policy's shard, deletes to the owning shard (the router keeps the
//!   authoritative id → shard index). A write window applies as one
//!   sub-epoch per touched shard, scattered in parallel and gathered as
//!   a barrier before the next window dispatches.
//! * **Concurrency.** Read windows never block the router: each shard's
//!   fused sub-batch executes on that shard's own worker thread, which
//!   also resolves the tickets (single-shard directly; cross-shard via a
//!   shared countdown merging the partials). The router carves and
//!   scatters the next window while earlier reads are still running, so
//!   shards with independent work proceed in parallel. Write epochs and
//!   splits stay synchronous on the router thread — that barrier *is*
//!   the epoch protocol.
//! * **Global sequence.** The router assigns every committed response a
//!   position in one *global* commit order at planning time, exactly
//!   like the unsharded service: replaying committed requests in `seq`
//!   order through a sequential oracle reproduces every response. The
//!   invariant survives concurrent reads because each worker executes
//!   its jobs in FIFO order and every write epoch is a router barrier:
//!   a read planned between write epochs `W_k` and `W_{k+1}` reaches
//!   every shard after `W_k`'s sub-epochs and before `W_{k+1}`'s, so it
//!   observes exactly the post-`W_k` state its pre-assigned seq claims.
//!
//! ## Failure containment
//!
//! A simulated-processor panic during a *read* fails only the requests
//! that needed the failing shard. A panic during a *write sub-epoch*
//! aborts the whole epoch: every request in it fails, sub-epochs already
//! applied on healthy shards are **rolled back** (their extracted points
//! re-inserted, their fresh inserts deleted), and the failing shard is
//! **poisoned** — quarantined from all further traffic while its
//! siblings keep serving. Committed history is never contradicted.
//!
//! ## Rebalancing
//!
//! [`ShardedService::split_shard`] migrates the upper or lower half of a
//! shard's points (split on the first axis, ties kept together) to a
//! sibling, updating the ownership index — and, under the range policy,
//! the slab boundary — atomically between dispatches, so in-flight
//! requests commit before or after the migration, never astride it. A
//! skew trigger ([`ShardedConfig::rebalance_factor`]) runs the same
//! migration automatically after a write epoch leaves a shard holding
//! more than `factor ×` the mean. Under hash placement a migration
//! breaks the coordinate-mix residency invariant, so from the first
//! hash-policy split onward degenerate point *reads* stop routing to a
//! single shard and fan out fully — correctness over routing
//! minimality; key-routed deletes still hit one shard via the ownership
//! index.
//!
//! ## Example
//!
//! ```
//! use ddrs_cgm::Machine;
//! use ddrs_client::RangeStore;
//! use ddrs_rangetree::{Point, Rect, Sum};
//! use ddrs_shard::{PartitionPolicy, ShardedConfig, ShardedService};
//!
//! let machines: Vec<Machine> = (0..2).map(|_| Machine::new(2).unwrap()).collect();
//! let pts: Vec<Point<2>> =
//!     (0..64).map(|i| Point::weighted([i, 63 - i], i as u32, 1)).collect();
//! let service = ShardedService::start(
//!     machines,
//!     16,
//!     &pts,
//!     Sum,
//!     PartitionPolicy::range_uniform(2, 0, 64),
//!     ShardedConfig::default(),
//! )
//! .unwrap();
//! // Cross-shard scatter-gather: the rect spans both slabs.
//! let c = service.count(Rect::new([0, 0], [63, 63])).unwrap();
//! assert_eq!(c.wait().unwrap().value, 64);
//! let parts = service.shutdown();
//! assert_eq!(parts.iter().map(|(_, t)| t.len()).sum::<usize>(), 64);
//! ```

#![warn(missing_docs)]

mod partition;
mod stats;
mod worker;

pub use partition::PartitionPolicy;
pub use stats::{ShardSnapshot, ShardedStats};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ddrs_cgm::{Machine, RunStats};
use ddrs_check::{TrackedGuard, TrackedMutex};
use ddrs_client::{
    ticket, Commit, PlannedOp, RangeStore, Request, Resolver, Response, ServiceError, SubmitError,
    Ticket,
};
use ddrs_engine::{BatchResults, QueryBatch};
use ddrs_rangetree::semigroup::comb_opt;
use ddrs_rangetree::{BuildError, DynamicDistRangeTree, Point, Rect, Semigroup, PAD_ID};
use ddrs_sched::{gate_reads, Pending, SchedConfig, SchedCore, StopMode, Window};
use ddrs_trace::{SpanId, Stage};
use ddrs_wal::{EpochRecord, EpochWal, LogSink, LogTail, MemSink, RecordKind};

use partition::Partitioner;
use worker::{
    spawn_worker, ReadComplete, RecoverReply, ShardJob, SplitReply, WorkerHandle, WriteReply,
};

/// Tuning knobs of the sharded serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedConfig {
    /// Dispatch as soon as this many requests are pending. Must be ≥ 1.
    /// One multi-op request's contiguous run is never split by this
    /// cap: a request carrying more reads than `max_batch` still
    /// dispatches as one fused window per shard.
    pub max_batch: usize,
    /// Dispatch once the oldest pending request has waited this long.
    pub max_delay: Duration,
    /// Admission bound: submissions beyond this queue depth are rejected
    /// with [`SubmitError::Overloaded`]; a single request carrying more
    /// ops than the whole capacity is rejected with the permanent
    /// [`SubmitError::RequestTooLarge`] instead. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Skew trigger: after a committed write epoch, if the largest shard
    /// holds more than `rebalance_factor ×` the mean live-point count
    /// (and at least [`rebalance_min`](Self::rebalance_min) points), the
    /// router splits it toward a lighter sibling. `0.0` disables
    /// automatic rebalancing; values ≤ 1.0 make no sense and are treated
    /// as disabled.
    pub rebalance_factor: f64,
    /// Minimum donor size for an automatic split.
    pub rebalance_min: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            queue_capacity: 4096,
            rebalance_factor: 0.0,
            rebalance_min: 64,
        }
    }
}

/// Outcome of a completed shard-split migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitReport {
    /// The shard that shrank.
    pub from: usize,
    /// The sibling that received the migrated points.
    pub to: usize,
    /// How many points moved.
    pub moved: usize,
    /// The axis-0 split coordinate. Under the range policy this is also
    /// the new slab boundary between the two shards.
    pub boundary: i64,
}

/// Outcome of a completed shard recovery: a quarantined shard rebuilt
/// from its write-ahead log and returned to service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The shard that was rebuilt.
    pub shard: usize,
    /// Committed WAL records replayed into the fresh store.
    pub replayed_records: usize,
    /// Live points in the rebuilt store.
    pub live_points: usize,
    /// `false` when the log ended in a torn or corrupt tail (expected
    /// after a crash mid-append): recovery stopped at the last complete
    /// record.
    pub clean_tail: bool,
    /// Wall-clock duration of the rebuild (decode + replay + rejoin).
    pub duration: Duration,
}

/// One request as it sits in the router queue: a client-contract op, or
/// one of the router's own commands (split / recover — the ops with no
/// `RangeStore` spelling).
enum Op<S: Semigroup, const D: usize> {
    Client(PlannedOp<S, D>),
    Split(usize, Resolver<SplitReport>),
    Recover(usize, Resolver<RecoveryReport>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    Split,
    Recover,
}

impl<S: Semigroup, const D: usize> Op<S, D> {
    fn kind(&self) -> Kind {
        match self {
            Op::Client(op) if op.is_read() => Kind::Read,
            Op::Client(_) => Kind::Write,
            Op::Split(..) => Kind::Split,
            Op::Recover(..) => Kind::Recover,
        }
    }

    fn fail(self, e: ServiceError) {
        match self {
            Op::Client(op) => op.fail(e),
            Op::Split(_, r) => r.resolve(Err(e)),
            Op::Recover(_, r) => r.resolve(Err(e)),
        }
    }

    fn span(&self) -> SpanId {
        match self {
            Op::Client(op) => op.span(),
            Op::Split(_, r) => r.span(),
            Op::Recover(_, r) => r.span(),
        }
    }
}

/// Whole microseconds between two instants (saturating at zero).
fn us_between(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

struct Inner<S: Semigroup, const D: usize> {
    cfg: ShardedConfig,
    sg: S,
    /// The shared group-commit scheduler core (admission, window firing,
    /// group-preserving carve, deadline expiry — see `ddrs-sched`).
    core: SchedCore<Op<S, D>>,
    /// Lock class `stats` — taken after `sched.queue`, before
    /// `shard.faults` and `shard.cross` (see `ddrs_check`'s canonical
    /// order).
    stats: TrackedMutex<ShardedStats>,
    /// Shards whose next write sub-epoch should suffer an injected
    /// mid-epoch processor panic (deterministic fault injection for the
    /// test harness). Lock class `shard.faults`.
    faults: TrackedMutex<HashSet<usize>>,
}

/// The per-shard state handed back by [`ShardedService::dismantle`]:
/// the group's machine, its store, and its quarantine reason if a write
/// sub-epoch failed mid-apply (a poisoned store may be inconsistent).
#[derive(Debug)]
pub struct ShardParts<const D: usize> {
    /// The shard group's machine.
    pub machine: Machine,
    /// The shard group's store.
    pub tree: DynamicDistRangeTree<D>,
    /// `Some(reason)` if the shard was poisoned.
    pub poisoned: Option<String>,
}

/// The sharded serving front-end: `S` shard groups behind one
/// serializable façade.
///
/// Submission methods take `&self` from any thread and return the same
/// [`Ticket`]s as the unsharded [`ddrs_service::Service`]; every
/// committed response carries a position in one *global* commit order
/// (see the crate docs for the serializability contract).
pub struct ShardedService<S: Semigroup, const D: usize> {
    inner: Arc<Inner<S, D>>,
    router: Option<JoinHandle<Vec<ShardParts<D>>>>,
    shards: usize,
}

impl<S: Semigroup, const D: usize> ShardedService<S, D> {
    /// Start the service: one shard group per machine, bulk-loading
    /// `initial` (partitioned by `policy`) in parallel across the
    /// groups, each store with rebuild unit `capacity`.
    ///
    /// Returns the same validation errors a sequential `insert_batch` of
    /// `initial` would (duplicate or reserved ids).
    ///
    /// # Panics
    /// Panics if `machines` is empty, a config bound is zero, or a range
    /// policy's boundary list does not match the machine count.
    pub fn start(
        machines: Vec<Machine>,
        capacity: usize,
        initial: &[Point<D>],
        sg: S,
        policy: PartitionPolicy,
        cfg: ShardedConfig,
    ) -> Result<Self, BuildError> {
        let sinks =
            (0..machines.len()).map(|_| Box::new(MemSink::new()) as Box<dyn LogSink>).collect();
        Self::start_with_sinks(machines, capacity, initial, sg, policy, cfg, sinks)
    }

    /// [`start`](ShardedService::start) with one caller-provided
    /// write-ahead-log sink per shard (e.g. `ddrs_wal::FileSink` for a
    /// log that survives the process). `start` itself uses in-memory
    /// sinks: the crash domain the service defends against is a
    /// processor panic inside one shard, and the log only has to
    /// outlive the quarantined *store*, not the process.
    ///
    /// # Panics
    /// As [`start`](ShardedService::start), plus if `sinks` does not
    /// match the machine count, or an initial-load record cannot be
    /// appended to its sink.
    pub fn start_with_sinks(
        machines: Vec<Machine>,
        capacity: usize,
        initial: &[Point<D>],
        sg: S,
        policy: PartitionPolicy,
        cfg: ShardedConfig,
        sinks: Vec<Box<dyn LogSink>>,
    ) -> Result<Self, BuildError> {
        assert!(!machines.is_empty(), "need at least one shard machine");
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be at least 1");
        assert_eq!(sinks.len(), machines.len(), "need exactly one WAL sink per shard");
        let shards = machines.len();
        let part = Partitioner::new(policy, shards);

        let mut owner: HashMap<u32, usize> = HashMap::with_capacity(initial.len());
        let mut parts: Vec<Vec<Point<D>>> = vec![Vec::new(); shards];
        for p in initial {
            if p.id == PAD_ID {
                return Err(BuildError::ReservedId);
            }
            let sh = part.place(p);
            if owner.insert(p.id, sh).is_some() {
                return Err(BuildError::DuplicateId(p.id));
            }
            parts[sh].push(*p);
        }
        let shard_len: Vec<usize> = parts.iter().map(Vec::len).collect();

        let workers: Vec<WorkerHandle<S, D>> = machines
            .into_iter()
            .enumerate()
            .map(|(i, m)| spawn_worker(i, m, DynamicDistRangeTree::<D>::new(capacity)))
            .collect();

        // One write-ahead log per shard. Non-empty shards log their
        // initial bulk load as the first record, so a recovery replay
        // starts from the same state the worker does.
        let wals: Vec<EpochWal<D>> = sinks.into_iter().map(EpochWal::with_sink).collect();

        // Parallel bulk load; construction statistics are not part of
        // the service telemetry (mirrors the unsharded service, whose
        // stats cover exactly its own dispatches).
        let (tx, rx) = mpsc::channel();
        let mut loading = 0usize;
        for (sh, pts) in parts.into_iter().enumerate() {
            if pts.is_empty() {
                continue;
            }
            loading += 1;
            wals[sh]
                .append_record(&EpochRecord::event(RecordKind::Load, 0, Vec::new(), pts.clone()))
                // ddrs-check: allow(unwrap) — construction-time append:
                // no clients exist yet, and a service whose log cannot
                // record its own initial state must not start.
                .expect("initial WAL append failed");
            workers[sh]
                .tx
                .send(ShardJob::Write {
                    deletes: Vec::new(),
                    inserts: pts,
                    inject_fault: false,
                    reply: tx.clone(),
                })
                // ddrs-check: allow(unwrap) — construction-time bulk
                // load: no clients exist yet, and a worker dying before
                // the service is even built is unrecoverable.
                .expect("shard worker died during bulk load");
        }
        drop(tx);
        for _ in 0..loading {
            // ddrs-check: allow(unwrap) — same construction-time path.
            let reply: WriteReply<D> = rx.recv().expect("shard worker died during bulk load");
            if let Err(e) = reply.result {
                panic!("initial bulk load failed on shard {}: {e}", reply.shard);
            }
        }

        let inner = Arc::new(Inner {
            cfg,
            sg,
            core: SchedCore::new(SchedConfig {
                max_batch: cfg.max_batch,
                max_delay: cfg.max_delay,
                queue_capacity: cfg.queue_capacity,
            }),
            stats: TrackedMutex::new(
                "shard.stats",
                ShardedStats {
                    per_shard: shard_len
                        .iter()
                        .map(|&n| ShardSnapshot { live_points: n, ..Default::default() })
                        .collect(),
                    range_bounds: part.bounds(),
                    ..Default::default()
                },
            ),
            faults: TrackedMutex::new("shard.faults", HashSet::new()),
        });
        let router_state = Router {
            workers,
            part,
            owner,
            shard_len,
            poisoned: vec![None; shards],
            next_seq: 0,
            wals,
            capacity,
        };
        let sched_inner = Arc::clone(&inner);
        let router = std::thread::Builder::new()
            .name("ddrs-shard-router".into())
            .spawn(move || router_loop(&sched_inner, router_state))
            // ddrs-check: allow(unwrap) — OS thread-spawn failure at
            // startup; there is no running service to keep alive.
            .expect("spawning the shard router");
        Ok(ShardedService { inner, router: Some(router), shards })
    }

    /// Number of shard groups.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Request a split of shard `donor`: half its points (split on the
    /// first axis) migrate to a lighter sibling between two dispatches,
    /// so no in-flight request observes a half-migrated store. Resolves
    /// with the migration report, or [`ServiceError::Machine`] if the
    /// split is impossible (single-point shard, all points sharing one
    /// coordinate, no healthy sibling). Under [`PartitionPolicy::Hash`]
    /// the migrated points no longer live where the placement mix says,
    /// so the first split permanently widens degenerate point reads from
    /// single-shard routing to full fan-out (answers stay exact; only
    /// the routing minimality is given up).
    pub fn split_shard(&self, donor: usize) -> Result<Ticket<SplitReport>, SubmitError> {
        assert!(donor < self.shards, "split_shard: no shard {donor}");
        let (t, r) = ticket();
        self.enqueue_ops(1, || (vec![Op::Split(donor, r)], None, None))?;
        Ok(t)
    }

    /// Request recovery of quarantined shard `shard`: between two
    /// dispatches, the router replays the shard's write-ahead log into
    /// a fresh store on the shard's own machine (stopping cleanly at
    /// any torn log tail), re-derives the id→shard ownership index from
    /// the rebuilt live ids, clears the quarantine, and the shard
    /// rejoins the service in place of its poisoned predecessor.
    ///
    /// Resolves with the [`RecoveryReport`], or
    /// [`ServiceError::Machine`] if the shard is not poisoned or the
    /// replay itself fails (the shard then stays quarantined and the
    /// call can be retried). Requests in flight against the dead shard
    /// are unaffected: recovery dispatches exclusively, so every
    /// earlier op has already resolved — committed, rejected, or failed
    /// with the quarantine error — by the time the rebuild runs.
    pub fn recover_shard(&self, shard: usize) -> Result<Ticket<RecoveryReport>, SubmitError> {
        assert!(shard < self.shards, "recover_shard: no shard {shard}");
        let (t, r) = ticket();
        self.enqueue_ops(1, || (vec![Op::Recover(shard, r)], None, None))?;
        Ok(t)
    }

    /// Admission shared by [`split_shard`](ShardedService::split_shard)
    /// and the [`RangeStore`] `submit` impl, delegated to the shared
    /// scheduler core: ops of one request are admitted all-or-nothing
    /// and enqueued contiguously under one fresh group id. `make` lowers
    /// the request only once admission is certain; it runs under the
    /// core's queue lock and must not take locks of its own.
    fn enqueue_ops(
        &self,
        n_ops: usize,
        make: impl FnOnce() -> (Vec<Op<S, D>>, Option<Duration>, Option<u64>),
    ) -> Result<(), SubmitError> {
        self.inner.core.submit_ops(
            n_ops,
            || {
                let (ops, deadline, min_seq) = make();
                // Lifecycle spans open here — admission is certain, so
                // every Queue begin is matched by an End on some
                // dispatch or failure path.
                for op in &ops {
                    ddrs_trace::begin(op.span(), Stage::Queue);
                }
                (ops, deadline, min_seq)
            },
            || self.inner.stats.lock().submitted += n_ops as u64,
            || self.inner.stats.lock().overloaded += 1,
        )
    }

    /// Deterministic fault injection for tests and harnesses: the next
    /// write sub-epoch dispatched to `shard` executes an SPMD program in
    /// which one simulated processor panics *between* the delete and
    /// insert cascades (via `Machine::try_run`), poisoning that shard
    /// while its siblings keep serving.
    pub fn fail_next_write_epoch(&self, shard: usize) {
        assert!(shard < self.shards, "fail_next_write_epoch: no shard {shard}");
        self.inner.faults.lock().insert(shard);
    }

    /// Snapshot the service telemetry.
    pub fn stats(&self) -> ShardedStats {
        let depth = self.inner.core.depth();
        let mut snap = self.inner.stats.lock().clone();
        snap.queue_depth = depth;
        snap
    }

    fn stop(&mut self, mode: StopMode) -> Vec<ShardParts<D>> {
        self.inner.core.begin_stop(mode);
        self.router
            .take()
            // ddrs-check: allow(unwrap) — invariant: every caller either
            // consumes `self` or checks `router.is_some()` first.
            .expect("sharded service already stopped")
            .join()
            // ddrs-check: allow(unwrap) — a panic escaping the router
            // loop is a router bug; fabricating parts would hide it.
            .expect("shard router panicked")
    }

    /// Begin a graceful shutdown without blocking: new submissions fail
    /// from this point on while already queued requests are served.
    pub fn begin_shutdown(&self) {
        self.inner.core.begin_stop(StopMode::Drain);
    }

    /// Stop accepting work, serve everything queued, then hand back each
    /// group's machine and store, in shard order.
    ///
    /// # Panics
    /// Panics if any shard was poisoned (a failed write sub-epoch left
    /// its store possibly inconsistent); use
    /// [`dismantle`](ShardedService::dismantle) to recover the healthy
    /// shards around a poisoned one.
    pub fn shutdown(mut self) -> Vec<(Machine, DynamicDistRangeTree<D>)> {
        let parts = self.stop(StopMode::Drain);
        parts
            .into_iter()
            .map(|p| {
                if let Some(reason) = p.poisoned {
                    panic!("shard store poisoned: {reason}");
                }
                (p.machine, p.tree)
            })
            .collect()
    }

    /// Stop accepting work and reject everything queued, then hand back
    /// each group's machine and store.
    ///
    /// # Panics
    /// Panics if any shard was poisoned, as with
    /// [`shutdown`](ShardedService::shutdown).
    pub fn abort(mut self) -> Vec<(Machine, DynamicDistRangeTree<D>)> {
        let parts = self.stop(StopMode::Reject);
        parts
            .into_iter()
            .map(|p| {
                if let Some(reason) = p.poisoned {
                    panic!("shard store poisoned: {reason}");
                }
                (p.machine, p.tree)
            })
            .collect()
    }

    /// Stop (rejecting queued work) and hand back *every* shard's parts,
    /// poisoned or not — the forensic exit the fault harness uses to
    /// inspect healthy siblings around a quarantined shard.
    pub fn dismantle(mut self) -> Vec<ShardParts<D>> {
        self.stop(StopMode::Reject)
    }
}

impl<S: Semigroup, const D: usize> RangeStore<S, D> for ShardedService<S, D> {
    /// Submit a composed multi-op request as one unit (the single-op
    /// `count`/`insert`/… conveniences are the trait's default methods
    /// over this).
    ///
    /// Admission is all-or-nothing: either every op of the request is
    /// enqueued contiguously (writes first, then reads — so the reads
    /// coalesce into one fused window per shard and observe the
    /// request's own writes), or the whole request is rejected. Each op
    /// counts toward the queue capacity and the submission telemetry
    /// individually.
    fn submit(&self, req: Request<S, D>) -> Result<Ticket<Response<S>>, SubmitError> {
        assert!(!req.is_empty(), "submitted an empty request");
        let n_ops = req.len();
        let mut ticket = None;
        self.enqueue_ops(n_ops, || {
            let planned = req.plan();
            let ops = planned.ops.into_iter().map(Op::Client).collect();
            ticket = Some(planned.ticket);
            (ops, planned.deadline, planned.min_seq)
        })?;
        // ddrs-check: allow(unwrap) — on the Ok path `submit_ops` always
        // ran `make`, which fills the slot.
        Ok(ticket.expect("admission ran the lowering closure"))
    }
}

impl<S: Semigroup, const D: usize> Drop for ShardedService<S, D> {
    fn drop(&mut self) {
        if self.router.is_some() {
            let _ = self.stop(StopMode::Drain);
        }
    }
}

impl<S: Semigroup, const D: usize> std::fmt::Debug for ShardedService<S, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards)
            .field("d", &D)
            .field("queue_depth", &self.inner.core.depth())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------

struct Router<S: Semigroup, const D: usize> {
    workers: Vec<WorkerHandle<S, D>>,
    part: Partitioner,
    /// Authoritative id → owning shard index for every live point.
    owner: HashMap<u32, usize>,
    shard_len: Vec<usize>,
    poisoned: Vec<Option<String>>,
    next_seq: u64,
    /// One write-ahead log per shard (lock class `wal.append`): every
    /// committed epoch, bulk load and migration is appended before any
    /// of its tickets resolve, so a quarantined shard can always be
    /// rebuilt to its last committed state by `recover_shard`.
    wals: Vec<EpochWal<D>>,
    /// The rebuild-unit capacity every shard store was built with —
    /// recovery rebuilds with the same value.
    capacity: usize,
}

impl<S: Semigroup, const D: usize> Router<S, D> {
    fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Publish per-shard health, sizes and WAL counters into the shared
    /// stats.
    fn publish(&self, inner: &Inner<S, D>) {
        let mut st = inner.stats.lock();
        for (i, snap) in st.per_shard.iter_mut().enumerate() {
            snap.live_points = self.shard_len[i];
            snap.poisoned = self.poisoned[i].clone();
            // `stats` precedes `wal.append` in the canonical order, so
            // reading the log counters under the stats guard is legal.
            let ws = self.wals[i].stats();
            snap.wal_records = ws.records;
            snap.wal_bytes = ws.bytes;
        }
        st.range_bounds = self.part.bounds();
    }
}

fn router_loop<S: Semigroup, const D: usize>(
    inner: &Arc<Inner<S, D>>,
    mut router: Router<S, D>,
) -> Vec<ShardParts<D>> {
    loop {
        // The shared scheduler core decides when and what to dispatch;
        // splits and recoveries are the exclusive kinds (they dispatch
        // alone, between windows, so no in-flight request observes a
        // half-migrated or half-rebuilt store).
        let window =
            inner.core.next_window(None, Op::kind, |k| matches!(k, Kind::Split | Kind::Recover));
        let (batch, expired) = match window {
            Window::Shutdown { rejected, .. } => {
                inner.stats.lock().completed += rejected.len() as u64;
                for p in rejected {
                    ddrs_trace::end_err(p.op.span(), Stage::Queue);
                    p.op.fail(ServiceError::ShuttingDown);
                }
                // stop_workers joins every worker thread, so all
                // in-flight read callbacks finish before we return the
                // shard parts.
                return stop_workers(router);
            }
            Window::Idle => continue,
            Window::Dispatch { batch, expired } => (batch, expired),
        };

        if !expired.is_empty() {
            {
                let mut st = inner.stats.lock();
                st.expired += expired.len() as u64;
                st.completed += expired.len() as u64;
            }
            for p in expired {
                ddrs_trace::end_err(p.op.span(), Stage::Queue);
                p.op.fail(ServiceError::DeadlineExpired);
            }
        }
        // Consistency bounds gate reads only (a write observes
        // nothing), judged at dispatch time against the global commit
        // counter, exactly as in the unsharded service.
        let (batch, unmet) = gate_reads(batch, router.next_seq, |op| op.kind() == Kind::Read);
        if !unmet.is_empty() {
            inner.stats.lock().completed += unmet.len() as u64;
            for p in unmet {
                // ddrs-check: allow(unwrap) — `gate_reads` puts an op in
                // `unmet` only when it carries a `min_seq` bound.
                let required = p.min_seq.expect("partitioned on min_seq");
                ddrs_trace::end_err(p.op.span(), Stage::Queue);
                p.op.fail(ServiceError::Consistency { required, committed: router.next_seq });
            }
        }
        let Some(first) = batch.first() else { continue };
        match first.op.kind() {
            Kind::Read => dispatch_reads(inner, &mut router, batch),
            Kind::Write => dispatch_write_epoch(inner, &mut router, batch),
            Kind::Split => {
                debug_assert_eq!(batch.len(), 1);
                let Some(Pending { op: Op::Split(donor, resolver), submitted, .. }) =
                    batch.into_iter().next()
                else {
                    unreachable!("split batch without a split op")
                };
                ddrs_trace::transition(resolver.span(), Stage::Queue, Stage::Window);
                let outcome = do_split(inner, &mut router, donor);
                {
                    let mut st = inner.stats.lock();
                    st.completed += 1;
                    st.latency_us.record(submitted.elapsed().as_micros() as u64);
                }
                // Publish before resolution: the split's effects must be
                // visible in the telemetry by the time its ticket resolves.
                router.publish(inner);
                match outcome {
                    Ok(report) => {
                        let seq = router.next_seq;
                        router.next_seq += 1;
                        ddrs_trace::end(resolver.span(), Stage::Window);
                        resolver.resolve(Ok(Commit { value: report, seq }));
                    }
                    Err(e) => {
                        ddrs_trace::end_err(resolver.span(), Stage::Window);
                        resolver.resolve(Err(ServiceError::Machine(e)));
                    }
                }
            }
            Kind::Recover => {
                debug_assert_eq!(batch.len(), 1);
                let Some(Pending { op: Op::Recover(shard, resolver), submitted, .. }) =
                    batch.into_iter().next()
                else {
                    unreachable!("recover batch without a recover op")
                };
                ddrs_trace::transition(resolver.span(), Stage::Queue, Stage::Window);
                let outcome = do_recover(inner, &mut router, shard);
                {
                    let mut st = inner.stats.lock();
                    st.completed += 1;
                    st.latency_us.record(submitted.elapsed().as_micros() as u64);
                    if let Ok(report) = &outcome {
                        // The rebuild is the recovery's window work —
                        // surfaced through the always-on breakdown so
                        // BENCH_recovery.json and the metrics registry
                        // see the duration without span recording.
                        st.stages.window.record(report.duration.as_micros() as u64);
                    }
                }
                // Publish before resolution: the recovery's effects
                // (health, sizes, counters) must be visible in the
                // telemetry by the time its ticket resolves.
                router.publish(inner);
                match outcome {
                    Ok(report) => {
                        let seq = router.next_seq;
                        router.next_seq += 1;
                        ddrs_trace::end(resolver.span(), Stage::Window);
                        resolver.resolve(Ok(Commit { value: report, seq }));
                    }
                    Err(e) => {
                        ddrs_trace::end_err(resolver.span(), Stage::Window);
                        resolver.resolve(Err(ServiceError::Machine(e)));
                    }
                }
            }
        }
    }
}

fn stop_workers<S: Semigroup, const D: usize>(router: Router<S, D>) -> Vec<ShardParts<D>> {
    let Router { workers, poisoned, .. } = router;
    let mut parts = Vec::with_capacity(workers.len());
    for (handle, poison) in workers.into_iter().zip(poisoned) {
        let (tx, rx) = mpsc::channel();
        // ddrs-check: allow(unwrap) — shutdown: workers only exit via
        // this very Stop job, so a dead channel means a worker panicked
        // outside the poisoning protocol; we must not fabricate the
        // `ShardParts` handed back to the caller.
        handle.tx.send(ShardJob::Stop { reply: tx }).expect("shard worker died before stop");
        // ddrs-check: allow(unwrap) — same shutdown invariant.
        let (machine, tree) = rx.recv().expect("shard worker dropped its stop reply");
        // ddrs-check: allow(unwrap) — a worker panic is a worker bug;
        // surfacing it beats returning an inconsistent store silently.
        handle.join.join().expect("shard worker panicked");
        parts.push(ShardParts { machine, tree, poisoned: poison });
    }
    parts
}

/// A cross-shard read in flight: partials accumulate under `state` as
/// each touched shard's worker completes its sub-batch; the last arrival
/// takes the resolver and commits (or fails) the op with its
/// pre-assigned global sequence number.
struct CrossOp<V> {
    seq: u64,
    submitted: Instant,
    /// The request's trace span (the resolver's, cached outside the
    /// state lock so non-final arrivals never need the mutex for it).
    span: SpanId,
    /// Lock class `shard.cross` — the innermost shard lock: workers take
    /// it while folding partials, sometimes with `stats` already held.
    state: TrackedMutex<CrossState<V>>,
}

struct CrossState<V> {
    remaining: usize,
    acc: V,
    error: Option<String>,
    resolver: Option<Resolver<V>>,
}

impl<V: Default> CrossOp<V> {
    fn new(
        fanout: usize,
        acc: V,
        resolver: Resolver<V>,
        submitted: Instant,
        seq: u64,
    ) -> Arc<Self> {
        Arc::new(CrossOp {
            seq,
            submitted,
            span: resolver.span(),
            state: TrackedMutex::new(
                "shard.cross",
                CrossState { remaining: fanout, acc, error: None, resolver: Some(resolver) },
            ),
        })
    }

    fn settle(mut st: TrackedGuard<'_, CrossState<V>>) -> Option<(Resolver<V>, V, Option<String>)> {
        st.remaining -= 1;
        if st.remaining == 0 {
            // ddrs-check: allow(unwrap) — `remaining` hits zero exactly
            // once, so the resolver is still present on the last arrival.
            let r = st.resolver.take().expect("cross-shard op resolved twice");
            Some((r, std::mem::take(&mut st.acc), st.error.take()))
        } else {
            None
        }
    }

    /// Fold one shard's partial into the accumulator. Returns the
    /// resolution duty iff this arrival was the last one.
    fn fold(&self, fold: impl FnOnce(&mut V)) -> Option<(Resolver<V>, V, Option<String>)> {
        let mut st = self.state.lock();
        if st.error.is_none() {
            fold(&mut st.acc);
        }
        Self::settle(st)
    }

    /// Record one shard's failure (the first error wins). Returns the
    /// resolution duty iff this arrival was the last one.
    fn fail(&self, e: String) -> Option<(Resolver<V>, V, Option<String>)> {
        let mut st = self.state.lock();
        if st.error.is_none() {
            st.error = Some(e);
        }
        Self::settle(st)
    }
}

/// Where one query of a shard's fused sub-batch delivers its result: a
/// single-shard op resolves its ticket directly on the worker thread; a
/// cross-shard op folds into its shared countdown.
enum Slot<V> {
    Solo(Resolver<V>, u64, Instant),
    Cross(Arc<CrossOp<V>>),
}

/// One shard's share of a read window: clipped rects per query mode,
/// with a result slot aligned to each rect.
struct ShardPlan<S: Semigroup, const D: usize> {
    counts: Vec<Rect<D>>,
    count_slots: Vec<Slot<u64>>,
    aggs: Vec<Rect<D>>,
    agg_slots: Vec<Slot<Option<S::Val>>>,
    reports: Vec<Rect<D>>,
    report_slots: Vec<Slot<Vec<u32>>>,
}

impl<S: Semigroup, const D: usize> ShardPlan<S, D> {
    fn empty() -> Self {
        ShardPlan {
            counts: Vec::new(),
            count_slots: Vec::new(),
            aggs: Vec::new(),
            agg_slots: Vec::new(),
            reports: Vec::new(),
            report_slots: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.counts.len() + self.aggs.len() + self.reports.len()
    }
}

/// Window-level read telemetry, shared by every shard callback of one
/// scattered window: `dispatches` counts *windows* that reached at least
/// one machine (not sub-batches), and the batch-size histogram records
/// client queries per window — the same semantics as the single-store
/// service, so coalescing numbers stay comparable across front-ends.
/// The first shard to finish with a real run claims the count.
struct WindowTally {
    routed: u64,
    counted: AtomicBool,
    /// When the router carved this window (Queue → Window boundary of
    /// every op it routed) — the always-on stage-breakdown clock shared
    /// by all shard callbacks.
    carve: Instant,
    /// When the router finished planning and began the scatter
    /// (Window → MachineRun boundary).
    scatter: Instant,
}

/// Plan a coalesced read window into at most one fused sub-batch per
/// *touched* shard and scatter the sub-batches to the shard workers —
/// without waiting for any of them. Sequence numbers are pre-assigned
/// here on the router thread (planning order is the global order);
/// ticket resolution happens on the worker threads as each shard
/// finishes, so the router is immediately free to carve the next window.
fn dispatch_reads<S: Semigroup, const D: usize>(
    inner: &Arc<Inner<S, D>>,
    router: &mut Router<S, D>,
    batch: Vec<Pending<Op<S, D>>>,
) {
    let t_carve = Instant::now();
    let shards = router.shards();
    let mut plans: Vec<ShardPlan<S, D>> = (0..shards).map(|_| ShardPlan::empty()).collect();
    // Ops settled at planning time (degenerate rects answered locally,
    // poisoned fan-outs failed) and routing telemetry, accounted in one
    // stats acquisition below.
    let mut settled: Vec<Instant> = Vec::new();
    let mut routed_spans: Vec<SpanId> = Vec::new();
    let mut routed_ops = 0u64;
    let mut shards_touched = 0u64;

    for p in batch {
        ddrs_trace::transition(p.op.span(), Stage::Queue, Stage::Window);
        let Op::Client(op) = p.op else { unreachable!("carve() mixed non-reads into a read run") };
        // ddrs-check: allow(unwrap) — carve() emits kind-homogeneous
        // runs, and every read op carries an interval.
        let rect = *op.interval().expect("read run contains a non-read op");
        let fan = router.part.read_fanout(&rect);
        let n = fan.clone().count();
        if n == 0 {
            // Empty rect: answer locally, holding its place in the
            // global commit order without touching any shard.
            let seq = router.next_seq;
            router.next_seq += 1;
            ddrs_trace::end(op.span(), Stage::Window);
            match op {
                PlannedOp::Count(_, r) => r.resolve(Ok(Commit { value: 0, seq })),
                PlannedOp::Aggregate(_, r) => r.resolve(Ok(Commit { value: None, seq })),
                PlannedOp::Report(_, r) => r.resolve(Ok(Commit { value: Vec::new(), seq })),
                _ => unreachable!("read run contains a non-read op"),
            }
            settled.push(p.submitted);
            continue;
        }
        if let Some(bad) = fan.clone().find(|&s| router.poisoned[s].is_some()) {
            let reason = router.poisoned[bad].clone().unwrap_or_default();
            ddrs_trace::end_err(op.span(), Stage::Window);
            op.fail(ServiceError::Machine(format!("shard {bad} is poisoned: {reason}")));
            settled.push(p.submitted);
            continue;
        }
        let seq = router.next_seq;
        router.next_seq += 1;
        routed_spans.push(op.span());
        routed_ops += 1;
        shards_touched += n as u64;
        match op {
            PlannedOp::Count(_, r) => {
                if n == 1 {
                    let s = *fan.start();
                    plans[s].counts.push(router.part.clip(s, &rect));
                    plans[s].count_slots.push(Slot::Solo(r, seq, p.submitted));
                } else {
                    let cross = CrossOp::new(n, 0u64, r, p.submitted, seq);
                    for s in fan {
                        plans[s].counts.push(router.part.clip(s, &rect));
                        plans[s].count_slots.push(Slot::Cross(Arc::clone(&cross)));
                    }
                }
            }
            PlannedOp::Aggregate(_, r) => {
                if n == 1 {
                    let s = *fan.start();
                    plans[s].aggs.push(router.part.clip(s, &rect));
                    plans[s].agg_slots.push(Slot::Solo(r, seq, p.submitted));
                } else {
                    let cross = CrossOp::new(n, None, r, p.submitted, seq);
                    for s in fan {
                        plans[s].aggs.push(router.part.clip(s, &rect));
                        plans[s].agg_slots.push(Slot::Cross(Arc::clone(&cross)));
                    }
                }
            }
            PlannedOp::Report(_, r) => {
                if n == 1 {
                    let s = *fan.start();
                    plans[s].reports.push(router.part.clip(s, &rect));
                    plans[s].report_slots.push(Slot::Solo(r, seq, p.submitted));
                } else {
                    let cross = CrossOp::new(n, Vec::new(), r, p.submitted, seq);
                    for s in fan {
                        plans[s].reports.push(router.part.clip(s, &rect));
                        plans[s].report_slots.push(Slot::Cross(Arc::clone(&cross)));
                    }
                }
            }
            _ => unreachable!("read run contains a non-read op"),
        }
    }

    {
        let mut st = inner.stats.lock();
        st.read_ops_routed += routed_ops;
        st.read_shards_touched += shards_touched;
        st.completed += settled.len() as u64;
        for t0 in settled {
            st.latency_us.record(t0.elapsed().as_micros() as u64);
            st.stages.queue.record(us_between(t0, t_carve));
        }
    }

    // Scatter every touched shard's sub-batch; the workers run them
    // concurrently and resolve the tickets themselves.
    for sp in &routed_spans {
        ddrs_trace::transition(*sp, Stage::Window, Stage::MachineRun);
    }
    let tally = Arc::new(WindowTally {
        routed: routed_ops,
        counted: AtomicBool::new(false),
        carve: t_carve,
        scatter: Instant::now(),
    });
    for (s, plan) in plans.into_iter().enumerate() {
        if plan.len() == 0 {
            continue;
        }
        let ShardPlan { counts, count_slots, aggs, agg_slots, reports, report_slots } = plan;
        let qb = QueryBatch::from_parts(inner.sg, counts, aggs, reports);
        let cb_inner = Arc::clone(inner);
        let cb_tally = Arc::clone(&tally);
        let complete: ReadComplete<S> = Box::new(move |result, run_stats| {
            finish_shard_reads(
                &cb_inner,
                s,
                result,
                run_stats,
                count_slots,
                agg_slots,
                report_slots,
                &cb_tally,
            );
        });
        router.workers[s]
            .tx
            .send(ShardJob::Reads { batch: qb, complete })
            // ddrs-check: allow(unwrap) — workers only exit via the Stop
            // job the router itself sends at shutdown; a dead channel
            // here means a worker panicked outside the poisoning
            // protocol, which must stay loud.
            .expect("shard worker died");
    }
}

/// Worker-thread completion of one shard's fused read sub-batch: absorb
/// the run's stats, resolve single-shard tickets directly, and fold
/// cross-shard partials into their shared countdowns (the last shard to
/// arrive resolves). Stats mutation and partial-folding happen in one
/// critical section — so a final cross arrival always observes every
/// earlier shard's run already absorbed, and counters are bumped
/// *before* each resolution (a client that has observed its response
/// also observes it as completed in any telemetry snapshot) — but the
/// resolutions themselves are deferred until the guard is dropped:
/// client wakeups must not serialize other shards' read completions on
/// the global stats mutex under high fan-in.
#[allow(clippy::too_many_arguments)]
fn finish_shard_reads<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    shard: usize,
    result: Result<BatchResults<S>, String>,
    run_stats: RunStats,
    count_slots: Vec<Slot<u64>>,
    agg_slots: Vec<Slot<Option<S::Val>>>,
    report_slots: Vec<Slot<Vec<u32>>>,
    tally: &WindowTally,
) {
    let sg = inner.sg;
    let settle_now = Instant::now();
    // Ticket resolutions decided in the critical section below, run
    // after it ends.
    let mut resolutions: Vec<Box<dyn FnOnce()>> = Vec::new();
    let mut st = inner.stats.lock();
    st.machine.absorb(&run_stats);
    st.per_shard[shard].machine.absorb(&run_stats);
    // ddrs-check: allow(relaxed) — telemetry-only once-flag: it orders
    // no data (all stats mutate under the `stats` lock held here).
    if run_stats.runs > 0 && !tally.counted.swap(true, Ordering::Relaxed) {
        st.dispatches += 1;
        st.queries_coalesced += tally.routed;
        st.batch_sizes.record(tally.routed);
    }
    // Account one op as completed (and record its latency) exactly when
    // its ticket's resolution is decided here — i.e. for every solo
    // slot, and for a cross slot only on its final arrival.
    macro_rules! done {
        ($submitted:expr) => {
            st.completed += 1;
            st.latency_us.record($submitted.elapsed().as_micros() as u64);
            st.stages.queue.record(us_between($submitted, tally.carve));
            st.stages.window.record(us_between(tally.carve, tally.scatter));
            st.stages.machine_run.record(us_between(tally.scatter, settle_now));
        };
    }
    match result {
        Ok(out) => {
            let BatchResults { counts, aggregates, reports } = out;
            for (part, slot) in counts.into_iter().zip(count_slots) {
                match slot {
                    Slot::Solo(r, seq, t0) => {
                        done!(t0);
                        ddrs_trace::transition(r.span(), Stage::MachineRun, Stage::Merge);
                        resolutions.push(Box::new(move || {
                            ddrs_trace::end(r.span(), Stage::Merge);
                            r.resolve(Ok(Commit { value: part, seq }));
                        }));
                    }
                    Slot::Cross(cross) => {
                        if let Some((r, acc, err)) = cross.fold(|acc| *acc += part) {
                            done!(cross.submitted);
                            ddrs_trace::transition(cross.span, Stage::MachineRun, Stage::Merge);
                            let seq = cross.seq;
                            resolutions.push(Box::new(move || match err {
                                None => {
                                    ddrs_trace::end(r.span(), Stage::Merge);
                                    r.resolve(Ok(Commit { value: acc, seq }));
                                }
                                Some(e) => {
                                    ddrs_trace::end_err(r.span(), Stage::Merge);
                                    r.resolve(Err(ServiceError::Machine(e)));
                                }
                            }));
                        }
                    }
                }
            }
            for (part, slot) in aggregates.into_iter().zip(agg_slots) {
                match slot {
                    Slot::Solo(r, seq, t0) => {
                        done!(t0);
                        ddrs_trace::transition(r.span(), Stage::MachineRun, Stage::Merge);
                        resolutions.push(Box::new(move || {
                            ddrs_trace::end(r.span(), Stage::Merge);
                            r.resolve(Ok(Commit { value: part, seq }));
                        }));
                    }
                    Slot::Cross(cross) => {
                        let fold =
                            |acc: &mut Option<S::Val>| *acc = comb_opt(&sg, acc.take(), part);
                        if let Some((r, acc, err)) = cross.fold(fold) {
                            done!(cross.submitted);
                            ddrs_trace::transition(cross.span, Stage::MachineRun, Stage::Merge);
                            let seq = cross.seq;
                            resolutions.push(Box::new(move || match err {
                                None => {
                                    ddrs_trace::end(r.span(), Stage::Merge);
                                    r.resolve(Ok(Commit { value: acc, seq }));
                                }
                                Some(e) => {
                                    ddrs_trace::end_err(r.span(), Stage::Merge);
                                    r.resolve(Err(ServiceError::Machine(e)));
                                }
                            }));
                        }
                    }
                }
            }
            for (part, slot) in reports.into_iter().zip(report_slots) {
                match slot {
                    Slot::Solo(r, seq, t0) => {
                        done!(t0);
                        ddrs_trace::transition(r.span(), Stage::MachineRun, Stage::Merge);
                        resolutions.push(Box::new(move || {
                            ddrs_trace::end(r.span(), Stage::Merge);
                            r.resolve(Ok(Commit { value: part, seq }));
                        }));
                    }
                    Slot::Cross(cross) => {
                        if let Some((r, mut acc, err)) = cross.fold(|acc| acc.extend(part)) {
                            done!(cross.submitted);
                            ddrs_trace::transition(cross.span, Stage::MachineRun, Stage::Merge);
                            let seq = cross.seq;
                            resolutions.push(Box::new(move || match err {
                                None => {
                                    // Shards are disjoint, so a sort
                                    // restores exactly the unsharded
                                    // ascending order.
                                    acc.sort_unstable();
                                    ddrs_trace::end(r.span(), Stage::Merge);
                                    r.resolve(Ok(Commit { value: acc, seq }));
                                }
                                Some(e) => {
                                    ddrs_trace::end_err(r.span(), Stage::Merge);
                                    r.resolve(Err(ServiceError::Machine(e)));
                                }
                            }));
                        }
                    }
                }
            }
        }
        Err(e) => {
            let msg = format!("shard {shard}: {e}");
            macro_rules! fail_slots {
                ($slots:expr) => {
                    for slot in $slots {
                        match slot {
                            Slot::Solo(r, _, t0) => {
                                done!(t0);
                                ddrs_trace::transition(r.span(), Stage::MachineRun, Stage::Merge);
                                let m = msg.clone();
                                resolutions.push(Box::new(move || {
                                    ddrs_trace::end_err(r.span(), Stage::Merge);
                                    r.resolve(Err(ServiceError::Machine(m)));
                                }));
                            }
                            Slot::Cross(cross) => {
                                if let Some((r, _, err)) = cross.fail(msg.clone()) {
                                    done!(cross.submitted);
                                    ddrs_trace::transition(
                                        cross.span,
                                        Stage::MachineRun,
                                        Stage::Merge,
                                    );
                                    resolutions.push(Box::new(move || {
                                        ddrs_trace::end_err(r.span(), Stage::Merge);
                                        r.resolve(Err(ServiceError::Machine(
                                            // ddrs-check: allow(unwrap) —
                                            // `cross.fail` just recorded
                                            // an error, so the final
                                            // arrival always sees Some.
                                            err.expect("failed cross op without an error"),
                                        )));
                                    }));
                                }
                            }
                        }
                    }
                };
            }
            fail_slots!(count_slots);
            fail_slots!(agg_slots);
            fail_slots!(report_slots);
        }
    }
    drop(st);
    let t_merge1 = Instant::now();
    let n_res = resolutions.len() as u64;
    for resolve in resolutions {
        resolve();
    }
    if n_res > 0 {
        let t_resolve1 = Instant::now();
        // Merge/resolve durations are only knowable after the resolutions
        // ran, so they land in a second stats acquisition — a deliberate
        // relaxation of the stats-before-resolve rule: their duration IS
        // the resolution work itself.
        let mut st = inner.stats.lock();
        for _ in 0..n_res {
            st.stages.merge.record(us_between(settle_now, t_merge1));
            st.stages.resolve.record(us_between(t_merge1, t_resolve1));
        }
    }
}

/// Per-request validation verdict inside a write epoch.
enum Verdict {
    Commit,
    Rejected(BuildError),
    /// The request needed a poisoned shard; it fails before any routing
    /// and mutates nothing.
    Unavailable(String),
}

/// Validate a run of writes sequentially, scatter them as one sub-epoch
/// per touched shard, and either commit all of them under the global
/// sequence or abort the whole epoch (rolling back healthy shards,
/// poisoning failed ones).
fn dispatch_write_epoch<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    router: &mut Router<S, D>,
    batch: Vec<Pending<Op<S, D>>>,
) {
    let t_carve = Instant::now();
    // Epoch delta: Some((pt, shard)) = live, inserted this epoch at
    // `shard`; None = dead. Ids absent defer to the ownership index.
    let mut delta: BTreeMap<u32, Option<(Point<D>, usize)>> = BTreeMap::new();
    let mut tree_deleted: Vec<Vec<u32>> = vec![Vec::new(); router.shards()];
    let mut outcomes: Vec<(Resolver<()>, Verdict, Instant)> = Vec::with_capacity(batch.len());

    for p in batch {
        ddrs_trace::transition(p.op.span(), Stage::Queue, Stage::Window);
        match p.op {
            Op::Client(PlannedOp::Insert(pts, r)) => {
                let mut verdict = Verdict::Commit;
                let mut seen: HashSet<u32> = HashSet::with_capacity(pts.len());
                let mut placements: Vec<usize> = Vec::with_capacity(pts.len());
                for pt in &pts {
                    if pt.id == PAD_ID {
                        verdict = Verdict::Rejected(BuildError::ReservedId);
                        break;
                    }
                    let live = match delta.get(&pt.id) {
                        Some(Some(_)) => true,
                        Some(None) => false,
                        None => router.owner.contains_key(&pt.id),
                    };
                    if live || !seen.insert(pt.id) {
                        verdict = Verdict::Rejected(BuildError::DuplicateId(pt.id));
                        break;
                    }
                    let sh = router.part.place(pt);
                    if let Some(reason) = &router.poisoned[sh] {
                        verdict = Verdict::Unavailable(format!("shard {sh} is poisoned: {reason}"));
                        break;
                    }
                    placements.push(sh);
                }
                if matches!(verdict, Verdict::Commit) {
                    for (pt, sh) in pts.into_iter().zip(placements) {
                        delta.insert(pt.id, Some((pt, sh)));
                    }
                }
                outcomes.push((r, verdict, p.submitted));
            }
            Op::Client(PlannedOp::Delete(ids, r)) => {
                // First pass: the delete must not touch a poisoned
                // shard; if it would, it fails atomically (no partial
                // application anywhere).
                let bad = ids.iter().find_map(|id| match delta.get(id) {
                    Some(_) => None,
                    None => {
                        router.owner.get(id).filter(|&&sh| router.poisoned[sh].is_some()).copied()
                    }
                });
                if let Some(sh) = bad {
                    let reason = router.poisoned[sh].clone().unwrap_or_default();
                    outcomes.push((
                        r,
                        Verdict::Unavailable(format!("shard {sh} is poisoned: {reason}")),
                        p.submitted,
                    ));
                    continue;
                }
                for id in ids {
                    match delta.get(&id) {
                        Some(Some(_)) => {
                            delta.insert(id, None);
                        }
                        Some(None) => {}
                        None => {
                            if let Some(&sh) = router.owner.get(&id) {
                                tree_deleted[sh].push(id);
                                delta.insert(id, None);
                            }
                        }
                    }
                }
                outcomes.push((r, Verdict::Commit, p.submitted));
            }
            _ => unreachable!("carve() mixed non-writes into a write run"),
        }
    }

    // Route the net effect: one sub-epoch per touched shard.
    let mut inserts: Vec<Vec<Point<D>>> = vec![Vec::new(); router.shards()];
    for (pt, sh) in delta.values().flatten() {
        inserts[*sh].push(*pt);
    }
    let involved: Vec<usize> = (0..router.shards())
        .filter(|&s| !tree_deleted[s].is_empty() || !inserts[s].is_empty())
        .collect();

    // `end_stage` is the lifecycle stage the ops' spans are in when the
    // epoch's fate is decided: Window on the validation-only path (no
    // machine ever ran), Merge once a machine run happened.
    let resolve_all = |outcomes: Vec<(Resolver<()>, Verdict, Instant)>,
                       router: &mut Router<S, D>,
                       epoch_error: Option<&String>,
                       end_stage: Stage| {
        for (r, verdict, _) in outcomes {
            match (epoch_error, verdict) {
                (Some(e), Verdict::Commit | Verdict::Rejected(_)) => {
                    // The epoch aborted: nothing in it committed, and a
                    // sequential rejection computed against the aborted
                    // prefix is void too.
                    ddrs_trace::end_err(r.span(), end_stage);
                    r.resolve(Err(ServiceError::Machine(format!("write epoch aborted: {e}"))));
                }
                (None, Verdict::Commit) => {
                    let seq = router.next_seq;
                    router.next_seq += 1;
                    ddrs_trace::end(r.span(), end_stage);
                    r.resolve(Ok(Commit { value: (), seq }));
                }
                (None, Verdict::Rejected(e)) => {
                    ddrs_trace::end_err(r.span(), end_stage);
                    r.resolve(Err(ServiceError::Rejected(e)));
                }
                (_, Verdict::Unavailable(msg)) => {
                    ddrs_trace::end_err(r.span(), end_stage);
                    r.resolve(Err(ServiceError::Machine(msg)));
                }
            }
        }
    };

    let record_latency = |inner: &Inner<S, D>, outcomes: &[(Resolver<()>, Verdict, Instant)]| {
        let mut st = inner.stats.lock();
        st.completed += outcomes.len() as u64;
        for (_, _, submitted) in outcomes {
            st.latency_us.record(submitted.elapsed().as_micros() as u64);
            st.stages.queue.record(us_between(*submitted, t_carve));
        }
    };

    if involved.is_empty() {
        // Nothing reaches any machine: validation-only outcomes (empty
        // batches, rejections, no-op deletes) still commit/fail in order.
        record_latency(inner, &outcomes);
        {
            let t_window1 = Instant::now();
            let mut st = inner.stats.lock();
            for _ in 0..outcomes.len() {
                st.stages.window.record(us_between(t_carve, t_window1));
            }
        }
        resolve_all(outcomes, router, None, Stage::Window);
        router.publish(inner);
        return;
    }

    // Scatter the sub-epochs (consuming any injected faults), then
    // gather.
    // The rollback path only needs the *ids* of what each shard was
    // asked to insert; collect them up front so the scatter can move
    // the point payloads instead of cloning them.
    let insert_ids: Vec<Vec<u32>> =
        inserts.iter().map(|pts| pts.iter().map(|p| p.id).collect()).collect();
    // WAL capital: the scatter below moves the batches into the jobs,
    // so the per-shard log copies (and the epoch's verdict list) are
    // taken before it. Every involved shard's record carries the full
    // verdict list — the epoch is global — plus its own sub-batches.
    let mut wal_deletes: Vec<Vec<u32>> = tree_deleted.clone();
    let mut wal_inserts: Vec<Vec<Point<D>>> = inserts.clone();
    let wal_verdicts: Vec<ddrs_wal::Verdict> = outcomes
        .iter()
        .map(|(_, v, _)| match v {
            Verdict::Commit => ddrs_wal::Verdict::Commit,
            Verdict::Rejected(_) => ddrs_wal::Verdict::Rejected,
            Verdict::Unavailable(_) => ddrs_wal::Verdict::Unavailable,
        })
        .collect();
    // The whole run shares the epoch's fate — even a sequentially
    // rejected op's resolution waits on the machine run — so every span
    // advances through MachineRun together.
    let t_scatter = Instant::now();
    for (r, _, _) in &outcomes {
        ddrs_trace::transition(r.span(), Stage::Window, Stage::MachineRun);
    }
    let (tx, rx) = mpsc::channel::<WriteReply<D>>();
    for &s in &involved {
        let inject_fault = inner.faults.lock().remove(&s);
        router.workers[s]
            .tx
            .send(ShardJob::Write {
                deletes: std::mem::take(&mut tree_deleted[s]),
                inserts: std::mem::take(&mut inserts[s]),
                inject_fault,
                reply: tx.clone(),
            })
            // ddrs-check: allow(unwrap) — workers only exit via the Stop
            // protocol; a dead channel means a worker panicked.
            .expect("shard worker died");
    }
    drop(tx);
    let mut replies: Vec<Option<Result<Vec<Point<D>>, String>>> =
        (0..router.shards()).map(|_| None).collect();
    let mut runs_total = 0u64;
    for _ in 0..involved.len() {
        // ddrs-check: allow(unwrap) — every involved worker replies
        // exactly once per sub-epoch (failures travel as Err *data*);
        // a dropped channel means a worker panicked.
        let reply = rx.recv().expect("shard worker dropped a write reply");
        runs_total += reply.stats.runs as u64;
        {
            let mut st = inner.stats.lock();
            st.machine.absorb(&reply.stats);
            st.per_shard[reply.shard].machine.absorb(&reply.stats);
        }
        replies[reply.shard] = Some(reply.result);
    }
    let t_gather = Instant::now();
    for (r, _, _) in &outcomes {
        ddrs_trace::transition(r.span(), Stage::MachineRun, Stage::Merge);
    }
    {
        let mut st = inner.stats.lock();
        if runs_total > 0 {
            st.write_epochs += 1;
            st.write_shards_touched += involved.len() as u64;
        }
        for _ in 0..outcomes.len() {
            st.stages.window.record(us_between(t_carve, t_scatter));
            st.stages.machine_run.record(us_between(t_scatter, t_gather));
        }
    }
    record_latency(inner, &outcomes);
    let n_ops = outcomes.len() as u64;
    // Merge/resolve durations are only knowable after the resolutions
    // ran, so they land in a second stats acquisition — a deliberate
    // relaxation of the stats-before-resolve rule: their duration IS the
    // resolution work itself.
    let record_tail = |inner: &Inner<S, D>, t_merge1: Instant, t_resolve1: Instant| {
        let mut st = inner.stats.lock();
        for _ in 0..n_ops {
            st.stages.merge.record(us_between(t_gather, t_merge1));
            st.stages.resolve.record(us_between(t_merge1, t_resolve1));
        }
    };

    let mut epoch_error: Option<String> = involved.iter().find_map(|&s| match &replies[s] {
        Some(Err(e)) => Some(format!("shard {s}: {e}")),
        _ => None,
    });

    // Log-before-resolve: a committed epoch reaches every involved
    // shard's WAL before any of its tickets resolve, so a crash between
    // commit and resolution never yields a response the log cannot
    // reproduce. The in-memory sink is infallible; a file sink's IO
    // failure aborts the epoch, and any sibling whose log already
    // carries the aborted record is quarantined (its log is ahead of
    // the epoch outcome, so only an operator-driven recovery may touch
    // it again).
    if epoch_error.is_none() {
        let mut appended: Vec<usize> = Vec::with_capacity(involved.len());
        for &s in &involved {
            let rec = EpochRecord {
                kind: RecordKind::Epoch,
                first_seq: router.next_seq,
                verdicts: wal_verdicts.clone(),
                deletes: std::mem::take(&mut wal_deletes[s]),
                inserts: std::mem::take(&mut wal_inserts[s]),
            };
            match router.wals[s].append_record(&rec) {
                Ok(_) => appended.push(s),
                Err(e) => {
                    epoch_error = Some(format!("shard {s}: wal append failed: {e}"));
                    router.poisoned[s] = Some(format!("wal append failed: {e}"));
                    for &a in &appended {
                        router.poisoned[a] = Some(
                            "wal carries an epoch that aborted on a sibling's log failure".into(),
                        );
                    }
                    break;
                }
            }
        }
    }

    match epoch_error {
        None => {
            // Commit: fold the delta into the ownership index.
            for (id, v) in delta {
                match v {
                    Some((_, sh)) => {
                        if let Some(old) = router.owner.insert(id, sh) {
                            router.shard_len[old] -= 1;
                        }
                        router.shard_len[sh] += 1;
                    }
                    None => {
                        if let Some(old) = router.owner.remove(&id) {
                            router.shard_len[old] -= 1;
                        }
                    }
                }
            }
            // Rebalance (and publish) before resolution: a client that
            // has observed its write response must also observe the
            // epoch's effects — including any skew-triggered migration
            // it caused — in the telemetry.
            maybe_rebalance(inner, router);
            router.publish(inner);
            let t_merge1 = Instant::now();
            resolve_all(outcomes, router, None, Stage::Merge);
            record_tail(inner, t_merge1, Instant::now());
        }
        Some(err) => {
            // Abort: poison the failed shards, roll the healthy
            // participants back to their pre-epoch state.
            for &s in &involved {
                if let Some(Err(e)) = &replies[s] {
                    router.poisoned[s] = Some(e.clone());
                }
            }
            let (rtx, rrx) = mpsc::channel::<WriteReply<D>>();
            let mut rolling = 0usize;
            for &s in &involved {
                if router.poisoned[s].is_some() {
                    // Already quarantined (machine failure, or a log
                    // that carries the aborted epoch): never roll the
                    // store out from under a log that disagrees.
                    continue;
                }
                let Some(Ok(extracted)) = &replies[s] else { continue };
                let undo_inserts = insert_ids[s].clone();
                if undo_inserts.is_empty() && extracted.is_empty() {
                    continue;
                }
                router.workers[s]
                    .tx
                    .send(ShardJob::Write {
                        deletes: undo_inserts,
                        inserts: extracted.clone(),
                        inject_fault: false,
                        reply: rtx.clone(),
                    })
                    // ddrs-check: allow(unwrap) — rollback targets only
                    // healthy shards (their workers are alive).
                    .expect("shard worker died");
                rolling += 1;
            }
            drop(rtx);
            for _ in 0..rolling {
                // ddrs-check: allow(unwrap) — one reply per rollback
                // job, as in the forward path above.
                let reply = rrx.recv().expect("shard worker dropped a rollback reply");
                {
                    let mut st = inner.stats.lock();
                    st.machine.absorb(&reply.stats);
                    st.per_shard[reply.shard].machine.absorb(&reply.stats);
                }
                if let Err(e) = reply.result {
                    router.poisoned[reply.shard] =
                        Some(format!("rollback after epoch abort failed: {e}"));
                }
            }
            // Publish before resolution (mirroring the commit path): a
            // client that has observed the abort must also observe the
            // quarantine in the telemetry.
            router.publish(inner);
            let t_merge1 = Instant::now();
            resolve_all(outcomes, router, Some(&err), Stage::Merge);
            record_tail(inner, t_merge1, Instant::now());
        }
    }
}

/// Run the skew trigger after a committed write epoch.
fn maybe_rebalance<S: Semigroup, const D: usize>(inner: &Inner<S, D>, router: &mut Router<S, D>) {
    if inner.cfg.rebalance_factor <= 1.0 || router.shards() < 2 {
        return;
    }
    let total: usize = router.shard_len.iter().sum();
    if total == 0 {
        return;
    }
    let (donor, &max) = router
        .shard_len
        .iter()
        .enumerate()
        .max_by_key(|(_, &n)| n)
        // ddrs-check: allow(unwrap) — guarded: `router.shards() < 2`
        // already returned, so `shard_len` is non-empty.
        .expect("shards >= 2");
    let mean = total as f64 / router.shards() as f64;
    if max < inner.cfg.rebalance_min || (max as f64) <= inner.cfg.rebalance_factor * mean {
        return;
    }
    // A failed automatic split (no healthy sibling, degenerate
    // coordinates) is not an error — the trigger just stays armed.
    let _ = do_split(inner, router, donor);
    router.publish(inner);
}

/// Migrate half of `donor`'s points to a lighter sibling. Runs between
/// dispatches on the router thread, so no in-flight request observes a
/// half-migrated store and the global commit order is untouched.
fn do_split<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    router: &mut Router<S, D>,
    donor: usize,
) -> Result<SplitReport, String> {
    if router.shards() < 2 {
        return Err("split impossible: only one shard".into());
    }
    if let Some(reason) = &router.poisoned[donor] {
        return Err(format!("split impossible: donor {donor} is poisoned: {reason}"));
    }
    if router.shard_len[donor] < 2 {
        return Err(format!(
            "split impossible: donor {donor} holds {} point(s)",
            router.shard_len[donor]
        ));
    }
    // Pick the recipient: under the range policy only an adjacent shard
    // keeps slabs contiguous; under hash placement any shard works, so
    // take the lightest.
    let candidates: Vec<usize> = if router.part.bounds().is_some() {
        [donor.checked_sub(1), (donor + 1 < router.shards()).then_some(donor + 1)]
            .into_iter()
            .flatten()
            .filter(|&s| router.poisoned[s].is_none())
            .collect()
    } else {
        (0..router.shards()).filter(|&s| s != donor && router.poisoned[s].is_none()).collect()
    };
    let Some(&to) = candidates.iter().min_by_key(|&&s| router.shard_len[s]) else {
        return Err(format!("split impossible: donor {donor} has no healthy sibling"));
    };
    let upper = to > donor;

    let (tx, rx) = mpsc::channel::<SplitReply<D>>();
    router.workers[donor]
        .tx
        .send(ShardJob::SplitHalf { upper, reply: tx })
        // ddrs-check: allow(unwrap) — the donor was just checked healthy;
        // split failures travel as Err data in the reply.
        .expect("shard worker died");
    // ddrs-check: allow(unwrap) — one reply per split job.
    let reply = rx.recv().expect("shard worker dropped a split reply");
    {
        let mut st = inner.stats.lock();
        st.machine.absorb(&reply.stats);
        st.per_shard[donor].machine.absorb(&reply.stats);
    }
    let (moved, boundary) = match reply.result {
        Ok(ok) => ok,
        Err(e) => {
            if !e.starts_with("split impossible") {
                // The donor mutated (extraction failed mid-rebuild).
                router.poisoned[donor] = Some(format!("split extraction failed: {e}"));
            }
            return Err(e);
        }
    };

    // Land the migrated points on the recipient.
    let (wtx, wrx) = mpsc::channel::<WriteReply<D>>();
    router.workers[to]
        .tx
        .send(ShardJob::Write {
            deletes: Vec::new(),
            inserts: moved.clone(),
            inject_fault: false,
            reply: wtx,
        })
        // ddrs-check: allow(unwrap) — the recipient was chosen among
        // healthy shards; landing failures travel as Err data.
        .expect("shard worker died");
    // ddrs-check: allow(unwrap) — one reply per landing job.
    let landed = wrx.recv().expect("shard worker dropped a migration reply");
    {
        let mut st = inner.stats.lock();
        st.machine.absorb(&landed.stats);
        st.per_shard[to].machine.absorb(&landed.stats);
    }
    if let Err(e) = landed.result {
        router.poisoned[to] = Some(format!("migration landing failed: {e}"));
        // Try to put the extracted points back so the donor stays whole.
        let (btx, brx) = mpsc::channel::<WriteReply<D>>();
        router.workers[donor]
            .tx
            .send(ShardJob::Write {
                deletes: Vec::new(),
                inserts: moved,
                inject_fault: false,
                reply: btx,
            })
            // ddrs-check: allow(unwrap) — the donor survived extraction;
            // restore failures travel as Err data.
            .expect("shard worker died");
        // ddrs-check: allow(unwrap) — one reply per restore job.
        let back = brx.recv().expect("shard worker dropped a restore reply");
        {
            let mut st = inner.stats.lock();
            st.machine.absorb(&back.stats);
            st.per_shard[donor].machine.absorb(&back.stats);
        }
        if let Err(e2) = back.result {
            router.poisoned[donor] = Some(format!("restore after failed migration failed: {e2}"));
        }
        return Err(format!("split failed landing on shard {to}: {e}"));
    }

    // Log the migration on both shards' WALs before the routing state
    // changes (the same log-before-resolve discipline as write epochs:
    // by the time the split ticket resolves, both logs reproduce their
    // stores). A failed landing or restore logs nothing — the logs then
    // still describe the consistent pre-split state recovery targets.
    // An append IO failure quarantines both ends: whichever log kept
    // the record no longer agrees with a store the other end rolled
    // forward, so neither may serve until an operator recovers them.
    let migrated_ids: Vec<u32> = moved.iter().map(|p| p.id).collect();
    let out_rec =
        EpochRecord::event(RecordKind::MigrateOut, router.next_seq, migrated_ids, Vec::new());
    let in_rec =
        EpochRecord::event(RecordKind::MigrateIn, router.next_seq, Vec::new(), moved.clone());
    let append = router.wals[donor]
        .append_record(&out_rec)
        .and_then(|_| router.wals[to].append_record(&in_rec));
    if let Err(e) = append {
        router.poisoned[donor] = Some(format!("wal append failed during migration: {e}"));
        router.poisoned[to] = Some(format!("wal append failed during migration: {e}"));
        return Err(format!("split failed: wal append: {e}"));
    }

    // Commit the migration in the routing state. Under the range policy
    // the shifted boundary re-describes residency exactly; under hash
    // placement the moved points no longer live where the placement mix
    // says, so degenerate-read routing must fall back to full fan-out
    // from now on (the ownership index is keyed by id, which a
    // coordinate rect cannot consult).
    for p in &moved {
        router.owner.insert(p.id, to);
    }
    router.shard_len[donor] -= moved.len();
    router.shard_len[to] += moved.len();
    if router.part.bounds().is_some() {
        debug_assert!(donor.abs_diff(to) == 1, "range split picked a non-adjacent sibling");
        router.part.shift_boundary(donor, to, boundary);
    } else {
        router.part.note_hash_migration();
    }
    {
        let mut st = inner.stats.lock();
        st.rebalances += 1;
        st.rebalance_moved += moved.len() as u64;
    }
    Ok(SplitReport { from: donor, to, moved: moved.len(), boundary })
}

/// Rebuild quarantined shard `shard` from its write-ahead log and
/// return it to service. Runs between dispatches on the router thread
/// (recovery is an exclusive kind), so no in-flight request observes a
/// half-rebuilt shard:
///
/// 1. decode the shard's log, stopping cleanly at any torn or corrupt
///    tail — exactly the committed records survive;
/// 2. replay them into a fresh store on the shard's own machine (the
///    worker swaps it in only if the whole replay succeeds);
/// 3. re-derive the id→shard ownership index: drop every id still
///    mapped to the dead shard, claim the rebuilt store's live ids;
/// 4. clear the quarantine and republish health.
///
/// On any failure the shard stays quarantined, the ownership index is
/// untouched, and the call can be retried.
fn do_recover<S: Semigroup, const D: usize>(
    inner: &Inner<S, D>,
    router: &mut Router<S, D>,
    shard: usize,
) -> Result<RecoveryReport, String> {
    if router.poisoned[shard].is_none() {
        return Err(format!("recover impossible: shard {shard} is not poisoned"));
    }
    let t0 = Instant::now();
    let (records, tail) =
        router.wals[shard].replay().map_err(|e| format!("recover failed: wal unreadable: {e}"))?;
    let replayed = records.len();
    let clean_tail = matches!(tail, LogTail::Clean);
    let (tx, rx) = mpsc::channel::<RecoverReply>();
    router.workers[shard]
        .tx
        .send(ShardJob::Recover { capacity: router.capacity, records, reply: tx })
        .map_err(|_| "recover failed: shard worker is gone".to_string())?;
    let reply =
        rx.recv().map_err(|_| "recover failed: shard worker dropped its reply".to_string())?;
    {
        let mut st = inner.stats.lock();
        st.machine.absorb(&reply.stats);
        st.per_shard[shard].machine.absorb(&reply.stats);
    }
    let live = reply.result?;
    router.owner.retain(|_, sh| *sh != shard);
    for id in &live {
        router.owner.insert(*id, shard);
    }
    router.shard_len[shard] = live.len();
    router.poisoned[shard] = None;
    let duration = t0.elapsed();
    {
        let mut st = inner.stats.lock();
        st.recoveries += 1;
        st.recovered_points += live.len() as u64;
        st.recovery_us.record(duration.as_micros() as u64);
    }
    Ok(RecoveryReport {
        shard,
        replayed_records: replayed,
        live_points: live.len(),
        clean_tail,
        duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddrs_rangetree::Sum;

    fn pts(range: std::ops::Range<u32>) -> Vec<Point<2>> {
        range
            .map(|i| Point::weighted([((i * 193) % 777) as i64, ((i * 71) % 555) as i64], i, 2))
            .collect()
    }

    fn machines(s: usize, p: usize) -> Vec<Machine> {
        (0..s).map(|_| Machine::new(p).unwrap()).collect()
    }

    fn quick(s: usize, policy: PartitionPolicy) -> ShardedService<Sum, 2> {
        ShardedService::start(
            machines(s, 2),
            16,
            &pts(0..60),
            Sum,
            policy,
            ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn serves_all_read_modes_across_shards() {
        for policy in [PartitionPolicy::Hash, PartitionPolicy::range_uniform(3, 0, 777)] {
            let service = quick(3, policy);
            let all = Rect::new([0, 0], [800, 600]);
            let c = service.count(all).unwrap();
            let a = service.aggregate(all).unwrap();
            let r = service.report(Rect::new([0, 0], [0, 0])).unwrap();
            assert_eq!(c.wait().unwrap().value, 60);
            assert_eq!(a.wait().unwrap().value, Some(120));
            assert_eq!(r.wait().unwrap().value, vec![0]);
            let stats = service.stats();
            assert_eq!(stats.submitted, 3);
            assert_eq!(stats.completed, 3);
            assert_eq!(stats.total_points(), 60);
        }
    }

    #[test]
    fn writes_route_and_reads_observe_them() {
        let service = quick(2, PartitionPolicy::range_uniform(2, 0, 777));
        let all = Rect::new([0, 0], [800, 600]);
        service.insert(pts(100..110)).unwrap().wait().unwrap();
        assert_eq!(service.count(all).unwrap().wait().unwrap().value, 70);
        service.delete((100..105).collect()).unwrap().wait().unwrap();
        assert_eq!(service.count(all).unwrap().wait().unwrap().value, 65);
        let parts = service.shutdown();
        assert_eq!(parts.iter().map(|(_, t)| t.len()).sum::<usize>(), 65);
    }

    #[test]
    fn duplicate_insert_is_rejected_sequentially() {
        let service = quick(2, PartitionPolicy::Hash);
        let verdict = service.insert(pts(5..6)).unwrap().wait();
        assert_eq!(verdict, Err(ServiceError::Rejected(BuildError::DuplicateId(5))));
        assert_eq!(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().value, 60);
    }

    #[test]
    fn initial_load_validates_ids() {
        let mut bad = pts(0..4);
        bad.push(bad[1]);
        let err = ShardedService::start(
            machines(2, 1),
            8,
            &bad,
            Sum,
            PartitionPolicy::Hash,
            ShardedConfig::default(),
        )
        .err();
        assert_eq!(err, Some(BuildError::DuplicateId(1)));
    }

    #[test]
    fn explicit_split_moves_points_and_boundary() {
        // Everything starts on shard 0: the boundary is far right.
        let service = ShardedService::start(
            machines(2, 2),
            8,
            &pts(0..40),
            Sum,
            PartitionPolicy::Range { bounds: vec![10_000] },
            ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
        )
        .unwrap();
        assert_eq!(service.stats().per_shard[0].live_points, 40);
        let report = service.split_shard(0).unwrap().wait().unwrap().value;
        assert_eq!((report.from, report.to), (0, 1));
        assert!(report.moved >= 10 && report.moved <= 30, "roughly half: {report:?}");
        let stats = service.stats();
        assert_eq!(stats.rebalances, 1);
        assert_eq!(stats.per_shard[0].live_points + stats.per_shard[1].live_points, 40);
        assert_eq!(stats.range_bounds, Some(vec![report.boundary]));
        // Cross-shard reads still see everything, exactly.
        assert_eq!(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().value, 40);
        // New inserts route by the *new* boundary.
        let left = vec![Point::weighted([report.boundary - 1, 0], 9000, 1)];
        let right = vec![Point::weighted([report.boundary, 0], 9001, 1)];
        service.insert(left).unwrap().wait().unwrap();
        service.insert(right).unwrap().wait().unwrap();
        let parts = service.shutdown();
        assert!(parts[0].1.contains_id(9000));
        assert!(parts[1].1.contains_id(9001));
    }

    /// Regression: a splittable shard whose lower half is a plateau of
    /// one coordinate must still split (the boundary retreats past the
    /// plateau instead of spuriously reporting "all points share the
    /// splitting coordinate").
    #[test]
    fn split_retreats_past_a_median_plateau() {
        let initial: Vec<Point<2>> =
            (0..10u32).map(|i| Point::new([if i < 7 { 5 } else { 9 }, i as i64], i)).collect();
        let service = ShardedService::start(
            machines(2, 1),
            8,
            &initial,
            Sum,
            PartitionPolicy::Range { bounds: vec![10_000] },
            ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
        )
        .unwrap();
        let report = service.split_shard(0).unwrap().wait().unwrap().value;
        assert_eq!(report.boundary, 9, "boundary must retreat past the x = 5 plateau");
        assert_eq!(report.moved, 3, "exactly the points above the plateau move");
        let stats = service.stats();
        assert_eq!(stats.per_shard[0].live_points, 7);
        assert_eq!(stats.per_shard[1].live_points, 3);
        assert_eq!(service.count(Rect::new([0, 0], [100, 100])).unwrap().wait().unwrap().value, 10);
        // A single-coordinate shard is still a clean error, not a panic.
        let verdict = service.split_shard(0).unwrap().wait();
        match verdict {
            Err(ServiceError::Machine(msg)) => {
                assert!(msg.contains("split impossible"), "{msg}")
            }
            other => panic!("expected split-impossible, got {other:?}"),
        }
        service.shutdown();
    }

    /// Regression (review): a hash-policy split migrates points away
    /// from their placement shard; degenerate reads used to keep
    /// trusting the placement mix and silently answered 0/None/empty
    /// for every migrated point. Post-split they must fall back to full
    /// fan-out and stay byte-identical to the unsharded answer.
    #[test]
    fn hash_split_widens_point_routing_but_stays_exact() {
        let service = quick(2, PartitionPolicy::Hash);
        let report = service.split_shard(0).unwrap().wait().unwrap().value;
        assert_eq!(report.from, 0);
        assert!(report.moved > 0, "hash split must migrate points: {report:?}");
        // Every point — including every migrated one — is still found
        // by a degenerate lookup at its coordinate.
        for i in 0..60u32 {
            let at = [((i * 193) % 777) as i64, ((i * 71) % 555) as i64];
            let ids = service.report(Rect::new(at, at)).unwrap().wait().unwrap().value;
            assert!(ids.contains(&i), "point {i} lost after a hash-policy split");
        }
        let stats = service.stats();
        // The fallback is visible in the routing telemetry: 60 point
        // reads × both shards, not ×1.
        assert_eq!(stats.read_ops_routed, 60);
        assert_eq!(stats.read_shards_touched, 120);
        assert_eq!(stats.total_points(), 60);
        service.shutdown();
    }

    #[test]
    fn skew_trigger_rebalances_automatically() {
        let service = ShardedService::start(
            machines(2, 1),
            8,
            &[],
            Sum,
            PartitionPolicy::Range { bounds: vec![10_000] },
            ShardedConfig {
                max_delay: Duration::from_micros(100),
                rebalance_factor: 1.5,
                rebalance_min: 16,
                ..Default::default()
            },
        )
        .unwrap();
        // All inserts land left of the boundary → shard 0 holds 100% of
        // the points (skew 2.0 > 1.5) → the trigger must fire.
        service.insert(pts(0..32)).unwrap().wait().unwrap();
        let stats = service.stats();
        assert!(stats.rebalances >= 1, "skew trigger did not fire: {stats:?}");
        assert!(stats.per_shard[1].live_points > 0);
        assert_eq!(stats.total_points(), 32);
        assert_eq!(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().value, 32);
        service.shutdown();
    }

    #[test]
    fn empty_store_and_empty_writes_cost_zero_runs() {
        let service = ShardedService::start(
            machines(2, 2),
            8,
            &[],
            Sum,
            PartitionPolicy::Hash,
            ShardedConfig { max_delay: Duration::from_micros(100), ..Default::default() },
        )
        .unwrap();
        let q = Rect::new([0, 0], [800, 600]);
        assert_eq!(service.count(q).unwrap().wait().unwrap().value, 0);
        assert_eq!(service.aggregate(q).unwrap().wait().unwrap().value, None);
        service.insert(Vec::new()).unwrap().wait().unwrap();
        service.delete(vec![7]).unwrap().wait().unwrap();
        let stats = service.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.machine.runs, 0, "empty traffic must not run any machine");
        assert_eq!(stats.dispatches, 0);
        assert_eq!(stats.write_epochs, 0);
        service.shutdown();
    }

    #[test]
    fn empty_rect_answers_locally() {
        let service = quick(2, PartitionPolicy::Hash);
        let degenerate = Rect::new([5, 5], [4, 4]);
        assert_eq!(service.count(degenerate).unwrap().wait().unwrap().value, 0);
        assert_eq!(service.aggregate(degenerate).unwrap().wait().unwrap().value, None);
        assert!(service.report(degenerate).unwrap().wait().unwrap().value.is_empty());
    }

    #[test]
    fn commit_seqs_are_global_and_ordered() {
        let service = quick(2, PartitionPolicy::range_uniform(2, 0, 777));
        let seqs = vec![
            service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().seq,
            service.insert(pts(500..504)).unwrap().wait().unwrap().seq,
            service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().seq,
            service.delete(vec![500]).unwrap().wait().unwrap().seq,
        ];
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seqs, sorted, "sequential submission commits in order");
        assert_eq!(seqs, (seqs[0]..seqs[0] + 4).collect::<Vec<u64>>(), "seqs are dense");
        service.shutdown();
    }

    #[test]
    fn abort_rejects_pending_requests() {
        let service = ShardedService::start(
            machines(2, 1),
            8,
            &pts(0..16),
            Sum,
            PartitionPolicy::Hash,
            ShardedConfig {
                max_batch: 1024,
                max_delay: Duration::from_secs(5),
                ..Default::default()
            },
        )
        .unwrap();
        let tickets: Vec<_> =
            (0..10).map(|_| service.count(Rect::new([0, 0], [800, 600])).unwrap()).collect();
        let parts = service.abort();
        for t in tickets {
            assert_eq!(t.wait(), Err(ServiceError::ShuttingDown));
        }
        assert_eq!(parts.iter().map(|(_, t)| t.len()).sum::<usize>(), 16);
    }

    #[test]
    fn queued_deadline_expires_without_touching_any_machine() {
        let service = ShardedService::start(
            machines(2, 1),
            8,
            &pts(0..16),
            Sum,
            PartitionPolicy::Hash,
            ShardedConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(80),
                ..Default::default()
            },
        )
        .unwrap();
        let doomed = service
            .count_within(Rect::new([0, 0], [800, 600]), Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(doomed.wait(), Err(ServiceError::DeadlineExpired));
        let stats = service.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.machine.runs, 0);
        assert_eq!(service.count(Rect::new([0, 0], [800, 600])).unwrap().wait().unwrap().value, 16);
        service.shutdown();
    }

    #[test]
    fn backpressure_rejects_beyond_capacity() {
        let service = ShardedService::start(
            machines(2, 1),
            8,
            &pts(0..16),
            Sum,
            PartitionPolicy::Hash,
            ShardedConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(300),
                queue_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let q = Rect::new([0, 0], [800, 600]);
        let mut admitted = Vec::new();
        let mut overloaded = 0;
        for _ in 0..6 {
            match service.count(q) {
                Ok(t) => admitted.push(t),
                Err(SubmitError::Overloaded { depth }) => {
                    assert_eq!(depth, 4);
                    overloaded += 1;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert_eq!((admitted.len(), overloaded), (4, 2));
        for t in admitted {
            assert_eq!(t.wait().unwrap().value, 16);
        }
        assert_eq!(service.stats().overloaded, 2);
        service.shutdown();
    }
}
