//! Sharded-service telemetry: the single-service counters plus a
//! per-shard breakdown, all bounded-memory.

use ddrs_cgm::RunStatsRollup;
use ddrs_service::register_rollup;
use ddrs_service::Histogram;
use ddrs_trace::{MetricsRegistry, StageBreakdown};

/// Telemetry of one shard group, as seen by the router.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Rollup of every machine run this shard executed for the service.
    pub machine: RunStatsRollup,
    /// Live points currently owned by this shard.
    pub live_points: usize,
    /// The quarantine reason, if a write epoch failed mid-apply on this
    /// shard (a poisoned shard rejects all further traffic; its
    /// siblings keep serving).
    pub poisoned: Option<String>,
    /// Records appended to this shard's write-ahead log (bulk load,
    /// committed epochs, migrations).
    pub wal_records: u64,
    /// Frame bytes appended to this shard's write-ahead log.
    pub wal_bytes: u64,
}

/// A point-in-time snapshot of the sharded service's telemetry.
///
/// Obtained from `ShardedService::stats`; counters are cumulative since
/// the service started.
#[derive(Debug, Clone, Default)]
pub struct ShardedStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that received a terminal response (success or error).
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub overloaded: u64,
    /// Requests that expired in the queue before dispatch.
    pub expired: u64,
    /// Coalesced read dispatches that reached at least one machine.
    pub dispatches: u64,
    /// Write epochs that reached at least one machine.
    pub write_epochs: u64,
    /// Read queries answered through coalesced dispatches.
    pub queries_coalesced: u64,
    /// Read ops that were routed to at least one shard (excludes empty
    /// rects answered locally and ops failed at planning).
    pub read_ops_routed: u64,
    /// Total shards those routed reads were enqueued on. The quotient
    /// [`mean_read_fanout`](Self::mean_read_fanout) is the routing
    /// minimality of the workload: 1.0 means every read touched exactly
    /// one shard.
    pub read_shards_touched: u64,
    /// Total shards touched by write epochs (one sub-epoch per counted
    /// shard), across all epochs that reached a machine.
    pub write_shards_touched: u64,
    /// Completed shard-split migrations (explicit and skew-triggered).
    pub rebalances: u64,
    /// Points moved between shard groups by those migrations.
    pub rebalance_moved: u64,
    /// Completed shard recoveries (write-ahead-log replays that
    /// returned a quarantined shard to service).
    pub recoveries: u64,
    /// Live points rebuilt by those recoveries.
    pub recovered_points: u64,
    /// Distribution of recovery durations (decode + replay + rejoin),
    /// in µs.
    pub recovery_us: Histogram,
    /// Machine-side rollup across every shard.
    pub machine: RunStatsRollup,
    /// Per-shard machine rollups, live-point counts and health.
    pub per_shard: Vec<ShardSnapshot>,
    /// Distribution of coalesced read-batch sizes (queries per dispatch).
    pub batch_sizes: Histogram,
    /// Distribution of request latencies, submit → response, in µs.
    pub latency_us: Histogram,
    /// Where dispatched ops spent their time, per lifecycle stage
    /// (queue / window / machine-run / merge / resolve). Always
    /// recorded — plain counters, independent of span recording.
    pub stages: StageBreakdown,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Current axis-0 slab boundaries (range partition only; rebalance
    /// moves them).
    pub range_bounds: Option<Vec<i64>>,
}

impl ShardedStats {
    /// Mean queries per coalesced read dispatch (0 before any dispatch).
    pub fn mean_batch_size(&self) -> f64 {
        self.batch_sizes.mean()
    }

    /// Queries answered per machine run across all shards — the
    /// coalescing leverage of the router (0 before any run).
    pub fn coalescing_factor(&self) -> f64 {
        if self.machine.runs == 0 {
            0.0
        } else {
            self.queries_coalesced as f64 / self.machine.runs as f64
        }
    }

    /// Mean shards touched per routed read op (0 before any routed
    /// read). 1.0 = perfectly minimal routing; `S` = everything fans
    /// out everywhere.
    pub fn mean_read_fanout(&self) -> f64 {
        if self.read_ops_routed == 0 {
            0.0
        } else {
            self.read_shards_touched as f64 / self.read_ops_routed as f64
        }
    }

    /// Median request latency in µs (bucket upper bound).
    pub fn p50_latency_us(&self) -> u64 {
        self.latency_us.quantile(0.5)
    }

    /// 99th-percentile request latency in µs (bucket upper bound).
    pub fn p99_latency_us(&self) -> u64 {
        self.latency_us.quantile(0.99)
    }

    /// Live points across all shards.
    pub fn total_points(&self) -> usize {
        self.per_shard.iter().map(|s| s.live_points).sum()
    }

    /// Largest shard ÷ mean shard size (1.0 = perfectly balanced; 0
    /// when empty).
    pub fn skew(&self) -> f64 {
        let total = self.total_points();
        if total == 0 || self.per_shard.is_empty() {
            return 0.0;
        }
        let max = self.per_shard.iter().map(|s| s.live_points).max().unwrap_or(0);
        max as f64 * self.per_shard.len() as f64 / total as f64
    }

    /// Publish this snapshot into a [`MetricsRegistry`] under
    /// `<prefix>.*` — the same export vocabulary as
    /// `ServiceStats::register_into`, plus the routing metrics and one
    /// `<prefix>.shard.<i>.*` group per shard.
    pub fn register_into(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.set_counter(&format!("{prefix}.submitted"), self.submitted);
        registry.set_counter(&format!("{prefix}.completed"), self.completed);
        registry.set_counter(&format!("{prefix}.overloaded"), self.overloaded);
        registry.set_counter(&format!("{prefix}.expired"), self.expired);
        registry.set_counter(&format!("{prefix}.dispatches"), self.dispatches);
        registry.set_counter(&format!("{prefix}.write_epochs"), self.write_epochs);
        registry.set_counter(&format!("{prefix}.queries_coalesced"), self.queries_coalesced);
        registry.set_counter(&format!("{prefix}.read_ops_routed"), self.read_ops_routed);
        registry.set_counter(&format!("{prefix}.rebalances"), self.rebalances);
        registry.set_counter(&format!("{prefix}.rebalance_moved"), self.rebalance_moved);
        registry.set_counter(&format!("{prefix}.recoveries"), self.recoveries);
        registry.set_counter(&format!("{prefix}.recovered_points"), self.recovered_points);
        registry.set_histogram(&format!("{prefix}.recovery_us"), self.recovery_us.clone());
        registry.set_counter(&format!("{prefix}.queue_depth"), self.queue_depth as u64);
        registry.set_counter(&format!("{prefix}.total_points"), self.total_points() as u64);
        registry.set_gauge(&format!("{prefix}.coalescing_factor"), self.coalescing_factor());
        registry.set_gauge(&format!("{prefix}.mean_read_fanout"), self.mean_read_fanout());
        registry.set_gauge(&format!("{prefix}.skew"), self.skew());
        registry.set_histogram(&format!("{prefix}.batch_sizes"), self.batch_sizes.clone());
        registry.set_histogram(&format!("{prefix}.latency_us"), self.latency_us.clone());
        self.stages.register_into(registry, &format!("{prefix}.stage"));
        register_rollup(&self.machine, registry, &format!("{prefix}.machine"));
        for (i, shard) in self.per_shard.iter().enumerate() {
            let sp = format!("{prefix}.shard.{i}");
            registry.set_counter(&format!("{sp}.live_points"), shard.live_points as u64);
            registry.set_counter(&format!("{sp}.poisoned"), u64::from(shard.poisoned.is_some()));
            registry.set_counter(&format!("{sp}.wal_records"), shard.wal_records);
            registry.set_counter(&format!("{sp}.wal_bytes"), shard.wal_bytes);
            register_rollup(&shard.machine, registry, &format!("{sp}.machine"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_and_totals() {
        let mut s = ShardedStats::default();
        assert_eq!(s.skew(), 0.0);
        s.per_shard = vec![
            ShardSnapshot { live_points: 30, ..Default::default() },
            ShardSnapshot { live_points: 10, ..Default::default() },
        ];
        assert_eq!(s.total_points(), 40);
        assert_eq!(s.skew(), 1.5);
    }

    #[test]
    fn register_into_publishes_per_shard_groups() {
        use ddrs_trace::MetricValue;
        let mut s = ShardedStats {
            submitted: 9,
            read_ops_routed: 4,
            read_shards_touched: 8,
            ..Default::default()
        };
        s.stages.machine_run.record(250);
        s.per_shard = vec![
            ShardSnapshot { live_points: 3, ..Default::default() },
            ShardSnapshot { live_points: 1, poisoned: Some("boom".into()), ..Default::default() },
        ];
        let reg = MetricsRegistry::new();
        s.register_into(&reg, "sharded");
        let snap = reg.snapshot();
        assert_eq!(snap.get("sharded.submitted"), Some(&MetricValue::Counter(9)));
        assert_eq!(snap.get("sharded.shard.0.live_points"), Some(&MetricValue::Counter(3)));
        assert_eq!(snap.get("sharded.shard.1.poisoned"), Some(&MetricValue::Counter(1)));
        assert_eq!(snap.get("sharded.stage.machine_run.max_us"), Some(&MetricValue::Counter(250)));
        assert!(matches!(
            snap.get("sharded.mean_read_fanout"),
            Some(MetricValue::Gauge(g)) if (*g - 2.0).abs() < 1e-9
        ));
    }
}
