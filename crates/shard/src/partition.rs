//! Domain partitioning: which shard group owns a point, and which shard
//! groups a range query must visit.
//!
//! Two placement policies are offered. **Hash** spreads inserts by a mix
//! of the point's coordinates — balanced whenever coordinates are mostly
//! distinct (points sharing one coordinate share one shard, so a
//! hot-coordinate workload can still skew placement; the id-blind key is
//! the price of routable lookups), and a *point lookup* (a query whose
//! interval is a single coordinate) can recompute the mix and visit
//! exactly one shard. Hashing destroys locality, though, so any wider
//! interval must still visit every shard — and once a rebalance has
//! migrated hash-placed points away from their placement shard, point
//! lookups fall back to full fan-out too (see
//! [`Partitioner::note_hash_migration`]).
//! **Range** slices the first coordinate axis into `S` contiguous slabs —
//! a range query visits only the slabs its first-axis interval overlaps,
//! and the router clips each sub-query to the slab so shard answers are
//! disjoint by construction.
//!
//! The policy decides *placement of new points* and *read fan-out*; the
//! authoritative record of where a live id resides is the router's
//! ownership index, which also absorbs rebalance migrations.

use ddrs_rangetree::{Point, Rect};

/// How the id/key domain is divided across shard groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Place by a mix of the point's coordinates. Balanced placement
    /// when coordinates are mostly distinct (duplicate coordinates pile
    /// onto one shard); single-shard fan-out for degenerate (point)
    /// queries — until a rebalance migration breaks the placement
    /// invariant — all-shard fan-out for everything wider.
    Hash,
    /// Place by the first coordinate: shard `i` owns the slab
    /// `[bounds[i-1], bounds[i])` of axis 0 (with implicit `-∞` and
    /// `+∞` end caps). `bounds` must be ascending and have exactly
    /// `shards - 1` entries.
    Range {
        /// Ascending slab boundaries on axis 0, one fewer than shards.
        bounds: Vec<i64>,
    },
}

impl PartitionPolicy {
    /// Evenly spaced range boundaries over `[lo, hi]` for `shards`
    /// groups — a reasonable default when the data distribution is
    /// roughly uniform on axis 0.
    pub fn range_uniform(shards: usize, lo: i64, hi: i64) -> PartitionPolicy {
        assert!(shards >= 1, "need at least one shard");
        assert!(lo <= hi, "range_uniform: lo > hi");
        let span = (hi - lo).max(1) as i128;
        let bounds = (1..shards).map(|i| lo + (span * i as i128 / shards as i128) as i64).collect();
        PartitionPolicy::Range { bounds }
    }

    /// Range boundaries at the axis-0 quantiles of a sample — balanced
    /// initial placement for arbitrary distributions.
    pub fn range_from_sample<const D: usize>(
        shards: usize,
        sample: &[Point<D>],
    ) -> PartitionPolicy {
        assert!(shards >= 1, "need at least one shard");
        let mut xs: Vec<i64> = sample.iter().map(|p| p.coords[0]).collect();
        xs.sort_unstable();
        let bounds = (1..shards)
            .map(|i| {
                if xs.is_empty() {
                    i as i64
                } else {
                    xs[(xs.len() * i / shards).min(xs.len() - 1)]
                }
            })
            .collect();
        PartitionPolicy::Range { bounds }
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash-placement key: a splitmix64 chain over all coordinates. Keying
/// by coordinates (not id) is what lets a degenerate query recompute the
/// placement of the only coordinate it can match and route to one shard.
fn mix_coords<const D: usize>(coords: &[i64; D]) -> u64 {
    coords.iter().fold(0u64, |h, &c| mix(h ^ c as u64))
}

/// The router's live view of the partition: the policy plus the mutable
/// range boundaries (rebalance moves them).
#[derive(Debug, Clone)]
pub(crate) enum Partitioner {
    Hash {
        shards: usize,
        /// Whether any rebalance has migrated points away from their
        /// placement shard. While `false`, a degenerate query may trust
        /// the placement mix and route to one shard; once `true`, the
        /// mix no longer predicts residency and point lookups must fan
        /// out like any other hash-policy read (the ownership index is
        /// keyed by id, which a coordinate rect does not know).
        moved: bool,
    },
    Range {
        bounds: Vec<i64>,
    },
}

impl Partitioner {
    pub(crate) fn new(policy: PartitionPolicy, shards: usize) -> Self {
        match policy {
            PartitionPolicy::Hash => Partitioner::Hash { shards, moved: false },
            PartitionPolicy::Range { bounds } => {
                assert_eq!(
                    bounds.len(),
                    shards - 1,
                    "range partition needs exactly shards - 1 boundaries"
                );
                assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "range boundaries must ascend");
                Partitioner::Range { bounds }
            }
        }
    }

    /// Placement shard for a new point.
    pub(crate) fn place<const D: usize>(&self, p: &Point<D>) -> usize {
        match self {
            Partitioner::Hash { shards, .. } => (mix_coords(&p.coords) % *shards as u64) as usize,
            Partitioner::Range { bounds } => bounds.partition_point(|b| *b <= p.coords[0]),
        }
    }

    /// The inclusive shard interval a query's extent overlaps.
    /// Empty rects fan out to no shard (the router answers them locally).
    /// Under hash placement a *degenerate* query (one coordinate on every
    /// axis) recomputes the placement mix and visits exactly one shard —
    /// unless a migration has moved points off their placement shard
    /// ([`Partitioner::note_hash_migration`]), after which even point
    /// lookups fan out everywhere; any wider interval must always visit
    /// all shards, because coordinate hashing destroys locality. Under
    /// the range policy the fan-out is the slabs the axis-0 interval
    /// overlaps.
    pub(crate) fn read_fanout<const D: usize>(
        &self,
        q: &Rect<D>,
    ) -> std::ops::RangeInclusive<usize> {
        if q.is_empty() {
            // An intentionally empty fan-out: the router answers the
            // degenerate query locally without touching any shard.
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        match self {
            Partitioner::Hash { shards, moved } => {
                if q.lo == q.hi && !*moved {
                    let s = (mix_coords(&q.lo) % *shards as u64) as usize;
                    s..=s
                } else {
                    0..=shards - 1
                }
            }
            Partitioner::Range { bounds } => {
                let lo = bounds.partition_point(|b| *b <= q.lo[0]);
                let hi = bounds.partition_point(|b| *b <= q.hi[0]);
                lo..=hi
            }
        }
    }

    /// Clip a query to one shard's slab (range policy splits queries at
    /// shard boundaries; hash placement cannot clip).
    pub(crate) fn clip<const D: usize>(&self, shard: usize, q: &Rect<D>) -> Rect<D> {
        match self {
            Partitioner::Hash { .. } => *q,
            Partitioner::Range { bounds } => {
                let mut c = *q;
                if shard > 0 {
                    c.lo[0] = c.lo[0].max(bounds[shard - 1]);
                }
                if shard < bounds.len() {
                    // Slab upper bounds are exclusive; Rect bounds inclusive.
                    c.hi[0] = c.hi[0].min(bounds[shard].saturating_sub(1));
                }
                c
            }
        }
    }

    /// Move the boundary between `donor` and an adjacent `recipient` to
    /// `b` after a split migration (range policy only).
    pub(crate) fn shift_boundary(&mut self, donor: usize, recipient: usize, b: i64) {
        if let Partitioner::Range { bounds } = self {
            debug_assert!(donor.abs_diff(recipient) == 1, "range split needs adjacent shards");
            bounds[donor.min(recipient)] = b;
        }
    }

    /// Record that a migration has moved hash-placed points away from
    /// their placement shard (range policy: no-op — the shifted boundary
    /// already re-describes residency exactly). From here on the
    /// placement mix no longer predicts where a coordinate's point
    /// lives, so [`read_fanout`](Partitioner::read_fanout) stops routing
    /// degenerate queries to a single shard and falls back to full
    /// fan-out, keeping answers byte-identical to the unsharded store.
    pub(crate) fn note_hash_migration(&mut self) {
        if let Partitioner::Hash { moved, .. } = self {
            *moved = true;
        }
    }

    /// The current range boundaries, if this is a range partition.
    pub(crate) fn bounds(&self) -> Option<Vec<i64>> {
        match self {
            Partitioner::Hash { .. } => None,
            Partitioner::Range { bounds } => Some(bounds.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_place_and_fanout_respect_boundaries() {
        let part = Partitioner::new(PartitionPolicy::Range { bounds: vec![10, 20] }, 3);
        assert_eq!(part.place(&Point::<2>::new([-5, 0], 1)), 0);
        assert_eq!(part.place(&Point::<2>::new([9, 0], 2)), 0);
        assert_eq!(part.place(&Point::<2>::new([10, 0], 3)), 1);
        assert_eq!(part.place(&Point::<2>::new([19, 0], 4)), 1);
        assert_eq!(part.place(&Point::<2>::new([20, 0], 5)), 2);
        assert_eq!(part.read_fanout(&Rect::<2>::new([0, 0], [9, 9])), 0..=0);
        assert_eq!(part.read_fanout(&Rect::<2>::new([5, 0], [25, 9])), 0..=2);
        assert_eq!(part.read_fanout(&Rect::<2>::new([10, 0], [19, 9])), 1..=1);
        assert!(part.read_fanout(&Rect::<2>::new([5, 0], [4, 9])).is_empty());
    }

    #[test]
    fn range_clip_splits_at_boundaries() {
        let part = Partitioner::new(PartitionPolicy::Range { bounds: vec![10, 20] }, 3);
        let q = Rect::<2>::new([5, 1], [25, 2]);
        assert_eq!(part.clip(0, &q), Rect::new([5, 1], [9, 2]));
        assert_eq!(part.clip(1, &q), Rect::new([10, 1], [19, 2]));
        assert_eq!(part.clip(2, &q), Rect::new([20, 1], [25, 2]));
    }

    #[test]
    fn hash_routes_point_queries_and_spreads_placement() {
        let part = Partitioner::new(PartitionPolicy::Hash, 4);
        // Any interval wider than a point still fans out everywhere…
        assert_eq!(part.read_fanout(&Rect::<2>::new([0, 0], [1, 1])), 0..=3);
        // …but a degenerate query routes to exactly the shard that
        // placement chose for its coordinate.
        let mut counts = [0usize; 4];
        for i in 0..4000i64 {
            let p = Point::<2>::new([i * 193 % 7777, i * 71 % 555], i as u32);
            let home = part.place(&p);
            counts[home] += 1;
            let lookup = part.read_fanout(&Rect::new(p.coords, p.coords));
            assert_eq!(lookup, home..=home, "point lookup must land on the placement shard");
        }
        for c in counts {
            assert!((800..1200).contains(&c), "hash placement badly skewed: {counts:?}");
        }
    }

    #[test]
    fn hash_point_routing_widens_after_a_migration() {
        let mut part = Partitioner::new(PartitionPolicy::Hash, 4);
        let p = Point::<2>::new([42, 7], 1);
        let q = Rect::new(p.coords, p.coords);
        let home = part.place(&p);
        assert_eq!(part.read_fanout(&q), home..=home);
        // A migration breaks the placement invariant: the point may now
        // live anywhere, so even a degenerate query must fan out fully.
        part.note_hash_migration();
        assert_eq!(part.read_fanout(&q), 0..=3, "post-migration lookup must fan out");
        // Placement of new points and empty-rect handling are unchanged.
        assert_eq!(part.place(&p), home);
        assert!(part.read_fanout(&Rect::<2>::new([5, 0], [4, 0])).is_empty());
        // Range policy: the boundary shift is exact, so no fallback.
        let mut range = Partitioner::new(PartitionPolicy::Range { bounds: vec![10] }, 2);
        range.note_hash_migration();
        assert_eq!(range.read_fanout(&Rect::<2>::new([3, 0], [3, 0])), 0..=0);
    }

    #[test]
    fn shift_boundary_moves_the_shared_edge() {
        let mut part = Partitioner::new(PartitionPolicy::Range { bounds: vec![10, 20] }, 3);
        part.shift_boundary(1, 2, 15);
        assert_eq!(part.bounds(), Some(vec![10, 15]));
        part.shift_boundary(1, 0, 7);
        assert_eq!(part.bounds(), Some(vec![7, 15]));
    }

    #[test]
    fn uniform_and_sampled_bounds() {
        assert_eq!(
            PartitionPolicy::range_uniform(4, 0, 100),
            PartitionPolicy::Range { bounds: vec![25, 50, 75] }
        );
        let pts: Vec<Point<2>> = (0..100).map(|i| Point::new([i as i64, 0], i)).collect();
        let PartitionPolicy::Range { bounds } = PartitionPolicy::range_from_sample(4, &pts) else {
            panic!("expected a range policy")
        };
        assert_eq!(bounds, vec![25, 50, 75]);
    }
}
