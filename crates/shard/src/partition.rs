//! Domain partitioning: which shard group owns a point, and which shard
//! groups a range query must visit.
//!
//! Two placement policies are offered. **Hash** spreads inserts uniformly
//! by a mix of the record id — perfectly balanced under any id pattern,
//! but every range query must visit every shard (ids carry no spatial
//! information). **Range** slices the first coordinate axis into `S`
//! contiguous slabs — a range query visits only the slabs its first-axis
//! interval overlaps, and the router clips each sub-query to the slab so
//! shard answers are disjoint by construction.
//!
//! The policy decides *placement of new points* and *read fan-out*; the
//! authoritative record of where a live id resides is the router's
//! ownership index, which also absorbs rebalance migrations.

use ddrs_rangetree::{Point, Rect};

/// How the id/key domain is divided across shard groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Place by a mix of the record id. Balanced placement, all-shard
    /// read fan-out.
    Hash,
    /// Place by the first coordinate: shard `i` owns the slab
    /// `[bounds[i-1], bounds[i])` of axis 0 (with implicit `-∞` and
    /// `+∞` end caps). `bounds` must be ascending and have exactly
    /// `shards - 1` entries.
    Range {
        /// Ascending slab boundaries on axis 0, one fewer than shards.
        bounds: Vec<i64>,
    },
}

impl PartitionPolicy {
    /// Evenly spaced range boundaries over `[lo, hi]` for `shards`
    /// groups — a reasonable default when the data distribution is
    /// roughly uniform on axis 0.
    pub fn range_uniform(shards: usize, lo: i64, hi: i64) -> PartitionPolicy {
        assert!(shards >= 1, "need at least one shard");
        assert!(lo <= hi, "range_uniform: lo > hi");
        let span = (hi - lo).max(1) as i128;
        let bounds = (1..shards).map(|i| lo + (span * i as i128 / shards as i128) as i64).collect();
        PartitionPolicy::Range { bounds }
    }

    /// Range boundaries at the axis-0 quantiles of a sample — balanced
    /// initial placement for arbitrary distributions.
    pub fn range_from_sample<const D: usize>(
        shards: usize,
        sample: &[Point<D>],
    ) -> PartitionPolicy {
        assert!(shards >= 1, "need at least one shard");
        let mut xs: Vec<i64> = sample.iter().map(|p| p.coords[0]).collect();
        xs.sort_unstable();
        let bounds = (1..shards)
            .map(|i| {
                if xs.is_empty() {
                    i as i64
                } else {
                    xs[(xs.len() * i / shards).min(xs.len() - 1)]
                }
            })
            .collect();
        PartitionPolicy::Range { bounds }
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) for hash placement.
fn mix(id: u32) -> u64 {
    let mut z = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The router's live view of the partition: the policy plus the mutable
/// range boundaries (rebalance moves them).
#[derive(Debug, Clone)]
pub(crate) enum Partitioner {
    Hash { shards: usize },
    Range { bounds: Vec<i64> },
}

impl Partitioner {
    pub(crate) fn new(policy: PartitionPolicy, shards: usize) -> Self {
        match policy {
            PartitionPolicy::Hash => Partitioner::Hash { shards },
            PartitionPolicy::Range { bounds } => {
                assert_eq!(
                    bounds.len(),
                    shards - 1,
                    "range partition needs exactly shards - 1 boundaries"
                );
                assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "range boundaries must ascend");
                Partitioner::Range { bounds }
            }
        }
    }

    /// Placement shard for a new point.
    pub(crate) fn place<const D: usize>(&self, p: &Point<D>) -> usize {
        match self {
            Partitioner::Hash { shards } => (mix(p.id) % *shards as u64) as usize,
            Partitioner::Range { bounds } => bounds.partition_point(|b| *b <= p.coords[0]),
        }
    }

    /// The inclusive shard interval a query's axis-0 extent overlaps.
    /// Empty rects fan out to no shard (the router answers them locally).
    pub(crate) fn read_fanout<const D: usize>(
        &self,
        q: &Rect<D>,
    ) -> std::ops::RangeInclusive<usize> {
        if q.is_empty() {
            // An intentionally empty fan-out: the router answers the
            // degenerate query locally without touching any shard.
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        match self {
            Partitioner::Hash { shards } => 0..=shards - 1,
            Partitioner::Range { bounds } => {
                let lo = bounds.partition_point(|b| *b <= q.lo[0]);
                let hi = bounds.partition_point(|b| *b <= q.hi[0]);
                lo..=hi
            }
        }
    }

    /// Clip a query to one shard's slab (range policy splits queries at
    /// shard boundaries; hash placement cannot clip).
    pub(crate) fn clip<const D: usize>(&self, shard: usize, q: &Rect<D>) -> Rect<D> {
        match self {
            Partitioner::Hash { .. } => *q,
            Partitioner::Range { bounds } => {
                let mut c = *q;
                if shard > 0 {
                    c.lo[0] = c.lo[0].max(bounds[shard - 1]);
                }
                if shard < bounds.len() {
                    // Slab upper bounds are exclusive; Rect bounds inclusive.
                    c.hi[0] = c.hi[0].min(bounds[shard].saturating_sub(1));
                }
                c
            }
        }
    }

    /// Move the boundary between `donor` and an adjacent `recipient` to
    /// `b` after a split migration (range policy only).
    pub(crate) fn shift_boundary(&mut self, donor: usize, recipient: usize, b: i64) {
        if let Partitioner::Range { bounds } = self {
            debug_assert!(donor.abs_diff(recipient) == 1, "range split needs adjacent shards");
            bounds[donor.min(recipient)] = b;
        }
    }

    /// The current range boundaries, if this is a range partition.
    pub(crate) fn bounds(&self) -> Option<Vec<i64>> {
        match self {
            Partitioner::Hash { .. } => None,
            Partitioner::Range { bounds } => Some(bounds.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_place_and_fanout_respect_boundaries() {
        let part = Partitioner::new(PartitionPolicy::Range { bounds: vec![10, 20] }, 3);
        assert_eq!(part.place(&Point::<2>::new([-5, 0], 1)), 0);
        assert_eq!(part.place(&Point::<2>::new([9, 0], 2)), 0);
        assert_eq!(part.place(&Point::<2>::new([10, 0], 3)), 1);
        assert_eq!(part.place(&Point::<2>::new([19, 0], 4)), 1);
        assert_eq!(part.place(&Point::<2>::new([20, 0], 5)), 2);
        assert_eq!(part.read_fanout(&Rect::<2>::new([0, 0], [9, 9])), 0..=0);
        assert_eq!(part.read_fanout(&Rect::<2>::new([5, 0], [25, 9])), 0..=2);
        assert_eq!(part.read_fanout(&Rect::<2>::new([10, 0], [19, 9])), 1..=1);
        assert!(part.read_fanout(&Rect::<2>::new([5, 0], [4, 9])).is_empty());
    }

    #[test]
    fn range_clip_splits_at_boundaries() {
        let part = Partitioner::new(PartitionPolicy::Range { bounds: vec![10, 20] }, 3);
        let q = Rect::<2>::new([5, 1], [25, 2]);
        assert_eq!(part.clip(0, &q), Rect::new([5, 1], [9, 2]));
        assert_eq!(part.clip(1, &q), Rect::new([10, 1], [19, 2]));
        assert_eq!(part.clip(2, &q), Rect::new([20, 1], [25, 2]));
    }

    #[test]
    fn hash_fans_out_everywhere_and_spreads_placement() {
        let part = Partitioner::new(PartitionPolicy::Hash, 4);
        assert_eq!(part.read_fanout(&Rect::<2>::new([0, 0], [1, 1])), 0..=3);
        let mut counts = [0usize; 4];
        for id in 0..4000 {
            counts[part.place(&Point::<2>::new([0, 0], id))] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "hash placement badly skewed: {counts:?}");
        }
    }

    #[test]
    fn shift_boundary_moves_the_shared_edge() {
        let mut part = Partitioner::new(PartitionPolicy::Range { bounds: vec![10, 20] }, 3);
        part.shift_boundary(1, 2, 15);
        assert_eq!(part.bounds(), Some(vec![10, 15]));
        part.shift_boundary(1, 0, 7);
        assert_eq!(part.bounds(), Some(vec![7, 15]));
    }

    #[test]
    fn uniform_and_sampled_bounds() {
        assert_eq!(
            PartitionPolicy::range_uniform(4, 0, 100),
            PartitionPolicy::Range { bounds: vec![25, 50, 75] }
        );
        let pts: Vec<Point<2>> = (0..100).map(|i| Point::new([i as i64, 0], i)).collect();
        let PartitionPolicy::Range { bounds } = PartitionPolicy::range_from_sample(4, &pts) else {
            panic!("expected a range policy")
        };
        assert_eq!(bounds, vec![25, 50, 75]);
    }
}
