//! The per-shard scheduler thread: one `Machine` + one
//! `DynamicDistRangeTree`, executing the sub-batches the router plans.
//!
//! A worker is deliberately dumb: it owns its group's machine and store,
//! receives fully planned jobs over a channel, executes them with
//! panic containment, and replies with the result plus the run's
//! [`RunStats`] so the router can account machine work per shard. All
//! cross-shard reasoning (planning, merging, ordering, rollback,
//! poisoning) lives in the router — the worker has no idea siblings
//! exist.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;

use ddrs_cgm::{panic_message, CgmError, Machine, RunStats};
use ddrs_engine::{BatchResults, QueryBatch};
use ddrs_rangetree::{DynamicDistRangeTree, Point, Semigroup};
use ddrs_wal::EpochRecord;

/// What a read sub-batch does with its outcome: invoked on the worker
/// thread with the fused results (or the failure) and the run's stats.
/// The router builds these to resolve tickets and account telemetry
/// without ever blocking on the read — reads gather asynchronously,
/// while writes and splits keep their synchronous reply channels
/// (the router *must* barrier on those to order the epoch protocol).
pub(crate) type ReadComplete<S> = Box<dyn FnOnce(Result<BatchResults<S>, String>, RunStats) + Send>;

/// One planned unit of work for a shard group.
pub(crate) enum ShardJob<S: Semigroup, const D: usize> {
    /// Execute a fused read sub-batch: exactly one `Machine::run` (zero
    /// when the sub-batch or the shard's store is empty), then hand the
    /// outcome to `complete` on this worker thread.
    Reads { batch: QueryBatch<S, D>, complete: ReadComplete<S> },
    /// Apply one write sub-epoch: extract `deletes` (returning the
    /// removed points so the router can roll the epoch back on sibling
    /// failure), then insert `inserts`. `inject_fault` makes a simulated
    /// processor panic *between* the two cascades via
    /// [`Machine::try_run`] — the deterministic mid-epoch fault the test
    /// harness injects.
    Write {
        deletes: Vec<u32>,
        inserts: Vec<Point<D>>,
        inject_fault: bool,
        reply: mpsc::Sender<WriteReply<D>>,
    },
    /// Extract one half of the store, split by the first coordinate
    /// (ties kept together), for migration to a sibling group.
    SplitHalf { upper: bool, reply: mpsc::Sender<SplitReply<D>> },
    /// Rebuild the store from the shard's write-ahead log: replay
    /// `records` into a fresh tree and swap it in place of the current
    /// (possibly inconsistent) one. On failure the old store is kept
    /// untouched, so the router can leave the shard quarantined and
    /// retry later.
    Recover { capacity: usize, records: Vec<EpochRecord<D>>, reply: mpsc::Sender<RecoverReply> },
    /// Hand the machine and store back and exit the thread.
    Stop { reply: mpsc::Sender<(Machine, DynamicDistRangeTree<D>)> },
}

pub(crate) struct WriteReply<const D: usize> {
    pub shard: usize,
    /// On success, the points removed by the delete cascade (rollback
    /// capital). On failure, the shard's store may be inconsistent.
    pub result: Result<Vec<Point<D>>, String>,
    pub stats: RunStats,
}

pub(crate) struct SplitReply<const D: usize> {
    /// The migrated points and the axis-0 boundary separating them from
    /// the points the donor kept.
    pub result: Result<(Vec<Point<D>>, i64), String>,
    pub stats: RunStats,
}

pub(crate) struct RecoverReply {
    /// On success, the live point ids of the rebuilt store (the router
    /// re-derives the ownership index from them).
    pub result: Result<Vec<u32>, String>,
    pub stats: RunStats,
}

pub(crate) struct WorkerHandle<S: Semigroup, const D: usize> {
    pub tx: mpsc::Sender<ShardJob<S, D>>,
    pub join: JoinHandle<()>,
}

pub(crate) fn spawn_worker<S: Semigroup, const D: usize>(
    shard: usize,
    machine: Machine,
    tree: DynamicDistRangeTree<D>,
) -> WorkerHandle<S, D> {
    let (tx, rx) = mpsc::channel::<ShardJob<S, D>>();
    let join = std::thread::Builder::new()
        .name(format!("ddrs-shard-{shard}"))
        .spawn(move || worker_loop(shard, machine, tree, &rx))
        // ddrs-check: allow(unwrap) — OS thread-spawn failure at service
        // construction; there is nothing to degrade gracefully yet.
        .expect("spawning a shard worker");
    WorkerHandle { tx, join }
}

/// Render a machine failure so the structured kind survives into the
/// string the router quarantines and reports (`ProcessorPanicked` is
/// what the fault-injection harness greps for).
fn cgm_error_string(e: &CgmError) -> String {
    match e {
        CgmError::ProcessorPanicked { rank, payload } => {
            format!("ProcessorPanicked: rank {rank}: {payload}")
        }
        other => other.to_string(),
    }
}

fn worker_loop<S: Semigroup, const D: usize>(
    shard: usize,
    machine: Machine,
    mut tree: DynamicDistRangeTree<D>,
    rx: &mpsc::Receiver<ShardJob<S, D>>,
) {
    // Start clean so every reply's stats cover exactly its own job.
    machine.take_stats();
    while let Ok(job) = rx.recv() {
        match job {
            ShardJob::Reads { batch, complete } => {
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| batch.try_execute_dynamic(&machine, &tree)));
                let stats = machine.take_stats();
                let result = match outcome {
                    Ok(Ok(out)) => Ok(out),
                    Ok(Err(e)) => Err(cgm_error_string(&e)),
                    Err(payload) => Err(panic_message(&*payload)),
                };
                complete(result, stats);
            }
            ShardJob::Write { deletes, inserts, inject_fault, reply } => {
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Point<D>>, String> {
                        let extracted = if deletes.is_empty() {
                            Vec::new()
                        } else {
                            tree.extract_batch(&machine, &deletes).map_err(|e| e.to_string())?
                        };
                        if inject_fault {
                            machine
                                .try_run(|ctx| {
                                    if ctx.rank() == ctx.p() - 1 {
                                        panic!("injected fault: processor panic mid-epoch");
                                    }
                                    ctx.barrier();
                                })
                                .map_err(|e| cgm_error_string(&e))?;
                        }
                        if !inserts.is_empty() {
                            tree.insert_batch(&machine, &inserts).map_err(|e| e.to_string())?;
                        }
                        Ok(extracted)
                    }));
                let stats = machine.take_stats();
                let result = match outcome {
                    Ok(r) => r,
                    Err(payload) => Err(panic_message(&*payload)),
                };
                let _ = reply.send(WriteReply { shard, result, stats });
            }
            ShardJob::SplitHalf { upper, reply } => {
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| split_half(&machine, &mut tree, upper)));
                let stats = machine.take_stats();
                let result = match outcome {
                    Ok(r) => r,
                    Err(payload) => Err(panic_message(&*payload)),
                };
                let _ = reply.send(SplitReply { result, stats });
            }
            ShardJob::Recover { capacity, records, reply } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    ddrs_wal::replay_into_store(&machine, capacity, &records)
                }));
                let stats = machine.take_stats();
                let result = match outcome {
                    Ok(Ok(fresh)) => {
                        let live = fresh.points().map(|p| p.id).collect();
                        tree = fresh;
                        Ok(live)
                    }
                    Ok(Err(e)) => Err(e),
                    Err(payload) => Err(panic_message(&*payload)),
                };
                let _ = reply.send(RecoverReply { result, stats });
            }
            ShardJob::Stop { reply } => {
                let _ = reply.send((machine, tree));
                return;
            }
        }
    }
}

/// Extract the upper (or lower) half of the store by axis 0, keeping
/// equal first coordinates together so the result is a clean slab split:
/// every migrated point is `>= b` (upper) or `< b` (lower) on axis 0,
/// where `b` is the returned boundary.
fn split_half<const D: usize>(
    machine: &Machine,
    tree: &mut DynamicDistRangeTree<D>,
    upper: bool,
) -> Result<(Vec<Point<D>>, i64), String> {
    let mut pts: Vec<Point<D>> = tree.points().copied().collect();
    if pts.len() < 2 {
        return Err(format!("split impossible: shard holds {} point(s)", pts.len()));
    }
    pts.sort_unstable_by_key(|p| (p.coords[0], p.id));
    let mut b = pts[pts.len() / 2].coords[0];
    let moved_of = |b: i64| -> Vec<u32> {
        if upper {
            pts.iter().filter(|p| p.coords[0] >= b).map(|p| p.id).collect()
        } else {
            pts.iter().filter(|p| p.coords[0] < b).map(|p| p.id).collect()
        }
    };
    let mut moved_ids = moved_of(b);
    if moved_ids.is_empty() || moved_ids.len() == pts.len() {
        // The median coordinate is a plateau reaching one end of the
        // shard (upper: everything >= b; lower: nothing < b). The split
        // is still possible as long as a second distinct coordinate
        // exists: retreat the boundary to the smallest coordinate
        // strictly above the plateau, which peels a non-empty proper
        // subset off the right end (upper) or moves the plateau itself
        // (lower).
        match pts.iter().map(|p| p.coords[0]).find(|&c| c > b) {
            Some(next) => {
                b = next;
                moved_ids = moved_of(b);
            }
            None => {
                return Err(format!(
                    "split impossible: all {} points share the splitting coordinate {b}",
                    pts.len()
                ));
            }
        }
    }
    debug_assert!(!moved_ids.is_empty() && moved_ids.len() < pts.len());
    let moved = tree.extract_batch(machine, &moved_ids).map_err(|e| e.to_string())?;
    Ok((moved, b))
}
