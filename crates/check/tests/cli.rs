//! End-to-end exercise of the `ddrs-check` binary: exit 0 on the real
//! workspace, exit non-zero on every known-bad fixture.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddrs-check"))
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/check_fixtures")
}

#[test]
fn no_args_lints_the_workspace_clean() {
    let out = bin().output().expect("running ddrs-check");
    assert!(
        out.status.success(),
        "workspace lint failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn every_fixture_exits_nonzero() {
    for name in ["lock_order.rs", "blocking.rs", "unwrap.rs", "relaxed.rs"] {
        let path = fixtures_dir().join(name);
        let out = bin().arg(&path).output().expect("running ddrs-check");
        assert!(!out.status.success(), "fixture {name} was not flagged");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("finding"), "fixture {name} output: {stdout}");
    }
}
