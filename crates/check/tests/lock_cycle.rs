//! Regression test for the runtime lock-order detector: two threads
//! acquiring two `TrackedMutex`es in opposite orders must produce a
//! cycle report — deterministically and without ever deadlocking.
//!
//! Determinism does not need a racy schedule: the detector works on the
//! *recorded order graph*, so one thread nesting a→b and another thread
//! (here: the same test, sequentially) nesting b→a is enough to close
//! the cycle. Nothing blocks, because the test never holds both locks
//! across the conflicting acquisition at the same time as the other
//! order.

use ddrs_check::{clear_lock_order_reports, lock_order_reports, tracking_active, TrackedMutex};

static A: TrackedMutex<u32> = TrackedMutex::new("cycle.a", 0);
static B: TrackedMutex<u32> = TrackedMutex::new("cycle.b", 0);

#[test]
fn opposite_order_acquisition_is_reported_not_deadlocked() {
    if !tracking_active() {
        // Release build without the `lock-check` feature: the tracked
        // types are pass-through wrappers and record nothing.
        assert!(lock_order_reports().is_empty());
        return;
    }
    clear_lock_order_reports();

    // Record a → b on one thread...
    let t = std::thread::spawn(|| {
        let a = A.lock();
        let b = B.lock();
        drop(b);
        drop(a);
    });
    t.join().expect("recording thread panicked");
    assert!(lock_order_reports().is_empty(), "consistent nesting must be silent");

    // ...then b → a on another: the edge b→a closes the cycle the
    // moment it is recorded, before anything can block on it.
    let t = std::thread::spawn(|| {
        let b = B.lock();
        let a = A.lock();
        drop(a);
        drop(b);
    });
    t.join().expect("inverting thread panicked");

    let reports = lock_order_reports();
    assert_eq!(reports.len(), 1, "{reports:#?}");
    assert!(reports[0].contains("cycle.a"), "{}", reports[0]);
    assert!(reports[0].contains("cycle.b"), "{}", reports[0]);
    assert!(reports[0].contains("inversion"), "{}", reports[0]);

    // The same inversion again stays deduplicated.
    let t = std::thread::spawn(|| {
        let b = B.lock();
        let a = A.lock();
        drop(a);
        drop(b);
    });
    t.join().expect("second inverting thread panicked");
    assert_eq!(lock_order_reports().len(), 1, "duplicate inversion must not re-report");

    clear_lock_order_reports();
}
