//! The `ddrs-check` lint gate.
//!
//! * `cargo run -p ddrs-check` — lint the scheduler-stack sources of
//!   this workspace with the per-crate policy; exit 1 on any finding.
//! * `cargo run -p ddrs-check -- <file>…` — lint the given files with
//!   every lint enabled (this is how the known-bad fixtures under
//!   `tests/check_fixtures/` are exercised).

use std::path::Path;
use std::process::ExitCode;

use ddrs_check::lint::{lint_source, lint_workspace, Diagnostic, LintSet};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let diags = if args.is_empty() {
        // `CARGO_MANIFEST_DIR` is `crates/check`; the workspace root is
        // two levels up. Baked in at compile time, so the gate works
        // from any working directory.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        match lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("ddrs-check: cannot read workspace sources: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut diags: Vec<Diagnostic> = Vec::new();
        for arg in &args {
            let src = match std::fs::read_to_string(arg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ddrs-check: cannot read {arg}: {e}");
                    return ExitCode::from(2);
                }
            };
            diags.extend(lint_source(arg, &src, LintSet::all()));
        }
        diags
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("ddrs-check: clean");
        ExitCode::SUCCESS
    } else {
        println!("ddrs-check: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
