//! The static lint pass: token-wise concurrency-discipline checks.
//!
//! The analysis is deliberately syntactic — a hand-rolled tokenizer
//! (comments, strings, raw strings, char literals and lifetimes are
//! handled; everything else becomes identifier/symbol tokens with line
//! numbers) plus a brace/paren-depth walker that tracks which lock
//! guards are live at each point of a function body. Four lints:
//!
//! * **`lock-order`** (L1) — tracked locks must be acquired in the
//!   canonical order [`CANONICAL_LOCK_ORDER`]; a nested acquisition at
//!   an equal-or-lower rank is flagged as a potential deadlock.
//! * **`blocking-while-locked`** (L2) — no `Machine::run`/`try_run`,
//!   condvar wait, `Ticket::wait*`, thread join or channel `recv` while
//!   a tracked guard is live in scheduler/worker code. (A condvar wait
//!   consuming its *own* guard is the one legal form.)
//! * **`unwrap`** (L3) — no `.unwrap()` / `.expect()` in non-test
//!   scheduler/service/shard code: a panic there poisons a whole shard.
//! * **`relaxed`** (L4) — no `Ordering::Relaxed` in the scheduler
//!   stack, where atomics gate commit sequencing and consistency.
//!
//! Any finding can be waived with a `// ddrs-check: allow(<lint>)`
//! comment on the flagged line or the line directly above it — the
//! justification belongs in the same comment.
//!
//! Guard liveness is approximated conservatively: a `let`-bound guard
//! lives until its enclosing block closes or an explicit `drop(<var>)`;
//! an unbound (temporary) guard lives to the end of its statement or
//! argument position. `#[cfg(test)]` items are skipped entirely. The
//! pass sees nesting *within* one function body; nesting that spans
//! function calls is covered by the [`crate::lock`] runtime instead.
//!
//! `wal.append` is the per-shard write-ahead log's append mutex
//! (`ddrs-wal`): the router appends committed epochs while holding no
//! scheduler lock, so it ranks between the router-side fault set and
//! the cross-shard merge state, and — like everything else — above the
//! telemetry classes.
//!
//! `net.conn` covers every connection-scoped lock of the network
//! front-end (`ddrs-net`): the server's connection table and the remote
//! client's per-connection pending map and write half. They rank below
//! the serving locks (network threads never hold one while submitting
//! into a scheduler) and above the ticket classes, because a demux
//! thread may resolve tickets from under its connection state.
//! `ticket.watch` is the `Ticket::on_resolve` watch cell — held while
//! polling the parked ticket, so it sits directly above `ticket.state`.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The canonical acquisition order over the scheduler stack's named
/// lock classes, outermost first. `stats` covers both `service.stats`
/// and `shard.stats` (they never nest with each other); `shard.cross`
/// is the per-`CrossOp` merge state; `net.conn` is the network
/// front-end's connection-scoped state (server connection table,
/// remote-client pending maps and write halves); `ticket.watch` is the
/// `on_resolve` watch cell and `ticket.state` the ticket cell itself,
/// innermost of the scheduling locks because resolving a ticket is the
/// last thing a completion path does. The two telemetry classes sit
/// below everything: `metrics.registry` is the unified export registry,
/// and `trace.ring` guards the per-thread span ring-buffers — recording
/// an event must be legal from under any scheduler lock, so it ranks
/// last.
pub const CANONICAL_LOCK_ORDER: &[&str] = &[
    "sched.queue",
    "stats",
    "shard.faults",
    "wal.append",
    "shard.cross",
    "net.conn",
    "ticket.watch",
    "ticket.state",
    "metrics.registry",
    "trace.ring",
];

/// Condvar field names; `cv.wait(guard)` consuming its own guard is the
/// legal blocking-under-lock form.
const CONDVAR_FIELDS: &[&str] = &["arrived", "cv"];

/// Method names that block the calling thread (L2).
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "run",
    "try_run",
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_until",
    "join",
];

/// Map a lock field identifier to its `(rank, class name)`. The `state`
/// field is `ticket.state` in the client crate and the `CrossOp` merge
/// state in the shard router.
fn classify(field: &str, path: &str) -> Option<(usize, &'static str)> {
    match field {
        "queue" => Some((0, "sched.queue")),
        "stats" => Some((1, "stats")),
        "faults" => Some((2, "shard.faults")),
        "append" => Some((3, "wal.append")),
        "state" => {
            if path.contains("client") {
                Some((7, "ticket.state"))
            } else {
                Some((4, "shard.cross"))
            }
        }
        // The network front-end's connection-scoped locks (`ddrs-net`):
        // the server connection table and the client's per-connection
        // pending map / write half all share one class, and none of
        // them may nest inside another.
        "conns" | "pending" | "stream" if path.contains("net") => Some((5, "net.conn")),
        "watch" if path.contains("client") => Some((6, "ticket.watch")),
        "registry" => Some((8, "metrics.registry")),
        "ring" | "rings" => Some((9, "trace.ring")),
        _ => None,
    }
}

/// The four lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: nested lock acquisition out of canonical order.
    LockOrder,
    /// L2: a blocking call while a tracked guard is live.
    BlockingWhileLocked,
    /// L3: `.unwrap()` / `.expect()` in non-test scheduler code.
    Unwrap,
    /// L4: `Ordering::Relaxed` in the scheduler stack.
    Relaxed,
}

impl Lint {
    /// The lint's name as used in `// ddrs-check: allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::LockOrder => "lock-order",
            Lint::BlockingWhileLocked => "blocking-while-locked",
            Lint::Unwrap => "unwrap",
            Lint::Relaxed => "relaxed",
        }
    }

    /// Parse an allow-annotation name.
    pub fn from_name(name: &str) -> Option<Lint> {
        match name {
            "lock-order" => Some(Lint::LockOrder),
            "blocking-while-locked" => Some(Lint::BlockingWhileLocked),
            "unwrap" => Some(Lint::Unwrap),
            "relaxed" => Some(Lint::Relaxed),
            _ => None,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, rendered as `path:line: [lint] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file as given to the linter.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.lint, self.message)
    }
}

/// Which lints to run on a file.
#[derive(Debug, Clone, Copy)]
pub struct LintSet {
    /// Run L1 (lock-order).
    pub lock_order: bool,
    /// Run L2 (blocking-while-locked).
    pub blocking: bool,
    /// Run L3 (unwrap/expect).
    pub unwrap: bool,
    /// Run L4 (Ordering::Relaxed).
    pub relaxed: bool,
}

impl LintSet {
    /// Every lint on — used for explicit file arguments and fixtures.
    pub fn all() -> LintSet {
        LintSet { lock_order: true, blocking: true, unwrap: true, relaxed: true }
    }

    /// The workspace policy for a source path. The scheduler crates
    /// (`sched`, `service`, `shard`) get every lint; the client crate
    /// gets the lock-order and memory-ordering lints (its public API
    /// legitimately exposes blocking waits, and `unwrap` is allowed
    /// outside the serving hot path).
    pub fn for_workspace_path(path: &str) -> LintSet {
        let sched_stack =
            ["crates/sched", "crates/service", "crates/shard"].iter().any(|c| path.contains(c));
        LintSet { lock_order: true, blocking: sched_stack, unwrap: sched_stack, relaxed: true }
    }

    fn enabled(self, lint: Lint) -> bool {
        match lint {
            Lint::LockOrder => self.lock_order,
            Lint::BlockingWhileLocked => self.blocking,
            Lint::Unwrap => self.unwrap,
            Lint::Relaxed => self.relaxed,
        }
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Sym(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

impl Token {
    fn is_sym(&self, c: char) -> bool {
        self.tok == Tok::Sym(c)
    }
    fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Sym(_) => None,
        }
    }
}

struct Scanned {
    tokens: Vec<Token>,
    /// line → lints waived on that line. An allow annotation covers its
    /// own line and the next *code* line below it (intervening
    /// comment-only/blank lines are skipped, so multi-line
    /// justifications work).
    allows: HashMap<usize, Vec<Lint>>,
}

fn record_allow(comment: &str, line: usize, allows: &mut HashMap<usize, Vec<Lint>>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("ddrs-check: allow(") {
        rest = &rest[pos + "ddrs-check: allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        if let Some(lint) = Lint::from_name(rest[..end].trim()) {
            allows.entry(line).or_default().push(lint);
        }
        rest = &rest[end..];
    }
}

fn scan(src: &str) -> Scanned {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut tokens = Vec::new();
    let mut allows: HashMap<usize, Vec<Lint>> = HashMap::new();
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            let comment: String = b[start..i].iter().collect();
            record_allow(&comment, line, &mut allows);
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            i = skip_string(&b, i, &mut line);
        } else if (c == 'r' || c == 'b') && raw_string_hashes(&b, i).is_some() {
            // r"…", r#"…"#, br"…", … — skip to the matching close quote.
            let (start, hashes) = raw_string_hashes(&b, i).unwrap_or((i, 0));
            i = start + 1;
            loop {
                if i >= b.len() {
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '"' && closes_raw(&b, i, hashes) {
                    i += 1 + hashes;
                    break;
                } else {
                    i += 1;
                }
            }
        } else if c == 'b' && b.get(i + 1) == Some(&'"') {
            i = skip_string(&b, i + 1, &mut line);
        } else if c == '\'' {
            // Char literal vs lifetime.
            if b.get(i + 1) == Some(&'\\') {
                i += 2; // skip the escape lead-in
                while i < b.len() && b[i] != '\'' {
                    i += 1;
                }
                i += 1;
            } else if b.get(i + 2) == Some(&'\'') {
                i += 3;
            } else {
                // Lifetime: skip the quote, the ident is tokenized (and
                // ignored) normally.
                i += 1;
            }
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            tokens.push(Token { tok: Tok::Ident(b[start..i].iter().collect()), line });
        } else {
            tokens.push(Token { tok: Tok::Sym(c), line });
            i += 1;
        }
    }
    Scanned { tokens, allows }
}

/// If position `i` starts a raw-string opener (`r`/`br` + hashes + `"`),
/// return (index of the opening quote, number of hashes).
fn raw_string_hashes(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    // A preceding ident char means this `r` is inside an identifier.
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some((j, hashes))
    } else {
        None
    }
}

fn closes_raw(b: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| b.get(i + k) == Some(&'#'))
}

fn skip_string(b: &[char], open: usize, line: &mut usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LiveGuard {
    rank: usize,
    name: &'static str,
    /// `Some` when `let`-bound; `None` for statement temporaries.
    var: Option<String>,
    brace: usize,
    paren: usize,
    temp: bool,
}

struct Analyzer<'a> {
    path: &'a str,
    tokens: &'a [Token],
    allows: &'a HashMap<usize, Vec<Lint>>,
    /// Lines carrying at least one token (i.e. code, not comments).
    code_lines: std::collections::HashSet<usize>,
    set: LintSet,
    diags: Vec<Diagnostic>,
    guards: Vec<LiveGuard>,
    brace: usize,
    paren: usize,
    /// Token index where the current statement began (used for `let`
    /// binding detection).
    stmt_start: usize,
}

/// Lint one source file. `path` is used for diagnostics and for the
/// path-sensitive parts of the lock table (`state` disambiguation,
/// workspace lint scoping when `set` came from
/// [`LintSet::for_workspace_path`]).
pub fn lint_source(path: &str, src: &str, set: LintSet) -> Vec<Diagnostic> {
    let scanned = scan(src);
    let code_lines = scanned.tokens.iter().map(|t| t.line).collect();
    let mut a = Analyzer {
        path,
        tokens: &scanned.tokens,
        allows: &scanned.allows,
        code_lines,
        set,
        diags: Vec::new(),
        guards: Vec::new(),
        brace: 0,
        paren: 0,
        stmt_start: 0,
    };
    a.run();
    a.diags
}

impl Analyzer<'_> {
    fn allowed(&self, line: usize, lint: Lint) -> bool {
        let hit = |l: usize| self.allows.get(&l).is_some_and(|v| v.contains(&lint));
        if hit(line) {
            return true;
        }
        // Walk upward through the comment block directly above the
        // flagged line; the first code line ends the search.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if hit(l) {
                return true;
            }
            if self.code_lines.contains(&l) {
                return false;
            }
        }
        false
    }

    fn flag(&mut self, line: usize, lint: Lint, message: String) {
        if self.set.enabled(lint) && !self.allowed(line, lint) {
            self.diags.push(Diagnostic { path: self.path.to_string(), line, lint, message });
        }
    }

    fn run(&mut self) {
        let mut i = 0;
        while i < self.tokens.len() {
            // Skip `#[cfg(test)]` items wholesale.
            if self.at_cfg_test(i) {
                i = self.skip_cfg_test_item(i);
                continue;
            }
            let t = self.tokens[i].clone();
            match &t.tok {
                Tok::Sym('{') => {
                    self.brace += 1;
                    self.stmt_start = i + 1;
                }
                Tok::Sym('}') => {
                    self.brace = self.brace.saturating_sub(1);
                    let depth = self.brace;
                    self.guards.retain(|g| g.brace <= depth);
                    self.stmt_start = i + 1;
                }
                Tok::Sym('(') => self.paren += 1,
                Tok::Sym(')') => {
                    self.paren = self.paren.saturating_sub(1);
                    let depth = self.paren;
                    self.guards.retain(|g| !(g.temp && g.paren > depth));
                }
                Tok::Sym(',') => {
                    let depth = self.paren;
                    self.guards.retain(|g| !(g.temp && g.paren >= depth));
                }
                Tok::Sym(';') => {
                    self.guards.retain(|g| !g.temp);
                    self.stmt_start = i + 1;
                }
                Tok::Sym('.') => {
                    i = self.method_call(i);
                    continue;
                }
                Tok::Ident(id) if id == "drop" => {
                    if let Some(next) = self.explicit_drop(i) {
                        i = next;
                        continue;
                    }
                }
                Tok::Ident(id) if id == "lock" => {
                    // Free-function form `lock(&self.field)`.
                    let is_method = i > 0 && self.tokens[i - 1].is_sym('.');
                    if !is_method && self.tokens.get(i + 1).is_some_and(|t| t.is_sym('(')) {
                        if let Some((field, close)) = self.last_ident_in_parens(i + 1) {
                            let terminal =
                                self.tokens.get(close + 1).is_some_and(|t| t.is_sym(';'));
                            self.acquire(&field, t.line, i, terminal);
                        }
                    }
                }
                Tok::Ident(id) if id == "Relaxed" => {
                    let line = t.line;
                    self.flag(
                        line,
                        Lint::Relaxed,
                        "Ordering::Relaxed in the scheduler stack — commit-seq and \
                         consistency-gating atomics need acquire/release (or stronger); \
                         annotate telemetry-only uses"
                            .to_string(),
                    );
                }
                Tok::Ident(id) if id == "Machine" => {
                    // `Machine::run(...)` / `Machine::try_run(...)`.
                    if self.tokens.get(i + 1).is_some_and(|t| t.is_sym(':'))
                        && self.tokens.get(i + 2).is_some_and(|t| t.is_sym(':'))
                        && self
                            .tokens
                            .get(i + 3)
                            .and_then(Token::ident)
                            .is_some_and(|m| m == "run" || m == "try_run")
                        && !self.guards.is_empty()
                    {
                        let line = t.line;
                        let held = self.held_names();
                        self.flag(
                            line,
                            Lint::BlockingWhileLocked,
                            format!(
                                "Machine::run while holding [{held}] — a machine run can \
                                     block on sibling processors; release tracked guards first"
                            ),
                        );
                    }
                }
                Tok::Ident(_) => {}
                Tok::Sym(_) => {}
            }
            i += 1;
        }
    }

    fn held_names(&self) -> String {
        self.guards.iter().map(|g| g.name).collect::<Vec<_>>().join(", ")
    }

    /// Handle `recv/run/wait/unwrap/…` at `self.tokens[i] == '.'`;
    /// returns the next index to resume from.
    fn method_call(&mut self, i: usize) -> usize {
        let Some(m) = self.tokens.get(i + 1).and_then(Token::ident).map(str::to_string) else {
            return i + 1;
        };
        let has_call = self.tokens.get(i + 2).is_some_and(|t| t.is_sym('('));
        let line = self.tokens[i + 1].line;
        let receiver = if i > 0 { self.tokens[i - 1].ident().map(str::to_string) } else { None };
        if !has_call {
            return i + 1;
        }
        if m == "lock" && self.tokens.get(i + 3).is_some_and(|t| t.is_sym(')')) {
            if let Some(field) = receiver {
                let terminal = self.tokens.get(i + 4).is_some_and(|t| t.is_sym(';'));
                self.acquire(&field, line, i, terminal);
            }
            return i + 1;
        }
        if (m == "wait" || m == "wait_timeout")
            && receiver.as_deref().is_some_and(|r| CONDVAR_FIELDS.contains(&r))
        {
            // Condvar wait: consuming its own guard is legal; any OTHER
            // live guard means we block while holding it.
            let own = self.tokens.get(i + 3).and_then(Token::ident);
            let others: Vec<&str> =
                self.guards.iter().filter(|g| g.var.as_deref() != own).map(|g| g.name).collect();
            if !others.is_empty() {
                self.flag(
                    line,
                    Lint::BlockingWhileLocked,
                    format!(
                        "condvar wait while still holding [{}] — only the guard handed to \
                         the wait is released",
                        others.join(", ")
                    ),
                );
            }
            return i + 1;
        }
        if m == "unwrap" || m == "expect" {
            self.flag(
                line,
                Lint::Unwrap,
                format!(
                    ".{m}() in scheduler-stack code — a panic here poisons a whole shard; \
                     return a ServiceError / take the poisoning path, or annotate why this \
                     is infallible"
                ),
            );
            return i + 1;
        }
        if BLOCKING_METHODS.contains(&m.as_str()) && !self.guards.is_empty() {
            let held = self.held_names();
            self.flag(
                line,
                Lint::BlockingWhileLocked,
                format!(
                    ".{m}() while holding [{held}] — blocking with a tracked guard live \
                         can deadlock the scheduler; release the guard first"
                ),
            );
        }
        i + 1
    }

    /// Record an acquisition of the lock behind `field` (if tracked).
    /// `terminal` means the lock call ends its statement (`…lock();`) —
    /// only then can a `let` bind the guard itself; a continued method
    /// chain consumes the guard as a statement temporary.
    fn acquire(&mut self, field: &str, line: usize, acq: usize, terminal: bool) {
        let Some((rank, name)) = classify(field, self.path) else { return };
        let conflicts: Vec<(String, bool)> = self
            .guards
            .iter()
            .filter(|g| rank <= g.rank)
            .map(|g| (g.name.to_string(), g.rank == rank && g.name == name))
            .collect();
        for (held, recursive) in conflicts {
            let msg = if recursive {
                format!(
                    "recursive acquisition of '{name}' — std::sync::Mutex self-deadlocks; \
                     restructure so one guard covers the whole critical section"
                )
            } else {
                format!(
                    "acquiring '{name}' while holding '{held}' inverts the canonical lock \
                     order [{}]",
                    CANONICAL_LOCK_ORDER.join(" < ")
                )
            };
            self.flag(line, Lint::LockOrder, msg);
        }
        let var = if terminal { self.let_binding_var(acq) } else { None };
        let temp = var.is_none();
        self.guards.push(LiveGuard { rank, name, var, brace: self.brace, paren: self.paren, temp });
    }

    /// If the statement containing token `acq` is a `let` binding, the
    /// bound variable.
    fn let_binding_var(&self, acq: usize) -> Option<String> {
        let mut it = self.tokens[self.stmt_start..acq].iter();
        for t in it.by_ref() {
            match t.ident() {
                Some("let") => break,
                // A `=` before any `let` means this is a plain
                // assignment — not a fresh binding.
                _ if t.is_sym('=') => return None,
                _ => {}
            }
        }
        for t in it {
            match t.ident() {
                Some("mut") => continue,
                Some(v) => return Some(v.to_string()),
                None => continue,
            }
        }
        None
    }

    /// Handle `drop(a)` / `drop((a, b))`: release the named guards.
    /// Returns the index after the closing paren, or `None` when this
    /// `drop` ident is not a call.
    fn explicit_drop(&mut self, i: usize) -> Option<usize> {
        if !self.tokens.get(i + 1).is_some_and(|t| t.is_sym('(')) {
            return None;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut dropped: Vec<String> = Vec::new();
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Sym('(') => depth += 1,
                Tok::Sym(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(id) => dropped.push(id.clone()),
                Tok::Sym(_) => {}
            }
            j += 1;
        }
        self.guards.retain(|g| g.var.as_ref().is_none_or(|v| !dropped.contains(v)));
        Some(j + 1)
    }

    /// The last identifier inside the paren group opening at `open`,
    /// plus the index of the closing paren (used for
    /// `lock(&self.field)`).
    fn last_ident_in_parens(&self, open: usize) -> Option<(String, usize)> {
        let mut depth = 0usize;
        let mut last = None;
        let mut j = open;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Sym('(') => depth += 1,
                Tok::Sym(')') => {
                    depth -= 1;
                    if depth == 0 {
                        return last.map(|f| (f, j));
                    }
                }
                Tok::Ident(id) => last = Some(id.clone()),
                Tok::Sym(_) => {}
            }
            j += 1;
        }
        None
    }

    /// Does `#[cfg(test)]` start at token `i`?
    fn at_cfg_test(&self, i: usize) -> bool {
        let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
        pat.iter().enumerate().all(|(k, want)| match self.tokens.get(i + k) {
            Some(t) => match &t.tok {
                Tok::Ident(s) => s == want,
                Tok::Sym(c) => want.len() == 1 && want.starts_with(*c),
            },
            None => false,
        })
    }

    /// Skip the item following a `#[cfg(test)]` attribute: everything
    /// up to the first `;`, or the matching `}` of the first `{`.
    fn skip_cfg_test_item(&self, i: usize) -> usize {
        let mut j = i + 7; // past `# [ cfg ( test ) ]`
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Sym(';') => return j + 1,
                Tok::Sym('{') => {
                    let mut depth = 0usize;
                    while j < self.tokens.len() {
                        match &self.tokens[j].tok {
                            Tok::Sym('{') => depth += 1,
                            Tok::Sym('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    return j + 1;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return j;
                }
                _ => j += 1,
            }
        }
        j
    }
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

/// The crates the workspace pass covers.
const WORKSPACE_CRATES: &[&str] = &[
    "crates/sched/src",
    "crates/service/src",
    "crates/shard/src",
    "crates/client/src",
    "crates/trace/src",
    "crates/wal/src",
    "crates/net/src",
];

/// Lint the scheduler-stack sources under `root` (the workspace root),
/// applying the per-crate policy of [`LintSet::for_workspace_path`].
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for dir in WORKSPACE_CRATES {
        collect_rs(&root.join(dir), &mut files)?;
    }
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
        diags.extend(lint_source(&rel, &src, LintSet::for_workspace_path(&rel)));
    }
    Ok(diags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<Lint> {
        lint_source("crates/shard/src/fixture.rs", src, LintSet::all())
            .into_iter()
            .map(|d| d.lint)
            .collect()
    }

    #[test]
    fn inverted_order_is_flagged() {
        let src = "fn f(&self) { let st = self.stats.lock(); let q = self.queue.lock(); }";
        assert_eq!(lints_of(src), vec![Lint::LockOrder]);
    }

    #[test]
    fn canonical_order_is_clean() {
        let src = "fn f(&self) { let q = self.queue.lock(); let st = self.stats.lock(); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src = "fn f(&self) { { let st = self.stats.lock(); } let q = self.queue.lock(); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases() {
        let src =
            "fn f(&self) { let st = self.stats.lock(); drop(st); let q = self.queue.lock(); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn recv_under_guard_is_flagged() {
        let src = "fn f(&self) { let st = self.stats.lock(); let x = rx.recv(); }";
        assert_eq!(lints_of(src), vec![Lint::BlockingWhileLocked]);
    }

    #[test]
    fn recv_after_temp_statement_is_clean() {
        let src = "fn f(&self) { self.stats.lock().completed += 1; let x = rx.recv(); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn temp_guards_in_separate_args_do_not_overlap() {
        let src = "fn f(&self) { g(|| self.stats.lock().a += 1, || self.stats.lock().b += 1); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn condvar_wait_with_own_guard_is_legal() {
        let src = "fn f(&self) { let mut q = self.queue.lock(); q = self.arrived.wait(q); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn condvar_wait_with_extra_guard_is_flagged() {
        let src = "fn f(&self) { let st = self.stats.lock(); let mut q = self.queue.lock(); \
                   q = self.arrived.wait(q); }";
        assert!(lints_of(src).contains(&Lint::BlockingWhileLocked));
    }

    #[test]
    fn unwrap_and_expect_are_flagged_and_allowed() {
        assert_eq!(lints_of("fn f() { x.unwrap(); }"), vec![Lint::Unwrap]);
        assert_eq!(lints_of("fn f() { x.expect(\"m\"); }"), vec![Lint::Unwrap]);
        let allowed = "fn f() {\n // ddrs-check: allow(unwrap) — infallible\n x.unwrap(); }";
        assert!(lints_of(allowed).is_empty());
    }

    #[test]
    fn relaxed_is_flagged_and_allowed() {
        assert_eq!(lints_of("fn f() { a.swap(true, Ordering::Relaxed); }"), vec![Lint::Relaxed]);
        let allowed =
            "fn f() { a.swap(true, Ordering::Relaxed); // ddrs-check: allow(relaxed) — tally\n }";
        assert!(lints_of(allowed).is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\nfn g() {}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_tokenize() {
        let src = "fn f() { let s = \".unwrap()\"; /* x.unwrap() */ // y.unwrap()\n }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn helper_lock_form_is_tracked() {
        let src = "fn f(&self) { let st = lock(&self.stats); let q = lock(&self.queue); }";
        assert_eq!(lints_of(src), vec![Lint::LockOrder]);
    }

    #[test]
    fn machine_run_under_guard_is_flagged() {
        let src = "fn f(&self) { let st = self.stats.lock(); Machine::run(&m, f); }";
        assert!(lints_of(src).contains(&Lint::BlockingWhileLocked));
    }
}
