//! A deterministic interleaving explorer.
//!
//! Concurrency protocols whose steps are serialized by a single mutex —
//! the `Ticket` waker protocol is the motivating case — have the
//! property that every real-thread schedule is equivalent to *some*
//! sequential interleaving of the per-thread step sequences. That means
//! the whole schedule space can be explored exhaustively on one thread:
//! enumerate every order-preserving merge of the step sequences and run
//! the protocol once per schedule, asserting its invariants each time.
//!
//! The number of schedules for sequences of lengths `l₁…lₖ` is the
//! multinomial `(Σlᵢ)! / Πlᵢ!` — exponential in general, entirely
//! tractable for the 2–4-step protocols this is meant for (the ticket
//! suite explores a few dozen schedules per scenario).

/// Every order-preserving merge of `lens.len()` sequences with the
/// given lengths. Each schedule is a vector of sequence indices: the
/// schedule `[0, 1, 0]` means "step of sequence 0, step of sequence 1,
/// step of sequence 0".
pub fn interleavings(lens: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = lens.iter().sum();
    let mut out = Vec::new();
    let mut remaining = lens.to_vec();
    let mut cur = Vec::with_capacity(total);
    gen(&mut remaining, &mut cur, total, &mut out);
    out
}

fn gen(remaining: &mut [usize], cur: &mut Vec<usize>, total: usize, out: &mut Vec<Vec<usize>>) {
    if cur.len() == total {
        out.push(cur.clone());
        return;
    }
    for i in 0..remaining.len() {
        if remaining[i] > 0 {
            remaining[i] -= 1;
            cur.push(i);
            gen(remaining, cur, total, out);
            cur.pop();
            remaining[i] += 1;
        }
    }
}

/// Run `f` once per interleaving of the given step-sequence lengths.
/// Convenience wrapper over [`interleavings`].
pub fn explore(lens: &[usize], mut f: impl FnMut(&[usize])) {
    for schedule in interleavings(lens) {
        f(&schedule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_multinomial() {
        assert_eq!(interleavings(&[1]).len(), 1);
        assert_eq!(interleavings(&[2, 1]).len(), 3);
        assert_eq!(interleavings(&[2, 2]).len(), 6);
        assert_eq!(interleavings(&[3, 2]).len(), 10);
        assert_eq!(interleavings(&[2, 2, 1]).len(), 30);
    }

    #[test]
    fn schedules_preserve_per_sequence_order_and_counts() {
        for schedule in interleavings(&[3, 2]) {
            assert_eq!(schedule.iter().filter(|&&s| s == 0).count(), 3);
            assert_eq!(schedule.iter().filter(|&&s| s == 1).count(), 2);
        }
    }

    #[test]
    fn explore_visits_every_schedule() {
        let mut n = 0;
        explore(&[2, 2], |s| {
            assert_eq!(s.len(), 4);
            n += 1;
        });
        assert_eq!(n, 6);
    }
}
