//! Instrumented lock primitives: lockdep-style order tracking.
//!
//! [`TrackedMutex`] and [`TrackedCondvar`] wrap their `std::sync`
//! counterparts. Every lock carries a `&'static str` *class name*
//! (e.g. `"sched.queue"`); when tracking is active, each acquisition
//! records an edge `held → acquired` for every lock the thread already
//! holds into a global directed graph keyed by class name. If adding an
//! edge closes a cycle, a human-readable inversion report is recorded
//! (and printed to stderr once per edge pair) — the run does *not* have
//! to deadlock for the inversion to surface, which is the whole point:
//! a single lucky interleaving through `a → b` in one thread and
//! `b → a` in another is enough evidence.
//!
//! Tracking is compiled in under `debug_assertions` or the `lock-check`
//! feature and is a per-thread `Vec` push/pop on the fast path (the
//! global graph is only touched on *nested* acquisitions, and a
//! per-thread edge cache makes each distinct edge hit the global mutex
//! once per thread). Without either cfg, the wrappers are plain
//! `std::sync` passthrough: no thread-locals, no graph, no atomics.
//!
//! The wrappers also absorb `std` lock poisoning (`PoisonError` is
//! unwrapped into the inner guard), replacing the
//! `lock().unwrap_or_else(PoisonError::into_inner)` idiom the scheduler
//! crates previously each re-implemented: the scheduler stack has its
//! own poisoning protocol at the service level and treats a panicking
//! critical section as a contained fault, not a reason to wedge every
//! subsequent lock call.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

#[cfg(any(debug_assertions, feature = "lock-check"))]
mod registry {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet, HashSet};
    use std::sync::{Mutex, OnceLock, PoisonError};

    thread_local! {
        /// Lock classes this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        /// Edges this thread has already pushed to the global graph.
        static SEEN: RefCell<HashSet<(&'static str, &'static str)>> =
            RefCell::new(HashSet::new());
    }

    struct Graph {
        /// Directed order graph: `a → b` means some thread acquired `b`
        /// while holding `a`.
        edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
        /// Edge pairs already reported, to keep reports deduplicated.
        reported: HashSet<(&'static str, &'static str)>,
        reports: Vec<String>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| {
            Mutex::new(Graph {
                edges: BTreeMap::new(),
                reported: HashSet::new(),
                reports: Vec::new(),
            })
        })
    }

    /// Is `to` reachable from `from` along recorded edges?
    fn reaches(
        edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
        from: &'static str,
        to: &'static str,
        path: &mut Vec<&'static str>,
    ) -> bool {
        if from == to {
            path.push(from);
            return true;
        }
        path.push(from);
        if let Some(next) = edges.get(from) {
            for &n in next {
                if !path.contains(&n) && reaches(edges, n, to, path) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }

    pub(super) fn on_acquire(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                let snapshot: Vec<&'static str> = held.clone();
                for &h in &snapshot {
                    record_edge(h, name, &snapshot);
                }
            }
            held.push(name);
        });
    }

    fn record_edge(from: &'static str, to: &'static str, held: &[&'static str]) {
        let fresh = SEEN.with(|seen| seen.borrow_mut().insert((from, to)));
        if !fresh {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        // A cycle exists iff `from` was already reachable from `to`
        // before this edge: the new `from → to` closes the loop.
        let mut path = Vec::new();
        if reaches(&g.edges, to, from, &mut path) && g.reported.insert((from, to)) {
            path.push(to);
            let report = format!(
                "lock-order inversion: acquiring '{to}' while holding '{from}', but the \
                 recorded order already has {} (held here: [{}])",
                path.iter().map(|n| format!("'{n}'")).collect::<Vec<_>>().join(" -> "),
                held.join(", "),
            );
            eprintln!("ddrs-check: {report}");
            g.reports.push(report);
        }
        g.edges.entry(from).or_default().insert(to);
    }

    pub(super) fn on_release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == name) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn reports() -> Vec<String> {
        graph().lock().unwrap_or_else(PoisonError::into_inner).reports.clone()
    }

    pub(super) fn clear_reports() {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.reports.clear();
        g.reported.clear();
    }
}

/// True when lock-order tracking is compiled in (debug builds, or any
/// build with the `lock-check` feature). Tests that assert on cycle
/// *detection* (rather than cleanliness) should early-return when this
/// is false.
pub fn tracking_active() -> bool {
    cfg!(any(debug_assertions, feature = "lock-check"))
}

/// All lock-order inversion reports recorded so far, in detection
/// order. Empty when tracking is inactive — which makes
/// `assert!(lock_order_reports().is_empty())` a safe suite-level
/// invariant in every build configuration.
pub fn lock_order_reports() -> Vec<String> {
    #[cfg(any(debug_assertions, feature = "lock-check"))]
    {
        registry::reports()
    }
    #[cfg(not(any(debug_assertions, feature = "lock-check")))]
    {
        Vec::new()
    }
}

/// Discard recorded inversion reports (the order graph itself is kept:
/// edges are facts about the program, reports are the findings).
pub fn clear_lock_order_reports() {
    #[cfg(any(debug_assertions, feature = "lock-check"))]
    registry::clear_reports();
}

/// A `std::sync::Mutex` that participates in lock-order tracking and
/// absorbs poisoning. The `name` is the lock's *class*: every instance
/// sharing a name is one node in the order graph (all `ticket.state`
/// locks are interchangeable for ordering purposes, exactly as in
/// kernel lockdep).
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` under lock class `name`.
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedMutex { name, inner: Mutex::new(value) }
    }

    /// Acquire the lock, recording order edges against every lock the
    /// calling thread already holds. Poisoning is absorbed.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-check"))]
        registry::on_acquire(self.name);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        TrackedGuard { name: self.name, inner: Some(inner) }
    }

    /// The lock's class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consume the mutex and hand back the value (poisoning absorbed).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// The guard returned by [`TrackedMutex::lock`]. Releasing it pops the
/// lock from the thread's acquisition stack.
pub struct TrackedGuard<'a, T> {
    name: &'static str,
    /// `None` only transiently, while a condvar wait has taken the
    /// inner guard (the `TrackedGuard` itself is consumed by value in
    /// that path, so users never observe it).
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // Unreachable by construction: `inner` is only `None` after
            // a by-value condvar wait consumed the guard.
            None => unreachable!("tracked guard used after condvar wait consumed it"),
        }
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("tracked guard used after condvar wait consumed it"),
        }
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(any(debug_assertions, feature = "lock-check"))]
            registry::on_release(self.name);
        }
        // Silence the unused-field warning in passthrough builds.
        #[cfg(not(any(debug_assertions, feature = "lock-check")))]
        let _ = self.name;
    }
}

/// A `std::sync::Condvar` paired with [`TrackedMutex`]: waiting pops
/// the guard's lock class for the blocked stretch and re-records the
/// acquisition when the wait returns (so a wake-up that re-acquires
/// under other held locks still produces order edges).
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        TrackedCondvar { inner: Condvar::new() }
    }

    /// Block until notified, releasing (and on wake re-acquiring) the
    /// guard's mutex. Poisoning is absorbed.
    pub fn wait<'a, T>(&self, mut guard: TrackedGuard<'a, T>) -> TrackedGuard<'a, T> {
        let name = guard.name;
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("tracked guard waited on after being consumed"),
        };
        #[cfg(any(debug_assertions, feature = "lock-check"))]
        registry::on_release(name);
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        #[cfg(any(debug_assertions, feature = "lock-check"))]
        registry::on_acquire(name);
        TrackedGuard { name, inner: Some(inner) }
    }

    /// Like [`wait`](Self::wait) with a timeout; the `bool` is *true*
    /// when the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedGuard<'a, T>,
        dur: Duration,
    ) -> (TrackedGuard<'a, T>, bool) {
        let name = guard.name;
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("tracked guard waited on after being consumed"),
        };
        #[cfg(any(debug_assertions, feature = "lock-check"))]
        registry::on_release(name);
        let (inner, timeout) =
            self.inner.wait_timeout(inner, dur).unwrap_or_else(PoisonError::into_inner);
        #[cfg(any(debug_assertions, feature = "lock-check"))]
        registry::on_acquire(name);
        (TrackedGuard { name, inner: Some(inner) }, timeout.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for TrackedCondvar {
    fn default() -> Self {
        TrackedCondvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_basics() {
        let m = TrackedMutex::new("test.basic", 0_u32);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.name(), "test.basic");
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        use std::sync::Arc;
        let pair = Arc::new((TrackedMutex::new("test.cv", false), TrackedCondvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            done = pair.1.wait(done);
        }
        t.join().unwrap();
    }

    #[test]
    fn nested_consistent_order_is_silent() {
        if !tracking_active() {
            return;
        }
        let a = TrackedMutex::new("test.silent.a", ());
        let b = TrackedMutex::new("test.silent.b", ());
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        let noisy = lock_order_reports()
            .into_iter()
            .filter(|r| r.contains("test.silent"))
            .collect::<Vec<_>>();
        assert!(noisy.is_empty(), "consistent nesting reported: {noisy:?}");
    }
}
