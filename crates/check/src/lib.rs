//! Concurrency-discipline tooling for the `ddrs` scheduler stack.
//!
//! PRs 3–6 wrapped the paper's deterministic search structures in a
//! substantial amount of hand-rolled concurrency: a shared scheduler
//! core, per-shard worker threads with cross-shard merge countdowns,
//! epoch barriers with rollback, waker-based `Ticket` futures, and
//! poisoning/quarantine paths. This crate is the correctness-tooling
//! layer that mechanically enforces the locking discipline those
//! protocols rely on, in three complementary parts:
//!
//! 1. **A static lint pass** ([`lint`]) — a dependency-free token-wise
//!    analysis of the scheduler-stack sources (`sched`, `service`,
//!    `shard`, `client`) enforcing four domain lints with `file:line`
//!    diagnostics and `// ddrs-check: allow(<lint>)` escape hatches.
//!    Run it as `cargo run -p ddrs-check`. Being syntactic, it sees
//!    nesting *within* a function body; cross-function nesting is the
//!    runtime detector's job.
//! 2. **An instrumented lock runtime** ([`lock`]) — [`TrackedMutex`] /
//!    [`TrackedCondvar`] wrappers that maintain per-thread acquisition
//!    stacks and a global lock-order graph with cycle detection, so any
//!    run of the stress/fault suites doubles as a potential-deadlock
//!    detector: inversions are reported even on interleavings that did
//!    not actually deadlock. Active under `debug_assertions` or the
//!    `lock-check` feature; plain `std::sync` passthrough otherwise.
//! 3. **A deterministic interleaving explorer** ([`explore`]) — a tiny
//!    schedule enumerator used to exhaustively permute resolve/poll/drop
//!    orderings of the `Ticket` waker protocol in tests.
//!
//! The canonical lock order the lints and the runtime both enforce is
//! [`lint::CANONICAL_LOCK_ORDER`].

#![warn(missing_docs)]

pub mod explore;
pub mod lint;
pub mod lock;

pub use lint::{lint_source, lint_workspace, Diagnostic, Lint, LintSet};
pub use lock::{
    clear_lock_order_reports, lock_order_reports, tracking_active, TrackedCondvar, TrackedGuard,
    TrackedMutex,
};
