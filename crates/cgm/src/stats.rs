//! Superstep / h-relation accounting.
//!
//! Corollaries 1–3 of the paper bound the number of communication rounds
//! (a constant) and the size `h` of each h-relation (`h = s/p`). The
//! statistics collected here are exactly those two quantities, per
//! collective call, so the experiment harness can verify the bounds on real
//! executions instead of trusting the proofs.

use ddrs_trace::RankStep;
use parking_lot::Mutex;

/// Accumulated measurements for one superstep (one collective call).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundStat {
    /// Name of the collective that produced this round (e.g. `"all_to_all"`).
    pub label: &'static str,
    /// Maximum number of words sent by any processor in this round.
    pub max_sent_words: u64,
    /// Maximum number of words received by any processor in this round.
    pub max_recv_words: u64,
    /// Total words moved across all processors in this round.
    pub total_words: u64,
}

impl RoundStat {
    /// The h-relation size of this round: the largest per-processor
    /// send-or-receive volume.
    pub fn h(&self) -> u64 {
        self.max_sent_words.max(self.max_recv_words)
    }
}

/// Statistics for one or more [`Machine::run`](crate::Machine::run) calls.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-superstep measurements, in execution order.
    pub rounds: Vec<RoundStat>,
    /// Number of `run` invocations covered by these statistics.
    pub runs: usize,
    /// Per-rank compute/barrier timeline of every superstep — one
    /// [`RankStep`] per (rank, collective call). Empty unless span
    /// recording is compiled in (`debug_assertions` or the `trace`
    /// feature; see [`ddrs_trace::enabled`]): the timeline is the
    /// per-run view of the paper's h-relation *balance* claim, and it
    /// shares the request-span clock so [`ddrs_trace::Trace::export_chrome`]
    /// can lay supersteps under the requests they served.
    pub timeline: Vec<RankStep>,
}

impl RunStats {
    /// Number of communication supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.rounds.len()
    }

    /// The largest h-relation routed in any superstep.
    pub fn max_h(&self) -> u64 {
        self.rounds.iter().map(RoundStat::h).max().unwrap_or(0)
    }

    /// Total words moved across all supersteps and processors.
    pub fn total_traffic(&self) -> u64 {
        self.rounds.iter().map(|r| r.total_words).sum()
    }

    /// Supersteps grouped by label with (count, max h) per label.
    pub fn by_label(&self) -> Vec<(&'static str, usize, u64)> {
        let mut out: Vec<(&'static str, usize, u64)> = Vec::new();
        for r in &self.rounds {
            match out.iter_mut().find(|(l, _, _)| *l == r.label) {
                Some((_, n, h)) => {
                    *n += 1;
                    *h = (*h).max(r.h());
                }
                None => out.push((r.label, 1, r.h())),
            }
        }
        out
    }
}

/// A bounded-memory rollup of one or more [`RunStats`] snapshots.
///
/// [`RunStats`] keeps one [`RoundStat`] per superstep, which is exactly
/// right for verifying the paper's bounds on a single run but grows
/// without bound when a long-lived component (e.g. a serving front-end)
/// wants cumulative telemetry across millions of dispatches. A rollup
/// keeps only the scalar summaries — run count, superstep count, the
/// largest h-relation ever routed and total traffic — and absorbs
/// snapshots in O(rounds) time and O(1) space.
///
/// ```
/// use ddrs_cgm::{Machine, RunStatsRollup};
/// let m = Machine::new(2).unwrap();
/// let mut rollup = RunStatsRollup::default();
/// for _ in 0..3 {
///     m.run(|ctx| ctx.all_reduce_sum(1u64));
///     rollup.absorb(&m.take_stats());
/// }
/// assert_eq!(rollup.runs, 3);
/// assert_eq!(rollup.supersteps % 3, 0, "identical runs, identical rounds");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStatsRollup {
    /// Number of `run` invocations absorbed.
    pub runs: u64,
    /// Total communication supersteps across all absorbed runs.
    pub supersteps: u64,
    /// The largest h-relation routed in any absorbed superstep.
    pub max_h: u64,
    /// Total words moved across all absorbed supersteps and processors.
    pub total_words: u64,
}

impl RunStatsRollup {
    /// Fold a [`RunStats`] snapshot into the rollup.
    pub fn absorb(&mut self, stats: &RunStats) {
        self.runs += stats.runs as u64;
        self.supersteps += stats.supersteps() as u64;
        self.max_h = self.max_h.max(stats.max_h());
        self.total_words += stats.total_traffic();
    }

    /// Mean supersteps per absorbed run (0 when no runs were absorbed).
    pub fn rounds_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.supersteps as f64 / self.runs as f64
        }
    }
}

/// Shared collector the SPMD threads report into.
///
/// All `p` processors execute the same sequence of collectives, so the
/// round index is a per-processor counter that stays in lock-step; each
/// processor folds its own send/receive volume into the round's entry.
///
/// One collector lives inside the [`Machine`](crate::Machine) for its
/// whole lifetime: each run's rounds are drained with
/// [`take_rounds`](StatsCollector::take_rounds) (successful runs) or
/// discarded with [`clear`](StatsCollector::clear) (failed runs), so no
/// per-run allocation or `Arc` churn is needed.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    rounds: Mutex<Vec<RoundStat>>,
    /// Per-rank compute/barrier slices, appended by every rank of every
    /// collective when span recording is compiled in.
    timeline: Mutex<Vec<RankStep>>,
}

impl StatsCollector {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Record `sent`/`recv` words by one processor for round `round`.
    pub(crate) fn record(&self, round: usize, label: &'static str, sent: u64, recv: u64) {
        let mut rounds = self.rounds.lock();
        if rounds.len() <= round {
            rounds.resize(round + 1, RoundStat::default());
        }
        let r = &mut rounds[round];
        debug_assert!(r.label.is_empty() || r.label == label, "superstep divergence");
        r.label = label;
        r.max_sent_words = r.max_sent_words.max(sent);
        r.max_recv_words = r.max_recv_words.max(recv);
        r.total_words += sent;
    }

    /// Record one rank's compute/barrier slice for round `round`. A
    /// no-op (folded away) when span recording is compiled out.
    pub(crate) fn record_step(
        &self,
        rank: usize,
        round: usize,
        label: &'static str,
        start_ns: u64,
        compute_ns: u64,
        barrier_ns: u64,
    ) {
        if !ddrs_trace::enabled() {
            return;
        }
        self.timeline.lock().push(RankStep {
            rank,
            round,
            label,
            start_ns,
            compute_ns,
            barrier_ns,
        });
    }

    /// Drain the rounds collected since the last drain/clear.
    pub(crate) fn take_rounds(&self) -> Vec<RoundStat> {
        std::mem::take(&mut *self.rounds.lock())
    }

    /// Drain the per-rank timeline collected since the last drain/clear.
    pub(crate) fn take_timeline(&self) -> Vec<RankStep> {
        std::mem::take(&mut *self.timeline.lock())
    }

    /// Discard the rounds of a failed (cancelled) run: the partial,
    /// possibly divergent measurements would only mislead.
    pub(crate) fn clear(&self) {
        self.rounds.lock().clear();
        self.timeline.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_takes_max_over_processors() {
        let c = StatsCollector::new();
        c.record(0, "x", 10, 4);
        c.record(0, "x", 3, 12);
        let rounds = c.take_rounds();
        assert!(c.take_rounds().is_empty(), "take_rounds drains");
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].max_sent_words, 10);
        assert_eq!(rounds[0].max_recv_words, 12);
        assert_eq!(rounds[0].total_words, 13);
        assert_eq!(rounds[0].h(), 12);
    }

    #[test]
    fn rollup_absorbs_scalar_summaries() {
        let run1 = RunStats {
            rounds: vec![
                RoundStat { label: "a", max_sent_words: 5, max_recv_words: 7, total_words: 20 },
                RoundStat { label: "b", max_sent_words: 9, max_recv_words: 2, total_words: 11 },
            ],
            runs: 1,
            timeline: Vec::new(),
        };
        let run2 = RunStats {
            rounds: vec![RoundStat {
                label: "a",
                max_sent_words: 30,
                max_recv_words: 1,
                total_words: 40,
            }],
            runs: 2,
            timeline: Vec::new(),
        };
        let mut rollup = RunStatsRollup::default();
        assert_eq!(rollup.rounds_per_run(), 0.0);
        rollup.absorb(&run1);
        rollup.absorb(&run2);
        assert_eq!(rollup.runs, 3);
        assert_eq!(rollup.supersteps, 3);
        assert_eq!(rollup.max_h, 30);
        assert_eq!(rollup.total_words, 71);
        assert_eq!(rollup.rounds_per_run(), 1.0);
    }

    #[test]
    fn stats_summaries() {
        let stats = RunStats {
            rounds: vec![
                RoundStat { label: "a", max_sent_words: 5, max_recv_words: 7, total_words: 20 },
                RoundStat { label: "b", max_sent_words: 9, max_recv_words: 2, total_words: 11 },
                RoundStat { label: "a", max_sent_words: 1, max_recv_words: 1, total_words: 2 },
            ],
            runs: 1,
            timeline: Vec::new(),
        };
        assert_eq!(stats.supersteps(), 3);
        assert_eq!(stats.max_h(), 9);
        assert_eq!(stats.total_traffic(), 33);
        let by = stats.by_label();
        assert_eq!(by, vec![("a", 2, 7), ("b", 1, 9)]);
    }
}
