//! Weighted load balancing with resource replication (the *multisearch*
//! balancing step).
//!
//! Algorithm Search (steps 2–4 of the paper) must even out query load over
//! forest trees whose demand is arbitrarily skewed: it computes, for every
//! forest shard `F_j`, the congestion `c_j = ⌈|QF_j| / (|Q|/p)⌉`, makes
//! `c_j` **copies** of the shard, distributes the copies evenly, and then
//! routes every query to a processor holding a copy of the tree it wants to
//! visit. The paper cites the balancing procedure of the multisearch paper
//! (Atallah–Dehne–Miller–Rau-Chaplin–Tsay) as a black box with the
//! guarantee that each processor ends up with O(1) copies and an O(total/p)
//! share of the demand; this module implements and tests that contract.

use std::collections::BTreeMap;

use crate::ctx::Ctx;
use crate::payload::Payload;

/// Result of [`Ctx::load_balance`]: the resource copies shipped to this
/// processor and the work items routed to it.
///
/// Contract: every routed item's resource is either among the shipped
/// `resources` **or already owned by this processor** (owners serve as
/// copy 0 from their originals, so uncongested resources never move).
#[derive(Debug)]
pub struct BalanceOutcome<R, W> {
    /// `(resource id, copy)` pairs shipped to this processor.
    pub resources: Vec<(u64, R)>,
    /// `(resource id, item)` pairs to process locally.
    pub items: Vec<(u64, W)>,
}

impl Ctx<'_> {
    /// Balance `items` (each demanding the resource with its id) across
    /// processors, replicating congested resources.
    ///
    /// * `owned` — resources this processor currently owns (ids must be
    ///   globally unique; ownership is not consumed — owners retain their
    ///   originals independently of the copies shipped here).
    /// * `items` — local work items, each tagged with the resource id it
    ///   must be co-located with.
    ///
    /// Three supersteps: demand histogram (all-gather), resource shipping
    /// (all-to-all), item routing (all-to-all).
    ///
    /// Deterministic: all processors compute the same copy assignment from
    /// the shared histogram; copies of resource `j` are laid out round-robin
    /// starting at the cumulative copy count, and the `g`-th global item of
    /// resource `j` goes to copy `⌊g·c_j/d_j⌋`.
    pub fn load_balance<R, W>(
        &mut self,
        owned: &[(u64, R)],
        items: Vec<(u64, W)>,
    ) -> BalanceOutcome<R, W>
    where
        R: Payload + Clone,
        W: Payload,
    {
        let ids: Vec<u64> = owned.iter().map(|(rid, _)| *rid).collect();
        // Index the owned resources once: resolving each demanded shard
        // with a linear scan is quadratic when many owned shards are
        // demanded.
        let index: BTreeMap<u64, &R> = owned.iter().map(|(rid, r)| (*rid, r)).collect();
        let weighted = items.into_iter().map(|(rid, w)| (rid, w, 1)).collect();
        self.load_balance_weighted_with(
            &ids,
            |rid| (*index.get(&rid).expect("owned resource")).clone(),
            weighted,
        )
    }

    /// [`load_balance`](Ctx::load_balance) with owner-side lazy resource
    /// lookup (only demanded resources are cloned) and per-item weights:
    /// congestion `c_j` and item routing are computed over total *weight*
    /// rather than item count, which is what Algorithm Report needs (its
    /// items are selected segment trees weighed by their leaf counts).
    pub fn load_balance_weighted_with<R, W, F>(
        &mut self,
        owned_ids: &[u64],
        get: F,
        items: Vec<(u64, W, u64)>,
    ) -> BalanceOutcome<R, W>
    where
        R: Payload + Clone,
        W: Payload,
        F: Fn(u64) -> R,
    {
        let p = self.p();
        let me = self.rank();

        // --- Superstep 1: global demand histogram (by weight), plus
        //     resource ownership (owners keep copy 0 in place, so
        //     uncongested resources are never shipped at all — only the
        //     *congested* trees are copied, as in the paper) ------------
        let mut local_counts: BTreeMap<u64, u64> = BTreeMap::new();
        for (rid, _, w) in &items {
            *local_counts.entry(*rid).or_insert(0) += (*w).max(1);
        }
        // Entries: (rid, count, is_ownership). Ownership entries carry 0.
        let mut local_hist: Vec<(u64, u64, bool)> =
            local_counts.iter().map(|(&k, &v)| (k, v, false)).collect();
        local_hist.extend(owned_ids.iter().map(|&rid| (rid, 0, true)));
        let per_rank_hists: Vec<Vec<(u64, u64, bool)>> = self.all_gather(local_hist);

        // Global demand per resource, this processor's item offset within
        // each resource's global item sequence, and the owner map.
        let mut demand: BTreeMap<u64, u64> = BTreeMap::new();
        let mut my_offset: BTreeMap<u64, u64> = BTreeMap::new();
        let mut owner: BTreeMap<u64, usize> = BTreeMap::new();
        for (r, hist) in per_rank_hists.iter().enumerate() {
            for &(rid, cnt, is_owner) in hist {
                if is_owner {
                    let prev = owner.insert(rid, r);
                    debug_assert!(prev.is_none(), "resource {rid} has two owners");
                } else {
                    if r < me {
                        *my_offset.entry(rid).or_insert(0) += cnt;
                    }
                    *demand.entry(rid).or_insert(0) += cnt;
                }
            }
        }
        let total: u64 = demand.values().sum();

        // --- Deterministic copy assignment (computed identically
        //     everywhere from the shared histogram) ----------------------
        // c_j = ceil(d_j * p / total), clamped to [1, p]. Copy 0 stays
        // with the owner *while the owner's pinned demand stays under
        // twice the even share* (avoiding shipment of uncongested trees —
        // the paper only copies congested ones); past that the copy is
        // placed round-robin like the rest, preserving the O(total/p)
        // per-processor bound even when one owner holds many demanded
        // resources. Copies t ≥ 1 go round-robin over the other ranks,
        // offset by the cumulative slot (consecutive values mod (p-1) are
        // distinct for c-1 ≤ p-1 and never hit the copy-0 rank's slot 0).
        let share = if total == 0 { 1 } else { total.div_ceil(p as u64) };
        let mut plan: BTreeMap<u64, (u64, u64, usize)> = BTreeMap::new(); // rid -> (first_slot, c_j, copy0_rank)
        let mut cum_copies: u64 = 0;
        let mut pinned: Vec<u64> = vec![0; p];
        for (&rid, &d) in &demand {
            let c =
                if total == 0 { 1 } else { ((d * p as u64).div_ceil(total)).clamp(1, p as u64) };
            let own = *owner.get(&rid).expect("demanded resource has an owner");
            let quota = d / c;
            let copy0 = if pinned[own] + quota <= 2 * share {
                pinned[own] += quota;
                own
            } else {
                let slot = (cum_copies % p as u64) as usize;
                pinned[slot] += quota;
                slot
            };
            plan.insert(rid, (cum_copies, c, copy0));
            cum_copies += c;
        }
        let rank_of_copy = |first_slot: u64, c0: usize, t: u64| -> usize {
            if t == 0 {
                c0
            } else {
                debug_assert!(p > 1, "extra copies require p > 1");
                (c0 + 1 + ((first_slot + t - 1) % (p as u64 - 1)) as usize) % p
            }
        };

        // --- Superstep 2: ship copies (only displaced copy-0s and the
        //     extra copies of congested resources move) ------------------
        let mut res_out: Vec<Vec<(u64, R)>> = (0..p).map(|_| Vec::new()).collect();
        for &rid in owned_ids {
            if let Some(&(first, c, c0)) = plan.get(&rid) {
                for t in 0..c {
                    let dst = rank_of_copy(first, c0, t);
                    if dst != me {
                        res_out[dst].push((rid, get(rid)));
                    }
                }
            }
        }
        let resources: Vec<(u64, R)> =
            self.exchange("balance_resources", res_out).into_iter().flatten().collect();

        // --- Superstep 3: route items to their assigned copies ----------
        // The g-th unit of global weight of resource j goes to copy
        // ⌊g·c_j/d_j⌋; an item is routed by the weight-prefix of its first
        // unit.
        let mut item_out: Vec<Vec<(u64, W)>> = (0..p).map(|_| Vec::new()).collect();
        let mut next_local: BTreeMap<u64, u64> = BTreeMap::new();
        for (rid, item, w) in items {
            let &(first, c, c0) = plan.get(&rid).expect("demanded resource has a plan");
            let d = demand[&rid];
            let local_pos = next_local.entry(rid).or_insert(0);
            let g = my_offset.get(&rid).copied().unwrap_or(0) + *local_pos;
            *local_pos += w.max(1);
            let t = (g * c / d).min(c - 1);
            item_out[rank_of_copy(first, c0, t)].push((rid, item));
        }
        let items: Vec<(u64, W)> =
            self.exchange("balance_items", item_out).into_iter().flatten().collect();

        BalanceOutcome { resources, items }
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;

    /// Run a balance and return (per-rank resource ids, per-rank item counts,
    /// violations of co-location).
    fn run_balance(
        p: usize,
        owner_of: impl Fn(u64) -> usize + Sync,
        n_resources: u64,
        items_for_rank: impl Fn(usize) -> Vec<u64> + Sync,
    ) -> (Vec<Vec<u64>>, Vec<usize>, usize) {
        let m = Machine::new(p).unwrap();
        let outs = m.run(|ctx| {
            let owned: Vec<(u64, u64)> = (0..n_resources)
                .filter(|&rid| owner_of(rid) == ctx.rank())
                .map(|rid| (rid, rid * 1000)) // resource payload
                .collect();
            let items: Vec<(u64, u64)> =
                items_for_rank(ctx.rank()).into_iter().map(|rid| (rid, rid)).collect();
            let out = ctx.load_balance(&owned, items);
            (out.resources, out.items)
        });
        let mut violations = 0;
        let mut rids_per_rank = Vec::new();
        let mut items_per_rank = Vec::new();
        for (rank, (res, its)) in outs.iter().enumerate() {
            let rids: Vec<u64> = res.iter().map(|(rid, _)| *rid).collect();
            for (rid, _) in its {
                // Contract: a shipped copy arrived, or this rank owns it.
                if !rids.contains(rid) && owner_of(*rid) != rank {
                    violations += 1;
                }
            }
            // Owners never receive shipped self-copies.
            for rid in &rids {
                assert_ne!(owner_of(*rid), rank, "owner received a self-copy of {rid}");
            }
            // Resource payloads must be the owner's.
            for (rid, payload) in res {
                assert_eq!(*payload, rid * 1000);
            }
            items_per_rank.push(its.len());
            rids_per_rank.push(rids);
        }
        (rids_per_rank, items_per_rank, violations)
    }

    #[test]
    fn items_colocated_with_resources() {
        let (_, _, violations) = run_balance(
            4,
            |rid| (rid % 4) as usize,
            16,
            |r| (0..50).map(|i| ((r * 50 + i) % 16) as u64).collect(),
        );
        assert_eq!(violations, 0);
    }

    #[test]
    fn hot_spot_resource_is_replicated_and_split() {
        // Every item demands resource 0, owned by rank 3.
        let (rids, items, violations) = run_balance(8, |_| 3, 1, |_| vec![0u64; 100]);
        assert_eq!(violations, 0);
        // Resource 0 must be copied to every processor except its owner
        // (rank 3 serves from the original)...
        for (rank, r) in rids.iter().enumerate() {
            if rank == 3 {
                assert!(r.is_empty(), "owner got a self-copy");
            } else {
                assert!(r.contains(&0), "rank {rank} missing the hot copy");
            }
        }
        // ...and each processor gets exactly 100 items.
        assert!(items.iter().all(|&n| n == 100), "items per rank: {items:?}");
    }

    #[test]
    fn balanced_demand_stays_balanced() {
        let p = 4;
        let (_, items, violations) = run_balance(
            p,
            |rid| (rid % 4) as usize,
            4,
            |r| vec![r as u64; 25], // each rank demands "its" resource
        );
        assert_eq!(violations, 0);
        let total: usize = items.iter().sum();
        assert_eq!(total, 100);
        let max = *items.iter().max().unwrap();
        assert!(max <= 2 * (total / p) + 1, "max per-rank items {max} too high: {items:?}");
    }

    #[test]
    fn empty_demand_is_a_no_op() {
        let (rids, items, violations) = run_balance(4, |_| 0, 4, |_| Vec::new());
        assert_eq!(violations, 0);
        assert!(items.iter().all(|&n| n == 0));
        assert!(rids.iter().all(Vec::is_empty));
    }

    #[test]
    fn skewed_two_resource_demand() {
        // 90% of demand on resource 0, 10% on resource 1.
        let (_, items, violations) = run_balance(
            4,
            |rid| rid as usize,
            2,
            |r| {
                let mut v = vec![0u64; 90];
                if r == 0 {
                    v.extend(vec![1u64; 40]);
                }
                v
            },
        );
        assert_eq!(violations, 0);
        let total: usize = items.iter().sum();
        assert_eq!(total, 4 * 90 + 40);
        let max = *items.iter().max().unwrap();
        // Contract: no processor carries more than ~2x the even share.
        assert!(max <= 2 * total / 4 + 1, "items: {items:?}");
    }
}
