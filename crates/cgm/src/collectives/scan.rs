//! Partial sums (prefix scans) and reductions.
//!
//! The paper's "Partial sum" collective. Implemented by all-gathering the
//! per-processor summaries (`p` words) and folding locally — one superstep,
//! h = O(p) ≤ O(s/p) under the standing assumption `s/p ≥ p`.

use crate::ctx::Ctx;
use crate::payload::Payload;

impl Ctx<'_> {
    /// Sum of `v` over all processors, available everywhere.
    pub fn all_reduce_sum(&mut self, v: u64) -> u64 {
        self.all_gather_one(v).into_iter().sum()
    }

    /// Maximum of `v` over all processors, available everywhere.
    pub fn all_reduce_max(&mut self, v: u64) -> u64 {
        self.all_gather_one(v).into_iter().max().unwrap_or(0)
    }

    /// Exclusive prefix sum over processor ranks: the sum of `v` on all
    /// processors with rank strictly below this one.
    pub fn exclusive_scan_sum(&mut self, v: u64) -> u64 {
        let all = self.all_gather_one(v);
        all[..self.rank()].iter().sum()
    }

    /// Exclusive prefix sum returning `(prefix, total)` in one superstep.
    pub fn exclusive_scan_sum_total(&mut self, v: u64) -> (u64, u64) {
        let all = self.all_gather_one(v);
        let prefix = all[..self.rank()].iter().sum();
        let total = all.iter().sum();
        (prefix, total)
    }

    /// Generic all-reduce with a user fold over per-processor contributions
    /// (applied in rank order on every processor, so non-commutative folds
    /// are still deterministic).
    pub fn all_reduce<T, F>(&mut self, v: T, fold: F) -> T
    where
        T: Payload + Clone,
        F: Fn(T, T) -> T,
    {
        let mut all = self.all_gather_one(v).into_iter();
        let first = all.next().expect("p >= 1");
        all.fold(first, fold)
    }

    /// Element-local prefix sums for a distributed sequence: returns, for
    /// each local element weight, the *global* exclusive prefix sum of all
    /// weights before it (in rank-then-local order), plus the global total.
    pub fn global_prefix_sums(&mut self, weights: &[u64]) -> (Vec<u64>, u64) {
        let local_total: u64 = weights.iter().sum();
        let (offset, total) = self.exclusive_scan_sum_total(local_total);
        let mut acc = offset;
        let prefixes = weights
            .iter()
            .map(|w| {
                let here = acc;
                acc += w;
                here
            })
            .collect();
        (prefixes, total)
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;

    #[test]
    fn reductions() {
        let m = Machine::new(8).unwrap();
        let sums = m.run(|ctx| ctx.all_reduce_sum(ctx.rank() as u64));
        assert!(sums.iter().all(|&s| s == 28));
        let maxes = m.run(|ctx| ctx.all_reduce_max(ctx.rank() as u64 * 3));
        assert!(maxes.iter().all(|&x| x == 21));
    }

    #[test]
    fn exclusive_scan() {
        let m = Machine::new(4).unwrap();
        let pre = m.run(|ctx| ctx.exclusive_scan_sum((ctx.rank() + 1) as u64));
        assert_eq!(pre, vec![0, 1, 3, 6]);
        let both = m.run(|ctx| ctx.exclusive_scan_sum_total((ctx.rank() + 1) as u64));
        assert_eq!(both, vec![(0, 10), (1, 10), (3, 10), (6, 10)]);
    }

    #[test]
    fn generic_all_reduce_is_rank_ordered() {
        let m = Machine::new(4).unwrap();
        let cat = m.run(|ctx| ctx.all_reduce(ctx.rank().to_string(), |a, b| a + &b));
        assert!(cat.iter().all(|s| s == "0123"));
    }

    #[test]
    fn global_prefix_sums_span_processors() {
        let m = Machine::new(2).unwrap();
        let out = m.run(|ctx| {
            let w = if ctx.rank() == 0 { vec![2, 3] } else { vec![5, 1] };
            ctx.global_prefix_sums(&w)
        });
        assert_eq!(out[0], (vec![0, 2], 11));
        assert_eq!(out[1], (vec![5, 10], 11));
    }
}
