//! Global sort and order-preserving rebalance.
//!
//! The paper uses parallel sort "as a black box" (Goodrich's
//! communication-efficient BSP sort in the theory; deterministic *regular
//! sample sort* here, which has the same O(1)-round structure when
//! `n/p ≥ p`): local sort → regular samples → splitters → bucket exchange →
//! local merge. The result is globally sorted by key across processor
//! ranks. `rebalance` then evens out bucket skew while preserving global
//! order, which the construction algorithm needs to cut exact `n/p` groups.

use crate::ctx::Ctx;
use crate::payload::Payload;

impl Ctx<'_> {
    /// Globally sort `data` by `key`. After the call, concatenating the
    /// returned vectors over ranks 0..p yields the sorted global sequence.
    /// Per-processor counts may be uneven (bounded skew); use
    /// [`sort_balanced_by_key`](Ctx::sort_balanced_by_key) when exact
    /// balance is required.
    ///
    /// Ties are broken by `(source rank, local position)`, making the
    /// result deterministic and the sort stable with respect to the global
    /// input order.
    pub fn sort_by_key<T, K, KF>(&mut self, data: Vec<T>, key: KF) -> Vec<T>
    where
        T: Payload,
        K: Ord + Clone + Payload,
        KF: Fn(&T) -> K,
    {
        let p = self.p();
        let me = self.rank();

        // Decorate with (key, src, pos) for a stable, deterministic order.
        let mut decorated: Vec<(K, u64, T)> = data
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let k = key(&t);
                (k, ((me as u64) << 32) | i as u64, t)
            })
            .collect();
        decorated.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

        if p == 1 {
            return decorated.into_iter().map(|(_, _, t)| t).collect();
        }

        // Regular sampling: p samples at evenly spaced positions.
        let n_local = decorated.len();
        let samples: Vec<(K, u64)> = (1..=p)
            .filter_map(|j| {
                if n_local == 0 {
                    None
                } else {
                    let idx = (j * n_local / p).min(n_local - 1);
                    Some((decorated[idx].0.clone(), decorated[idx].1))
                }
            })
            .collect();
        let gathered: Vec<(K, u64)> = self.all_gather(samples).into_iter().flatten().collect();
        let mut all_samples = gathered;
        all_samples.sort();

        // p-1 splitters at regular positions in the sample.
        let splitters: Vec<(K, u64)> = if all_samples.is_empty() {
            Vec::new()
        } else {
            (1..p)
                .map(|i| {
                    let idx = (i * all_samples.len() / p).min(all_samples.len() - 1);
                    all_samples[idx].clone()
                })
                .collect()
        };

        // Partition the local sorted run by the splitters.
        let mut buckets: Vec<Vec<(K, u64, T)>> = (0..p).map(|_| Vec::new()).collect();
        if splitters.is_empty() {
            buckets[0] = decorated;
        } else {
            let mut rest = decorated;
            // Walk splitters from the last to the first, splitting off tails.
            for b in (0..p - 1).rev() {
                let cut = rest.partition_point(|(k, tie, _)| {
                    (k.clone(), *tie) < (splitters[b].0.clone(), splitters[b].1)
                });
                let tail = rest.split_off(cut);
                buckets[b + 1] = tail;
            }
            buckets[0] = rest;
        }

        let inbound = self.exchange("sort", buckets);
        // Each inbound run is sorted; merge by full re-sort of the
        // decorated keys (simple and O((n/p) log(n/p)) local work).
        let mut merged: Vec<(K, u64, T)> = inbound.into_iter().flatten().collect();
        merged.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        merged.into_iter().map(|(_, _, t)| t).collect()
    }

    /// Globally sort by key, then redistribute so every processor holds an
    /// even share (sizes differ by at most one, earlier ranks larger),
    /// preserving the global order.
    pub fn sort_balanced_by_key<T, K, KF>(&mut self, data: Vec<T>, key: KF) -> Vec<T>
    where
        T: Payload,
        K: Ord + Clone + Payload,
        KF: Fn(&T) -> K,
    {
        let sorted = self.sort_by_key(data, key);
        self.rebalance(sorted)
    }

    /// Redistribute a globally ordered distributed sequence so that counts
    /// are even (first `total % p` ranks hold one extra), preserving order.
    /// One superstep.
    pub fn rebalance<T: Payload>(&mut self, data: Vec<T>) -> Vec<T> {
        let p = self.p();
        let (offset, total) = self.exclusive_scan_sum_total(data.len() as u64);
        let base = total / p as u64;
        let extra = (total % p as u64) as usize;
        // Global index ranges per destination rank.
        let start_of = |r: usize| -> u64 {
            let r64 = r as u64;
            base * r64 + (r.min(extra)) as u64
        };
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        let mut dest = 0usize;
        for (i, item) in data.into_iter().enumerate() {
            let g = offset + i as u64;
            while dest + 1 < p && g >= start_of(dest + 1) {
                dest += 1;
            }
            out[dest].push(item);
        }
        self.exchange("rebalance", out).into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;

    fn check_global_sort(
        p: usize,
        per_proc: usize,
        gen: impl Fn(usize, usize) -> u64 + Sync + Copy,
    ) {
        let m = Machine::new(p).unwrap();
        let outs = m.run(|ctx| {
            let data: Vec<u64> = (0..per_proc).map(|i| gen(ctx.rank(), i)).collect();
            ctx.sort_by_key(data, |x| *x)
        });
        let flat: Vec<u64> = outs.iter().flatten().copied().collect();
        let mut expected: Vec<u64> =
            (0..p).flat_map(|r| (0..per_proc).map(move |i| gen(r, i))).collect();
        expected.sort();
        assert_eq!(flat, expected);
    }

    #[test]
    fn sort_random_like() {
        check_global_sort(4, 100, |r, i| ((r * 1_000_003 + i * 7919) % 1231) as u64);
    }

    #[test]
    fn sort_reverse_sorted() {
        check_global_sort(8, 64, |r, i| (1_000_000 - (r * 64 + i)) as u64);
    }

    #[test]
    fn sort_heavy_duplicates() {
        check_global_sort(4, 128, |r, i| ((r + i) % 3) as u64);
    }

    #[test]
    fn sort_single_processor() {
        check_global_sort(1, 50, |_, i| (97 * i % 53) as u64);
    }

    #[test]
    fn sort_empty_inputs() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| ctx.sort_by_key(Vec::<u64>::new(), |x| *x));
        assert!(outs.iter().all(Vec::is_empty));
    }

    #[test]
    fn sort_skewed_input_sizes() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| {
            let n = if ctx.rank() == 0 { 400 } else { 1 };
            let data: Vec<u64> = (0..n).map(|i| ((i * 37 + ctx.rank()) % 101) as u64).collect();
            ctx.sort_by_key(data, |x| *x)
        });
        let flat: Vec<u64> = outs.iter().flatten().copied().collect();
        assert_eq!(flat.len(), 403);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn balanced_sort_even_counts() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| {
            // All data on rank 0, all equal keys: worst case for sample sort.
            let data: Vec<u64> = if ctx.rank() == 0 { vec![5; 103] } else { Vec::new() };
            ctx.sort_balanced_by_key(data, |x| *x)
        });
        let counts: Vec<usize> = outs.iter().map(Vec::len).collect();
        assert_eq!(counts, vec![26, 26, 26, 25]);
    }

    #[test]
    fn rebalance_preserves_order() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| {
            // Globally ordered sequence living entirely on rank 2.
            let data: Vec<u64> = if ctx.rank() == 2 { (0..97).collect() } else { Vec::new() };
            ctx.rebalance(data)
        });
        let flat: Vec<u64> = outs.iter().flatten().copied().collect();
        assert_eq!(flat, (0..97).collect::<Vec<u64>>());
        let counts: Vec<usize> = outs.iter().map(Vec::len).collect();
        assert_eq!(counts, vec![25, 24, 24, 24]);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let m = Machine::new(2).unwrap();
        // Items carry (key, payload); equal keys must keep (rank, pos) order.
        let outs = m.run(|ctx| {
            let data: Vec<(u64, u64)> =
                (0..10).map(|i| (0u64, (ctx.rank() as u64) * 100 + i)).collect();
            ctx.sort_by_key(data, |x| x.0)
        });
        let flat: Vec<u64> = outs.iter().flatten().map(|x| x.1).collect();
        let expected: Vec<u64> =
            (0..2).flat_map(|r| (0..10).map(move |i| (r * 100 + i) as u64)).collect();
        assert_eq!(flat, expected);
    }
}
