//! Segmented broadcast / gather and segmented partial sums.
//!
//! *Segmented broadcast* delivers one item to every processor in a
//! contiguous rank range — Algorithm Report uses it to spread a query's
//! reporting work over the processors `[dest(q), dest(q) + ⌈w(q)/(W/p)⌉)`.
//! *Segmented gather* is the inverse. The *segmented partial sum* folds a
//! semigroup over runs sharing a key in a globally sorted distributed
//! sequence — Algorithm AssociativeFunction's final step.

use std::ops::Range;

use crate::ctx::Ctx;
use crate::payload::Payload;

impl Ctx<'_> {
    /// Deliver a copy of each item to every processor in its rank range.
    /// Received items are ordered by (source rank, local order).
    pub fn segmented_broadcast<T: Payload + Clone>(
        &mut self,
        items: Vec<(T, Range<usize>)>,
    ) -> Vec<T> {
        let p = self.p();
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (item, range) in items {
            assert!(range.end <= p, "segmented_broadcast: range {range:?} exceeds p={p}");
            for dst in range {
                out[dst].push(item.clone());
            }
        }
        self.exchange("segmented_broadcast", out).into_iter().flatten().collect()
    }

    /// Send each `(item, dest)` to one destination (the inverse of
    /// segmented broadcast; a thin personalization wrapper kept for parity
    /// with the paper's collective vocabulary).
    pub fn segmented_gather<T: Payload>(&mut self, items: Vec<(T, usize)>) -> Vec<T> {
        self.route(items.into_iter().map(|(t, d)| (d, t)).collect())
    }

    /// Segmented fold over a *globally sorted by `seg`* distributed
    /// sequence: for every distinct segment id, folds all its values with
    /// `comb` and returns the per-segment results on the processor that
    /// holds the segment's first element. Two supersteps (boundary
    /// exchange).
    ///
    /// Each processor passes its local `(seg, value)` runs; the fold is
    /// applied left-to-right in global order, so `comb` need not be
    /// commutative, only associative.
    pub fn segmented_fold<V, F>(&mut self, local: Vec<(u64, V)>, comb: F) -> Vec<(u64, V)>
    where
        V: Payload + Clone,
        F: Fn(V, V) -> V,
    {
        debug_assert!(local.windows(2).all(|w| w[0].0 <= w[1].0), "input must be sorted by seg");
        // Fold local runs.
        let mut runs: Vec<(u64, V)> = Vec::new();
        for (seg, v) in local {
            match runs.last_mut() {
                Some((s, acc)) if *s == seg => *acc = comb(acc.clone(), v),
                _ => runs.push((seg, v)),
            }
        }
        // A processor's first run may continue the previous processor's last
        // run. Ship every *boundary-adjacent* run summary to the processor
        // holding the segment head. To find the owner we gather the first
        // and last segment ids of every processor.
        let first_last: Vec<(u64, u64, bool)> =
            self.all_gather_one(match (runs.first(), runs.last()) {
                (Some(f), Some(l)) => (f.0, l.0, true),
                _ => (0, 0, false),
            });
        // The owner of segment s = the lowest rank whose range contains s
        // and that actually starts the segment (i.e. its predecessor's last
        // id differs, or it is the first non-empty processor with that id).
        let owner_of = |seg: u64| -> usize {
            let mut owner = None;
            for (r, &(f, l, nonempty)) in first_last.iter().enumerate() {
                if !nonempty {
                    continue;
                }
                if f <= seg && seg <= l {
                    owner = Some(r);
                    break;
                }
            }
            owner.expect("segment must exist on some processor")
        };
        let me = self.rank();
        let mut outgoing: Vec<(u64, V, usize)> = Vec::new(); // (seg, partial, dest)
        let mut keep: Vec<(u64, V)> = Vec::new();
        for (seg, v) in runs {
            let owner = owner_of(seg);
            if owner == me {
                keep.push((seg, v));
            } else {
                outgoing.push((seg, v, owner));
            }
        }
        let inbound: Vec<(u64, V, u64)> = self.route(
            outgoing.into_iter().map(|(seg, v, dest)| (dest, (seg, v, me as u64))).collect(),
        );
        // Merge inbound partials into kept runs. Inbound arrives in source
        // rank order; all sources are higher ranks than us (their runs
        // continue ours), so folding in arrival order preserves global
        // left-to-right order.
        for (seg, v, _src) in inbound {
            match keep.iter_mut().find(|(s, _)| *s == seg) {
                Some((_, acc)) => *acc = comb(acc.clone(), v),
                // A segment entirely owned by later ranks can be routed here
                // only if `owner_of` picked us; then we must keep it.
                None => keep.push((seg, v)),
            }
        }
        keep.sort_by_key(|(s, _)| *s);
        keep
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;

    #[test]
    fn segmented_broadcast_ranges() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| {
            let items =
                if ctx.rank() == 0 { vec![(100u64, 0..3), (200u64, 2..4)] } else { Vec::new() };
            ctx.segmented_broadcast(items)
        });
        assert_eq!(outs[0], vec![100]);
        assert_eq!(outs[1], vec![100]);
        assert_eq!(outs[2], vec![100, 200]);
        assert_eq!(outs[3], vec![200]);
    }

    #[test]
    fn segmented_gather_routes() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| ctx.segmented_gather(vec![(ctx.rank() as u64, 0usize)]));
        assert_eq!(outs[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn segmented_fold_within_one_processor() {
        let m = Machine::new(2).unwrap();
        let outs = m.run(|ctx| {
            let local: Vec<(u64, u64)> =
                if ctx.rank() == 0 { vec![(1, 10), (1, 5), (2, 7)] } else { vec![(3, 1), (3, 1)] };
            ctx.segmented_fold(local, |a, b| a + b)
        });
        assert_eq!(outs[0], vec![(1, 15), (2, 7)]);
        assert_eq!(outs[1], vec![(3, 2)]);
    }

    #[test]
    fn segmented_fold_across_boundary() {
        let m = Machine::new(4).unwrap();
        let outs = m.run(|ctx| {
            // Segment 7 spans all processors: 1 + 2 + 3 + 4.
            let local = vec![(7u64, (ctx.rank() + 1) as u64)];
            ctx.segmented_fold(local, |a, b| a + b)
        });
        assert_eq!(outs[0], vec![(7, 10)]);
        assert!(outs[1].is_empty() && outs[2].is_empty() && outs[3].is_empty());
    }

    #[test]
    fn segmented_fold_noncommutative_order() {
        let m = Machine::new(2).unwrap();
        let outs = m.run(|ctx| {
            let local: Vec<(u64, String)> = if ctx.rank() == 0 {
                vec![(1, "a".into()), (1, "b".into())]
            } else {
                vec![(1, "c".into())]
            };
            ctx.segmented_fold(local, |a, b| a + &b)
        });
        assert_eq!(outs[0], vec![(1, "abc".to_string())]);
    }
}
