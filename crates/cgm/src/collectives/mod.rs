//! The standard CGM collective operations.
//!
//! The paper's Model section fixes this exact vocabulary: *segmented
//! broadcast, segmented gather, all-to-all broadcast, personalized
//! all-to-all broadcast, partial sum and sort*, each realisable in a
//! constant number of h-relations (via a constant number of sorts if the
//! machine lacks them in hardware). The distributed range-tree algorithms
//! use them as black boxes, exactly as the paper does.
//!
//! Each collective here is implemented over [`Ctx::exchange`] (the
//! personalized all-to-all) and therefore costs O(1) supersteps by
//! construction; the per-superstep h-relation sizes are metered and
//! verified by the experiment harness rather than assumed.
//!
//! [`Ctx::exchange`]: crate::Ctx::exchange

mod alltoall;
mod balance;
mod scan;
mod segmented;
mod sort;

pub use balance::BalanceOutcome;
